//! Integration coverage for the metrics registry over a real engine: two
//! same-seed runs must produce identical sample streams (after projecting
//! out wall-clock timing), and the Prometheus exposition of a live engine
//! must round-trip through the parser.

use std::sync::Arc;

use lsgraph::gen::{rmat, RmatParams};
use lsgraph::metrics::{parse_prometheus, MetricsRegistry, RegistrySample};
use lsgraph::{Config, DynamicGraph, LsGraph};

/// The deterministic projection of one sample: every counter whose value is
/// a structural count (not a `*_nanos` wall-clock accumulator), every
/// engine gauge, and each histogram's population count. Histogram bucket
/// contents are latencies and vary run to run; how many operations were
/// recorded does not.
fn deterministic_projection(s: &RegistrySample) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = s
        .counters
        .iter()
        .filter(|(name, _)| !name.ends_with("_nanos"))
        .cloned()
        .collect();
    out.extend(
        s.gauges
            .iter()
            .filter(|(name, _)| !name.starts_with("process_heap"))
            .cloned(),
    );
    out.extend(
        s.histograms
            .iter()
            .map(|(name, h)| (format!("{name}_count"), h.count())),
    );
    out
}

/// One single-threaded run: build an engine, stream `rounds` same-seed
/// R-MAT batches through it, and sample the registry after every batch.
fn run_sampled(seed: u64, rounds: usize) -> Vec<RegistrySample> {
    let scale = 10;
    let n = 1usize << scale;
    let mut g = LsGraph::with_config(
        n,
        Config {
            m: 64,
            ..Config::default()
        },
    );
    let mut registry = MetricsRegistry::new();
    registry.register_struct_stats("lsgraph", g.stats_handle());
    registry.register_latency_stats("lsgraph", g.latency_handle());
    let registry = Arc::new(registry);
    let mut samples = Vec::new();
    for round in 0..rounds {
        let batch = rmat(scale, 4_000, RmatParams::paper(), seed + round as u64);
        if round % 3 == 2 {
            g.delete_batch(&batch);
        } else {
            g.insert_batch(&batch);
        }
        samples.push(registry.sample());
    }
    samples
}

#[test]
fn same_seed_runs_produce_identical_sample_streams() {
    let a = run_sampled(7, 6);
    let b = run_sampled(7, 6);
    assert_eq!(a.len(), b.len());
    for (tick, (sa, sb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            deterministic_projection(sa),
            deterministic_projection(sb),
            "sample streams diverged at tick {tick}"
        );
    }
    // And the workload actually exercised the engine: structural counters
    // are live by the final sample.
    let proj = deterministic_projection(a.last().unwrap());
    let total: u64 = proj.iter().map(|(_, v)| v).sum();
    assert!(total > 0, "no structural counter moved: {proj:?}");
    let batches: u64 = proj
        .iter()
        .find(|(name, _)| name == "lsgraph_batch_apply_count")
        .map(|(_, c)| *c)
        .unwrap();
    assert_eq!(batches, 6, "one batch_apply record per round");
}

#[test]
fn different_seeds_diverge() {
    // Sanity check that the projection is not vacuously constant.
    let a = run_sampled(7, 4);
    let b = run_sampled(8, 4);
    assert_ne!(
        deterministic_projection(a.last().unwrap()),
        deterministic_projection(b.last().unwrap())
    );
}

#[test]
fn prometheus_round_trips_a_live_engine() {
    let samples = run_sampled(11, 3);
    let last = samples.last().unwrap();
    let text = last.render_prometheus();
    let parsed = parse_prometheus(&text).unwrap();
    assert_eq!(&parsed, last);
}
