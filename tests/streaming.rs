//! End-to-end streaming workflows across crates: the paper's
//! update-then-analyze alternation, snapshot isolation of the functional
//! baselines, and failure-injection cases (duplicates, self-loops,
//! nonexistent deletes, mixed insert+delete of the same edge).

use lsgraph::baselines::{AspenGraph, PacGraph};
use lsgraph::gen::{rmat, temporal_stream, Csr, RmatParams};
use lsgraph::{analytics, Config, DynamicGraph, Edge, Graph, LsGraph, MemoryFootprint};

#[test]
fn paper_throughput_loop_preserves_graph() {
    // §6.2's methodology: insert a batch, delete it, graph must be intact —
    // iterated over growing batch sizes.
    let scale = 12;
    let n = 1usize << scale;
    let base = rmat(scale, 100_000, RmatParams::paper(), 1);
    let mut g = LsGraph::from_edges(n, &base, Config::default());
    let fingerprint: Vec<Vec<u32>> = (0..64).map(|v| g.neighbors(v)).collect();
    let m = g.num_edges();
    let existing: std::collections::HashSet<u64> = base.iter().map(|e| e.key()).collect();
    for (i, bs) in [100usize, 1_000, 10_000, 100_000].iter().enumerate() {
        // Updates disjoint from the base graph, so insert+delete restores it.
        let batch: Vec<Edge> = rmat(scale, *bs, RmatParams::paper(), 50 + i as u64)
            .into_iter()
            .filter(|e| !existing.contains(&e.key()))
            .collect();
        let added = g.insert_batch(&batch);
        let removed = g.delete_batch(&batch);
        assert_eq!(added, removed, "batch {bs}");
        assert_eq!(g.num_edges(), m, "batch {bs}");
    }
    for v in 0..64u32 {
        assert_eq!(g.neighbors(v), fingerprint[v as usize]);
    }
    g.check_invariants();
}

#[test]
fn alternating_updates_and_analytics() {
    let scale = 11;
    let n = 1usize << scale;
    let mut g = LsGraph::with_config(n, Config::default());
    let mut reference: Vec<Edge> = Vec::new();
    for round in 0..6u64 {
        let batch: Vec<Edge> = rmat(scale, 5_000, RmatParams::paper(), round)
            .iter()
            .flat_map(|e| [*e, e.reversed()])
            .collect();
        g.insert_batch(&batch);
        reference.extend_from_slice(&batch);
        // Analytics on the live graph must match a fresh CSR of the same
        // edges.
        let oracle = Csr::from_edges(n, &reference);
        let cc_live = analytics::connected_components(&g);
        let cc_ref = analytics::connected_components(&oracle);
        assert_eq!(cc_live, cc_ref, "round {round}");
        let tc_live = analytics::triangle_count(&g).triangles;
        let tc_ref = analytics::triangle_count(&oracle).triangles;
        assert_eq!(tc_live, tc_ref, "round {round}");
    }
}

#[test]
fn functional_baselines_snapshot_isolation() {
    let base = temporal_stream(500, 20_000, 0.6, 9);
    let mut aspen = AspenGraph::from_edges(500, &base);
    let mut pac = PacGraph::from_edges(500, &base);
    let aspen_snap = aspen.snapshot();
    let pac_snap = pac.snapshot();
    let before_a: Vec<Vec<u32>> = (0..500).map(|v| aspen.neighbors(v)).collect();
    let before_p: Vec<Vec<u32>> = (0..500).map(|v| pac.neighbors(v)).collect();
    let batch = temporal_stream(500, 5_000, 0.6, 10);
    aspen.insert_batch(&batch);
    pac.insert_batch(&batch);
    for v in 0..500u32 {
        assert_eq!(aspen_snap.neighbors(v), before_a[v as usize], "aspen {v}");
        assert_eq!(pac_snap.neighbors(v), before_p[v as usize], "pac {v}");
    }
    assert!(aspen.num_edges() >= aspen_snap.num_edges());
}

#[test]
fn hostile_batches_are_handled() {
    let mut g = LsGraph::new(4);
    // Duplicates, self loops, and both orientations in one batch.
    let batch = [
        Edge::new(1, 1),
        Edge::new(1, 2),
        Edge::new(1, 2),
        Edge::new(2, 1),
        Edge::new(3, 0),
        Edge::new(3, 0),
    ];
    assert_eq!(g.insert_batch(&batch), 4); // (1,1), (1,2), (2,1), (3,0)
    assert!(g.has_edge(1, 1), "self loops are legal edges");
    // Deleting edges that do not exist is a no-op.
    assert_eq!(g.delete_batch(&[Edge::new(0, 1), Edge::new(9, 9)]), 0);
    // Insert+delete of the same edge across two batches round-trips.
    assert_eq!(g.delete_batch(&batch), 4);
    assert_eq!(g.num_edges(), 0);
    g.check_invariants();
}

#[test]
fn empty_and_single_vertex_graphs() {
    let mut g = LsGraph::new(0);
    assert_eq!(g.num_vertices(), 0);
    assert_eq!(g.insert_batch(&[]), 0);
    // Inserting into an empty-table graph grows it.
    assert_eq!(g.insert_batch(&[Edge::new(0, 0)]), 1);
    assert_eq!(g.num_vertices(), 1);
    let pr = analytics::pagerank(&g, 5, 0.85);
    assert_eq!(pr.len(), 1);
    let parents = analytics::bfs(&g, 0);
    assert_eq!(parents, vec![0]);
}

#[test]
fn heavy_skew_single_hub() {
    // One vertex receives every edge: exercises the full tier ladder and
    // sorted iteration at high degree.
    let mut g = LsGraph::with_config(2, Config::default());
    let batch: Vec<Edge> = (0..50_000u32).map(|i| Edge::new(0, i)).collect();
    assert_eq!(g.insert_batch(&batch), 50_000);
    assert_eq!(g.degree(0), 50_000);
    let ns = g.neighbors(0);
    assert_eq!(ns.len(), 50_000);
    assert!(ns.windows(2).all(|w| w[0] < w[1]));
    g.check_invariants();
    // Footprint stays linear in the edge count. Ascending inserts are the
    // learned layout's worst case (new keys funnel into the tail block's
    // child until the 2x retrain), so allow generous — but linear — slack.
    let fp = g.footprint();
    assert!(fp.total() < 50_000 * 4 * 30, "footprint {}", fp.total());
    assert_eq!(g.delete_batch(&batch), 50_000);
    assert_eq!(g.num_edges(), 0);
    g.check_invariants();
}

#[test]
fn ablation_configs_produce_identical_graphs() {
    use lsgraph::{HighDegreeStore, LiaSearch, MediumStore};
    let scale = 11;
    let n = 1usize << scale;
    let base = rmat(scale, 60_000, RmatParams::paper(), 77);
    let configs = [
        Config::default(),
        Config {
            medium: MediumStore::Pma,
            ..Config::default()
        },
        Config {
            high: HighDegreeStore::RiaOnly,
            ..Config::default()
        },
        Config {
            lia_search: LiaSearch::Binary,
            ..Config::default()
        },
    ];
    let reference = LsGraph::from_edges(n, &base, configs[0]);
    let existing: std::collections::HashSet<u64> = base.iter().map(|e| e.key()).collect();
    // Update batch disjoint from the base so insert+delete round-trips.
    let batch: Vec<Edge> = rmat(scale, 20_000, RmatParams::paper(), 78)
        .into_iter()
        .filter(|e| !existing.contains(&e.key()))
        .collect();
    for cfg in &configs[1..] {
        let mut g = LsGraph::from_edges(n, &base, *cfg);
        g.insert_batch(&batch);
        g.delete_batch(&batch);
        g.check_invariants();
        assert_eq!(g.num_edges(), reference.num_edges(), "{cfg:?}");
        for v in 0..n as u32 {
            assert_eq!(g.neighbors(v), reference.neighbors(v), "{cfg:?} vertex {v}");
        }
    }
}

#[test]
fn footprint_comparison_shape_matches_table3() {
    use lsgraph::baselines::TerraceGraph;
    let scale = 12;
    let n = 1usize << scale;
    let base: Vec<Edge> = rmat(scale, 200_000, RmatParams::paper(), 4)
        .iter()
        .flat_map(|e| [*e, e.reversed()])
        .collect();
    let ls = LsGraph::from_edges(n, &base, Config::default());
    let terrace = TerraceGraph::from_edges(n, &base);
    // Table 3's shape: Terrace uses substantially more memory than LSGraph
    // (its PMA runs at 4-8x amplification vs α = 1.2), and LSGraph's index
    // overhead is a small fraction.
    assert!(
        terrace.footprint().total() as f64 > ls.footprint().total() as f64 * 1.3,
        "terrace {} vs lsgraph {}",
        terrace.footprint().total(),
        ls.footprint().total()
    );
    assert!(
        ls.index_overhead() < 0.25,
        "index overhead {}",
        ls.index_overhead()
    );
}
