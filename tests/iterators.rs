//! Lazy neighbor iteration across the stack: iterator results must match
//! callback traversal on every tier, and the streaming triangle count must
//! agree with the materialized kernel on a live engine.

use lsgraph::analytics::{triangle_count, triangle_count_streaming};
use lsgraph::gen::{rmat, RmatParams};
use lsgraph::{Config, DynamicGraph, Edge, Graph, IterableGraph, LsGraph};

#[test]
fn neighbor_iter_matches_for_each_on_every_tier() {
    let cfg = Config {
        m: 256,
        ..Config::default()
    };
    let mut g = LsGraph::with_config(5, cfg);
    // Vertex 0: inline; 1: array; 2: RIA; 3: HITree; 4: empty.
    for (v, d) in [(0u32, 5u32), (1, 40), (2, 200), (3, 2_000)] {
        let batch: Vec<Edge> = (0..d).map(|i| Edge::new(v, i * 2 + 1)).collect();
        g.insert_batch(&batch);
    }
    for v in 0..5u32 {
        let via_iter: Vec<u32> = g.neighbor_iter(v).collect();
        assert_eq!(via_iter, g.neighbors(v), "vertex {v}");
    }
}

#[test]
fn neighbor_iter_under_pma_ablation() {
    use lsgraph::MediumStore;
    let cfg = Config {
        m: 512,
        medium: MediumStore::Pma,
        ..Config::default()
    };
    let mut g = LsGraph::with_config(2, cfg);
    let batch: Vec<Edge> = (0..300u32).map(|i| Edge::new(0, i * 3)).collect();
    g.insert_batch(&batch);
    let via_iter: Vec<u32> = g.neighbor_iter(0).collect();
    assert_eq!(via_iter, g.neighbors(0));
}

#[test]
fn streaming_tc_on_live_engine() {
    let scale = 11;
    let edges: Vec<Edge> = rmat(scale, 40_000, RmatParams::paper(), 9)
        .iter()
        .flat_map(|e| [*e, e.reversed()])
        .collect();
    let mut g = LsGraph::from_edges(
        1 << scale,
        &edges,
        Config {
            m: 256,
            ..Config::default()
        },
    );
    let want = triangle_count(&g).triangles;
    assert!(want > 0);
    assert_eq!(triangle_count_streaming(&g), want);
    // Still agrees after mutation.
    let batch: Vec<Edge> = rmat(scale, 10_000, RmatParams::paper(), 10)
        .iter()
        .flat_map(|e| [*e, e.reversed()])
        .collect();
    g.insert_batch(&batch);
    assert_eq!(triangle_count_streaming(&g), triangle_count(&g).triangles);
}

#[test]
fn iterator_is_sorted_on_random_mutations() {
    use rand::{rngs::SmallRng, Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(3);
    let cfg = Config {
        a: 8,
        m: 64,
        ..Config::default()
    };
    let mut g = LsGraph::with_config(4, cfg);
    for _ in 0..60 {
        let batch: Vec<Edge> = (0..200)
            .map(|_| Edge::new(rng.gen_range(0..4), rng.gen_range(0..3_000)))
            .collect();
        if rng.gen_bool(0.7) {
            g.insert_batch(&batch);
        } else {
            g.delete_batch(&batch);
        }
        for v in 0..4u32 {
            let it: Vec<u32> = g.neighbor_iter(v).collect();
            assert!(it.windows(2).all(|w| w[0] < w[1]), "vertex {v} unsorted");
            assert_eq!(it.len(), g.degree(v));
        }
    }
}
