//! Randomized differential tests: every engine behaves as an adjacency-set
//! oracle under interleaved batch streams, and the core ordered-set
//! structures behave as `BTreeSet` under random operation sequences.
//!
//! These were originally proptest properties; they are now driven by seeded
//! `SmallRng` loops (the build is offline, so the proptest crate is
//! unavailable). Each case uses a distinct fixed seed, so failures reproduce
//! exactly.

use rand::prelude::*;

use lsgraph::baselines::{AspenGraph, PacGraph, TerraceGraph};
use lsgraph::substrates::{BTreeSet32, Pma, PmaParams};
use lsgraph::{Config, DynamicGraph, Edge, Graph, HiTree, LsGraph, Ria};

const CASES: u64 = 64;

/// A batched update stream over a small id space (dense collisions on
/// purpose): 1..12 batches of 1..80 (src, dst) pairs in 0..60.
fn gen_batches(rng: &mut SmallRng) -> Vec<(bool, Vec<(u32, u32)>)> {
    let num_batches = rng.gen_range(1usize..12);
    (0..num_batches)
        .map(|_| {
            let is_insert = rng.gen_bool(0.5);
            let len = rng.gen_range(1usize..80);
            let pairs = (0..len)
                .map(|_| (rng.gen_range(0u32..60), rng.gen_range(0u32..60)))
                .collect();
            (is_insert, pairs)
        })
        .collect()
}

/// Random (insert?, key) operation sequence.
fn gen_ops(rng: &mut SmallRng, key_space: u32, min_len: usize, max_len: usize) -> Vec<(bool, u32)> {
    let len = rng.gen_range(min_len..max_len);
    (0..len)
        .map(|_| (rng.gen_bool(0.5), rng.gen_range(0u32..key_space)))
        .collect()
}

/// Applies a stream to an engine and an oracle, asserting counts and final
/// adjacency equality.
fn check_engine<G: DynamicGraph>(mut g: G, stream: &[(bool, Vec<(u32, u32)>)]) {
    let mut oracle: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); 60];
    for (is_insert, pairs) in stream {
        let batch: Vec<Edge> = pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect();
        // Dedup the way engines must: by (src, dst).
        let mut uniq = batch.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if *is_insert {
            let expect: usize = uniq
                .iter()
                .filter(|e| oracle[e.src as usize].insert(e.dst))
                .count();
            assert_eq!(g.insert_batch(&batch), expect);
        } else {
            let expect: usize = uniq
                .iter()
                .filter(|e| oracle[e.src as usize].remove(&e.dst))
                .count();
            assert_eq!(g.delete_batch(&batch), expect);
        }
    }
    let total: usize = oracle.iter().map(|s| s.len()).sum();
    assert_eq!(g.num_edges(), total);
    for v in 0..60u32 {
        assert_eq!(
            g.neighbors(v),
            oracle[v as usize].iter().copied().collect::<Vec<_>>(),
            "vertex {v}"
        );
    }
}

#[test]
fn lsgraph_matches_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x1000 + case);
        let stream = gen_batches(&mut rng);
        check_engine(LsGraph::with_config(60, Config::default()), &stream);
    }
}

#[test]
fn lsgraph_small_tiers_match_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x2000 + case);
        let stream = gen_batches(&mut rng);
        // Tiny thresholds force RIA/HITree tiers even on small degrees.
        let cfg = Config {
            a: 4,
            m: 16,
            ..Config::default()
        };
        check_engine(LsGraph::with_config(60, cfg), &stream);
    }
}

#[test]
fn terrace_matches_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x3000 + case);
        let stream = gen_batches(&mut rng);
        check_engine(TerraceGraph::new(60), &stream);
    }
}

#[test]
fn aspen_matches_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x4000 + case);
        let stream = gen_batches(&mut rng);
        check_engine(AspenGraph::new(60), &stream);
    }
}

#[test]
fn pactree_matches_oracle() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x5000 + case);
        let stream = gen_batches(&mut rng);
        check_engine(PacGraph::new(60), &stream);
    }
}

#[test]
fn ria_behaves_as_sorted_set() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x6000 + case);
        let ops = gen_ops(&mut rng, 500, 1, 400);
        let mut r = Ria::new(1.2);
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                assert_eq!(r.insert(k).inserted(), oracle.insert(k));
            } else {
                assert_eq!(r.delete(k), oracle.remove(&k));
            }
        }
        r.check_invariants();
        assert_eq!(r.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn hitree_behaves_as_sorted_set() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x7000 + case);
        let ops = gen_ops(&mut rng, 500, 1, 400);
        let cfg = Config {
            a: 8,
            m: 64,
            ..Config::default()
        };
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                assert_eq!(t.insert(k, &cfg), oracle.insert(k));
            } else {
                assert_eq!(t.delete(k, &cfg), oracle.remove(&k));
            }
        }
        t.check_invariants(&cfg);
        assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn pma_behaves_as_sorted_set() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x8000 + case);
        let ops = gen_ops(&mut rng, 500, 1, 400);
        let mut p = Pma::<u64>::with_params(PmaParams::dense());
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            let k = k as u64;
            if ins {
                assert_eq!(p.insert(k), oracle.insert(k));
            } else {
                assert_eq!(p.delete(k), oracle.remove(&k));
            }
        }
        p.check_invariants();
        assert_eq!(p.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn btree_behaves_as_sorted_set() {
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x9000 + case);
        let ops = gen_ops(&mut rng, 500, 1, 400);
        let mut t = BTreeSet32::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                assert_eq!(t.insert(k), oracle.insert(k));
            } else {
                assert_eq!(t.delete(k), oracle.remove(&k));
            }
        }
        t.check_invariants();
        assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn delta_chunk_roundtrips() {
    use lsgraph::substrates::DeltaChunk;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xA000 + case);
        let len = rng.gen_range(0usize..300);
        let mut keys: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
        // Mix in boundary values like proptest's any::<u32>() would.
        if case % 4 == 0 && !keys.is_empty() {
            keys[0] = 0;
            let last = keys.len() - 1;
            keys[last] = u32::MAX;
        }
        keys.sort_unstable();
        keys.dedup();
        let c = DeltaChunk::encode(&keys);
        assert_eq!(c.decode(), keys.clone());
        assert_eq!(c.len(), keys.len());
        for probe in keys.iter().take(20) {
            assert!(c.contains(*probe));
        }
    }
}

#[test]
fn skiplist_behaves_as_sorted_set() {
    use lsgraph::substrates::UnrolledSkipList;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xB000 + case);
        let ops = gen_ops(&mut rng, 400, 1, 500);
        let mut l = UnrolledSkipList::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                assert_eq!(l.insert(k), oracle.insert(k));
            } else {
                assert_eq!(l.delete(k), oracle.remove(&k));
            }
        }
        l.check_invariants();
        assert_eq!(l.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn ctree_and_pacset_behave_as_sorted_sets() {
    use lsgraph::baselines::{CTreeSet, PacSet};
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xC000 + case);
        let ops = gen_ops(&mut rng, 400, 1, 300);
        let mut ct = CTreeSet::new();
        let mut pt = PacSet::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                let want = oracle.insert(k);
                let cn = ct.inserted(k);
                let pn = pt.inserted(k);
                assert_eq!(cn.is_some(), want);
                assert_eq!(pn.is_some(), want);
                if let Some(n) = cn {
                    ct = n;
                }
                if let Some(n) = pn {
                    pt = n;
                }
            } else {
                let want = oracle.remove(&k);
                let cn = ct.deleted(k);
                let pn = pt.deleted(k);
                assert_eq!(cn.is_some(), want);
                assert_eq!(pn.is_some(), want);
                if let Some(n) = cn {
                    ct = n;
                }
                if let Some(n) = pn {
                    pt = n;
                }
            }
        }
        ct.check_invariants();
        pt.check_invariants();
        let want: Vec<u32> = oracle.into_iter().collect();
        assert_eq!(ct.to_vec(), want.clone());
        assert_eq!(pt.to_vec(), want);
    }
}

#[test]
fn neighbor_iter_equals_callback_traversal() {
    use lsgraph::IterableGraph;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xD000 + case);
        let stream = gen_batches(&mut rng);
        let cfg = Config {
            a: 4,
            m: 16,
            ..Config::default()
        };
        let mut g = LsGraph::with_config(60, cfg);
        for (is_insert, pairs) in &stream {
            let batch: Vec<Edge> = pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect();
            if *is_insert {
                g.insert_batch(&batch);
            } else {
                g.delete_batch(&batch);
            }
        }
        for v in 0..60u32 {
            let it: Vec<u32> = g.neighbor_iter(v).collect();
            assert_eq!(it, g.neighbors(v));
        }
    }
}

#[test]
fn extreme_keys_survive() {
    // u32 boundary values must round-trip through every tier.
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xE000 + case);
        let len = rng.gen_range(1usize..200);
        let mut keys: Vec<u32> = (0..len).map(|_| rng.gen()).collect();
        // Force boundary coverage in every case.
        for (i, b) in [0u32, 1, u32::MAX, u32::MAX - 1].into_iter().enumerate() {
            if i < keys.len() {
                keys[i] = b;
            }
        }
        let cfg = Config {
            a: 8,
            m: 32,
            ..Config::default()
        };
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for k in keys {
            assert_eq!(t.insert(k, &cfg), oracle.insert(k));
        }
        t.check_invariants(&cfg);
        assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}

#[test]
fn lsgraph_snapshots_stay_frozen_under_random_interleavings() {
    use lsgraph::GraphSnapshot;
    use std::collections::BTreeSet;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0xF000 + case);
        let cfg = Config {
            a: 4,
            m: 16,
            ..Config::default()
        };
        let mut g = LsGraph::with_config(60, cfg);
        let mut oracle: Vec<BTreeSet<u32>> = vec![Default::default(); 60];
        // Each held snapshot pairs with its frozen adjacency + edge total.
        let mut snaps: Vec<(GraphSnapshot, Vec<Vec<u32>>, usize)> = Vec::new();
        let steps = rng.gen_range(8usize..24);
        for step in 0..steps {
            match rng.gen_range(0u32..5) {
                // Batches dominate; snapshot takes and drops interleave.
                0..=2 => {
                    let is_insert = rng.gen_bool(0.6);
                    let len = rng.gen_range(1usize..60);
                    let batch: Vec<Edge> = (0..len)
                        .map(|_| Edge::new(rng.gen_range(0u32..60), rng.gen_range(0u32..60)))
                        .collect();
                    if is_insert {
                        g.insert_batch(&batch);
                    } else {
                        g.delete_batch(&batch);
                    }
                    for e in &batch {
                        if is_insert {
                            oracle[e.src as usize].insert(e.dst);
                        } else {
                            oracle[e.src as usize].remove(&e.dst);
                        }
                    }
                }
                3 => {
                    let adj: Vec<Vec<u32>> =
                        oracle.iter().map(|s| s.iter().copied().collect()).collect();
                    let m = adj.iter().map(Vec::len).sum();
                    snaps.push((g.snapshot(), adj, m));
                }
                _ => {
                    if !snaps.is_empty() {
                        let i = rng.gen_range(0..snaps.len());
                        snaps.swap_remove(i);
                        g.reclaim_epochs();
                    }
                }
            }
            // Every snapshot still alive reads exactly its frozen past.
            for (i, (snap, adj, m)) in snaps.iter().enumerate() {
                assert_eq!(snap.num_edges(), *m, "case {case} step {step} snap {i}");
                for v in 0..60u32 {
                    assert_eq!(
                        snap.neighbors(v),
                        adj[v as usize],
                        "case {case} step {step} snap {i} vertex {v}"
                    );
                }
            }
        }
        // The live view converged on the full stream.
        let total: usize = oracle.iter().map(|s| s.len()).sum();
        assert_eq!(g.num_edges(), total, "case {case}");
        for v in 0..60u32 {
            assert_eq!(
                g.neighbors(v),
                oracle[v as usize].iter().copied().collect::<Vec<_>>(),
                "case {case} vertex {v}"
            );
        }
        // Quiescence: dropping the rest drains the retired-version pool.
        snaps.clear();
        g.reclaim_epochs();
        assert_eq!(g.epoch_backlog(), 0, "case {case}");
        let s = g.stats().snapshot();
        assert_eq!(s.snapshots_retired, s.snapshots_taken, "case {case}");
        assert_eq!(s.epoch_reclaim_backlog, 0, "case {case}");
        g.check_invariants();
    }
}

#[test]
fn lsgraph_snapshot_quarantine_repair_interleavings() {
    use lsgraph::GraphSnapshot;
    use std::collections::BTreeSet;
    for case in 0..CASES {
        let mut rng = SmallRng::seed_from_u64(0x10000 + case);
        let cfg = Config {
            a: 4,
            m: 16,
            ..Config::default()
        };
        let mut g = LsGraph::with_config(60, cfg);
        let mut oracle: Vec<BTreeSet<u32>> = vec![Default::default(); 60];
        // Each snapshot freezes adjacency plus the quarantine set at flip.
        let mut snaps: Vec<(GraphSnapshot, Vec<Vec<u32>>, Vec<u32>)> = Vec::new();
        let freeze = |oracle: &[BTreeSet<u32>]| -> Vec<Vec<u32>> {
            oracle.iter().map(|s| s.iter().copied().collect()).collect()
        };
        let steps = rng.gen_range(6usize..16);
        for step in 0..steps {
            if rng.gen_bool(0.6) {
                let is_insert = rng.gen_bool(0.6);
                let len = rng.gen_range(1usize..60);
                let batch: Vec<Edge> = (0..len)
                    .map(|_| Edge::new(rng.gen_range(0u32..60), rng.gen_range(0u32..60)))
                    .collect();
                if is_insert {
                    g.insert_batch(&batch);
                } else {
                    g.delete_batch(&batch);
                }
                for e in &batch {
                    if is_insert {
                        oracle[e.src as usize].insert(e.dst);
                    } else {
                        oracle[e.src as usize].remove(&e.dst);
                    }
                }
                if rng.gen_bool(0.4) {
                    snaps.push((g.snapshot(), freeze(&oracle), Vec::new()));
                }
            } else {
                // Post-fault lifecycle on a random vertex: clear, requarantine,
                // sometimes snapshot the quarantined state, then repair with a
                // random neighbor list. A snapshot pinned mid-lifecycle must
                // keep showing the vertex quarantined and empty forever.
                let v = rng.gen_range(0u32..60);
                g.clear_vertex(v);
                g.restore_quarantine(v).unwrap();
                oracle[v as usize].clear();
                if rng.gen_bool(0.7) {
                    snaps.push((g.snapshot(), freeze(&oracle), vec![v]));
                }
                let mut fixed: Vec<u32> = (0..rng.gen_range(0usize..12))
                    .map(|_| rng.gen_range(0u32..60))
                    .collect();
                fixed.sort_unstable();
                fixed.dedup();
                assert_eq!(g.repair_vertex(v, &fixed).unwrap(), fixed.len());
                oracle[v as usize] = fixed.into_iter().collect();
            }
            for (i, (snap, adj, quar)) in snaps.iter().enumerate() {
                for v in 0..60u32 {
                    assert_eq!(
                        snap.neighbors(v),
                        adj[v as usize],
                        "case {case} step {step} snap {i} vertex {v}"
                    );
                    assert_eq!(
                        snap.is_quarantined(v),
                        quar.contains(&v),
                        "case {case} step {step} snap {i} vertex {v} quarantine"
                    );
                }
                assert_eq!(
                    &snap.quarantined_vertices(),
                    quar,
                    "case {case} step {step} snap {i}"
                );
                snap.validate_invariants()
                    .unwrap_or_else(|e| panic!("case {case} step {step} snap {i}: {e}"));
            }
        }
        // The live graph left every lifecycle repaired, matching the oracle.
        assert_eq!(g.quarantined_vertices(), Vec::<u32>::new(), "case {case}");
        for v in 0..60u32 {
            assert_eq!(
                g.neighbors(v),
                oracle[v as usize].iter().copied().collect::<Vec<_>>(),
                "case {case} vertex {v}"
            );
        }
        drop(snaps);
        g.reclaim_epochs();
        assert_eq!(g.epoch_backlog(), 0, "case {case}");
        g.check_invariants();
    }
}

/// Deletion-path property test for the incremental maintainers: under
/// seeded symmetric streams that interleave deletes (including targeted
/// disconnections of the BFS source) with snapshot take/drop churn,
/// [`IncrementalBfs`] and [`IncrementalCc`] stay equal to their
/// from-scratch kernels after every batch — and the snapshots pinned
/// mid-stream keep serving the maintainers' reads without leaking epochs.
#[test]
fn incremental_maintainers_survive_deletion_streams() {
    use lsgraph::analytics::{connected_components, IncrementalBfs, IncrementalCc};

    const N: usize = 64;
    for seed in [3u64, 29, 71, 113] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut g = LsGraph::with_config(N, Config::default());
        let mut bfs = IncrementalBfs::new(&g, 0);
        let mut cc = IncrementalCc::new(&g);
        let mut snaps = Vec::new();
        for round in 0..24 {
            // Heavier deletes than the generic streams: this is the
            // non-monotone path (recompute/rebuild) under test.
            let is_insert = rng.gen_bool(0.55);
            let batch: Vec<Edge> = if !is_insert && round % 5 == 4 {
                // Targeted: sever the source's current neighborhood, which
                // can push every distance to INF at once.
                g.neighbors(0)
                    .into_iter()
                    .flat_map(|u| [Edge::new(0, u), Edge::new(u, 0)])
                    .collect()
            } else {
                (0..rng.gen_range(1usize..24))
                    .flat_map(|_| {
                        let a = rng.gen_range(0..N as u32);
                        let b = rng.gen_range(0..N as u32);
                        [Edge::new(a, b), Edge::new(b, a)]
                    })
                    .collect()
            };
            if batch.is_empty() {
                continue;
            }
            if is_insert {
                g.insert_batch(&batch);
                bfs.on_insert(&g, &batch);
                cc.on_insert(&batch);
            } else {
                g.delete_batch(&batch);
                bfs.on_delete(&g);
                cc.on_delete(&g);
            }
            // Snapshot churn: pin the post-batch state, drop an older pin,
            // and run the maintainers' differential check against a pinned
            // snapshot too (same content as the live graph).
            snaps.push(g.snapshot());
            if snaps.len() > 3 {
                snaps.remove(0);
            }
            let snap = snaps.last().unwrap();
            let fresh = IncrementalBfs::new(snap, 0);
            assert_eq!(
                bfs.distances(),
                fresh.distances(),
                "seed {seed} round {round}: bfs"
            );
            assert_eq!(
                cc.labels(),
                connected_components(snap),
                "seed {seed} round {round}: cc"
            );
        }
        drop(snaps);
        g.reclaim_epochs();
        assert_eq!(g.epoch_backlog(), 0, "seed {seed}");
        g.check_invariants();
    }
}
