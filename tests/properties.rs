//! Property-based tests: every engine behaves as an adjacency-set oracle
//! under arbitrary interleaved batch streams, and the core ordered-set
//! structures behave as `BTreeSet` under arbitrary operation sequences.

use proptest::prelude::*;

use lsgraph::baselines::{AspenGraph, PacGraph, TerraceGraph};
use lsgraph::substrates::{BTreeSet32, Pma, PmaParams};
use lsgraph::{Config, DynamicGraph, Edge, HiTree, LsGraph, Ria};

/// A batched update stream over a small id space (dense collisions on
/// purpose).
fn batches() -> impl Strategy<Value = Vec<(bool, Vec<(u32, u32)>)>> {
    prop::collection::vec(
        (
            any::<bool>(),
            prop::collection::vec((0u32..60, 0u32..60), 1..80),
        ),
        1..12,
    )
}

/// Applies a stream to an engine and an oracle, asserting counts and final
/// adjacency equality.
fn check_engine<G: DynamicGraph>(mut g: G, stream: &[(bool, Vec<(u32, u32)>)]) {
    let mut oracle: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); 60];
    for (is_insert, pairs) in stream {
        let batch: Vec<Edge> = pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect();
        // Dedup the way engines must: by (src, dst).
        let mut uniq = batch.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if *is_insert {
            let expect: usize = uniq
                .iter()
                .filter(|e| oracle[e.src as usize].insert(e.dst))
                .count();
            assert_eq!(g.insert_batch(&batch), expect);
        } else {
            let expect: usize = uniq
                .iter()
                .filter(|e| oracle[e.src as usize].remove(&e.dst))
                .count();
            assert_eq!(g.delete_batch(&batch), expect);
        }
    }
    let total: usize = oracle.iter().map(|s| s.len()).sum();
    assert_eq!(g.num_edges(), total);
    for v in 0..60u32 {
        assert_eq!(
            g.neighbors(v),
            oracle[v as usize].iter().copied().collect::<Vec<_>>(),
            "vertex {v}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lsgraph_matches_oracle(stream in batches()) {
        check_engine(LsGraph::with_config(60, Config::default()), &stream);
    }

    #[test]
    fn lsgraph_small_tiers_match_oracle(stream in batches()) {
        // Tiny thresholds force RIA/HITree tiers even on small degrees.
        let cfg = Config { a: 4, m: 16, ..Config::default() };
        check_engine(LsGraph::with_config(60, cfg), &stream);
    }

    #[test]
    fn terrace_matches_oracle(stream in batches()) {
        check_engine(TerraceGraph::new(60), &stream);
    }

    #[test]
    fn aspen_matches_oracle(stream in batches()) {
        check_engine(AspenGraph::new(60), &stream);
    }

    #[test]
    fn pactree_matches_oracle(stream in batches()) {
        check_engine(PacGraph::new(60), &stream);
    }

    #[test]
    fn ria_behaves_as_sorted_set(ops in prop::collection::vec((any::<bool>(), 0u32..500), 1..400)) {
        let mut r = Ria::new(1.2);
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                prop_assert_eq!(r.insert(k).inserted(), oracle.insert(k));
            } else {
                prop_assert_eq!(r.delete(k), oracle.remove(&k));
            }
        }
        r.check_invariants();
        prop_assert_eq!(r.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn hitree_behaves_as_sorted_set(ops in prop::collection::vec((any::<bool>(), 0u32..500), 1..400)) {
        let cfg = Config { a: 8, m: 64, ..Config::default() };
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                prop_assert_eq!(t.insert(k, &cfg), oracle.insert(k));
            } else {
                prop_assert_eq!(t.delete(k, &cfg), oracle.remove(&k));
            }
        }
        t.check_invariants(&cfg);
        prop_assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn pma_behaves_as_sorted_set(ops in prop::collection::vec((any::<bool>(), 0u64..500), 1..400)) {
        let mut p = Pma::<u64>::with_params(PmaParams::dense());
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                prop_assert_eq!(p.insert(k), oracle.insert(k));
            } else {
                prop_assert_eq!(p.delete(k), oracle.remove(&k));
            }
        }
        p.check_invariants();
        prop_assert_eq!(p.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn btree_behaves_as_sorted_set(ops in prop::collection::vec((any::<bool>(), 0u32..500), 1..400)) {
        let mut t = BTreeSet32::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                prop_assert_eq!(t.insert(k), oracle.insert(k));
            } else {
                prop_assert_eq!(t.delete(k), oracle.remove(&k));
            }
        }
        t.check_invariants();
        prop_assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn delta_chunk_roundtrips(mut keys in prop::collection::vec(any::<u32>(), 0..300)) {
        use lsgraph::substrates::DeltaChunk;
        keys.sort_unstable();
        keys.dedup();
        let c = DeltaChunk::encode(&keys);
        prop_assert_eq!(c.decode(), keys.clone());
        prop_assert_eq!(c.len(), keys.len());
        for probe in keys.iter().take(20) {
            prop_assert!(c.contains(*probe));
        }
    }

    #[test]
    fn skiplist_behaves_as_sorted_set(ops in prop::collection::vec((any::<bool>(), 0u32..400), 1..500)) {
        use lsgraph::substrates::UnrolledSkipList;
        let mut l = UnrolledSkipList::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                prop_assert_eq!(l.insert(k), oracle.insert(k));
            } else {
                prop_assert_eq!(l.delete(k), oracle.remove(&k));
            }
        }
        l.check_invariants();
        prop_assert_eq!(l.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn ctree_and_pacset_behave_as_sorted_sets(ops in prop::collection::vec((any::<bool>(), 0u32..400), 1..300)) {
        use lsgraph::baselines::{CTreeSet, PacSet};
        let mut ct = CTreeSet::new();
        let mut pt = PacSet::new();
        let mut oracle = std::collections::BTreeSet::new();
        for (ins, k) in ops {
            if ins {
                let want = oracle.insert(k);
                let cn = ct.inserted(k);
                let pn = pt.inserted(k);
                prop_assert_eq!(cn.is_some(), want);
                prop_assert_eq!(pn.is_some(), want);
                if let Some(n) = cn { ct = n; }
                if let Some(n) = pn { pt = n; }
            } else {
                let want = oracle.remove(&k);
                let cn = ct.deleted(k);
                let pn = pt.deleted(k);
                prop_assert_eq!(cn.is_some(), want);
                prop_assert_eq!(pn.is_some(), want);
                if let Some(n) = cn { ct = n; }
                if let Some(n) = pn { pt = n; }
            }
        }
        ct.check_invariants();
        pt.check_invariants();
        let want: Vec<u32> = oracle.into_iter().collect();
        prop_assert_eq!(ct.to_vec(), want.clone());
        prop_assert_eq!(pt.to_vec(), want);
    }

    #[test]
    fn neighbor_iter_equals_callback_traversal(stream in batches()) {
        use lsgraph::IterableGraph;
        let cfg = Config { a: 4, m: 16, ..Config::default() };
        let mut g = LsGraph::with_config(60, cfg);
        for (is_insert, pairs) in &stream {
            let batch: Vec<Edge> = pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect();
            if *is_insert {
                g.insert_batch(&batch);
            } else {
                g.delete_batch(&batch);
            }
        }
        for v in 0..60u32 {
            let it: Vec<u32> = g.neighbor_iter(v).collect();
            prop_assert_eq!(it, g.neighbors(v));
        }
    }

    #[test]
    fn extreme_keys_survive(keys in prop::collection::vec(any::<u32>(), 1..200)) {
        // u32 boundary values must round-trip through every tier.
        let cfg = Config { a: 8, m: 32, ..Config::default() };
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for k in keys {
            prop_assert_eq!(t.insert(k, &cfg), oracle.insert(k));
        }
        t.check_invariants(&cfg);
        prop_assert_eq!(t.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}
