//! Differential oracle suite for the standing-query subscription layer.
//!
//! Under four seeds, a symmetric insert/delete batch stream is driven
//! through a [`SubscriptionHub`] carrying all four query kinds, and after
//! **every** batch each subscription's materialized result is asserted
//! equal to the from-scratch kernel (`StandingQuery::oracle`: fresh BFS,
//! fresh label propagation, window rescans) on the same graph state. The
//! replay invariant is also checked: applying every polled [`ResultDelta`]
//! to an empty map reconstructs the final result exactly.
//!
//! With `--features failpoints`, the suite additionally covers the
//! `subscription_deliver` kill path (one subscription's maintainer panics
//! mid-delivery: it quarantines, the survivors stay oracle-equal, restart
//! re-converges) and the lossy-commit path (`apply_run` faults quarantine
//! engine vertices mid-batch: maintainers rebuild from the delivered
//! snapshot and stay oracle-equal throughout, including across repairs).

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

use rand::{rngs::SmallRng, Rng, SeedableRng};

use lsgraph::queries::{BatchWindow, StandingQuery, SubscriptionHandle, SubscriptionHub};
use lsgraph::{BatchKind, Config, DynamicGraph, Edge, LsGraph};

const SEEDS: [u64; 4] = [11, 23, 47, 91];
const N: usize = 96;
const ROUNDS: usize = 24;
const WINDOW: usize = 3;

/// Failpoint configuration is process-global; with `--features failpoints`
/// every test in this binary serializes here so an armed site can never
/// leak into a concurrently running case.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The four standing queries under test (two traversal-backed, two
/// windowed), sharing source 0.
fn queries() -> [StandingQuery; 4] {
    [
        StandingQuery::KHop { src: 0, k: 2 },
        StandingQuery::WindowedEdgeCount { window: WINDOW },
        StandingQuery::WindowedTriangleCount { window: WINDOW },
        StandingQuery::ComponentMembership { src: 0 },
    ]
}

/// One seeded symmetric batch: inserts ~70% of the time, 1..32 pairs over
/// a small id space so deletes hit real edges and components split/merge.
fn gen_batch(rng: &mut SmallRng) -> (bool, Vec<Edge>) {
    let is_insert = rng.gen_bool(0.7);
    let len = rng.gen_range(1usize..32);
    let batch = (0..len)
        .flat_map(|_| {
            let a = rng.gen_range(0..N as u32);
            let b = rng.gen_range(0..N as u32);
            [Edge::new(a, b), Edge::new(b, a)]
        })
        .collect();
    (is_insert, batch)
}

/// Applies one generated batch to the engine and the mirror window,
/// returning its kind.
fn apply(g: &mut LsGraph, window: &mut BatchWindow, is_insert: bool, batch: &[Edge]) -> BatchKind {
    let kind = if is_insert {
        g.insert_batch(batch);
        BatchKind::Insert
    } else {
        g.delete_batch(batch);
        BatchKind::Delete
    };
    window.push(g.batch_seq(), kind, batch);
    kind
}

/// Asserts every subscription equals its from-scratch oracle on the
/// current graph state.
fn assert_oracle_equal(
    g: &LsGraph,
    window: &BatchWindow,
    subs: &[SubscriptionHandle],
    qs: &[StandingQuery],
    ctx: &str,
) {
    for (sub, q) in subs.iter().zip(qs) {
        assert_eq!(sub.result(), q.oracle(g, window), "{ctx}: {q:?}");
    }
}

#[test]
fn subscriptions_match_from_scratch_kernels_every_batch() {
    let _guard = lock();
    for seed in SEEDS {
        let mut g = LsGraph::with_config(N, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        let qs = queries();
        let subs: Vec<_> = qs.iter().map(|&q| hub.subscribe(&g, q)).collect();
        let mut window = BatchWindow::new(WINDOW);
        let mut rng = SmallRng::seed_from_u64(seed);
        for t in 0..ROUNDS {
            let (is_insert, batch) = gen_batch(&mut rng);
            apply(&mut g, &mut window, is_insert, &batch);
            hub.quiesce();
            assert_oracle_equal(&g, &window, &subs, &qs, &format!("seed {seed} batch {t}"));
        }
        // Replay invariant: the polled delta stream (bootstrap + one per
        // batch) reconstructs the final result from an empty map.
        for (sub, q) in subs.iter().zip(&qs) {
            let mut replay = BTreeMap::new();
            let deltas = sub.poll();
            assert_eq!(deltas.len(), 1 + ROUNDS, "seed {seed}: {q:?} delta count");
            for d in &deltas {
                d.apply_to(&mut replay);
            }
            assert_eq!(replay, sub.result(), "seed {seed}: {q:?} replay");
        }
        hub.shutdown();
    }
}

#[test]
fn late_subscription_skips_already_reflected_batches() {
    // Registering mid-stream must not double-apply batches that are queued
    // but already reflected in the registration state.
    let _guard = lock();
    for seed in SEEDS {
        let mut g = LsGraph::with_config(N, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        // An early subscriber keeps the hook live so batches queue up.
        let early = hub.subscribe(&g, StandingQuery::KHop { src: 0, k: 2 });
        let mut window = BatchWindow::new(WINDOW);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xA5A5);
        for _ in 0..4 {
            let (is_insert, batch) = gen_batch(&mut rng);
            apply(&mut g, &mut window, is_insert, &batch);
        }
        hub.pause();
        let (is_insert, batch) = gen_batch(&mut rng);
        apply(&mut g, &mut window, is_insert, &batch);
        // Subscribed while that batch is still queued: its effect is in the
        // registration snapshot, so delivery must skip it.
        let late = hub.subscribe(&g, StandingQuery::ComponentMembership { src: 0 });
        hub.resume();
        hub.quiesce();
        let q = StandingQuery::ComponentMembership { src: 0 };
        assert_eq!(late.result(), q.oracle(&g, &window), "seed {seed}");
        let deltas = late.poll();
        assert_eq!(
            deltas.len(),
            1,
            "seed {seed}: bootstrap only, no double-apply"
        );
        drop(early);
        hub.shutdown();
    }
}

#[cfg(feature = "failpoints")]
mod kill_path {
    use super::*;
    use lsgraph::Graph;
    use lsgraph_api::failpoints::{self, FailMode};
    use std::sync::Once;

    /// Suppresses the default panic-hook spew for intentional failpoint
    /// panics (they are caught by the delivery worker's `catch_unwind`).
    fn quiet_failpoint_panics() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let is_failpoint = info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains("failpoint"))
                    || info
                        .payload()
                        .downcast_ref::<&str>()
                        .is_some_and(|s| s.contains("failpoint"));
                if !is_failpoint {
                    prev(info);
                }
            }));
        });
    }

    /// `subscription_deliver` is evaluated once per live subscription per
    /// batch, in registration order, so `Nth(k)` deterministically kills
    /// the k-th registered subscription on the next delivered batch.
    #[test]
    fn killed_subscription_quarantines_survivors_stay_oracle_equal() {
        let _guard = lock();
        quiet_failpoint_panics();
        for seed in SEEDS {
            failpoints::reset();
            let mut g = LsGraph::with_config(N, Config::default());
            let hub = SubscriptionHub::attach(&mut g);
            let qs = queries();
            let subs: Vec<_> = qs.iter().map(|&q| hub.subscribe(&g, q)).collect();
            let mut window = BatchWindow::new(WINDOW);
            let mut rng = SmallRng::seed_from_u64(seed);

            // Warm up, then kill the first registered subscription (KHop)
            // on the next delivered batch.
            for _ in 0..4 {
                let (is_insert, batch) = gen_batch(&mut rng);
                apply(&mut g, &mut window, is_insert, &batch);
            }
            hub.quiesce();
            let frozen = subs[0].result();
            hub.pause();
            failpoints::configure("subscription_deliver", FailMode::Nth(1));
            let (is_insert, batch) = gen_batch(&mut rng);
            apply(&mut g, &mut window, is_insert, &batch);
            hub.resume();
            hub.quiesce();
            assert_eq!(failpoints::fired("subscription_deliver"), 1);
            failpoints::configure("subscription_deliver", FailMode::Off);

            assert!(subs[0].is_quarantined(), "seed {seed}: KHop killed");
            assert!(
                subs[1..].iter().all(|s| !s.is_quarantined()),
                "seed {seed}: blast radius is one subscription"
            );
            let panics = g.struct_stats().unwrap().subscription_panics;
            assert_eq!(panics, 1, "seed {seed}");

            // Survivors keep tracking the oracle across further batches;
            // the quarantined result stays frozen at its pre-kill value.
            for t in 0..6 {
                let (is_insert, batch) = gen_batch(&mut rng);
                apply(&mut g, &mut window, is_insert, &batch);
                hub.quiesce();
                assert_oracle_equal(
                    &g,
                    &window,
                    &subs[1..],
                    &qs[1..],
                    &format!("seed {seed} post-kill batch {t}"),
                );
                assert_eq!(subs[0].result(), frozen, "seed {seed}: frozen while dead");
            }

            // Restart re-materializes from the current state and emits one
            // catch-up delta; from then on it tracks the oracle again.
            assert!(subs[0].restart(&g), "seed {seed}: restart accepted");
            assert!(!subs[0].is_quarantined());
            assert_eq!(subs[0].result(), qs[0].oracle(&g, &window), "seed {seed}");
            for t in 0..4 {
                let (is_insert, batch) = gen_batch(&mut rng);
                apply(&mut g, &mut window, is_insert, &batch);
                hub.quiesce();
                assert_oracle_equal(
                    &g,
                    &window,
                    &subs,
                    &qs,
                    &format!("seed {seed} post-restart batch {t}"),
                );
            }
            // Replay still reconstructs: the catch-up delta re-bases the
            // stream over the kill gap.
            let mut replay = BTreeMap::new();
            for d in subs[0].poll() {
                d.apply_to(&mut replay);
            }
            assert_eq!(replay, subs[0].result(), "seed {seed}: replay across kill");
            hub.shutdown();
        }
        failpoints::reset();
    }

    /// A restarted *windowed* subscription begins with an empty window: its
    /// oracle is evaluated against a fresh mirror window from the restart
    /// point onward.
    #[test]
    fn windowed_restart_begins_with_empty_window() {
        let _guard = lock();
        quiet_failpoint_panics();
        for seed in SEEDS {
            failpoints::reset();
            let mut g = LsGraph::with_config(N, Config::default());
            let hub = SubscriptionHub::attach(&mut g);
            let q = StandingQuery::WindowedEdgeCount { window: WINDOW };
            let sub = hub.subscribe(&g, q);
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5A5A);
            let mut window = BatchWindow::new(WINDOW);
            for _ in 0..4 {
                let (is_insert, batch) = gen_batch(&mut rng);
                apply(&mut g, &mut window, is_insert, &batch);
            }
            hub.pause();
            failpoints::configure("subscription_deliver", FailMode::Nth(1));
            let (is_insert, batch) = gen_batch(&mut rng);
            apply(&mut g, &mut window, is_insert, &batch);
            hub.resume();
            hub.quiesce();
            failpoints::configure("subscription_deliver", FailMode::Off);
            assert!(sub.is_quarantined(), "seed {seed}");

            assert!(sub.restart(&g));
            // Restart drops window history: the mirror starts empty too.
            let mut window = BatchWindow::new(WINDOW);
            assert_eq!(
                sub.result(),
                q.oracle(&g, &window),
                "seed {seed}: empty window"
            );
            for t in 0..5 {
                let (is_insert, batch) = gen_batch(&mut rng);
                apply(&mut g, &mut window, is_insert, &batch);
                hub.quiesce();
                assert_eq!(
                    sub.result(),
                    q.oracle(&g, &window),
                    "seed {seed} post-restart batch {t}"
                );
            }
            hub.shutdown();
        }
        failpoints::reset();
    }

    /// Lossy commits (engine vertices quarantined mid-batch by `apply_run`
    /// faults) switch delivery to a full refresh from the snapshot, so
    /// subscriptions stay correct while the engine degrades and recovers.
    ///
    /// Protocol per round: one armed batch (may quarantine vertices), then
    /// — disarmed — `repair_vertex` restores the intended adjacency, and a
    /// symmetric delete batch forces the traversal maintainers through
    /// their full-recompute path so the out-of-band repair (which no hook
    /// announces) is absorbed before the oracle comparison.
    #[test]
    fn lossy_commits_keep_subscriptions_oracle_equal() {
        let _guard = lock();
        quiet_failpoint_panics();
        for seed in SEEDS {
            failpoints::reset();
            let mut g = LsGraph::with_config(N, Config::default());
            // Intended adjacency: every batch fully applied, no faults.
            let mut shadow: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); N];
            let hub = SubscriptionHub::attach(&mut g);
            let qs = queries();
            let subs: Vec<_> = qs.iter().map(|&q| hub.subscribe(&g, q)).collect();
            let mut window = BatchWindow::new(WINDOW);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut saw_lossy = false;
            for t in 0..12u64 {
                failpoints::configure(
                    "apply_run",
                    FailMode::Probability {
                        p: 0.08,
                        seed: seed ^ 0xBEEF ^ t,
                    },
                );
                let (is_insert, batch) = gen_batch(&mut rng);
                for e in &batch {
                    if is_insert {
                        shadow[e.src as usize].insert(e.dst);
                    } else {
                        shadow[e.src as usize].remove(&e.dst);
                    }
                }
                apply(&mut g, &mut window, is_insert, &batch);
                // Disarm before repairing: the repair must not be faulted.
                failpoints::configure("apply_run", FailMode::Off);
                let quarantined: Vec<u32> =
                    (0..N as u32).filter(|&v| g.is_quarantined(v)).collect();
                saw_lossy |= !quarantined.is_empty();
                for v in quarantined {
                    let ns: Vec<u32> = shadow[v as usize].iter().copied().collect();
                    g.repair_vertex(v, &ns).unwrap();
                }
                // Reconvergence batch: a symmetric delete routes KHop and
                // Membership through recompute/rebuild on the repaired
                // graph; the windowed results are exact at every delivery.
                let a = rng.gen_range(0..N as u32);
                let b = rng.gen_range(0..N as u32);
                let heal = [Edge::new(a, b), Edge::new(b, a)];
                for e in &heal {
                    shadow[e.src as usize].remove(&e.dst);
                }
                apply(&mut g, &mut window, false, &heal);
                hub.quiesce();
                assert_oracle_equal(
                    &g,
                    &window,
                    &subs,
                    &qs,
                    &format!("seed {seed} lossy round {t}"),
                );
                // After repair + reconvergence the engine holds exactly the
                // intended adjacency.
                for v in 0..N as u32 {
                    assert_eq!(
                        g.neighbors(v),
                        shadow[v as usize].iter().copied().collect::<Vec<_>>(),
                        "seed {seed} round {t}: vertex {v} after repair"
                    );
                }
            }
            assert_eq!(g.struct_stats().unwrap().subscription_panics, 0);
            if saw_lossy {
                assert!(
                    g.struct_stats().unwrap().vertices_repaired > 0,
                    "seed {seed}: repairs recorded"
                );
            }
            hub.shutdown();
        }
        failpoints::reset();
    }
}
