//! Extended analytics over live engines: k-core, incremental BFS, and the
//! full kernel family on the LSGraph engine itself (not just the CSR
//! oracle).

use lsgraph::analytics::{self, IncrementalBfs};
use lsgraph::baselines::{AspenGraph, PacGraph, TerraceGraph};
use lsgraph::gen::{rmat, Csr, RmatParams};
use lsgraph::{Config, DynamicGraph, Edge, Graph, LsGraph};

const SCALE: u32 = 11;
const N: usize = 1 << SCALE;

fn sym(edges: &[Edge]) -> Vec<Edge> {
    edges.iter().flat_map(|e| [*e, e.reversed()]).collect()
}

#[test]
fn kcore_agrees_across_engines() {
    let edges = sym(&rmat(SCALE, 30_000, RmatParams::paper(), 21));
    let oracle = Csr::from_edges(N, &edges);
    let want = analytics::kcore(&oracle);
    assert!(
        *want.iter().max().expect("vertices") >= 2,
        "workload too sparse"
    );
    let ls = LsGraph::from_edges(N, &edges, Config::default());
    let tr = TerraceGraph::from_edges(N, &edges);
    let asp = AspenGraph::from_edges(N, &edges);
    let pac = PacGraph::from_edges(N, &edges);
    assert_eq!(analytics::kcore(&ls), want, "LSGraph");
    assert_eq!(analytics::kcore(&tr), want, "Terrace");
    assert_eq!(analytics::kcore(&asp), want, "Aspen");
    assert_eq!(analytics::kcore(&pac), want, "PaC-tree");
    assert_eq!(
        analytics::degeneracy(&ls),
        *want.iter().max().expect("nonempty")
    );
}

#[test]
fn incremental_bfs_tracks_live_lsgraph() {
    let base = sym(&rmat(SCALE, 15_000, RmatParams::paper(), 22));
    let mut g = LsGraph::from_edges(N, &base, Config::default());
    let src = (0..N as u32)
        .max_by_key(|&v| g.degree(v))
        .expect("vertices");
    let mut inc = IncrementalBfs::new(&g, src);
    for round in 0..6u64 {
        let batch = sym(&rmat(SCALE, 4_000, RmatParams::paper(), 30 + round));
        g.insert_batch(&batch);
        inc.on_insert(&g, &batch);
        let fresh = IncrementalBfs::new(&g, src);
        assert_eq!(inc.distances(), fresh.distances(), "round {round}");
    }
    // A deletion round falls back to recomputation.
    let del = sym(&rmat(SCALE, 4_000, RmatParams::paper(), 30));
    g.delete_batch(&del);
    inc.on_delete(&g);
    let fresh = IncrementalBfs::new(&g, src);
    assert_eq!(inc.distances(), fresh.distances());
}

#[test]
fn full_kernel_family_runs_on_updated_engine() {
    // Smoke the whole kernel family on a graph that has been mutated past
    // its bulk-loaded shape (tier transitions included).
    let mut g = LsGraph::from_edges(N, &sym(&rmat(SCALE, 10_000, RmatParams::paper(), 23)), {
        Config {
            m: 256,
            ..Config::default()
        }
    });
    for round in 0..4u64 {
        g.insert_batch(&sym(&rmat(SCALE, 8_000, RmatParams::paper(), 40 + round)));
    }
    g.check_invariants();
    let src = (0..N as u32)
        .max_by_key(|&v| g.degree(v))
        .expect("vertices");
    let parents = analytics::bfs(&g, src);
    assert_eq!(parents[src as usize], src);
    let pr = analytics::pagerank(&g, 10, 0.85);
    let mass: f64 = pr.iter().sum();
    assert!((mass - 1.0).abs() < 1e-6, "PR mass {mass}");
    let cc = analytics::connected_components(&g);
    assert_eq!(cc.len(), g.num_vertices());
    let tc = analytics::triangle_count(&g);
    assert!(tc.triangles > 0);
    let bc = analytics::betweenness(&g, src);
    assert!(bc.iter().all(|&d| d >= 0.0));
    let core = analytics::kcore(&g);
    for (v, &c) in core.iter().enumerate() {
        assert!(c as usize <= g.degree(v as u32), "coreness bound at {v}");
    }
}

#[test]
fn tier_stats_expose_hierarchy_on_skewed_graph() {
    let edges = rmat(SCALE, 120_000, RmatParams::paper(), 24);
    // Small M: at this scale the duplicate-collapsed hub degree is a few
    // hundred, so the HITree tier needs a low threshold to be reachable.
    let cfg = Config {
        m: 128,
        ..Config::default()
    };
    let g = LsGraph::from_edges(N, &edges, cfg);
    let s = g.tier_stats();
    assert_eq!(s.total_vertices(), g.num_vertices());
    assert_eq!(s.inline_edges + s.spill_edges, g.num_edges());
    assert!(
        s.hitree_vertices > 0,
        "rmat head should reach HITree: {s:?}"
    );
    assert!(
        s.inline_vertices > s.hitree_vertices,
        "tail should dominate: {s:?}"
    );
    // The heaviest vertex must be in the top tier.
    let hub = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .expect("vertices");
    assert_eq!(g.tier(hub), lsgraph::Tier::HiTree);
}
