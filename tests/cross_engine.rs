//! Cross-engine differential tests: all four engines (plus the CSR ground
//! truth) must agree on every read and every analytics result over the same
//! edge stream.

use lsgraph::baselines::{AspenGraph, PacGraph, TerraceGraph};
use lsgraph::gen::{rmat, Csr, RmatParams};
use lsgraph::{analytics, Config, DynamicGraph, Edge, Graph, LsGraph};

const SCALE: u32 = 11;
const N: usize = 1 << SCALE;

fn sym(edges: &[Edge]) -> Vec<Edge> {
    edges.iter().flat_map(|e| [*e, e.reversed()]).collect()
}

struct Engines {
    ls: LsGraph,
    terrace: TerraceGraph,
    aspen: AspenGraph,
    pac: PacGraph,
    oracle: Csr,
}

impl Engines {
    fn build(edges: &[Edge]) -> Self {
        Engines {
            ls: LsGraph::from_edges(N, edges, Config::default()),
            terrace: TerraceGraph::from_edges(N, edges),
            aspen: AspenGraph::from_edges(N, edges),
            pac: PacGraph::from_edges(N, edges),
            oracle: Csr::from_edges(N, edges),
        }
    }

    fn each(&self) -> [(&str, &dyn Graph); 4] {
        [
            ("LSGraph", &self.ls),
            ("Terrace", &self.terrace),
            ("Aspen", &self.aspen),
            ("PaC-tree", &self.pac),
        ]
    }
}

#[test]
fn neighbors_match_oracle_after_bulk_load() {
    let edges = sym(&rmat(SCALE, 60_000, RmatParams::paper(), 1));
    let e = Engines::build(&edges);
    for (name, g) in e.each() {
        assert_eq!(g.num_edges(), e.oracle.num_edges(), "{name}");
        for v in 0..N as u32 {
            assert_eq!(
                g.neighbors(v),
                e.oracle.neighbors_slice(v),
                "{name} vertex {v}"
            );
        }
    }
}

#[test]
fn neighbors_match_after_update_rounds() {
    let base = sym(&rmat(SCALE, 30_000, RmatParams::paper(), 2));
    let mut e = Engines::build(&base);
    let mut all = base.clone();
    // Three insert rounds and one delete round.
    let mut deleted: Vec<Edge> = Vec::new();
    for round in 0..4u64 {
        if round == 3 {
            let del = sym(&rmat(SCALE, 8_000, RmatParams::paper(), 2)); // subset of base seed
            e.ls.delete_batch(&del);
            e.terrace.delete_batch(&del);
            e.aspen.delete_batch(&del);
            e.pac.delete_batch(&del);
            deleted = del;
        } else {
            let batch = sym(&rmat(SCALE, 10_000, RmatParams::paper(), 10 + round));
            e.ls.insert_batch(&batch);
            e.terrace.insert_batch(&batch);
            e.aspen.insert_batch(&batch);
            e.pac.insert_batch(&batch);
            all.extend_from_slice(&batch);
        }
    }
    let remaining: Vec<Edge> = {
        let del: std::collections::HashSet<u64> = deleted.iter().map(|e| e.key()).collect();
        all.iter()
            .filter(|e| !del.contains(&e.key()))
            .copied()
            .collect()
    };
    let oracle = Csr::from_edges(N, &remaining);
    for (name, g) in [
        ("LSGraph", &e.ls as &dyn Graph),
        ("Terrace", &e.terrace),
        ("Aspen", &e.aspen),
        ("PaC-tree", &e.pac),
    ] {
        assert_eq!(g.num_edges(), oracle.num_edges(), "{name}");
        for v in 0..N as u32 {
            assert_eq!(
                g.neighbors(v),
                oracle.neighbors_slice(v),
                "{name} vertex {v}"
            );
        }
    }
}

#[test]
fn bfs_distances_agree() {
    let edges = sym(&rmat(SCALE, 40_000, RmatParams::paper(), 3));
    let e = Engines::build(&edges);
    let src = (0..N as u32)
        .max_by_key(|&v| e.oracle.degree(v))
        .expect("vertices");
    let want = {
        let p = analytics::bfs(&e.oracle, src);
        analytics::bfs::distances_from_parents(&e.oracle, src, &p)
    };
    for (name, g) in e.each() {
        let p = analytics::bfs(g, src);
        let d = analytics::bfs::distances_from_parents(g, src, &p);
        assert_eq!(d, want, "{name}");
    }
}

#[test]
fn connected_components_agree() {
    let edges = sym(&rmat(SCALE, 20_000, RmatParams::paper(), 4));
    let e = Engines::build(&edges);
    let want = analytics::connected_components(&e.oracle);
    for (name, g) in e.each() {
        assert_eq!(analytics::connected_components(g), want, "{name}");
    }
}

#[test]
fn pagerank_agrees_within_epsilon() {
    let edges = sym(&rmat(SCALE, 40_000, RmatParams::paper(), 5));
    let e = Engines::build(&edges);
    let want = analytics::pagerank(&e.oracle, 15, 0.85);
    for (name, g) in e.each() {
        let got = analytics::pagerank(g, 15, 0.85);
        for v in 0..N {
            assert!(
                (got[v] - want[v]).abs() < 1e-10,
                "{name} vertex {v}: {} vs {}",
                got[v],
                want[v]
            );
        }
    }
}

#[test]
fn triangle_counts_agree() {
    let edges = sym(&rmat(SCALE, 30_000, RmatParams::paper(), 6));
    let e = Engines::build(&edges);
    let want = analytics::triangle_count(&e.oracle).triangles;
    assert!(want > 0, "workload should contain triangles");
    for (name, g) in e.each() {
        assert_eq!(analytics::triangle_count(g).triangles, want, "{name}");
    }
}

#[test]
fn betweenness_agrees_within_epsilon() {
    let edges = sym(&rmat(SCALE, 25_000, RmatParams::paper(), 7));
    let e = Engines::build(&edges);
    let src = (0..N as u32)
        .max_by_key(|&v| e.oracle.degree(v))
        .expect("vertices");
    let want = analytics::betweenness(&e.oracle, src);
    for (name, g) in e.each() {
        let got = analytics::betweenness(g, src);
        for v in 0..N {
            assert!(
                (got[v] - want[v]).abs() < 1e-6 * (1.0 + want[v].abs()),
                "{name} vertex {v}: {} vs {}",
                got[v],
                want[v]
            );
        }
    }
}
