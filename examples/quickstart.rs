//! Quickstart: build a streaming graph, apply updates, run analytics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use lsgraph::{analytics, gen, Config, DynamicGraph, Edge, Graph, LsGraph, MemoryFootprint};

fn main() {
    // 1. Generate a small power-law graph with the paper's R-MAT parameters
    //    and bulk-load it (symmetrized, as the paper evaluates).
    let scale = 14; // 16k vertices
    let edges = gen::rmat(scale, 200_000, gen::RmatParams::paper(), 42);
    let undirected: Vec<Edge> = edges.iter().flat_map(|e| [*e, e.reversed()]).collect();
    let mut g = LsGraph::from_edges(1 << scale, &undirected, Config::default());
    println!(
        "loaded |V|={} |E|={} ({} MB, {:.1}% index overhead)",
        g.num_vertices(),
        g.num_edges(),
        g.footprint().total() / (1024 * 1024),
        g.index_overhead() * 100.0
    );

    // 2. Stream a batch of new edges (filtered against the base graph so
    //    the delete in step 6 restores it exactly) and analyze the result.
    let batch: Vec<Edge> = gen::rmat(scale, 50_000, gen::RmatParams::paper(), 7)
        .into_iter()
        .filter(|e| !g.has_edge(e.src, e.dst))
        .collect();
    let added = g.insert_batch_undirected(&batch);
    println!(
        "streamed {} edges ({added} new directed edges)",
        batch.len()
    );

    // 3. BFS from the highest-degree vertex.
    let hub = (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .expect("non-empty graph");
    let parents = analytics::bfs(&g, hub);
    let reached = parents.iter().filter(|&&p| p != u32::MAX).count();
    println!(
        "BFS from hub {hub} (degree {}): reached {reached} vertices",
        g.degree(hub)
    );

    // 4. PageRank and connected components on the updated snapshot.
    let pr = analytics::pagerank(&g, 10, 0.85);
    let mut top: Vec<u32> = (0..g.num_vertices() as u32).collect();
    top.sort_by(|&a, &b| pr[b as usize].total_cmp(&pr[a as usize]));
    println!("top-5 PageRank vertices: {:?}", &top[..5]);

    let cc = analytics::connected_components(&g);
    let mut labels: Vec<u32> = cc.clone();
    labels.sort_unstable();
    labels.dedup();
    println!("{} connected components", labels.len());

    // 5. Triangle counting — the set-intersection workload that motivates
    //    LSGraph's sorted, locality-friendly adjacency.
    let tc = analytics::triangle_count(&g);
    println!(
        "{} triangles in {:?} (traversal phase: {:?})",
        tc.triangles, tc.total, tc.traversal
    );

    // 6. Deleting the batch restores the original graph.
    let removed = g.delete_batch_undirected(&batch);
    assert_eq!(added, removed);
    println!("deleted the batch; back to |E|={}", g.num_edges());
}
