//! Social-network stream: the paper's motivating scenario (§1).
//!
//! New follow relationships arrive continuously with preferential
//! attachment (celebrities gain followers fastest). The engine alternates
//! ingesting timestamped batches with incremental-style analytics queries —
//! influencer ranking via PageRank and community structure via connected
//! components — exactly the update/analyze alternation streaming engines
//! are built for.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use lsgraph::{analytics, gen, Config, DynamicGraph, Graph, LsGraph};

fn main() {
    let users = 20_000;
    let total_follows = 400_000;
    // A realistic arrival stream: 70% of endpoints copy earlier interactions.
    let stream = gen::temporal_stream(users, total_follows, 0.7, 2024);

    let mut g = LsGraph::with_config(users, Config::default());
    let batch_size = 50_000;
    for (epoch, batch) in stream.chunks(batch_size).enumerate() {
        let added = g.insert_batch_undirected(batch);
        // After each epoch, answer the product questions.
        let pr = analytics::pagerank(&g, 8, 0.85);
        let influencer = (0..users as u32)
            .max_by(|&a, &b| pr[a as usize].total_cmp(&pr[b as usize]))
            .expect("non-empty");
        let cc = analytics::connected_components(&g);
        let mut labels = cc.clone();
        labels.sort_unstable();
        labels.dedup();
        let giant = {
            let mut counts = std::collections::HashMap::new();
            for &l in &cc {
                *counts.entry(l).or_insert(0usize) += 1;
            }
            counts.values().copied().max().unwrap_or(0)
        };
        println!(
            "epoch {epoch:>2}: +{added:>6} edges  |E|={:>7}  top influencer: user {influencer} \
             (degree {:>4}, score {:.5})  communities: {:>5}  giant: {:.1}%",
            g.num_edges(),
            g.degree(influencer),
            pr[influencer as usize],
            labels.len(),
            giant as f64 / users as f64 * 100.0
        );
    }

    // Account deletion: remove the top influencer's relationships.
    let influencer = (0..users as u32)
        .max_by_key(|&v| g.degree(v))
        .expect("non-empty");
    let followees = g.neighbors(influencer);
    let unfollow: Vec<lsgraph::Edge> = followees
        .iter()
        .map(|&u| lsgraph::Edge::new(influencer, u))
        .collect();
    let removed = g.delete_batch_undirected(&unfollow);
    println!(
        "\nuser {influencer} deleted their account: {} directed edges removed, degree now {}",
        removed,
        g.degree(influencer)
    );
}
