//! Streaming graph pattern mining: maintain a triangle count as batches
//! arrive (the GPM workload of paper §1/§6.3 that depends on *ordered*
//! neighbors for fast set intersection).
//!
//! ```text
//! cargo run --release --example pattern_mining
//! ```

use std::time::Instant;

use lsgraph::{analytics, gen, Config, DynamicGraph, Edge, Graph, LsGraph};

fn main() {
    let scale = 13;
    let n = 1usize << scale;
    let base = gen::rmat(scale, 150_000, gen::RmatParams::paper(), 5);
    let undirected: Vec<Edge> = base.iter().flat_map(|e| [*e, e.reversed()]).collect();
    let mut g = LsGraph::from_edges(n, &undirected, Config::default());
    println!("base graph: |V|={n} |E|={}", g.num_edges());

    let mut last = analytics::triangle_count(&g);
    println!(
        "initial triangles: {} (counted in {:?}, traversal {:.1}%)",
        last.triangles,
        last.total,
        last.traversal.as_secs_f64() / last.total.as_secs_f64() * 100.0
    );

    for round in 0..5u64 {
        let batch = gen::rmat(scale, 20_000, gen::RmatParams::paper(), 100 + round);
        let t0 = Instant::now();
        let added = g.insert_batch_undirected(&batch);
        let ingest = t0.elapsed();
        let tc = analytics::triangle_count(&g);
        println!(
            "round {round}: +{added:>6} edges in {ingest:>10.2?}  \
             triangles {} -> {} (Δ{:+})  recount {:?}",
            last.triangles,
            tc.triangles,
            tc.triangles as i64 - last.triangles as i64,
            tc.total
        );
        last = tc;
    }

    // Verify against an independent recount after deleting everything new.
    let check = analytics::triangle_count(&g);
    assert_eq!(check.triangles, last.triangles);
    println!(
        "final: {} triangles across {} edges",
        check.triangles,
        g.num_edges()
    );
}
