//! Interactive graph shell: a small REPL driving the full public API — the
//! kind of tool a downstream user builds first on top of the library.
//!
//! ```text
//! cargo run --release --example graph_shell
//! > gen rmat 14 200000        # R-MAT graph, 2^14 vertices, 200k edges
//! > insert 3 17               # add edge (3, 17) and its mirror
//! > neighbors 3
//! > bfs 3
//! > pagerank 10
//! > stats
//! > help
//! ```
//!
//! Also accepts a script on stdin (`echo "gen rmat 12 10000\nstats" | ...`).

use std::io::{self, BufRead, Write};

use lsgraph::{analytics, gen, Config, DynamicGraph, Edge, Graph, LsGraph, MemoryFootprint};

fn help() {
    println!(
        "commands:\n\
         \x20 gen rmat <scale> <edges>      generate + load an R-MAT graph\n\
         \x20 gen temporal <n> <edges>      generate a temporal stream graph\n\
         \x20 load <path>                   load a SNAP edge-list file\n\
         \x20 insert <u> <v>                insert undirected edge\n\
         \x20 delete <u> <v>                delete undirected edge\n\
         \x20 neighbors <v>                 print sorted adjacency\n\
         \x20 degree <v>                    print degree\n\
         \x20 bfs <src>                     reachable count + eccentricity\n\
         \x20 pagerank <iters>              top-5 vertices by score\n\
         \x20 components                    component count + giant size\n\
         \x20 triangles                     triangle count\n\
         \x20 kcore                         degeneracy\n\
         \x20 clustering                    average clustering coefficient\n\
         \x20 stats                         tier population + memory\n\
         \x20 help | quit"
    );
}

fn main() {
    let mut g = LsGraph::with_config(0, Config::default());
    println!("lsgraph shell — 'help' for commands");
    let stdin = io::stdin();
    loop {
        print!("> ");
        io::stdout().flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let int = |s: &&str| s.parse::<u32>().ok();
        match parts.as_slice() {
            [] => {}
            ["quit"] | ["exit"] => break,
            ["help"] => help(),
            ["gen", "rmat", sc, m] => match (sc.parse::<u32>(), m.parse::<usize>()) {
                (Ok(sc), Ok(m)) if sc <= 24 => {
                    let edges = gen::rmat(sc, m, gen::RmatParams::paper(), 42);
                    let undirected: Vec<Edge> =
                        edges.iter().flat_map(|e| [*e, e.reversed()]).collect();
                    g = LsGraph::from_edges(1 << sc, &undirected, Config::default());
                    println!("loaded |V|={} |E|={}", g.num_vertices(), g.num_edges());
                }
                _ => println!("usage: gen rmat <scale<=24> <edges>"),
            },
            ["gen", "temporal", n, m] => match (n.parse::<usize>(), m.parse::<usize>()) {
                (Ok(n), Ok(m)) if n >= 2 => {
                    let edges = gen::temporal_stream(n, m, 0.7, 42);
                    g = LsGraph::with_config(n, Config::default());
                    g.insert_batch_undirected(&edges);
                    println!("loaded |V|={} |E|={}", g.num_vertices(), g.num_edges());
                }
                _ => println!("usage: gen temporal <n>=2> <edges>"),
            },
            ["load", path] => match gen::loader::load_snap_text(std::path::Path::new(path)) {
                Ok(edges) => {
                    g = LsGraph::from_edges(0, &edges, Config::default());
                    println!("loaded |V|={} |E|={}", g.num_vertices(), g.num_edges());
                }
                Err(e) => println!("load failed: {e}"),
            },
            ["insert", u, v] => match (int(u), int(v)) {
                (Some(u), Some(v)) => {
                    let added = g.insert_batch_undirected(&[Edge::new(u, v)]);
                    println!("{added} directed edges added");
                }
                _ => println!("usage: insert <u> <v>"),
            },
            ["delete", u, v] => match (int(u), int(v)) {
                (Some(u), Some(v)) => {
                    let removed = g.delete_batch_undirected(&[Edge::new(u, v)]);
                    println!("{removed} directed edges removed");
                }
                _ => println!("usage: delete <u> <v>"),
            },
            ["neighbors", v] => match int(v) {
                Some(v) if (v as usize) < g.num_vertices() => {
                    let ns = g.neighbors(v);
                    let shown = ns.len().min(50);
                    println!(
                        "{:?}{}",
                        &ns[..shown],
                        if ns.len() > shown { " ..." } else { "" }
                    );
                }
                _ => println!("vertex out of range"),
            },
            ["degree", v] => match int(v) {
                Some(v) if (v as usize) < g.num_vertices() => println!("{}", g.degree(v)),
                _ => println!("vertex out of range"),
            },
            ["bfs", src] => match int(src) {
                Some(s) if (s as usize) < g.num_vertices() => {
                    let parents = analytics::bfs(&g, s);
                    let dist = analytics::bfs::distances_from_parents(&g, s, &parents);
                    let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
                    let ecc = dist.iter().filter(|&&d| d != u32::MAX).max().unwrap_or(&0);
                    println!("reached {reached} vertices, eccentricity {ecc}");
                }
                _ => println!("vertex out of range"),
            },
            ["pagerank", iters] => match iters.parse::<usize>() {
                Ok(iters) if g.num_vertices() > 0 => {
                    let pr = analytics::pagerank(&g, iters, 0.85);
                    let mut top: Vec<u32> = (0..g.num_vertices() as u32).collect();
                    top.sort_by(|&a, &b| pr[b as usize].total_cmp(&pr[a as usize]));
                    for &v in top.iter().take(5) {
                        println!("  v{v}: {:.6} (degree {})", pr[v as usize], g.degree(v));
                    }
                }
                _ => println!("usage: pagerank <iters> (on a non-empty graph)"),
            },
            ["components"] => {
                let cc = analytics::connected_components(&g);
                let mut counts = std::collections::HashMap::new();
                for &l in &cc {
                    *counts.entry(l).or_insert(0usize) += 1;
                }
                let giant = counts.values().copied().max().unwrap_or(0);
                println!("{} components, giant = {giant} vertices", counts.len());
            }
            ["triangles"] => {
                let tc = analytics::triangle_count(&g);
                println!("{} triangles in {:?}", tc.triangles, tc.total);
            }
            ["kcore"] => println!("degeneracy = {}", analytics::degeneracy(&g)),
            ["clustering"] => {
                println!(
                    "average clustering = {:.4}",
                    analytics::average_clustering(&g)
                )
            }
            ["stats"] => {
                let s = g.tier_stats();
                let fp = g.footprint();
                println!(
                    "tiers: inline {} | array {} | ria {} | hitree {}  (edges: {} inline / {} spill)",
                    s.inline_vertices,
                    s.array_vertices,
                    s.ria_vertices,
                    s.hitree_vertices,
                    s.inline_edges,
                    s.spill_edges
                );
                println!(
                    "memory: {:.1} MB total, {:.1}% index overhead",
                    fp.total() as f64 / (1024.0 * 1024.0),
                    fp.index_ratio() * 100.0
                );
            }
            _ => println!("unknown command; 'help' lists commands"),
        }
    }
}
