//! Incremental analytics over a live stream: maintain BFS distances from a
//! landmark vertex while batches arrive, repairing only the affected region
//! — the incremental-computation pattern the paper's §3.1 design discussion
//! targets.
//!
//! ```text
//! cargo run --release --example incremental_analytics
//! ```

use std::time::Instant;

use lsgraph::analytics::{incremental::INF, IncrementalBfs};
use lsgraph::{gen, Config, DynamicGraph, Edge, Graph, LsGraph};

fn main() {
    let n = 50_000;
    let stream = gen::temporal_stream(n, 600_000, 0.7, 11);
    let (base, live) = stream.split_at(stream.len() / 2);

    let undirected =
        |es: &[Edge]| -> Vec<Edge> { es.iter().flat_map(|e| [*e, e.reversed()]).collect() };
    let mut g = LsGraph::from_edges(n, &undirected(base), Config::default());
    let landmark = (0..n as u32)
        .max_by_key(|&v| g.degree(v))
        .expect("non-empty");
    println!(
        "base |E|={}, landmark vertex {landmark} (degree {})",
        g.num_edges(),
        g.degree(landmark)
    );

    let t0 = Instant::now();
    let mut inc = IncrementalBfs::new(&g, landmark);
    println!("initial BFS: {:?}", t0.elapsed());

    for (epoch, chunk) in live.chunks(30_000).enumerate() {
        let batch = undirected(chunk);
        let t0 = Instant::now();
        g.insert_batch(&batch);
        let ingest = t0.elapsed();

        let t0 = Instant::now();
        inc.on_insert(&g, &batch);
        let repair = t0.elapsed();

        let t0 = Instant::now();
        let fresh = IncrementalBfs::new(&g, landmark);
        let full = t0.elapsed();
        assert_eq!(inc.distances(), fresh.distances(), "repair must be exact");

        let reached = inc.distances().iter().filter(|&&d| d != INF).count();
        let ecc = inc
            .distances()
            .iter()
            .filter(|&&d| d != INF)
            .max()
            .copied()
            .unwrap_or(0);
        println!(
            "epoch {epoch}: ingest {ingest:>9.2?}  incremental repair {repair:>9.2?}  \
             (full recompute {full:>9.2?})  reached {reached}, eccentricity {ecc}"
        );
    }
}
