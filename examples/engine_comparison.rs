//! Head-to-head engine comparison on one workload — a miniature of the
//! paper's Fig. 12 + Fig. 13 story: LSGraph should win updates by a wide
//! margin and analytics by a smaller one.
//!
//! ```text
//! cargo run --release --example engine_comparison
//! ```

use std::time::Instant;

use lsgraph::baselines::{AspenGraph, PacGraph, TerraceGraph};
use lsgraph::{analytics, gen, Config, DynamicGraph, Edge, Graph, LsGraph, MemoryFootprint};

fn run(name: &str, g: &mut (impl DynamicGraph + MemoryFootprint), batch: &[Edge], src: u32) {
    let t0 = Instant::now();
    g.insert_batch(batch);
    let ins = t0.elapsed();
    let t0 = Instant::now();
    g.delete_batch(batch);
    let del = t0.elapsed();
    let t0 = Instant::now();
    let parents = analytics::bfs(g, src);
    let bfs = t0.elapsed();
    let reached = parents.iter().filter(|&&p| p != u32::MAX).count();
    println!(
        "{name:>9}: insert {:>8.1}K e/s   delete {:>8.1}K e/s   BFS {bfs:>9.2?} ({reached} reached)   {:>6} MB",
        batch.len() as f64 / ins.as_secs_f64() / 1e3,
        batch.len() as f64 / del.as_secs_f64() / 1e3,
        g.footprint().total() / (1024 * 1024)
    );
}

fn main() {
    let scale = 14;
    let n = 1usize << scale;
    let base: Vec<Edge> = gen::rmat(scale, 400_000, gen::RmatParams::paper(), 42)
        .iter()
        .flat_map(|e| [*e, e.reversed()])
        .collect();
    let batch = gen::rmat(scale, 100_000, gen::RmatParams::paper(), 9);
    println!("base |V|={n}, |E|={}, batch {}", base.len(), batch.len());

    let mut ls = LsGraph::from_edges(n, &base, Config::default());
    let src = (0..n as u32)
        .max_by_key(|&v| ls.degree(v))
        .expect("non-empty");
    run("LSGraph", &mut ls, &batch, src);
    run(
        "Terrace",
        &mut TerraceGraph::from_edges(n, &base),
        &batch,
        src,
    );
    run("Aspen", &mut AspenGraph::from_edges(n, &base), &batch, src);
    run("PaC-tree", &mut PacGraph::from_edges(n, &base), &batch, src);
}
