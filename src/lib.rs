//! LSGraph — a locality-centric high-performance streaming graph engine.
//!
//! Rust reproduction of *LSGraph: A Locality-centric High-performance
//! Streaming Graph Engine* (Qi et al., EuroSys 2024). This facade crate
//! re-exports the whole workspace:
//!
//! * [`LsGraph`] — the paper's engine (vertex blocks + RIA + HITree),
//! * [`analytics`] — Ligra-style BFS / BC / PageRank / CC / TC over any
//!   [`Graph`],
//! * [`gen`] — R-MAT / Kronecker / temporal generators and loaders,
//! * [`queries`] — standing-query subscriptions delivering per-batch
//!   [`ResultDelta`](queries::ResultDelta)s from incremental maintainers,
//! * [`baselines`] — Terrace, Aspen, and PaC-tree re-implementations,
//! * [`substrates`] — the PMA and B-tree containers the baselines build on.
//!
//! # Quick start
//!
//! ```
//! use lsgraph::{LsGraph, Config, Edge, DynamicGraph, Graph, analytics};
//!
//! // Build a graph, stream a batch, run analytics on the new snapshot.
//! let mut g = LsGraph::with_config(5, Config::default());
//! g.insert_batch_undirected(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
//! let parents = analytics::bfs(&g, 0);
//! assert_eq!(parents[3], 2);
//! g.delete_batch_undirected(&[Edge::new(2, 3)]);
//! assert_eq!(g.degree(3), 0);
//! ```
//!
//! # Standing queries
//!
//! Instead of re-running a kernel after every batch, register the query
//! once and receive an incremental delta per committed batch, delivered
//! off the writer thread:
//!
//! ```
//! use lsgraph::queries::{StandingQuery, SubscriptionHub};
//! use lsgraph::{Config, DynamicGraph, Edge, LsGraph};
//!
//! let mut g = LsGraph::with_config(5, Config::default());
//! let hub = SubscriptionHub::attach(&mut g);
//! let sub = hub.subscribe(&g, StandingQuery::KHop { src: 0, k: 2 });
//! g.insert_batch_undirected(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
//! hub.quiesce();
//! assert_eq!(sub.result().into_keys().collect::<Vec<_>>(), vec![0, 1, 2]);
//! hub.shutdown();
//! ```

pub use lsgraph_api::{
    CounterSnapshot, DynamicGraph, Edge, Footprint, Graph, IterableGraph, MemoryFootprint,
    OpCounters, Phase, PhaseTimer, SnapshotSource, StructSnapshot, StructStats, VertexId,
};
pub use lsgraph_core::{
    BatchEvent, BatchKind, BatchOutcome, Config, ConfigError, GraphSnapshot, HiTree,
    HighDegreeStore, LiaSearch, LsGraph, MediumStore, PostBatchHook, Ria, SlotOccupancy, Tier,
    TierStats,
};

/// Analytics kernels (BFS, BC, PR, CC, TC) and the `EdgeMap` framework.
pub mod analytics {
    pub use lsgraph_analytics::*;
}

/// Graph generators and dataset loaders.
pub mod gen {
    pub use lsgraph_gen::*;
}

/// Standing-query subscriptions: registered incremental queries (k-hop,
/// windowed edge/triangle counts, component membership) maintained by
/// [`IncrementalBfs`](analytics::IncrementalBfs) /
/// [`IncrementalCc`](analytics::IncrementalCc)-style maintainers and
/// delivered as per-batch result deltas off the writer thread.
pub mod queries {
    pub use lsgraph_queries::{
        BatchWindow, Maintainer, ResultDelta, StandingQuery, SubscriptionHandle, SubscriptionHub,
        SubscriptionId, SubscriptionRegistry, SubscriptionState,
    };
}

/// Live metrics: unified registry over engine counters/histograms, JSONL
/// time-series sampling, allocator gauges, and Prometheus exposition.
pub mod metrics {
    pub use lsgraph_api::metrics::*;
}

/// The baseline engines the paper compares against (plus Sortledton, which
/// §6.1 measured against PaC-tree when selecting baselines).
pub mod baselines {
    pub use lsgraph_aspen::{AspenGraph, CTreeSet};
    pub use lsgraph_pactree::{PacGraph, PacSet};
    pub use lsgraph_sortledton::SortledtonGraph;
    pub use lsgraph_terrace::TerraceGraph;
}

/// Ordered-set substrates used by the engines.
pub mod substrates {
    pub use lsgraph_aspen::DeltaChunk;
    pub use lsgraph_btree::BTreeSet32;
    pub use lsgraph_pma::{Pma, PmaGraph, PmaKey, PmaParams};
    pub use lsgraph_sortledton::UnrolledSkipList;
}
