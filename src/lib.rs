//! LSGraph — a locality-centric high-performance streaming graph engine.
//!
//! Rust reproduction of *LSGraph: A Locality-centric High-performance
//! Streaming Graph Engine* (Qi et al., EuroSys 2024). This facade crate
//! re-exports the whole workspace:
//!
//! * [`LsGraph`] — the paper's engine (vertex blocks + RIA + HITree),
//! * [`analytics`] — Ligra-style BFS / BC / PageRank / CC / TC over any
//!   [`Graph`],
//! * [`gen`] — R-MAT / Kronecker / temporal generators and loaders,
//! * [`baselines`] — Terrace, Aspen, and PaC-tree re-implementations,
//! * [`substrates`] — the PMA and B-tree containers the baselines build on.
//!
//! # Quick start
//!
//! ```
//! use lsgraph::{LsGraph, Config, Edge, DynamicGraph, Graph, analytics};
//!
//! // Build a graph, stream a batch, run analytics on the new snapshot.
//! let mut g = LsGraph::with_config(5, Config::default());
//! g.insert_batch_undirected(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
//! let parents = analytics::bfs(&g, 0);
//! assert_eq!(parents[3], 2);
//! g.delete_batch_undirected(&[Edge::new(2, 3)]);
//! assert_eq!(g.degree(3), 0);
//! ```

pub use lsgraph_api::{
    CounterSnapshot, DynamicGraph, Edge, Footprint, Graph, IterableGraph, MemoryFootprint,
    OpCounters, Phase, PhaseTimer, SnapshotSource, StructSnapshot, StructStats, VertexId,
};
pub use lsgraph_core::{
    Config, ConfigError, GraphSnapshot, HiTree, HighDegreeStore, LiaSearch, LsGraph, MediumStore,
    Ria, SlotOccupancy, Tier, TierStats,
};

/// Analytics kernels (BFS, BC, PR, CC, TC) and the `EdgeMap` framework.
pub mod analytics {
    pub use lsgraph_analytics::*;
}

/// Graph generators and dataset loaders.
pub mod gen {
    pub use lsgraph_gen::*;
}

/// Live metrics: unified registry over engine counters/histograms, JSONL
/// time-series sampling, allocator gauges, and Prometheus exposition.
pub mod metrics {
    pub use lsgraph_api::metrics::*;
}

/// The baseline engines the paper compares against (plus Sortledton, which
/// §6.1 measured against PaC-tree when selecting baselines).
pub mod baselines {
    pub use lsgraph_aspen::{AspenGraph, CTreeSet};
    pub use lsgraph_pactree::{PacGraph, PacSet};
    pub use lsgraph_sortledton::SortledtonGraph;
    pub use lsgraph_terrace::TerraceGraph;
}

/// Ordered-set substrates used by the engines.
pub mod substrates {
    pub use lsgraph_aspen::DeltaChunk;
    pub use lsgraph_btree::BTreeSet32;
    pub use lsgraph_pma::{Pma, PmaGraph, PmaKey, PmaParams};
    pub use lsgraph_sortledton::UnrolledSkipList;
}
