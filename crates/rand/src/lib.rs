//! Offline stand-in for the subset of `rand` this workspace uses:
//! `SmallRng::seed_from_u64`, `gen_range` over integer ranges, `gen_bool`,
//! and `gen::<f64>()`.
//!
//! The generator is SplitMix64 — deterministic for a given seed, fast, and
//! statistically adequate for RMAT/Chung-Lu graph generation and randomized
//! tests. It intentionally does NOT match upstream rand's SmallRng stream;
//! nothing in this workspace depends on the exact stream, only on
//! seed-determinism.

use std::ops::Range;

/// Trait for seeding a generator from a `u64`, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sample helpers, mirroring the parts of `rand::Rng` the workspace calls.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

/// Types that `gen()` can produce.
pub trait Sample {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

impl Sample for u64 {
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with `gen_range(lo..hi)`.
pub trait SampleRange: Sized {
    fn sample<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

/// Unbiased bounded sample via Lemire-style widening multiply with rejection.
fn bounded_u64<R: Rng>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
        // Rejected: retry for uniformity (vanishingly rare for small bounds).
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end - range.start) as u64;
                range.start + bounded_u64(rng, span) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: Rng>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(i32, i64, isize);

impl SampleRange for f64 {
    fn sample<R: Rng>(rng: &mut R, range: Range<f64>) -> f64 {
        range.start + rng.next_f64() * (range.end - range.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = rng.gen_range(0u32..10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit in 1000 draws");
    }

    #[test]
    fn gen_bool_rate_roughly_matches_p() {
        let mut rng = SmallRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
