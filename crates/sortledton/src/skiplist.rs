//! Unrolled skip list: sorted blocks linked at level 0 with probabilistic
//! tower links above (Sortledton's large-neighborhood structure).
//!
//! Blocks live in a slab (`Vec` + free list) and link by index, so the
//! structure owns no raw pointers; tower heights come from a deterministic
//! xorshift stream, making the shape reproducible for tests.

use lsgraph_api::{Footprint, MemoryFootprint};

/// Maximum keys per block (8 cache lines of ids, Sortledton-like).
pub const BLOCK_CAP: usize = 128;

/// Maximum tower height (enough for 4^16 blocks at p = 1/4).
const MAX_LEVEL: usize = 16;

/// Slab index sentinel: end of chain.
const NIL: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct BlockNode {
    keys: Vec<u32>,
    /// Forward pointer per level; `forward.len()` is the tower height.
    forward: Vec<u32>,
}

/// An ordered `u32` set stored as an unrolled skip list.
#[derive(Clone, Debug)]
pub struct UnrolledSkipList {
    blocks: Vec<BlockNode>,
    free: Vec<u32>,
    /// Head tower: first block at or above each level.
    head: [u32; MAX_LEVEL],
    len: usize,
    rng: u64,
}

/// A predecessor in a search path: the head tower or a block index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Pred {
    Head,
    Block(u32),
}

impl UnrolledSkipList {
    /// Creates an empty list.
    pub fn new() -> Self {
        UnrolledSkipList {
            blocks: Vec::new(),
            free: Vec::new(),
            head: [NIL; MAX_LEVEL],
            len: 0,
            rng: 0x853C_49E6_748F_EA9B,
        }
    }

    /// Builds from a sorted duplicate-free slice.
    // Tower levels index several arrays at once; a range loop is clearest.
    #[allow(clippy::needless_range_loop)]
    pub fn from_sorted(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let mut l = UnrolledSkipList::new();
        // Fill blocks at ~3/4 occupancy and splice left to right.
        let target = BLOCK_CAP * 3 / 4;
        let mut tails: [Pred; MAX_LEVEL] = [Pred::Head; MAX_LEVEL];
        for chunk in sorted.chunks(target.max(1)) {
            let h = l.random_height();
            let idx = l.alloc(chunk.to_vec(), h);
            for lev in 0..h {
                match tails[lev] {
                    Pred::Head => l.head[lev] = idx,
                    Pred::Block(p) => l.blocks[p as usize].forward[lev] = idx,
                }
                tails[lev] = Pred::Block(idx);
            }
        }
        l.len = sorted.len();
        l
    }

    /// Number of stored keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Deterministic tower height with promotion probability 1/4.
    fn random_height(&mut self) -> usize {
        // Xorshift64*.
        self.rng ^= self.rng >> 12;
        self.rng ^= self.rng << 25;
        self.rng ^= self.rng >> 27;
        let r = self.rng.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut h = 1;
        let mut bits = r;
        while h < MAX_LEVEL && bits & 3 == 0 {
            h += 1;
            bits >>= 2;
        }
        h
    }

    fn alloc(&mut self, keys: Vec<u32>, height: usize) -> u32 {
        let node = BlockNode {
            keys,
            forward: vec![NIL; height],
        };
        if let Some(idx) = self.free.pop() {
            self.blocks[idx as usize] = node;
            idx
        } else {
            self.blocks.push(node);
            (self.blocks.len() - 1) as u32
        }
    }

    #[inline]
    fn min_of(&self, idx: u32) -> u32 {
        self.blocks[idx as usize].keys[0]
    }

    #[inline]
    fn forward_of(&self, pred: Pred, level: usize) -> u32 {
        match pred {
            Pred::Head => self.head[level],
            Pred::Block(b) => {
                let node = &self.blocks[b as usize];
                if level < node.forward.len() {
                    node.forward[level]
                } else {
                    NIL
                }
            }
        }
    }

    fn set_forward(&mut self, pred: Pred, level: usize, to: u32) {
        match pred {
            Pred::Head => self.head[level] = to,
            Pred::Block(b) => self.blocks[b as usize].forward[level] = to,
        }
    }

    /// Search path: per level, the last position whose next block min is
    /// not `< bound` (i.e. predecessors under strict comparison).
    fn path_before(&self, bound: u32) -> [Pred; MAX_LEVEL] {
        let mut update = [Pred::Head; MAX_LEVEL];
        let mut cur = Pred::Head;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next = self.forward_of(cur, level);
                if next != NIL && self.min_of(next) < bound {
                    cur = Pred::Block(next);
                } else {
                    break;
                }
            }
            update[level] = cur;
        }
        update
    }

    /// The block that covers `key`: rightmost with min `<= key`, else the
    /// first block.
    fn find_block(&self, key: u32) -> Option<u32> {
        let mut cur = Pred::Head;
        for level in (0..MAX_LEVEL).rev() {
            loop {
                let next = self.forward_of(cur, level);
                if next != NIL && self.min_of(next) <= key {
                    cur = Pred::Block(next);
                } else {
                    break;
                }
            }
        }
        match cur {
            Pred::Block(b) => Some(b),
            Pred::Head => (self.head[0] != NIL).then_some(self.head[0]),
        }
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u32) -> bool {
        match self.find_block(key) {
            Some(b) => self.blocks[b as usize].keys.binary_search(&key).is_ok(),
            None => false,
        }
    }

    /// Inserts `key`; returns whether it was added.
    pub fn insert(&mut self, key: u32) -> bool {
        let Some(target) = self.find_block(key) else {
            // First block of the list.
            let h = self.random_height();
            let idx = self.alloc(vec![key], h);
            for level in 0..h {
                self.head[level] = idx;
            }
            self.len = 1;
            return true;
        };
        let block = &mut self.blocks[target as usize];
        let at = match block.keys.binary_search(&key) {
            Ok(_) => return false,
            Err(i) => i,
        };
        block.keys.insert(at, key);
        self.len += 1;
        if self.blocks[target as usize].keys.len() > BLOCK_CAP {
            self.split(target);
        }
        true
    }

    /// Splits an overflowing block, splicing the new right half in directly
    /// after it at every level of the new tower.
    #[allow(clippy::needless_range_loop)]
    fn split(&mut self, target: u32) {
        let right_keys = {
            let b = &mut self.blocks[target as usize];
            let half = b.keys.len() / 2;
            b.keys.split_off(half)
        };
        let old_min = self.min_of(target);
        let h = self.random_height();
        let new_idx = self.alloc(right_keys, h);
        let target_height = self.blocks[target as usize].forward.len();
        // Predecessors for the position just after `target`.
        let update = self.path_before(old_min.saturating_add(1));
        for level in 0..h {
            let pred = if level < target_height {
                Pred::Block(target)
            } else {
                // `target` is invisible here; splice after its last visible
                // predecessor at this level.
                update[level]
            };
            let next = self.forward_of(pred, level);
            self.set_forward(Pred::Block(new_idx), level, next);
            self.set_forward(pred, level, new_idx);
        }
    }

    /// Deletes `key`; returns whether it was present.
    #[allow(clippy::needless_range_loop)]
    pub fn delete(&mut self, key: u32) -> bool {
        let Some(target) = self.find_block(key) else {
            return false;
        };
        let b = &self.blocks[target as usize];
        let Ok(i) = b.keys.binary_search(&key) else {
            return false;
        };
        if b.keys.len() == 1 {
            // The block empties: unlink it while its minimum is still
            // probeable, then recycle the slab slot.
            let min = b.keys[0];
            let update = self.path_before(min);
            let height = self.blocks[target as usize].forward.len();
            for level in 0..height {
                if self.forward_of(update[level], level) == target {
                    let next = self.blocks[target as usize].forward[level];
                    self.set_forward(update[level], level, next);
                }
            }
            self.blocks[target as usize].keys = Vec::new();
            self.blocks[target as usize].forward = Vec::new();
            self.free.push(target);
        } else {
            self.blocks[target as usize].keys.remove(i);
        }
        self.len -= 1;
        true
    }

    /// Applies `f` in ascending order until it returns `false`; returns
    /// whether the scan completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        let mut cur = self.head[0];
        while cur != NIL {
            let node = &self.blocks[cur as usize];
            for &x in &node.keys {
                if !f(x) {
                    return false;
                }
            }
            cur = node.forward[0];
        }
        true
    }

    /// Collects all keys into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each_while(&mut |x| {
            v.push(x);
            true
        });
        v
    }

    /// Verifies ordering, tower consistency, and length accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        // Level 0: sorted, duplicate-free, no empty blocks, len matches.
        let v = self.to_vec();
        assert_eq!(v.len(), self.len, "len mismatch");
        assert!(v.windows(2).all(|w| w[0] < w[1]), "not sorted/dedup");
        let mut level0 = Vec::new();
        let mut cur = self.head[0];
        while cur != NIL {
            let node = &self.blocks[cur as usize];
            assert!(!node.keys.is_empty(), "empty block retained");
            assert!(node.keys.len() <= BLOCK_CAP + 1, "block overflow");
            level0.push(cur);
            cur = node.forward[0];
        }
        // Every upper level must be a subsequence of level 0 with increasing
        // minima.
        for level in 1..MAX_LEVEL {
            let mut cur = self.head[level];
            let mut pos = 0;
            let mut prev_min = None;
            while cur != NIL {
                while pos < level0.len() && level0[pos] != cur {
                    pos += 1;
                }
                assert!(pos < level0.len(), "level {level} node not in level 0");
                let m = self.min_of(cur);
                if let Some(p) = prev_min {
                    assert!(p < m, "level {level} minima out of order");
                }
                prev_min = Some(m);
                let node = &self.blocks[cur as usize];
                assert!(level < node.forward.len(), "node linked above its height");
                cur = node.forward[level];
            }
        }
    }
}

impl Default for UnrolledSkipList {
    fn default() -> Self {
        UnrolledSkipList::new()
    }
}

impl MemoryFootprint for UnrolledSkipList {
    fn footprint(&self) -> Footprint {
        let mut payload = 0;
        let mut index = self.free.len() * core::mem::size_of::<u32>();
        for b in &self.blocks {
            payload += b.keys.capacity() * core::mem::size_of::<u32>();
            index += b.forward.capacity() * core::mem::size_of::<u32>()
                + core::mem::size_of::<BlockNode>();
        }
        Footprint::new(payload, index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn from_sorted_roundtrip() {
        for n in [0usize, 1, BLOCK_CAP, BLOCK_CAP + 1, 10_000] {
            let v: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
            let l = UnrolledSkipList::from_sorted(&v);
            l.check_invariants();
            assert_eq!(l.to_vec(), v, "n = {n}");
        }
    }

    #[test]
    fn ascending_and_descending_inserts() {
        let mut asc = UnrolledSkipList::new();
        for k in 0..20_000u32 {
            assert!(asc.insert(k));
        }
        asc.check_invariants();
        assert_eq!(asc.to_vec(), (0..20_000).collect::<Vec<_>>());
        let mut desc = UnrolledSkipList::new();
        for k in (0..20_000u32).rev() {
            assert!(desc.insert(k));
        }
        desc.check_invariants();
        assert_eq!(desc.to_vec(), (0..20_000).collect::<Vec<_>>());
    }

    #[test]
    fn random_differential() {
        let mut rng = SmallRng::seed_from_u64(41);
        let mut l = UnrolledSkipList::new();
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..40_000 {
            let k = rng.gen_range(0..8_000u32);
            if rng.gen_bool(0.6) {
                assert_eq!(l.insert(k), oracle.insert(k));
            } else {
                assert_eq!(l.delete(k), oracle.remove(&k));
            }
        }
        l.check_invariants();
        assert_eq!(l.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
        for k in (0..8_000).step_by(11) {
            assert_eq!(l.contains(k), oracle.contains(&k));
        }
    }

    #[test]
    fn delete_everything_reuses_slab() {
        let mut l = UnrolledSkipList::from_sorted(&(0..5_000).collect::<Vec<_>>());
        for k in 0..5_000 {
            assert!(l.delete(k), "delete {k}");
        }
        assert!(l.is_empty());
        l.check_invariants();
        let slab = l.blocks.len();
        for k in 0..5_000u32 {
            l.insert(k);
        }
        l.check_invariants();
        // Refilling splits blocks at ~50% occupancy (vs 75% at bulk load),
        // so more live blocks are needed — but freed slots must be recycled
        // before the slab grows.
        assert!(
            l.blocks.len() <= slab * 2,
            "slab should be reused: {} vs {slab}",
            l.blocks.len()
        );
        assert_eq!(l.len(), 5_000);
    }

    #[test]
    fn insert_below_first_block_min() {
        let mut l = UnrolledSkipList::from_sorted(&(100..200).collect::<Vec<_>>());
        assert!(l.insert(5));
        assert!(l.contains(5));
        l.check_invariants();
        assert_eq!(l.to_vec()[0], 5);
    }

    #[test]
    fn early_exit_scan() {
        let l = UnrolledSkipList::from_sorted(&(0..1_000).collect::<Vec<_>>());
        let mut n = 0;
        assert!(!l.for_each_while(&mut |_| {
            n += 1;
            n < 7
        }));
        assert_eq!(n, 7);
    }
}
