//! Sortledton baseline (Fuchs, Margan & Giceva, VLDB'22).
//!
//! Sortledton is a universal transactional graph structure whose per-vertex
//! neighborhoods are **unrolled skip lists**: sorted blocks of edges linked
//! at level 0, with probabilistic tower links above for logarithmic search.
//! Small neighborhoods use a plain sorted vector.
//!
//! The paper (§6.1) reports choosing PaC-tree over Sortledton as a baseline
//! after measuring PaC-tree ahead by 40.56×–142.53×; the `sortledton`
//! experiment in the harness reproduces that comparison's direction. The
//! transactional machinery (versioning, locks) of the original is out of
//! scope — this reimplementation keeps only the data-structure design, which
//! is what the update/analytics costs come from.

mod skiplist;

pub use skiplist::UnrolledSkipList;

use lsgraph_api::batch::{max_vertex_id, runs_by_src, sorted_dedup_keys};
use lsgraph_api::{DynamicGraph, Edge, Footprint, Graph, MemoryFootprint, VertexId};
use rayon::prelude::*;

/// Neighborhood size above which a vector becomes an unrolled skip list
/// (Sortledton's "small vs large neighborhood" split).
pub const VECTOR_THRESHOLD: usize = 128;

/// One vertex's adjacency.
#[derive(Clone, Debug)]
enum Neighborhood {
    Small(Vec<u32>),
    Large(Box<UnrolledSkipList>),
}

impl Neighborhood {
    fn len(&self) -> usize {
        match self {
            Neighborhood::Small(v) => v.len(),
            Neighborhood::Large(l) => l.len(),
        }
    }

    fn insert(&mut self, u: u32) -> bool {
        match self {
            Neighborhood::Small(v) => match v.binary_search(&u) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, u);
                    if v.len() > VECTOR_THRESHOLD {
                        *self = Neighborhood::Large(Box::new(UnrolledSkipList::from_sorted(v)));
                    }
                    true
                }
            },
            Neighborhood::Large(l) => l.insert(u),
        }
    }

    fn delete(&mut self, u: u32) -> bool {
        let removed = match self {
            Neighborhood::Small(v) => match v.binary_search(&u) {
                Ok(i) => {
                    v.remove(i);
                    true
                }
                Err(_) => false,
            },
            Neighborhood::Large(l) => l.delete(u),
        };
        if removed {
            if let Neighborhood::Large(l) = self {
                if l.len() * 2 < VECTOR_THRESHOLD {
                    *self = Neighborhood::Small(l.to_vec());
                }
            }
        }
        removed
    }

    fn contains(&self, u: u32) -> bool {
        match self {
            Neighborhood::Small(v) => v.binary_search(&u).is_ok(),
            Neighborhood::Large(l) => l.contains(u),
        }
    }

    fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        match self {
            Neighborhood::Small(v) => {
                for &x in v {
                    if !f(x) {
                        return false;
                    }
                }
                true
            }
            Neighborhood::Large(l) => l.for_each_while(f),
        }
    }

    fn footprint(&self) -> Footprint {
        match self {
            Neighborhood::Small(v) => Footprint::new(v.capacity() * core::mem::size_of::<u32>(), 0),
            Neighborhood::Large(l) => l.footprint(),
        }
    }
}

/// The Sortledton streaming-graph baseline.
pub struct SortledtonGraph {
    vertices: Vec<Neighborhood>,
    num_edges: usize,
}

impl SortledtonGraph {
    /// Creates an empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        SortledtonGraph {
            vertices: vec![Neighborhood::Small(Vec::new()); n],
            num_edges: 0,
        }
    }

    /// Bulk-loads from an edge list in parallel.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let keys = sorted_dedup_keys(edges);
        let n = n.max(max_vertex_id(edges).map_or(0, |m| m as usize + 1));
        let mut vertices = vec![Neighborhood::Small(Vec::new()); n];
        let built: Vec<(u32, Neighborhood)> = runs_by_src(&keys)
            .par_iter()
            .map(|run| {
                let ns: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                let nb = if ns.len() > VECTOR_THRESHOLD {
                    Neighborhood::Large(Box::new(UnrolledSkipList::from_sorted(&ns)))
                } else {
                    Neighborhood::Small(ns)
                };
                (run.src, nb)
            })
            .collect();
        for (src, nb) in built {
            vertices[src as usize] = nb;
        }
        SortledtonGraph {
            vertices,
            num_edges: keys.len(),
        }
    }

    fn grow_to(&mut self, max_id: u32) {
        if max_id as usize >= self.vertices.len() {
            self.vertices
                .resize(max_id as usize + 1, Neighborhood::Small(Vec::new()));
        }
    }

    /// Verifies per-vertex invariants and edge accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        let mut total = 0;
        for (v, nb) in self.vertices.iter().enumerate() {
            let mut prev = None;
            nb.for_each_while(&mut |x| {
                if let Some(p) = prev {
                    assert!(p < x, "vertex {v}: order violation");
                }
                prev = Some(x);
                true
            });
            if let Neighborhood::Large(l) = nb {
                l.check_invariants();
            }
            total += nb.len();
        }
        assert_eq!(total, self.num_edges);
    }
}

impl Graph for SortledtonGraph {
    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.vertices[v as usize].for_each_while(&mut |x| {
            f(x);
            true
        });
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.vertices[v as usize].for_each_while(f)
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.vertices[v as usize].contains(u)
    }
}

impl DynamicGraph for SortledtonGraph {
    fn insert_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let keys = sorted_dedup_keys(batch);
        if let Some(max_id) = max_vertex_id(batch) {
            self.grow_to(max_id);
        }
        let runs = runs_by_src(&keys);
        let ptr = NbPtr(self.vertices.as_mut_ptr());
        let added: usize = runs
            .par_iter()
            .map(|run| {
                // SAFETY: runs have pairwise-distinct sources; each task owns
                // its vertex exclusively.
                let nb = unsafe { ptr.at(run.src as usize) };
                let mut n = 0;
                for &k in &keys[run.start..run.end] {
                    if nb.insert(k as u32) {
                        n += 1;
                    }
                }
                n
            })
            .sum();
        self.num_edges += added;
        added
    }

    fn delete_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let keys = sorted_dedup_keys(batch);
        let n = self.vertices.len() as u64;
        let keys: Vec<u64> = keys.into_iter().filter(|&k| (k >> 32) < n).collect();
        let runs = runs_by_src(&keys);
        let ptr = NbPtr(self.vertices.as_mut_ptr());
        let removed: usize = runs
            .par_iter()
            .map(|run| {
                // SAFETY: as in insert_batch.
                let nb = unsafe { ptr.at(run.src as usize) };
                let mut r = 0;
                for &k in &keys[run.start..run.end] {
                    if nb.delete(k as u32) {
                        r += 1;
                    }
                }
                r
            })
            .sum();
        self.num_edges -= removed;
        removed
    }
}

/// Raw pointer to the neighborhood table for disjoint per-source access.
struct NbPtr(*mut Neighborhood);
// SAFETY: disjoint-index access only; see use sites.
unsafe impl Send for NbPtr {}
// SAFETY: disjoint-index access only; see use sites.
unsafe impl Sync for NbPtr {}

impl NbPtr {
    /// # Safety
    ///
    /// `i` must be in bounds and exclusively owned by the calling task.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut Neighborhood {
        // SAFETY: bounds and exclusivity are the caller's contract.
        unsafe { &mut *self.0.add(i) }
    }
}

impl MemoryFootprint for SortledtonGraph {
    fn footprint(&self) -> Footprint {
        self.vertices
            .par_iter()
            .map(Neighborhood::footprint)
            .reduce(Footprint::default, Footprint::add)
            + Footprint::new(
                0,
                self.vertices.len() * core::mem::size_of::<Neighborhood>(),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn small_to_large_transition() {
        let mut g = SortledtonGraph::new(2);
        let batch: Vec<Edge> = (0..500u32).map(|i| Edge::new(0, i)).collect();
        assert_eq!(g.insert_batch(&batch), 500);
        assert!(matches!(g.vertices[0], Neighborhood::Large(_)));
        assert_eq!(g.neighbors(0), (0..500).collect::<Vec<_>>());
        g.check_invariants();
        // Shrink back down.
        let del: Vec<Edge> = (40..500u32).map(|i| Edge::new(0, i)).collect();
        g.delete_batch(&del);
        assert!(matches!(g.vertices[0], Neighborhood::Small(_)));
        assert_eq!(g.neighbors(0), (0..40).collect::<Vec<_>>());
        g.check_invariants();
    }

    #[test]
    fn random_differential() {
        let mut rng = SmallRng::seed_from_u64(77);
        let mut g = SortledtonGraph::new(50);
        let mut oracle: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); 50];
        for _ in 0..200 {
            let batch: Vec<Edge> = (0..100)
                .map(|_| Edge::new(rng.gen_range(0..50), rng.gen_range(0..600)))
                .collect();
            if rng.gen_bool(0.7) {
                let mut expect = 0;
                let mut uniq = batch.clone();
                uniq.sort_unstable();
                uniq.dedup();
                for e in &uniq {
                    if oracle[e.src as usize].insert(e.dst) {
                        expect += 1;
                    }
                }
                assert_eq!(g.insert_batch(&batch), expect);
            } else {
                let mut expect = 0;
                let mut uniq = batch.clone();
                uniq.sort_unstable();
                uniq.dedup();
                for e in &uniq {
                    if oracle[e.src as usize].remove(&e.dst) {
                        expect += 1;
                    }
                }
                assert_eq!(g.delete_batch(&batch), expect);
            }
        }
        g.check_invariants();
        for v in 0..50u32 {
            assert_eq!(
                g.neighbors(v),
                oracle[v as usize].iter().copied().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut rng = SmallRng::seed_from_u64(31);
        let es: Vec<Edge> = (0..30_000)
            .map(|_| Edge::new(rng.gen_range(0..20), rng.gen_range(0..10_000)))
            .collect();
        let bulk = SortledtonGraph::from_edges(10_000, &es);
        let mut inc = SortledtonGraph::new(10_000);
        inc.insert_batch(&es);
        assert_eq!(bulk.num_edges(), inc.num_edges());
        for v in 0..20u32 {
            assert_eq!(bulk.neighbors(v), inc.neighbors(v), "vertex {v}");
        }
        bulk.check_invariants();
    }
}
