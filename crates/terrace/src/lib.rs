//! Terrace baseline (Pandey et al., SIGMOD'21) re-implemented from its
//! published design, as evaluated against LSGraph in the paper.
//!
//! Terrace is a *hierarchical* container: each vertex keeps its smallest
//! neighbors inline in a cache-line vertex block; medium-degree spill edges
//! live in **one shared PMA** keyed by packed `(src, dst)`; high-degree
//! vertices (spill beyond [`HIGH_THRESHOLD`]) move their spill to a
//! per-vertex **B-tree**.
//!
//! The shared PMA is the behaviour the paper's motivation targets: batch
//! inserts into it shift edges of *other* vertices (Fig. 2), its binary
//! search is cache-unfriendly (Fig. 4), and concurrent writers contend
//! (Fig. 17 — Terrace stops scaling). This implementation applies PMA-tier
//! runs sequentially and B-tree-tier runs in parallel, mirroring that
//! contention profile, and exposes the PMA's instrumentation counters plus a
//! PMA wall-clock share so Fig. 4 can be regenerated.

use std::time::Instant;

use lsgraph_api::batch::{max_vertex_id, runs_by_src, sorted_dedup_keys, SrcRun};
use lsgraph_api::{
    CounterSnapshot, DynamicGraph, Edge, Footprint, Graph, MemoryFootprint, VertexId,
};
use lsgraph_btree::BTreeSet32;
use lsgraph_pma::{Pma, PmaParams};
use rayon::prelude::*;

/// Inline neighbors per vertex block (one cache line, as in LSGraph).
pub const INLINE_CAP: usize = 13;

/// Spill size beyond which a vertex's edges move from the shared PMA to a
/// per-vertex B-tree (Terrace's published threshold, 2^10).
pub const HIGH_THRESHOLD: usize = 1 << 10;

/// One vertex's cache-line block plus its optional high-degree B-tree.
#[derive(Clone, Debug, Default)]
struct TVertex {
    degree: u32,
    inline: [u32; INLINE_CAP],
    tree: Option<Box<BTreeSet32>>,
}

impl TVertex {
    #[inline]
    fn inline_len(&self) -> usize {
        (self.degree as usize).min(INLINE_CAP)
    }

    #[inline]
    fn inline_neighbors(&self) -> &[u32] {
        &self.inline[..self.inline_len()]
    }

    /// Spill size (edges not held inline).
    #[inline]
    fn spill_len(&self) -> usize {
        (self.degree as usize).saturating_sub(INLINE_CAP)
    }
}

/// The Terrace streaming-graph baseline.
pub struct TerraceGraph {
    vertices: Vec<TVertex>,
    /// Shared medium-degree spill storage: packed `(src, dst)` keys.
    pma: Pma<u64>,
    /// Per-vertex PMA segment offsets (PCSR keeps exactly this vertex →
    /// offset array); rebuilt lazily after updates, read during analytics.
    hints: std::sync::RwLock<Option<Vec<u32>>>,
    num_edges: usize,
    /// Nanoseconds spent inside PMA operations during updates (Fig. 4a).
    pma_nanos: u64,
    /// Nanoseconds spent inside whole update calls.
    update_nanos: u64,
}

impl TerraceGraph {
    /// Creates an empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        TerraceGraph {
            vertices: vec![TVertex::default(); n],
            pma: Pma::with_params(PmaParams::default()),
            hints: std::sync::RwLock::new(None),
            num_edges: 0,
            pma_nanos: 0,
            update_nanos: 0,
        }
    }

    /// Drops the offset cache (called by every update path).
    fn invalidate_hints(&mut self) {
        *self.hints.get_mut().expect("hints lock poisoned") = None;
    }

    /// The PMA segment at or before the one containing vertex `v`'s range,
    /// from the cached offset array (built on first use).
    fn hint_for(&self, v: u32) -> usize {
        if let Some(h) = self.hints.read().expect("hints lock poisoned").as_ref() {
            return h[v as usize] as usize;
        }
        let built = self.build_hints();
        let hint = built[v as usize] as usize;
        *self.hints.write().expect("hints lock poisoned") = Some(built);
        hint
    }

    /// Computes the vertex → segment offset array in one sweep.
    fn build_hints(&self) -> Vec<u32> {
        let firsts: Vec<(usize, u64)> = (0..self.pma.num_segments())
            .filter_map(|s| self.pma.segment_first(s).map(|k| (s, k)))
            .collect();
        let mut hints = vec![0u32; self.vertices.len()];
        if firsts.is_empty() {
            return hints;
        }
        let mut j = 0;
        for (v, h) in hints.iter_mut().enumerate() {
            let key = (v as u64) << 32;
            while j + 1 < firsts.len() && firsts[j + 1].1 <= key {
                j += 1;
            }
            // Starting a scan before the containing segment is always safe.
            *h = firsts[j].0 as u32;
        }
        hints
    }

    /// Bulk-loads from an edge list.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let keys = sorted_dedup_keys(edges);
        let n = n.max(max_vertex_id(edges).map_or(0, |m| m as usize + 1));
        let mut vertices = vec![TVertex::default(); n];
        let mut pma_keys: Vec<u64> = Vec::new();
        for run in runs_by_src(&keys) {
            let v = run.src as usize;
            let ns = &keys[run.start..run.end];
            let deg = ns.len();
            vertices[v].degree = deg as u32;
            let inline_n = deg.min(INLINE_CAP);
            for (i, &k) in ns[..inline_n].iter().enumerate() {
                vertices[v].inline[i] = k as u32;
            }
            if deg > INLINE_CAP {
                let spill = &ns[INLINE_CAP..];
                if spill.len() > HIGH_THRESHOLD {
                    let sv: Vec<u32> = spill.iter().map(|&k| k as u32).collect();
                    vertices[v].tree = Some(Box::new(BTreeSet32::from_sorted(&sv)));
                } else {
                    pma_keys.extend_from_slice(spill);
                }
            }
        }
        TerraceGraph {
            vertices,
            pma: Pma::from_sorted(&pma_keys, PmaParams::default()),
            hints: std::sync::RwLock::new(None),
            num_edges: keys.len(),
            pma_nanos: 0,
            update_nanos: 0,
        }
    }

    /// PMA instrumentation counters (Fig. 4b: search vs movement).
    pub fn pma_counters(&self) -> CounterSnapshot {
        self.pma.counters.snapshot()
    }

    /// Fraction of update wall-clock spent inside the PMA (Fig. 4a).
    pub fn pma_time_share(&self) -> f64 {
        if self.update_nanos == 0 {
            0.0
        } else {
            self.pma_nanos as f64 / self.update_nanos as f64
        }
    }

    /// Resets the Fig. 4 instrumentation.
    pub fn reset_instrumentation(&mut self) {
        self.pma_nanos = 0;
        self.update_nanos = 0;
        self.pma.counters.reset();
    }

    fn grow_to(&mut self, max_id: u32) {
        if max_id as usize >= self.vertices.len() {
            self.vertices
                .resize(max_id as usize + 1, TVertex::default());
        }
    }

    /// Inserts one spill edge for `v`, migrating PMA → B-tree when the spill
    /// crosses the high-degree threshold. Returns whether it was added.
    fn spill_insert(&mut self, v: u32, w: u32) -> bool {
        let tv = &mut self.vertices[v as usize];
        if let Some(tree) = tv.tree.as_mut() {
            return tree.insert(w);
        }
        if tv.spill_len() + 1 > HIGH_THRESHOLD {
            // Migrate this vertex's spill out of the shared PMA.
            let t0 = Instant::now();
            let from = (v as u64) << 32;
            let to = (v as u64 + 1) << 32;
            let mut spill: Vec<u32> = Vec::with_capacity(tv.spill_len());
            self.pma.for_each_range(from, to, |k| spill.push(k as u32));
            for &s in &spill {
                self.pma.delete(((v as u64) << 32) | s as u64);
            }
            self.pma_nanos += t0.elapsed().as_nanos() as u64;
            let mut tree = BTreeSet32::from_sorted(&spill);
            let added = tree.insert(w);
            self.vertices[v as usize].tree = Some(Box::new(tree));
            added
        } else {
            let t0 = Instant::now();
            let added = self.pma.insert(Edge::new(v, w).key());
            self.pma_nanos += t0.elapsed().as_nanos() as u64;
            added
        }
    }

    /// Inserts edge `(v, u)` sequentially; returns whether it was added.
    fn insert_edge(&mut self, v: u32, u: u32) -> bool {
        let tv = &mut self.vertices[v as usize];
        let n = tv.inline_len();
        if n < INLINE_CAP {
            match tv.inline[..n].binary_search(&u) {
                Ok(_) => return false,
                Err(i) => {
                    tv.inline.copy_within(i..n, i + 1);
                    tv.inline[i] = u;
                    tv.degree += 1;
                    return true;
                }
            }
        }
        match tv.inline.binary_search(&u) {
            Ok(_) => false,
            Err(i) if i < INLINE_CAP => {
                let evicted = tv.inline[INLINE_CAP - 1];
                tv.inline.copy_within(i..INLINE_CAP - 1, i + 1);
                tv.inline[i] = u;
                let added = self.spill_insert(v, evicted);
                debug_assert!(added);
                self.vertices[v as usize].degree += 1;
                true
            }
            Err(_) => {
                if self.spill_insert(v, u) {
                    self.vertices[v as usize].degree += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes and returns the smallest spill neighbor of `v`.
    fn spill_pop_min(&mut self, v: u32) -> Option<u32> {
        let tv = &mut self.vertices[v as usize];
        if let Some(tree) = tv.tree.as_mut() {
            let m = tree.pop_min();
            if tree.is_empty() {
                tv.tree = None;
            }
            return m;
        }
        let t0 = Instant::now();
        let from = (v as u64) << 32;
        let to = (v as u64 + 1) << 32;
        let mut min = None;
        self.pma.for_each_range_while(from, to, |k| {
            min = Some(k as u32);
            false
        });
        if let Some(m) = min {
            self.pma.delete(((v as u64) << 32) | m as u64);
        }
        self.pma_nanos += t0.elapsed().as_nanos() as u64;
        min
    }

    /// Deletes edge `(v, u)` sequentially; returns whether it was present.
    fn delete_edge(&mut self, v: u32, u: u32) -> bool {
        let tv = &mut self.vertices[v as usize];
        let n = tv.inline_len();
        match tv.inline[..n].binary_search(&u) {
            Ok(i) => {
                tv.inline.copy_within(i + 1..n, i);
                if tv.degree as usize > INLINE_CAP {
                    let min = self.spill_pop_min(v).expect("spill tracked by degree");
                    self.vertices[v as usize].inline[INLINE_CAP - 1] = min;
                }
                self.vertices[v as usize].degree -= 1;
                true
            }
            Err(_) => {
                let removed = if let Some(tree) = tv.tree.as_mut() {
                    let r = tree.delete(u);
                    if tree.is_empty() {
                        tv.tree = None;
                    }
                    r
                } else {
                    let t0 = Instant::now();
                    let r = self.pma.delete(Edge::new(v, u).key());
                    self.pma_nanos += t0.elapsed().as_nanos() as u64;
                    r
                };
                if removed {
                    self.vertices[v as usize].degree -= 1;
                    self.maybe_demote(v);
                }
                removed
            }
        }
    }

    /// Moves a shrunken high-degree vertex's spill back into the PMA
    /// (hysteresis at half the threshold).
    fn maybe_demote(&mut self, v: u32) {
        let tv = &self.vertices[v as usize];
        if tv.tree.is_some() && tv.spill_len() * 2 < HIGH_THRESHOLD {
            let tree = self.vertices[v as usize]
                .tree
                .take()
                .expect("checked above");
            let t0 = Instant::now();
            tree.for_each(&mut |w| {
                self.pma.insert(((v as u64) << 32) | w as u64);
            });
            self.pma_nanos += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Verifies per-vertex and PMA invariants.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        self.pma.check_invariants();
        let mut total = 0;
        for (v, tv) in self.vertices.iter().enumerate() {
            let inl = tv.inline_neighbors();
            assert!(
                inl.windows(2).all(|w| w[0] < w[1]),
                "inline unsorted at {v}"
            );
            let tree_len = tv.tree.as_ref().map_or(0, |t| t.len());
            let pma_len = if tv.tree.is_none() && tv.degree as usize > INLINE_CAP {
                self.pma.count_range((v as u64) << 32, (v as u64 + 1) << 32)
            } else {
                0
            };
            assert_eq!(
                tv.degree as usize,
                inl.len() + tree_len + pma_len,
                "degree accounting at {v}"
            );
            if let Some(t) = &tv.tree {
                t.check_invariants();
                assert!(!t.is_empty());
            }
            total += tv.degree as usize;
        }
        assert_eq!(total, self.num_edges);
    }
}

impl Graph for TerraceGraph {
    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].degree as usize
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        let tv = &self.vertices[v as usize];
        for &u in tv.inline_neighbors() {
            f(u);
        }
        if let Some(tree) = &tv.tree {
            tree.for_each(f);
        } else if tv.degree as usize > INLINE_CAP {
            self.pma.for_each_range_hinted_while(
                self.hint_for(v),
                (v as u64) << 32,
                (v as u64 + 1) << 32,
                |k| {
                    f(k as u32);
                    true
                },
            );
        }
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        let tv = &self.vertices[v as usize];
        for &u in tv.inline_neighbors() {
            if !f(u) {
                return false;
            }
        }
        if let Some(tree) = &tv.tree {
            tree.for_each_while(f)
        } else if tv.degree as usize > INLINE_CAP {
            self.pma.for_each_range_hinted_while(
                self.hint_for(v),
                (v as u64) << 32,
                (v as u64 + 1) << 32,
                |k| f(k as u32),
            )
        } else {
            true
        }
    }
}

impl DynamicGraph for TerraceGraph {
    fn insert_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let t0 = Instant::now();
        let keys = sorted_dedup_keys(batch);
        if let Some(max_id) = max_vertex_id(batch) {
            self.grow_to(max_id);
        }
        let runs = runs_by_src(&keys);
        // B-tree-tier vertices update in parallel; everything that might
        // touch the shared PMA is applied sequentially (Terrace's
        // contention profile).
        let (high, low): (Vec<&SrcRun>, Vec<&SrcRun>) = runs
            .iter()
            .partition(|r| self.vertices[r.src as usize].spill_len() > HIGH_THRESHOLD);
        let vptr = VerticesPtr(self.vertices.as_mut_ptr());
        let added_high: usize = high
            .par_iter()
            .map(|run| {
                // SAFETY: runs have pairwise-distinct sources; high-tier
                // vertices never touch the PMA or other vertices.
                let tv = unsafe { vptr.at(run.src as usize) };
                let tree = tv.tree.as_mut().expect("high tier has a tree");
                let mut n = 0;
                for &k in &keys[run.start..run.end] {
                    let u = k as u32;
                    let added = match tv.inline.binary_search(&u) {
                        Ok(_) => false,
                        Err(i) if i < INLINE_CAP => {
                            let evicted = tv.inline[INLINE_CAP - 1];
                            tv.inline.copy_within(i..INLINE_CAP - 1, i + 1);
                            tv.inline[i] = u;
                            tree.insert(evicted)
                        }
                        Err(_) => tree.insert(u),
                    };
                    if added {
                        tv.degree += 1;
                        n += 1;
                    }
                }
                n
            })
            .sum();
        let mut added = added_high;
        for run in low {
            for &k in &keys[run.start..run.end] {
                if self.insert_edge(run.src, k as u32) {
                    added += 1;
                }
            }
        }
        self.num_edges += added;
        self.invalidate_hints();
        self.update_nanos += t0.elapsed().as_nanos() as u64;
        added
    }

    fn delete_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let t0 = Instant::now();
        let keys = sorted_dedup_keys(batch);
        let n = self.vertices.len() as u64;
        let keys: Vec<u64> = keys.into_iter().filter(|&k| (k >> 32) < n).collect();
        let mut removed = 0;
        for run in runs_by_src(&keys) {
            for &k in &keys[run.start..run.end] {
                if self.delete_edge(run.src, k as u32) {
                    removed += 1;
                }
            }
        }
        self.num_edges -= removed;
        self.invalidate_hints();
        self.update_nanos += t0.elapsed().as_nanos() as u64;
        removed
    }

    fn op_counters(&self) -> Option<CounterSnapshot> {
        Some(self.pma_counters())
    }

    fn reset_instrumentation(&mut self) {
        TerraceGraph::reset_instrumentation(self);
    }
}

/// Raw pointer to the vertex table for the parallel high-tier path.
///
/// Sound for the same reason as LSGraph's table pointer: runs are keyed by
/// distinct sources, so tasks touch disjoint vertices.
struct VerticesPtr(*mut TVertex);
// SAFETY: disjoint-index access only; see type-level comment.
unsafe impl Send for VerticesPtr {}
// SAFETY: disjoint-index access only; see type-level comment.
unsafe impl Sync for VerticesPtr {}

impl VerticesPtr {
    /// Returns a mutable reference to the vertex at `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `i` is in bounds and exclusively owned by
    /// this task for the lifetime of the returned reference.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut TVertex {
        // SAFETY: bounds and exclusivity are the caller's contract.
        unsafe { &mut *self.0.add(i) }
    }
}

impl MemoryFootprint for TerraceGraph {
    fn footprint(&self) -> Footprint {
        let mut fp = Footprint::new(self.vertices.len() * core::mem::size_of::<TVertex>(), 0);
        fp += self.pma.footprint();
        for tv in &self.vertices {
            if let Some(t) = &tv.tree {
                fp += t.footprint();
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect()
    }

    #[test]
    fn basic_insert_read() {
        let mut g = TerraceGraph::new(4);
        assert_eq!(g.insert_batch(&edges(&[(0, 2), (0, 1), (1, 3)])), 3);
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert_eq!(g.degree(1), 1);
        g.check_invariants();
    }

    #[test]
    fn medium_tier_uses_pma() {
        let mut g = TerraceGraph::new(2);
        let batch: Vec<Edge> = (0..100u32).map(|i| Edge::new(0, i)).collect();
        g.insert_batch(&batch);
        assert_eq!(g.degree(0), 100);
        assert_eq!(g.neighbors(0), (0..100).collect::<Vec<_>>());
        assert!(!g.pma.is_empty(), "spill should be in the PMA");
        g.check_invariants();
    }

    #[test]
    fn high_tier_migrates_to_btree() {
        let mut g = TerraceGraph::new(2);
        let batch: Vec<Edge> = (0..3_000u32).map(|i| Edge::new(0, i)).collect();
        g.insert_batch(&batch);
        assert!(g.vertices[0].tree.is_some(), "should have migrated");
        assert_eq!(g.degree(0), 3_000);
        assert_eq!(g.neighbors(0).len(), 3_000);
        g.check_invariants();
        // Spill for this vertex must be gone from the PMA.
        assert_eq!(g.pma.count_range(0, 1 << 32), 0);
    }

    #[test]
    fn bulk_load_matches_incremental() {
        let mut rng = SmallRng::seed_from_u64(21);
        let es: Vec<Edge> = (0..30_000)
            .map(|_| Edge::new(rng.gen_range(0..40), rng.gen_range(0..5_000)))
            .collect();
        let bulk = TerraceGraph::from_edges(5_000, &es);
        let mut inc = TerraceGraph::new(5_000);
        for chunk in es.chunks(1_111) {
            inc.insert_batch(chunk);
        }
        assert_eq!(bulk.num_edges(), inc.num_edges());
        for v in 0..40u32 {
            assert_eq!(bulk.neighbors(v), inc.neighbors(v), "vertex {v}");
        }
        bulk.check_invariants();
        inc.check_invariants();
    }

    #[test]
    fn insert_then_delete_restores() {
        let mut rng = SmallRng::seed_from_u64(2);
        let base: Vec<Edge> = (0..8_000)
            .map(|_| Edge::new(rng.gen_range(0..20), rng.gen_range(0..2_000)))
            .collect();
        let mut g = TerraceGraph::from_edges(2_000, &base);
        let before: Vec<Vec<u32>> = (0..20).map(|v| g.neighbors(v)).collect();
        let batch: Vec<Edge> = (0..4_000)
            .map(|_| Edge::new(rng.gen_range(0..20), rng.gen_range(2_000..9_000)))
            .collect();
        let a = g.insert_batch(&batch);
        let r = g.delete_batch(&batch);
        assert_eq!(a, r);
        for v in 0..20u32 {
            assert_eq!(g.neighbors(v), before[v as usize], "vertex {v}");
        }
        g.check_invariants();
    }

    #[test]
    fn delete_from_every_tier() {
        let mut g = TerraceGraph::new(1);
        let batch: Vec<Edge> = (0..2_500u32).map(|i| Edge::new(0, i)).collect();
        g.insert_batch(&batch);
        // Delete inline, PMA-era, and btree-era neighbors.
        assert_eq!(
            g.delete_batch(&edges(&[(0, 0), (0, 500), (0, 2_400), (0, 9_999)])),
            3
        );
        assert_eq!(g.degree(0), 2_497);
        assert!(!g.has_edge(0, 500));
        assert!(g.has_edge(0, 501));
        g.check_invariants();
    }

    #[test]
    fn demotion_after_heavy_deletes() {
        let mut g = TerraceGraph::new(1);
        let batch: Vec<Edge> = (0..3_000u32).map(|i| Edge::new(0, i)).collect();
        g.insert_batch(&batch);
        assert!(g.vertices[0].tree.is_some());
        // Demotion hysteresis: spill must fall below HIGH_THRESHOLD / 2
        // (spill = degree - inline, so degree < 512 + 13 + 1).
        let del: Vec<Edge> = (520..3_000u32).map(|i| Edge::new(0, i)).collect();
        g.delete_batch(&del);
        assert!(g.vertices[0].tree.is_none(), "should demote to PMA tier");
        assert_eq!(g.degree(0), 520);
        g.check_invariants();
    }

    #[test]
    fn instrumentation_reports_pma_share() {
        let mut g = TerraceGraph::new(10);
        let batch: Vec<Edge> = (0..500u32).map(|i| Edge::new(i % 10, i)).collect();
        g.insert_batch(&batch);
        let share = g.pma_time_share();
        assert!((0.0..=1.0).contains(&share));
        assert!(g.pma_counters().search_steps > 0);
    }
}
