//! Synthetic temporal streams (stand-in for the paper's Table 4 datasets).
//!
//! The Table 4 graphs (mathoverflow, askubuntu, superuser, wiki-talk) are
//! interaction streams: edges arrive in time order and attach preferentially
//! to already-active vertices. This generator reproduces that arrival
//! pattern: each new edge picks endpoints either preferentially (an endpoint
//! of a random earlier edge) or uniformly, which yields the heavy-tailed,
//! hot-vertex-concentrated update locality the §6.5 experiment exercises.

use lsgraph_api::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A Table 4 stand-in stream shape.
#[derive(Clone, Copy, Debug)]
pub struct TemporalProfile {
    /// Paper name ("MO", "AU", "SU", "WT").
    pub name: &'static str,
    /// Vertex count of the real stream.
    pub vertices: usize,
    /// Edge count of the real stream.
    pub edges: usize,
}

/// The four temporal datasets of Table 4.
pub const TEMPORAL_PROFILES: [TemporalProfile; 4] = [
    TemporalProfile {
        name: "MO",
        vertices: 24_818,
        edges: 506_550,
    },
    TemporalProfile {
        name: "AU",
        vertices: 159_316,
        edges: 964_437,
    },
    TemporalProfile {
        name: "SU",
        vertices: 194_085,
        edges: 1_443_339,
    },
    TemporalProfile {
        name: "WT",
        vertices: 1_140_149,
        edges: 7_833_140,
    },
];

/// Generates a preferential-attachment arrival stream of `m` edges over `n`
/// vertices.
///
/// With probability `pref` each endpoint is copied from a uniformly chosen
/// earlier edge (preferential attachment by edge-copying), otherwise drawn
/// uniformly. Edges are returned in arrival order; duplicates occur, as in
/// real interaction streams.
pub fn temporal_stream(n: usize, m: usize, pref: f64, seed: u64) -> Vec<Edge> {
    assert!(n >= 2, "need at least two vertices");
    assert!((0.0..=1.0).contains(&pref));
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    for _ in 0..m {
        let src = if !edges.is_empty() && rng.gen_bool(pref) {
            let e = edges[rng.gen_range(0..edges.len())];
            if rng.gen_bool(0.5) {
                e.src
            } else {
                e.dst
            }
        } else {
            rng.gen_range(0..n as u32)
        };
        let dst = if !edges.is_empty() && rng.gen_bool(pref) {
            let e = edges[rng.gen_range(0..edges.len())];
            if rng.gen_bool(0.5) {
                e.src
            } else {
                e.dst
            }
        } else {
            rng.gen_range(0..n as u32)
        };
        edges.push(Edge::new(src, dst));
    }
    edges
}

impl TemporalProfile {
    /// Looks up a profile by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<TemporalProfile> {
        TEMPORAL_PROFILES
            .iter()
            .copied()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Generates the stand-in stream at `1/div` of the real size.
    pub fn generate(&self, div: usize, seed: u64) -> Vec<Edge> {
        temporal_stream((self.vertices / div).max(2), self.edges / div, 0.7, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic_and_sized() {
        let a = temporal_stream(100, 5_000, 0.7, 3);
        let b = temporal_stream(100, 5_000, 0.7, 3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5_000);
    }

    #[test]
    fn preferential_attachment_concentrates_activity() {
        let n = 10_000;
        let m = 100_000;
        let hot = temporal_stream(n, m, 0.8, 5);
        let cold = temporal_stream(n, m, 0.0, 5);
        let top_share = |edges: &[Edge]| {
            let mut deg = vec![0u32; n];
            for e in edges {
                deg[e.src as usize] += 1;
            }
            deg.sort_unstable_by(|a, b| b.cmp(a));
            deg[..n / 100].iter().map(|&d| d as u64).sum::<u64>() as f64 / m as f64
        };
        let hot_share = top_share(&hot);
        let cold_share = top_share(&cold);
        assert!(
            hot_share > cold_share * 3.0,
            "top-1% share: pref {hot_share:.3} vs uniform {cold_share:.3}"
        );
    }

    #[test]
    fn profiles_lookup() {
        assert_eq!(TemporalProfile::by_name("wt").unwrap().vertices, 1_140_149);
        let s = TemporalProfile::by_name("MO").unwrap().generate(10, 1);
        assert_eq!(s.len(), 50_655);
    }
}
