//! Chung–Lu generator and degree-distribution utilities.
//!
//! R-MAT matches the paper datasets' *shape class* (power law) but not an
//! exact degree sequence. The Chung–Lu model samples endpoints with
//! probability proportional to target weights, so the expected degree of
//! vertex `v` tracks `w_v` — letting a stand-in match a real dataset's
//! measured degree profile. The histogram helpers extract such profiles.

use lsgraph_api::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Inverse-transform sample from cumulative weights.
#[inline]
fn pick(cum: &[f64], total: f64, r: f64) -> u32 {
    let x = r * total;
    (cum.partition_point(|&c| c <= x) as u32).min(cum.len() as u32 - 1)
}

/// Samples `m` edges with endpoint probability proportional to `weights`,
/// in parallel, deterministically from `seed`.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative or non-finite value,
/// or sums to a non-positive value.
pub fn chung_lu(weights: &[f64], m: usize, seed: u64) -> Vec<Edge> {
    assert!(!weights.is_empty(), "need at least one vertex");
    // Cumulative weights for inverse-transform sampling.
    let mut cum = Vec::with_capacity(weights.len());
    let mut total = 0.0;
    for &w in weights {
        assert!(
            w >= 0.0 && w.is_finite(),
            "weights must be finite and non-negative"
        );
        total += w;
        cum.push(total);
    }
    assert!(total > 0.0, "weights must sum to a positive value");
    const CHUNK: usize = 1 << 14;
    let chunks = m.div_ceil(CHUNK);
    let cum = &cum;
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9));
            let count = CHUNK.min(m - c * CHUNK);
            (0..count)
                .map(move |_| {
                    let src = pick(cum, total, rng.gen());
                    let dst = pick(cum, total, rng.gen());
                    Edge::new(src, dst)
                })
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Out-degree of every vertex in an edge list.
pub fn degree_sequence(n: usize, edges: &[Edge]) -> Vec<u32> {
    let n = n.max(edges.iter().map(|e| e.src as usize + 1).max().unwrap_or(0));
    let mut deg = vec![0u32; n];
    for e in edges {
        deg[e.src as usize] += 1;
    }
    deg
}

/// Log2-bucketed degree histogram.
///
/// Returns `(zero_degree_count, buckets)` where `buckets[i]` counts vertices
/// whose degree lies in `[2^i, 2^(i+1))`.
pub fn degree_histogram(degrees: &[u32]) -> (usize, Vec<usize>) {
    let mut zero = 0;
    let mut buckets: Vec<usize> = Vec::new();
    for &d in degrees {
        if d == 0 {
            zero += 1;
            continue;
        }
        let b = d.ilog2() as usize;
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    (zero, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_degrees_track_weights() {
        // Vertex 0 has 10x the weight of the others.
        let mut weights = vec![1.0; 1_000];
        weights[0] = 10.0;
        let m = 200_000;
        let edges = chung_lu(&weights, m, 7);
        assert_eq!(edges.len(), m);
        let deg = degree_sequence(1_000, &edges);
        let avg_other: f64 =
            deg[1..].iter().map(|&d| d as f64).sum::<f64>() / (deg.len() - 1) as f64;
        let ratio = deg[0] as f64 / avg_other;
        assert!(
            (7.0..13.0).contains(&ratio),
            "hub/avg ratio {ratio} should be near 10"
        );
    }

    #[test]
    fn deterministic() {
        let w = vec![1.0, 2.0, 3.0];
        assert_eq!(chung_lu(&w, 1_000, 5), chung_lu(&w, 1_000, 5));
        assert_ne!(chung_lu(&w, 1_000, 5), chung_lu(&w, 1_000, 6));
    }

    #[test]
    fn ids_in_range_and_zero_weights_unsampled() {
        let w = vec![0.0, 5.0, 0.0, 1.0];
        for e in chung_lu(&w, 10_000, 2) {
            assert!(e.src < 4 && e.dst < 4);
            assert!(e.src != 0 && e.src != 2);
            assert!(e.dst != 0 && e.dst != 2);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_total() {
        let _ = chung_lu(&[0.0, 0.0], 10, 1);
    }

    #[test]
    fn histogram_buckets() {
        let degrees = [0u32, 0, 1, 1, 2, 3, 4, 7, 8, 1000];
        let (zero, buckets) = degree_histogram(&degrees);
        assert_eq!(zero, 2);
        assert_eq!(buckets[0], 2); // degree 1
        assert_eq!(buckets[1], 2); // 2..3
        assert_eq!(buckets[2], 2); // 4..7
        assert_eq!(buckets[3], 1); // 8..15
        assert_eq!(buckets[9], 1); // 512..1023
    }

    #[test]
    fn degree_sequence_grows_to_max_src() {
        let deg = degree_sequence(0, &[Edge::new(4, 0), Edge::new(4, 1)]);
        assert_eq!(deg.len(), 5);
        assert_eq!(deg[4], 2);
    }

    #[test]
    fn profile_matched_standin_reproduces_histogram_shape() {
        // Extract a power-law degree profile from an R-MAT graph, regenerate
        // via Chung–Lu, and compare bucketed histograms.
        let src = crate::rmat(12, 100_000, crate::RmatParams::paper(), 3);
        let deg = degree_sequence(1 << 12, &src);
        let weights: Vec<f64> = deg.iter().map(|&d| d as f64).collect();
        let clone = chung_lu(&weights, src.len(), 9);
        let (z1, h1) = degree_histogram(&deg);
        let (z2, h2) = degree_histogram(&degree_sequence(1 << 12, &clone));
        // Same bucket count within one, and the heavy tail exists in both.
        assert!(
            (h1.len() as i64 - h2.len() as i64).abs() <= 1,
            "{h1:?} vs {h2:?}"
        );
        assert!(z2 <= z1 * 2 + 100);
        // Compare only buckets with enough mass for the ratio to be stable
        // (tiny buckets like degree-1 fluctuate with the multinomial noise).
        for (i, (&a, &b)) in h1.iter().zip(&h2).enumerate() {
            if a.max(b) < 100 {
                continue;
            }
            let (a, b) = (a as f64, b as f64);
            assert!(
                a / b < 3.0 && b / a < 3.0,
                "bucket {i} diverges: {h1:?} vs {h2:?}"
            );
        }
    }
}
