//! Graph and update-stream generators plus dataset loaders.
//!
//! The paper evaluates on SNAP datasets (LJ, OR, TW, FR), an R-MAT graph,
//! graph500 Kronecker graphs, and four temporal SNAP streams. Those files are
//! not redistributable here, so this crate provides (see DESIGN.md's
//! substitution table):
//!
//! * [`rmat`]: the R-MAT generator with the paper's exact parameters
//!   (a=0.5, b=c=0.1, d=0.3) — used both for the synthetic RM graph and for
//!   the update batches of every throughput experiment;
//! * [`graph500`]: the Graph500 Kronecker parameters (a=0.57, b=c=0.19);
//! * [`profiles`]: power-law graphs whose vertex count and average degree
//!   match each paper dataset at a configurable scale;
//! * [`temporal`]: preferential-attachment arrival streams standing in for
//!   the Table 4 temporal graphs;
//! * [`chunglu`]: Chung–Lu sampling to match a measured degree profile
//!   exactly, plus degree-histogram extraction;
//! * [`loader`]: SNAP-style edge-list text and a compact binary format, so
//!   real datasets can be dropped in when available;
//! * [`binio`]: the hand-rolled CRC32 and checksummed-frame helpers shared
//!   by the binary loader and the durability layer (`lsgraph-persist`);
//! * [`csr`]: a static CSR snapshot used as the analytics ground truth.

pub mod binio;
pub mod chunglu;
pub mod csr;
pub mod loader;
pub mod profiles;
pub mod rmat;
pub mod temporal;

pub use chunglu::{chung_lu, degree_histogram, degree_sequence};
pub use csr::Csr;
pub use profiles::{DatasetProfile, PROFILES};
pub use rmat::{erdos_renyi, graph500, rmat, RmatParams};
pub use temporal::temporal_stream;
