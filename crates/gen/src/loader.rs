//! Edge-list loaders: SNAP-style text and a compact binary format.
//!
//! When the paper's real datasets are available locally, these loaders let
//! the benchmark harness run on them instead of the synthetic stand-ins.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use lsgraph_api::Edge;

/// Parses SNAP text format: one `src dst` (whitespace-separated) pair per
/// line; `#`-prefixed lines are comments.
///
/// # Errors
///
/// Returns an I/O error for unreadable files, or `InvalidData` for malformed
/// lines.
pub fn load_snap_text(path: &Path) -> io::Result<Vec<Edge>> {
    let f = File::open(path)?;
    let mut edges = Vec::new();
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u32> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: malformed edge line", path.display(), lineno + 1),
                )
            })
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

/// Magic header for the binary edge format.
const MAGIC: &[u8; 8] = b"LSGEDGE1";

/// Writes edges in the compact binary format (little-endian u32 pairs).
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn save_binary(path: &Path, edges: &[Edge]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    for e in edges {
        w.write_all(&e.src.to_le_bytes())?;
        w.write_all(&e.dst.to_le_bytes())?;
    }
    w.flush()
}

/// Reads edges written by [`save_binary`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic header or truncated payload.
pub fn load_binary(path: &Path) -> io::Result<Vec<Edge>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not an LSGEDGE1 file", path.display()),
        ));
    }
    let mut lenb = [0u8; 8];
    r.read_exact(&mut lenb)?;
    let len = u64::from_le_bytes(lenb) as usize;
    // Sanity-check the header against the actual file size before trusting
    // it with an allocation: a corrupt length would otherwise drive a
    // multi-GB `Vec::with_capacity` long before the payload read fails.
    let payload = std::fs::metadata(path)?
        .len()
        .saturating_sub((MAGIC.len() + lenb.len()) as u64);
    if !matches!((len as u64).checked_mul(8), Some(claimed) if claimed <= payload) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: header claims {len} edges but only {payload} payload bytes follow",
                path.display()
            ),
        ));
    }
    let mut edges = Vec::with_capacity(len);
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        edges.push(Edge::new(
            u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice")),
            u32::from_le_bytes(buf[4..8].try_into().expect("4-byte slice")),
        ));
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsgraph-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn snap_text_roundtrip() {
        let p = tmp("snap.txt");
        std::fs::write(&p, "# comment\n0 1\n2\t3\n\n4 5\n").unwrap();
        let edges = load_snap_text(&p).unwrap();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(4, 5)]
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn snap_text_rejects_garbage() {
        let p = tmp("bad.txt");
        std::fs::write(&p, "0 x\n").unwrap();
        assert!(load_snap_text(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let p = tmp("edges.bin");
        let edges: Vec<Edge> = (0..1_000u32)
            .map(|i| Edge::new(i, i.wrapping_mul(7) % 100))
            .collect();
        save_binary(&p, &edges).unwrap();
        assert_eq!(load_binary(&p).unwrap(), edges);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        let p = tmp("notbin.bin");
        std::fs::write(&p, b"WRONGMAGIC____").unwrap();
        assert!(load_binary(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_truncated_payload() {
        let p = tmp("truncated.bin");
        let edges: Vec<Edge> = (0..100u32).map(|i| Edge::new(i, i + 1)).collect();
        save_binary(&p, &edges).unwrap();
        // Chop off the last 20 bytes: the header still claims 100 edges.
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 20]).unwrap();
        let err = load_binary(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("claims 100 edges"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_oversized_length_header() {
        let p = tmp("oversized.bin");
        // A valid magic followed by an absurd length and no payload must be
        // rejected up front, not after attempting a huge allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = load_binary(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).ok();
    }
}
