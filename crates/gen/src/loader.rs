//! Edge-list loaders: SNAP-style text and a compact binary format.
//!
//! When the paper's real datasets are available locally, these loaders let
//! the benchmark harness run on them instead of the synthetic stand-ins.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use lsgraph_api::Edge;

/// Parses SNAP text format: one `src dst` (whitespace-separated) pair per
/// line; `#`-prefixed lines are comments.
///
/// # Errors
///
/// Returns an I/O error for unreadable files, or `InvalidData` for malformed
/// lines.
pub fn load_snap_text(path: &Path) -> io::Result<Vec<Edge>> {
    let f = File::open(path)?;
    let mut edges = Vec::new();
    for (lineno, line) in BufReader::new(f).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>| -> io::Result<u32> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}:{}: malformed edge line", path.display(), lineno + 1),
                )
            })
        };
        let src = parse(it.next())?;
        let dst = parse(it.next())?;
        edges.push(Edge::new(src, dst));
    }
    Ok(edges)
}

/// Magic header of the legacy (checksum-less) binary edge format; still
/// readable, no longer written.
const MAGIC_V1: &[u8; 8] = b"LSGEDGE1";

/// Magic header of the current binary edge format, which appends a CRC32
/// trailer over the payload so truncation *and* corruption are detectable.
const MAGIC: &[u8; 8] = b"LSGEDGE2";

/// Writes edges in the compact binary format: magic, a u64 LE edge count
/// (the same length header [`load_binary`] validates against the file size),
/// little-endian u32 pairs, and a CRC32 trailer over the payload bytes.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn save_binary(path: &Path, edges: &[Edge]) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(edges.len() as u64).to_le_bytes())?;
    let mut crc = crate::binio::Crc32::new();
    for e in edges {
        let mut pair = [0u8; 8];
        pair[0..4].copy_from_slice(&e.src.to_le_bytes());
        pair[4..8].copy_from_slice(&e.dst.to_le_bytes());
        crc.update(&pair);
        w.write_all(&pair)?;
    }
    w.write_all(&crc.finalize().to_le_bytes())?;
    w.flush()
}

/// Reads edges written by [`save_binary`] (either format version).
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic header, a truncated payload, or (for
/// the current format) a CRC32 trailer mismatch.
pub fn load_binary(path: &Path) -> io::Result<Vec<Edge>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    let has_trailer = match &magic {
        m if m == MAGIC => true,
        m if m == MAGIC_V1 => false,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not an LSGEDGE1/LSGEDGE2 file", path.display()),
            ))
        }
    };
    let mut lenb = [0u8; 8];
    r.read_exact(&mut lenb)?;
    let len = u64::from_le_bytes(lenb) as usize;
    // Sanity-check the header against the actual file size before trusting
    // it with an allocation: a corrupt length would otherwise drive a
    // multi-GB `Vec::with_capacity` long before the payload read fails.
    let trailer = if has_trailer { 4 } else { 0 };
    let payload = std::fs::metadata(path)?
        .len()
        .saturating_sub((MAGIC.len() + lenb.len() + trailer) as u64);
    if !matches!((len as u64).checked_mul(8), Some(claimed) if claimed <= payload) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: header claims {len} edges but only {payload} payload bytes follow",
                path.display()
            ),
        ));
    }
    let mut edges = Vec::with_capacity(len);
    let mut crc = crate::binio::Crc32::new();
    let mut buf = [0u8; 8];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        crc.update(&buf);
        edges.push(Edge::new(
            u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice")),
            u32::from_le_bytes(buf[4..8].try_into().expect("4-byte slice")),
        ));
    }
    if has_trailer {
        let mut crcb = [0u8; 4];
        r.read_exact(&mut crcb)?;
        let expect = u32::from_le_bytes(crcb);
        let got = crc.finalize();
        if got != expect {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "{}: payload checksum {got:#010x} != trailer {expect:#010x}",
                    path.display()
                ),
            ));
        }
    }
    Ok(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lsgraph-test-{}-{name}", std::process::id()))
    }

    #[test]
    fn snap_text_roundtrip() {
        let p = tmp("snap.txt");
        std::fs::write(&p, "# comment\n0 1\n2\t3\n\n4 5\n").unwrap();
        let edges = load_snap_text(&p).unwrap();
        assert_eq!(
            edges,
            vec![Edge::new(0, 1), Edge::new(2, 3), Edge::new(4, 5)]
        );
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn snap_text_rejects_garbage() {
        let p = tmp("bad.txt");
        std::fs::write(&p, "0 x\n").unwrap();
        assert!(load_snap_text(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let p = tmp("edges.bin");
        let edges: Vec<Edge> = (0..1_000u32)
            .map(|i| Edge::new(i, i.wrapping_mul(7) % 100))
            .collect();
        save_binary(&p, &edges).unwrap();
        assert_eq!(load_binary(&p).unwrap(), edges);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_wrong_magic() {
        let p = tmp("notbin.bin");
        std::fs::write(&p, b"WRONGMAGIC____").unwrap();
        assert!(load_binary(&p).is_err());
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_truncated_payload() {
        let p = tmp("truncated.bin");
        let edges: Vec<Edge> = (0..100u32).map(|i| Edge::new(i, i + 1)).collect();
        save_binary(&p, &edges).unwrap();
        // Chop off the last 20 bytes: the header still claims 100 edges.
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 20]).unwrap();
        let err = load_binary(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("claims 100 edges"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_flipped_payload_byte() {
        let p = tmp("corrupt.bin");
        let edges: Vec<Edge> = (0..100u32).map(|i| Edge::new(i, i + 1)).collect();
        save_binary(&p, &edges).unwrap();
        // Flip one payload bit; the length header stays consistent, so only
        // the CRC32 trailer can catch this.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[100] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let err = load_binary(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_reads_legacy_v1_files() {
        let p = tmp("legacy.bin");
        let edges: Vec<Edge> = (0..50u32).map(|i| Edge::new(i, 2 * i)).collect();
        // Hand-write the checksum-less LSGEDGE1 layout.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V1);
        bytes.extend_from_slice(&(edges.len() as u64).to_le_bytes());
        for e in &edges {
            bytes.extend_from_slice(&e.src.to_le_bytes());
            bytes.extend_from_slice(&e.dst.to_le_bytes());
        }
        std::fs::write(&p, &bytes).unwrap();
        assert_eq!(load_binary(&p).unwrap(), edges);
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn binary_rejects_oversized_length_header() {
        let p = tmp("oversized.bin");
        // A valid magic followed by an absurd length and no payload must be
        // rejected up front, not after attempting a huge allocation.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = load_binary(&p).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(&p).ok();
    }
}
