//! Static CSR snapshot (paper Fig. 1a).
//!
//! Used as an immutable ground-truth graph: analytics results computed on a
//! CSR snapshot validate the streaming engines' results on the same edge
//! set, and CSR traversal provides the static-baseline timings.

use lsgraph_api::{Edge, Footprint, Graph, IterableGraph, MemoryFootprint, VertexId};
use rayon::prelude::*;

/// Compressed sparse row graph.
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR from an edge list (sorted + deduped internally).
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let mut keys: Vec<u64> = edges.iter().map(|e| e.key()).collect();
        keys.par_sort_unstable();
        keys.dedup();
        let n = n.max(keys.last().map_or(0, |&k| (k >> 32) as usize + 1));
        let mut offsets = vec![0usize; n + 1];
        for &k in &keys {
            offsets[(k >> 32) as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let targets: Vec<u32> = keys.iter().map(|&k| k as u32).collect();
        Csr { offsets, targets }
    }

    /// The sorted neighbor slice of `v`.
    #[inline]
    pub fn neighbors_slice(&self, v: VertexId) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }
}

impl Graph for Csr {
    fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    fn num_edges(&self) -> usize {
        self.targets.len()
    }

    fn degree(&self, v: VertexId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        for &u in self.neighbors_slice(v) {
            f(u);
        }
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        for &u in self.neighbors_slice(v) {
            if !f(u) {
                return false;
            }
        }
        true
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.neighbors_slice(v).binary_search(&u).is_ok()
    }
}

impl IterableGraph for Csr {
    type NeighborIter<'a> = core::iter::Copied<core::slice::Iter<'a, u32>>;

    fn neighbor_iter(&self, v: VertexId) -> Self::NeighborIter<'_> {
        self.neighbors_slice(v).iter().copied()
    }
}

impl MemoryFootprint for Csr {
    fn footprint(&self) -> Footprint {
        Footprint::new(
            self.targets.len() * core::mem::size_of::<u32>(),
            self.offsets.len() * core::mem::size_of::<usize>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let edges = [
            Edge::new(0, 2),
            Edge::new(0, 1),
            Edge::new(2, 0),
            Edge::new(0, 1),
        ];
        let g = Csr::from_edges(3, &edges);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors_slice(0), &[1, 2]);
        assert_eq!(g.degree(1), 0);
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn grows_to_max_id() {
        let g = Csr::from_edges(0, &[Edge::new(5, 9)]);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.neighbors_slice(5), &[9]);
    }

    #[test]
    fn empty() {
        let g = Csr::from_edges(4, &[]);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
    }
}
