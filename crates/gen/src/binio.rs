//! Shared binary I/O helpers: a hand-rolled CRC32 and length-prefixed,
//! checksummed frames.
//!
//! Both the edge-list [`loader`](crate::loader) and the durability layer
//! (`lsgraph-persist`) write binary files that must detect truncation and
//! corruption without external dependencies. This module gives them one
//! shared vocabulary:
//!
//! - [`crc32`] / [`Crc32`]: the CRC-32/ISO-HDLC checksum (the ubiquitous
//!   IEEE 802.3 polynomial, reflected, init/xorout `0xFFFF_FFFF`) — the same
//!   algorithm as zlib's `crc32()`, implemented with a compile-time 256-entry
//!   table.
//! - [`write_frame`] / [`parse_frame`]: frames laid out as
//!   `u32 LE payload length | u32 LE CRC32(payload) | payload`. A frame
//!   whose length header, payload bytes, or checksum cannot be fully
//!   validated parses as *absent*, which is what lets a write-ahead log
//!   truncate at the first torn write instead of replaying garbage.

use std::io::{self, Write};

/// Bytes occupied by a frame header (length + checksum).
pub const FRAME_HEADER_LEN: usize = 8;

/// CRC-32/ISO-HDLC lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC-32/ISO-HDLC hasher for data that arrives in chunks.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Creates a hasher in the initial state.
    pub const fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feeds `data` into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut c = self.state;
        for &b in data {
            c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Returns the checksum of everything fed so far.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32/ISO-HDLC of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finalize()
}

/// Writes one frame: `u32 LE len | u32 LE crc32(payload) | payload`.
///
/// # Errors
///
/// Propagates I/O errors from the underlying writer.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Attempts to parse one frame from the front of `buf`.
///
/// Returns `Some((payload, bytes_consumed))` for a complete frame with a
/// matching checksum, and `None` for anything else — a partial header, a
/// payload shorter than the header claims, or a checksum mismatch. Callers
/// treat `None` as "torn write starts here".
pub fn parse_frame(buf: &[u8]) -> Option<(&[u8], usize)> {
    if buf.len() < FRAME_HEADER_LEN {
        return None;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice")) as usize;
    let expect = u32::from_le_bytes(buf[4..8].try_into().expect("4-byte slice"));
    let end = FRAME_HEADER_LEN.checked_add(len)?;
    if buf.len() < end {
        return None;
    }
    let payload = &buf[FRAME_HEADER_LEN..end];
    if crc32(payload) != expect {
        return None;
    }
    Some((payload, end))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard CRC-32/ISO-HDLC check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"split across several updates";
        let mut h = Crc32::new();
        for chunk in data.chunks(5) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world!").unwrap();
        let (p1, n1) = parse_frame(&buf).unwrap();
        assert_eq!(p1, b"hello");
        let (p2, n2) = parse_frame(&buf[n1..]).unwrap();
        assert_eq!(p2, b"");
        let (p3, n3) = parse_frame(&buf[n1 + n2..]).unwrap();
        assert_eq!(p3, b"world!");
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn torn_frames_parse_as_absent() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload bytes").unwrap();
        // Any strict prefix is torn: partial header or partial payload.
        for cut in 0..buf.len() {
            assert!(parse_frame(&buf[..cut]).is_none(), "cut at {cut}");
        }
        // A flipped payload bit fails the checksum.
        let mut flipped = buf.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert!(parse_frame(&flipped).is_none());
        // The intact frame still parses.
        assert!(parse_frame(&buf).is_some());
    }

    #[test]
    fn oversized_length_header_is_absent_not_a_panic() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(parse_frame(&buf).is_none());
    }
}
