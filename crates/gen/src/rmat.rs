//! R-MAT / Kronecker edge generators (Chakrabarti et al., SDM'04).

use lsgraph_api::Edge;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// R-MAT quadrant probabilities.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// The paper's parameters (§6.1, same as Aspen): a=0.5, b=c=0.1, d=0.3.
    pub fn paper() -> Self {
        RmatParams {
            a: 0.5,
            b: 0.1,
            c: 0.1,
        }
    }

    /// Graph500 Kronecker parameters: a=0.57, b=c=0.19, d=0.05.
    pub fn graph500() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generates one R-MAT edge over `2^scale` vertices.
#[inline]
fn rmat_edge(scale: u32, p: RmatParams, rng: &mut SmallRng) -> Edge {
    let mut src = 0u32;
    let mut dst = 0u32;
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        // Add per-level noise so repeated quadrant choices do not produce
        // exact self-similarity artifacts (standard smoothing).
        let r: f64 = rng.gen();
        if r < p.a {
            // top-left: nothing set
        } else if r < p.a + p.b {
            dst |= 1;
        } else if r < p.a + p.b + p.c {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    Edge::new(src, dst)
}

/// Generates `m` R-MAT edges over `2^scale` vertices, in parallel,
/// deterministically from `seed`.
///
/// Duplicates and self-loops are kept, as in the reference generator; the
/// engines dedup on ingest.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> Vec<Edge> {
    const CHUNK: usize = 1 << 16;
    let chunks = m.div_ceil(CHUNK);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9));
            let count = CHUNK.min(m - c * CHUNK);
            (0..count)
                .map(move |_| rmat_edge(scale, params, &mut rng))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Graph500-style Kronecker edges over `2^scale` vertices.
pub fn graph500(scale: u32, m: usize, seed: u64) -> Vec<Edge> {
    rmat(scale, m, RmatParams::graph500(), seed)
}

/// Uniform (Erdős–Rényi G(n, m)) edges.
pub fn erdos_renyi(n: u32, m: usize, seed: u64) -> Vec<Edge> {
    assert!(n > 0, "need at least one vertex");
    const CHUNK: usize = 1 << 16;
    let chunks = m.div_ceil(CHUNK);
    (0..chunks)
        .into_par_iter()
        .flat_map_iter(|c| {
            let mut rng = SmallRng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0xC2B2_AE35));
            let count = CHUNK.min(m - c * CHUNK);
            (0..count)
                .map(move |_| Edge::new(rng.gen_range(0..n), rng.gen_range(0..n)))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = rmat(12, 10_000, RmatParams::paper(), 7);
        let b = rmat(12, 10_000, RmatParams::paper(), 7);
        assert_eq!(a, b);
        let c = rmat(12, 10_000, RmatParams::paper(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn ids_within_range() {
        for e in rmat(10, 5_000, RmatParams::paper(), 1) {
            assert!(e.src < 1024 && e.dst < 1024);
        }
        for e in erdos_renyi(100, 5_000, 1) {
            assert!(e.src < 100 && e.dst < 100);
        }
    }

    #[test]
    fn rmat_is_skewed_uniform_is_not() {
        let n = 1u32 << 12;
        let m = 200_000;
        let max_deg = |edges: &[Edge]| {
            let mut deg = vec![0u32; n as usize];
            for e in edges {
                deg[e.src as usize] += 1;
            }
            *deg.iter().max().unwrap() as f64
        };
        let skewed = max_deg(&rmat(12, m, RmatParams::paper(), 3));
        let flat = max_deg(&erdos_renyi(n, m, 3));
        // Power-law max degree dwarfs the uniform one.
        assert!(
            skewed > flat * 4.0,
            "rmat max degree {skewed} vs uniform {flat}"
        );
    }

    #[test]
    fn exact_count() {
        assert_eq!(rmat(8, 70_001, RmatParams::paper(), 2).len(), 70_001);
        assert_eq!(erdos_renyi(10, 0, 2).len(), 0);
    }
}
