//! Degree-profile-matched stand-ins for the paper's datasets (Table 1).
//!
//! Each profile records a paper dataset's vertex count and average degree.
//! `generate` produces an R-MAT graph at `scale_shift` fewer doublings than
//! the real dataset with the same average degree, preserving the power-law
//! shape that drives container-tier distribution and cache behaviour.

use lsgraph_api::Edge;

use crate::rmat::{rmat, RmatParams};

/// A paper dataset's shape (Table 1).
#[derive(Clone, Copy, Debug)]
pub struct DatasetProfile {
    /// Short name used in the paper's tables ("LJ", "OR", ...).
    pub name: &'static str,
    /// log2 of the vertex count of the real dataset (rounded up).
    pub log_vertices: u32,
    /// Average degree of the real dataset.
    pub avg_degree: f64,
}

/// The five evaluation graphs of Table 1.
pub const PROFILES: [DatasetProfile; 5] = [
    DatasetProfile {
        name: "LJ",
        log_vertices: 23,
        avg_degree: 17.7,
    },
    DatasetProfile {
        name: "OR",
        log_vertices: 22,
        avg_degree: 76.2,
    },
    DatasetProfile {
        name: "RM",
        log_vertices: 23,
        avg_degree: 130.9,
    },
    DatasetProfile {
        name: "TW",
        log_vertices: 26,
        avg_degree: 39.1,
    },
    DatasetProfile {
        name: "FR",
        log_vertices: 27,
        avg_degree: 28.9,
    },
];

impl DatasetProfile {
    /// Looks a profile up by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<DatasetProfile> {
        PROFILES
            .iter()
            .copied()
            .find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Number of vertices at `scale_shift` doublings below the real size.
    pub fn scaled_vertices(&self, scale_shift: u32) -> usize {
        1usize << self.log_vertices.saturating_sub(scale_shift)
    }

    /// Number of edges preserving the real average degree at that scale.
    pub fn scaled_edges(&self, scale_shift: u32) -> usize {
        (self.scaled_vertices(scale_shift) as f64 * self.avg_degree) as usize
    }

    /// Generates the scaled stand-in graph with the paper's R-MAT
    /// parameters.
    pub fn generate(&self, scale_shift: u32, seed: u64) -> Vec<Edge> {
        let scale = self.log_vertices.saturating_sub(scale_shift);
        rmat(
            scale,
            self.scaled_edges(scale_shift),
            RmatParams::paper(),
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        assert_eq!(DatasetProfile::by_name("lj").unwrap().name, "LJ");
        assert!(DatasetProfile::by_name("nope").is_none());
    }

    #[test]
    fn scaling_preserves_average_degree() {
        let p = DatasetProfile::by_name("OR").unwrap();
        let n = p.scaled_vertices(8);
        let m = p.scaled_edges(8);
        let avg = m as f64 / n as f64;
        assert!((avg - p.avg_degree).abs() < 1.0);
    }

    #[test]
    fn generate_respects_id_range() {
        let p = DatasetProfile::by_name("LJ").unwrap();
        let edges = p.generate(12, 9);
        let n = p.scaled_vertices(12) as u32;
        assert!(!edges.is_empty());
        for e in &edges {
            assert!(e.src < n && e.dst < n);
        }
    }
}
