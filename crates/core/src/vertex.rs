//! Cache-line vertex blocks (paper §4.1 ①, following Terrace).
//!
//! Each vertex owns exactly one 64-byte block: its degree, its
//! [`INLINE_CAP`] smallest neighbors inline, and a pointer to the spill
//! container holding the rest. Low-degree vertices — the overwhelming
//! majority under power-law distributions — are therefore served by a single
//! cache-line read.

use std::sync::Arc;

use lsgraph_api::{Footprint, MemoryFootprint, StructStats};

use crate::adjacency::Spill;
use crate::config::{Config, INLINE_CAP};
use crate::search;

/// One vertex's cache-line block.
///
/// Invariant: `inline[..degree.min(INLINE_CAP)]` holds the vertex's smallest
/// neighbors in ascending order, and every spilled neighbor is greater than
/// the last inline one.
///
/// The spill is held through an [`Arc`] (same 64-byte layout — the pointer
/// is niche-optimized) so that cloning a block for snapshot copy-on-write
/// is a shallow reference bump; the spill payload itself is only copied
/// ([`Arc::make_mut`]) when a write lands on a spill still shared with an
/// outstanding snapshot.
#[repr(C, align(64))]
#[derive(Clone, Debug, Default)]
pub struct VertexBlock {
    degree: u32,
    inline: [u32; INLINE_CAP],
    spill: Option<Arc<Spill>>,
}

impl VertexBlock {
    /// Creates an isolated vertex.
    pub fn new() -> Self {
        VertexBlock::default()
    }

    /// Builds a block from a sorted duplicate-free neighbor slice.
    pub fn from_sorted_neighbors(ns: &[u32], cfg: &Config) -> Self {
        debug_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        let mut vb = VertexBlock::new();
        let inline_n = ns.len().min(INLINE_CAP);
        vb.inline[..inline_n].copy_from_slice(&ns[..inline_n]);
        vb.degree = ns.len() as u32;
        if ns.len() > INLINE_CAP {
            vb.spill = Some(Arc::new(Spill::from_sorted(&ns[INLINE_CAP..], cfg)));
        }
        vb
    }

    /// Vertex degree.
    #[inline]
    pub fn degree(&self) -> usize {
        self.degree as usize
    }

    #[inline]
    fn inline_len(&self) -> usize {
        (self.degree as usize).min(INLINE_CAP)
    }

    /// The inline (smallest) neighbors.
    #[inline]
    pub fn inline_neighbors(&self) -> &[u32] {
        &self.inline[..self.inline_len()]
    }

    /// The spill container, if any (introspection for tier statistics).
    #[inline]
    pub(crate) fn spill(&self) -> Option<&Spill> {
        self.spill.as_deref()
    }

    /// Returns whether `u` is a neighbor.
    pub fn contains(&self, u: u32, cfg: &Config) -> bool {
        let inl = self.inline_neighbors();
        if let Some(&last) = inl.last() {
            if u <= last {
                return search::find(inl, u).is_ok();
            }
        }
        self.spill.as_ref().is_some_and(|s| s.contains(u, cfg))
    }

    /// Inserts neighbor `u`; returns whether it was added. Records into the
    /// process-global [`StructStats`] sink; instrumented engines call
    /// [`VertexBlock::insert_with`].
    pub fn insert(&mut self, u: u32, cfg: &Config) -> bool {
        self.insert_with(u, cfg, StructStats::global())
    }

    /// Inserts neighbor `u`, recording structural movement into `stats`.
    pub fn insert_with(&mut self, u: u32, cfg: &Config, stats: &StructStats) -> bool {
        let n = self.inline_len();
        if n < INLINE_CAP {
            // Everything fits inline.
            debug_assert!(self.spill.is_none());
            match search::find(&self.inline[..n], u) {
                Ok(_) => false,
                Err(i) => {
                    self.inline.copy_within(i..n, i + 1);
                    self.inline[i] = u;
                    self.degree += 1;
                    stats.record_vb_inline_insert((n - i) as u64);
                    true
                }
            }
        } else {
            match search::find(&self.inline, u) {
                Ok(_) => false,
                Err(i) if i < INLINE_CAP => {
                    // `u` belongs inline: evict the current inline maximum.
                    let evicted = self.inline[INLINE_CAP - 1];
                    self.inline.copy_within(i..INLINE_CAP - 1, i + 1);
                    self.inline[i] = u;
                    stats.record_vb_inline_insert((INLINE_CAP - 1 - i) as u64);
                    stats.record_vb_spill_eviction();
                    let spill = self
                        .spill
                        .get_or_insert_with(|| Arc::new(Spill::Array(Vec::new())));
                    let added = Arc::make_mut(spill).insert_with(evicted, cfg, stats);
                    debug_assert!(added, "evicted inline neighbor was already spilled");
                    self.degree += 1;
                    true
                }
                Err(_) => {
                    let spill = self
                        .spill
                        .get_or_insert_with(|| Arc::new(Spill::Array(Vec::new())));
                    if Arc::make_mut(spill).insert_with(u, cfg, stats) {
                        stats.record_vb_spill_insert();
                        self.degree += 1;
                        true
                    } else {
                        false
                    }
                }
            }
        }
    }

    /// Deletes neighbor `u`; returns whether it was present. Records into
    /// the process-global [`StructStats`] sink; instrumented engines call
    /// [`VertexBlock::delete_with`].
    pub fn delete(&mut self, u: u32, cfg: &Config) -> bool {
        self.delete_with(u, cfg, StructStats::global())
    }

    /// Deletes neighbor `u`, recording structural movement into `stats`.
    pub fn delete_with(&mut self, u: u32, cfg: &Config, stats: &StructStats) -> bool {
        let n = self.inline_len();
        match search::find(&self.inline[..n], u) {
            Ok(i) => {
                self.inline.copy_within(i + 1..n, i);
                stats.record_vb_inline_shift((n - i - 1) as u64);
                // Refill the inline line from the spill so it keeps holding
                // the smallest neighbors.
                let mut emptied = false;
                if let Some(spill) = self.spill.as_mut() {
                    let spill = Arc::make_mut(spill);
                    if let Some(min) = spill.pop_min_with(cfg, stats) {
                        self.inline[n - 1] = min;
                        stats.record_vb_spill_refill();
                    }
                    emptied = spill.is_empty();
                }
                if emptied {
                    self.spill = None;
                }
                self.degree -= 1;
                true
            }
            Err(_) => {
                let Some(spill) = self.spill.as_mut() else {
                    return false;
                };
                let spill = Arc::make_mut(spill);
                if spill.delete_with(u, cfg, stats) {
                    if spill.is_empty() {
                        self.spill = None;
                    }
                    self.degree -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Applies `f` to every neighbor in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        for &u in self.inline_neighbors() {
            f(u);
        }
        if let Some(spill) = &self.spill {
            spill.for_each(f);
        }
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        for &u in self.inline_neighbors() {
            if !f(u) {
                return false;
            }
        }
        match &self.spill {
            Some(spill) => spill.for_each_while(f),
            None => true,
        }
    }

    /// Collects all neighbors into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.degree());
        self.for_each(&mut |x| v.push(x));
        v
    }

    /// Appends all neighbors to `out` in ascending order for checkpointing:
    /// the inline line first, then the spill walked tier-natively
    /// ([`Spill::checkpoint_extend`]).
    pub fn checkpoint_neighbors(&self, out: &mut Vec<u32>) {
        out.reserve(self.degree());
        out.extend_from_slice(self.inline_neighbors());
        if let Some(spill) = &self.spill {
            spill.checkpoint_extend(out);
        }
    }

    /// Iterates neighbors in ascending order (inline line, then spill).
    pub fn iter(&self) -> NeighborIter<'_> {
        NeighborIter {
            inline: self.inline_neighbors().iter(),
            spill: self.spill.as_deref().map(Spill::iter),
        }
    }

    /// Bytes spent beyond the block itself, split payload/index.
    pub fn spill_footprint(&self) -> Footprint {
        self.spill
            .as_ref()
            .map_or(Footprint::default(), |s| s.footprint())
    }

    /// Verifies the inline/spill invariants.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self, cfg: &Config) {
        let inl = self.inline_neighbors();
        assert!(inl.windows(2).all(|w| w[0] < w[1]), "inline unsorted");
        let spill_len = self.spill.as_ref().map_or(0, |s| s.len());
        assert_eq!(
            self.degree as usize,
            inl.len() + spill_len,
            "degree accounting"
        );
        if let Some(spill) = &self.spill {
            assert!(!spill.is_empty(), "empty spill retained");
            assert_eq!(inl.len(), INLINE_CAP, "spill with non-full inline line");
            let sv = spill.to_vec();
            assert!(sv.windows(2).all(|w| w[0] < w[1]), "spill unsorted");
            assert!(
                inl.last().unwrap() < sv.first().unwrap(),
                "spill overlaps inline range"
            );
            if let Spill::Ria(r) = spill.as_ref() {
                r.check_invariants();
            }
            if let Spill::Tree(t) = spill.as_ref() {
                t.check_invariants(cfg);
            }
            if let Spill::Compressed(c) = spill.as_ref() {
                c.check_invariants();
            }
        }
    }

    /// Non-panicking variant of [`VertexBlock::check_invariants`], used by
    /// `LsGraph::validate_invariants` so a corrupt block is reported as a
    /// value instead of unwinding.
    ///
    /// Checks the inline/spill split and full sorted-order of the adjacency
    /// (which any container-level corruption surfaces through `to_vec`); the
    /// deep per-container checks stay in the panicking variant.
    pub fn validate(&self, _cfg: &Config) -> Result<(), String> {
        let inl = self.inline_neighbors();
        if !inl.windows(2).all(|w| w[0] < w[1]) {
            return Err("inline neighbors unsorted".into());
        }
        let spill_len = self.spill.as_ref().map_or(0, |s| s.len());
        if self.degree as usize != inl.len() + spill_len {
            return Err(format!(
                "degree {} != inline {} + spill {}",
                self.degree,
                inl.len(),
                spill_len
            ));
        }
        if let Some(spill) = &self.spill {
            if spill.is_empty() {
                return Err("empty spill retained".into());
            }
            if inl.len() != INLINE_CAP {
                return Err(format!(
                    "spill present but inline line holds {} of {INLINE_CAP}",
                    inl.len()
                ));
            }
        }
        let all = self.to_vec();
        if all.len() != self.degree as usize {
            return Err(format!(
                "iteration yields {} neighbors but degree is {}",
                all.len(),
                self.degree
            ));
        }
        if !all.windows(2).all(|w| w[0] < w[1]) {
            return Err("adjacency not strictly ascending".into());
        }
        Ok(())
    }
}

/// Ascending iterator over one vertex's neighbors.
pub struct NeighborIter<'a> {
    inline: core::slice::Iter<'a, u32>,
    spill: Option<crate::adjacency::SpillIter<'a>>,
}

impl Iterator for NeighborIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if let Some(&v) = self.inline.next() {
            return Some(v);
        }
        self.spill.as_mut()?.next()
    }
}

impl MemoryFootprint for VertexBlock {
    fn footprint(&self) -> Footprint {
        Footprint::new(core::mem::size_of::<VertexBlock>(), 0) + self.spill_footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_is_one_cache_line() {
        assert_eq!(core::mem::size_of::<VertexBlock>(), 64);
        assert_eq!(core::mem::align_of::<VertexBlock>(), 64);
    }

    #[test]
    fn inline_only_lifecycle() {
        let cfg = Config::default();
        let mut vb = VertexBlock::new();
        for u in [9u32, 1, 5] {
            assert!(vb.insert(u, &cfg));
        }
        assert!(!vb.insert(5, &cfg));
        assert_eq!(vb.degree(), 3);
        assert_eq!(vb.to_vec(), vec![1, 5, 9]);
        assert!(vb.contains(5, &cfg) && !vb.contains(2, &cfg));
        assert!(vb.delete(5, &cfg));
        assert!(!vb.delete(5, &cfg));
        assert_eq!(vb.to_vec(), vec![1, 9]);
        vb.check_invariants(&cfg);
    }

    #[test]
    fn spill_on_overflow_keeps_smallest_inline() {
        let cfg = Config::default();
        let mut vb = VertexBlock::new();
        for u in (0..40u32).rev() {
            assert!(vb.insert(u, &cfg));
        }
        vb.check_invariants(&cfg);
        assert_eq!(vb.degree(), 40);
        assert_eq!(
            vb.inline_neighbors(),
            &(0..INLINE_CAP as u32).collect::<Vec<_>>()[..]
        );
        assert_eq!(vb.to_vec(), (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn insert_small_key_evicts_inline_max() {
        let cfg = Config::default();
        // Fill inline with large keys, then insert a smaller one.
        let mut vb = VertexBlock::from_sorted_neighbors(
            &(100..100 + INLINE_CAP as u32).collect::<Vec<_>>(),
            &cfg,
        );
        assert!(vb.insert(1, &cfg));
        vb.check_invariants(&cfg);
        assert_eq!(vb.inline_neighbors()[0], 1);
        assert_eq!(vb.degree(), INLINE_CAP + 1);
        assert!(
            vb.contains(100 + INLINE_CAP as u32 - 1, &cfg),
            "evicted key lost"
        );
    }

    #[test]
    fn delete_inline_pulls_from_spill() {
        let cfg = Config::default();
        let mut vb = VertexBlock::from_sorted_neighbors(&(0..30).collect::<Vec<_>>(), &cfg);
        assert!(vb.delete(0, &cfg));
        vb.check_invariants(&cfg);
        assert_eq!(vb.to_vec(), (1..30).collect::<Vec<_>>());
        // Inline must still be full (smallest 13 of the remaining 29).
        assert_eq!(vb.inline_neighbors().len(), INLINE_CAP);
    }

    #[test]
    fn delete_down_to_inline_drops_spill() {
        let cfg = Config::default();
        let mut vb = VertexBlock::from_sorted_neighbors(&(0..20).collect::<Vec<_>>(), &cfg);
        for u in 13..20u32 {
            assert!(vb.delete(u, &cfg));
        }
        assert!(vb.spill.is_none(), "spill should be dropped when empty");
        assert_eq!(vb.to_vec(), (0..13).collect::<Vec<_>>());
        vb.check_invariants(&cfg);
    }

    #[test]
    fn from_sorted_matches_incremental() {
        let cfg = Config::default();
        let ns: Vec<u32> = (0..500).map(|i| i * 2).collect();
        let bulk = VertexBlock::from_sorted_neighbors(&ns, &cfg);
        let mut inc = VertexBlock::new();
        for &u in ns.iter().rev() {
            inc.insert(u, &cfg);
        }
        assert_eq!(bulk.to_vec(), inc.to_vec());
        bulk.check_invariants(&cfg);
        inc.check_invariants(&cfg);
    }

    #[test]
    fn high_degree_reaches_tree_tier() {
        let cfg = Config {
            m: 256,
            ..Config::default()
        };
        let vb = VertexBlock::from_sorted_neighbors(&(0..5_000).collect::<Vec<_>>(), &cfg);
        assert!(matches!(vb.spill.as_deref(), Some(Spill::Tree(_))));
        assert_eq!(vb.degree(), 5_000);
        vb.check_invariants(&cfg);
    }

    #[test]
    fn random_differential() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let cfg = Config {
            m: 128,
            ..Config::default()
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut vb = VertexBlock::new();
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let u = rng.gen_range(0..1_500u32);
            if rng.gen_bool(0.6) {
                assert_eq!(vb.insert(u, &cfg), oracle.insert(u));
            } else {
                assert_eq!(vb.delete(u, &cfg), oracle.remove(&u));
            }
        }
        vb.check_invariants(&cfg);
        assert_eq!(vb.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}
