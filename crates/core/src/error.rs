//! Error taxonomy for the fallible LSGraph API.
//!
//! The engine's original entry points (`with_config`, `from_edges`,
//! `insert_batch`, `delete_batch`) panic on misuse and are kept for
//! ergonomic in-process use. Production callers use the `try_` variants,
//! which surface failures as values:
//!
//! * [`GraphError`] — the caller did something wrong (bad config, bad
//!   vertex id, repairing a healthy vertex).
//! * [`BatchOutcome`] — the batch itself succeeded, but one or more
//!   per-vertex apply tasks panicked and were contained; the affected
//!   vertices are quarantined and listed here.
//! * [`InvariantError`] — a non-panicking structural self-check failed
//!   (see `LsGraph::validate_invariants`).

use std::error::Error;
use std::fmt;

use lsgraph_api::VertexId;

use crate::config::ConfigError;

/// A caller-visible failure from the fallible graph API.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphError {
    /// The supplied [`Config`](crate::Config) failed validation.
    InvalidConfig(ConfigError),
    /// `repair_vertex` was called on a vertex that is not quarantined.
    NotQuarantined(VertexId),
    /// A vertex id at or beyond `num_vertices` was supplied.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The graph's vertex-count bound.
        num_vertices: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidConfig(e) => write!(f, "invalid LSGraph configuration: {e}"),
            GraphError::NotQuarantined(v) => {
                write!(f, "vertex {v} is not quarantined and cannot be repaired")
            }
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range (graph has {num_vertices} vertices)"
            ),
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::InvalidConfig(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for GraphError {
    fn from(e: ConfigError) -> Self {
        GraphError::InvalidConfig(e)
    }
}

/// What happened to a batch applied through `try_insert_batch` /
/// `try_delete_batch` / `try_from_edges`.
///
/// A non-clean outcome is still a *committed* batch: every run whose apply
/// task did not panic took effect, `num_edges` is exact, and the panicked
/// sources are quarantined (degree 0) rather than left half-written.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Edges actually added/removed by the runs that committed.
    pub applied: usize,
    /// Sources whose apply task panicked during *this* batch, now
    /// quarantined. Sorted ascending.
    pub quarantined: Vec<VertexId>,
    /// Edges dropped by quarantining (the pre-batch degrees of the newly
    /// quarantined sources).
    pub edges_lost: usize,
    /// Runs skipped because their source was already quarantined by an
    /// earlier batch.
    pub skipped_quarantined: usize,
}

impl BatchOutcome {
    /// Whether the batch applied with no faults and no skipped runs.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.skipped_quarantined == 0
    }
}

/// A failed structural self-check from `LsGraph::validate_invariants`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InvariantError {
    /// The vertex whose structure is inconsistent, when attributable.
    pub vertex: Option<VertexId>,
    /// Human-readable description of the violated invariant.
    pub detail: String,
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.vertex {
            Some(v) => write!(f, "invariant violated at vertex {v}: {}", self.detail),
            None => write!(f, "invariant violated: {}", self.detail),
        }
    }
}

impl Error for InvariantError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GraphError::VertexOutOfRange {
            vertex: 9,
            num_vertices: 4,
        };
        assert!(e.to_string().contains("vertex 9"));
        assert!(e.to_string().contains("4 vertices"));
        let e = GraphError::NotQuarantined(3);
        assert!(e.to_string().contains("not quarantined"));
        let iv = InvariantError {
            vertex: Some(2),
            detail: "degree mismatch".into(),
        };
        assert!(iv.to_string().contains("vertex 2"));
        assert!(iv.to_string().contains("degree mismatch"));
    }

    #[test]
    fn config_error_converts() {
        let c = crate::Config {
            alpha: 0.5,
            ..Default::default()
        };
        let err = c.validate().unwrap_err();
        let g: GraphError = err.into();
        assert_eq!(g, GraphError::InvalidConfig(err));
        assert!(g.to_string().contains("invalid LSGraph configuration"));
    }

    #[test]
    fn outcome_cleanliness() {
        let mut o = BatchOutcome {
            applied: 10,
            ..Default::default()
        };
        assert!(o.is_clean());
        o.skipped_quarantined = 1;
        assert!(!o.is_clean());
        o.skipped_quarantined = 0;
        o.quarantined.push(5);
        assert!(!o.is_clean());
    }
}
