//! Epoch-based snapshots: wait-free immutable reads under a live writer.
//!
//! [`LsGraph::snapshot`](crate::LsGraph::snapshot) flips the vertex-block
//! directory into a [`GraphSnapshot`]: a `Clone + Send + Sync` handle over a
//! clone of the `Vec<Arc<VertexBlock>>` directory. The flip copies only
//! reference counts — no adjacency payload moves — so taking a snapshot is
//! O(n) pointer bumps and the writer is never paused. Subsequent batches
//! copy-on-write exactly the blocks they touch (see `apply_runs`), so
//! readers traversing the snapshot observe the graph precisely as it was at
//! the flip: snapshot isolation by construction.
//!
//! Reclamation is epoch-based. Every snapshot registers an epoch in the
//! writer's [`EpochRegistry`]; block versions displaced by copy-on-write
//! are *retired* into a pool tagged with the current epoch rather than
//! freed inline. [`EpochRegistry::reclaim`] — run at every batch boundary
//! and when a snapshot drops — frees every retired version older than the
//! oldest live epoch, batching deallocation off the apply hot path. The
//! pool size is exported as the `epoch_reclaim_backlog` gauge, which must
//! return to zero once the last snapshot drops.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use lsgraph_api::fail_point;
use lsgraph_api::{Graph, IterableGraph, LatencyStats, StructStats, VertexId};

use crate::config::Config;
use crate::error::InvariantError;
use crate::stats::Tier;
use crate::vertex::{NeighborIter, VertexBlock};

/// Tracks live snapshot epochs and the retired block versions awaiting
/// reclamation.
///
/// Memory safety never depends on this registry — every block version is
/// reference-counted — but routing displaced versions through an epoch pool
/// moves deallocation off the apply hot path and gives the engine (and
/// `repro check`) an observable reclamation backlog.
pub(crate) struct EpochRegistry {
    /// Latest issued epoch (0 = no snapshot ever taken).
    current: AtomicU64,
    /// Live snapshot count per epoch; empty means no outstanding snapshots.
    live: Mutex<BTreeMap<u64, usize>>,
    /// Retired block versions, each tagged with the epoch current at
    /// retirement time.
    retired: Mutex<Vec<(u64, Arc<VertexBlock>)>>,
}

impl EpochRegistry {
    pub(crate) fn new() -> Self {
        EpochRegistry {
            current: AtomicU64::new(0),
            live: Mutex::new(BTreeMap::new()),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Issues a fresh epoch and marks it live. Called once per snapshot.
    pub(crate) fn register(&self) -> u64 {
        let e = self.current.fetch_add(1, Ordering::SeqCst) + 1;
        let mut live = self.live.lock().unwrap_or_else(|p| p.into_inner());
        *live.entry(e).or_insert(0) += 1;
        e
    }

    /// Drops one live reference to `epoch`. Called once per snapshot drop.
    pub(crate) fn deregister(&self, epoch: u64) {
        let mut live = self.live.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(n) = live.get_mut(&epoch) {
            *n -= 1;
            if *n == 0 {
                live.remove(&epoch);
            }
        }
    }

    /// Parks a displaced block version in the reclamation pool, tagged with
    /// the current epoch.
    pub(crate) fn retire(&self, block: Arc<VertexBlock>) {
        let tag = self.current.load(Ordering::SeqCst);
        self.retired
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push((tag, block));
    }

    /// Frees every retired version no live snapshot can still reference
    /// (retired before the oldest live epoch was registered — a snapshot's
    /// directory clone only ever holds versions current at its flip), then
    /// publishes the remaining pool size as the backlog gauge.
    pub(crate) fn reclaim(&self, stats: &StructStats) {
        fail_point!("epoch_reclaim");
        let min_live = {
            let live = self.live.lock().unwrap_or_else(|p| p.into_inner());
            live.keys().next().copied()
        };
        let mut pool = self.retired.lock().unwrap_or_else(|p| p.into_inner());
        match min_live {
            Some(min) => pool.retain(|&(tag, _)| tag >= min),
            None => pool.clear(),
        }
        stats.record_epoch_backlog(pool.len() as u64);
    }

    /// Retired versions currently awaiting reclamation.
    pub(crate) fn backlog(&self) -> usize {
        self.retired.lock().unwrap_or_else(|p| p.into_inner()).len()
    }
}

/// The frozen state one snapshot shares among its clones.
pub(crate) struct SnapInner {
    pub(crate) blocks: Vec<Arc<VertexBlock>>,
    pub(crate) num_edges: usize,
    pub(crate) cfg: Config,
    pub(crate) quarantined: BTreeSet<VertexId>,
    pub(crate) epoch: u64,
    pub(crate) registry: Arc<EpochRegistry>,
    pub(crate) stats: Arc<StructStats>,
    pub(crate) latency: Arc<LatencyStats>,
}

impl Drop for SnapInner {
    fn drop(&mut self) {
        self.registry.deregister(self.epoch);
        self.stats.record_snapshot_retired();
        // Dropping the last snapshot unblocks its epoch's retired versions;
        // reclaim eagerly so quiescence drives the backlog gauge to zero.
        // Shielded from the `epoch_reclaim` failpoint (and any other panic):
        // unwinding out of `drop` would abort the process.
        let registry = Arc::clone(&self.registry);
        let stats = Arc::clone(&self.stats);
        let _ = catch_unwind(AssertUnwindSafe(move || registry.reclaim(&stats)));
    }
}

/// An immutable point-in-time view of an [`LsGraph`](crate::LsGraph).
///
/// Obtained from [`LsGraph::snapshot`](crate::LsGraph::snapshot); implements
/// [`Graph`]/[`IterableGraph`], so every analytics kernel runs against it
/// unchanged while the writer keeps applying batches. Cloning the handle is
/// O(1) (one reference bump on the shared state), so a single snapshot fans
/// out to any number of reader threads.
///
/// Dropping the last clone deregisters the snapshot's epoch and reclaims
/// whatever retired block versions it was the final holder of.
#[derive(Clone)]
pub struct GraphSnapshot {
    inner: Arc<SnapInner>,
}

impl GraphSnapshot {
    pub(crate) fn new(inner: SnapInner) -> Self {
        GraphSnapshot {
            inner: Arc::new(inner),
        }
    }

    /// The epoch this snapshot registered at its flip (1-based, monotone
    /// across a graph's lifetime).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// The configuration of the graph this snapshot was taken from.
    pub fn config(&self) -> &Config {
        &self.inner.cfg
    }

    /// Whether `v` was quarantined at snapshot time.
    pub fn is_quarantined(&self, v: VertexId) -> bool {
        self.inner.quarantined.contains(&v)
    }

    /// The vertices quarantined at snapshot time, ascending.
    pub fn quarantined_vertices(&self) -> Vec<VertexId> {
        self.inner.quarantined.iter().copied().collect()
    }

    /// The structural-counter sink of the originating graph (live handle —
    /// counters keep moving with the writer; the snapshot freezes the graph,
    /// not its instrumentation).
    pub fn stats(&self) -> &StructStats {
        &self.inner.stats
    }

    /// The tier of vertex `v` at snapshot time.
    pub fn tier(&self, v: VertexId) -> Tier {
        use crate::adjacency::Spill;
        match self.inner.blocks[v as usize].spill() {
            None => Tier::Inline,
            Some(Spill::Array(_)) => Tier::Array,
            Some(Spill::Ria(_)) => Tier::Ria,
            Some(Spill::Pma(_)) => Tier::Pma,
            Some(Spill::Tree(_)) => Tier::HiTree,
            Some(Spill::Compressed(_)) => Tier::Compressed,
        }
    }

    /// Tier tag of `v` plus its adjacency appended to `out` in ascending
    /// order — the checkpoint serialization visitor, letting a checkpoint be
    /// written from a frozen view while the writer keeps going.
    pub fn checkpoint_vertex(&self, v: VertexId, out: &mut Vec<u32>) -> Tier {
        let tier = self.tier(v);
        self.inner.blocks[v as usize].checkpoint_neighbors(out);
        tier
    }

    /// Records one reader-operation latency sample into the originating
    /// graph's `reader` histogram (the `repro mixed` experiment's per-op
    /// probe).
    pub fn record_reader_duration(&self, d: Duration) {
        self.inner.latency.reader.record_duration(d);
    }

    /// Non-panicking structural validation of the frozen view, mirroring
    /// `LsGraph::validate_invariants`: per-block consistency, quarantine
    /// degree-0, and exact edge accounting against the frozen `num_edges`.
    pub fn validate_invariants(&self) -> Result<(), InvariantError> {
        let mut total = 0;
        for (v, vb) in self.inner.blocks.iter().enumerate() {
            vb.validate(&self.inner.cfg)
                .map_err(|detail| InvariantError {
                    vertex: Some(v as VertexId),
                    detail,
                })?;
            total += vb.degree();
        }
        for &q in &self.inner.quarantined {
            if q as usize >= self.inner.blocks.len() {
                return Err(InvariantError {
                    vertex: Some(q),
                    detail: format!(
                        "quarantined vertex out of range (table has {})",
                        self.inner.blocks.len()
                    ),
                });
            }
            let d = self.inner.blocks[q as usize].degree();
            if d != 0 {
                return Err(InvariantError {
                    vertex: Some(q),
                    detail: format!("quarantined vertex has degree {d}, expected 0"),
                });
            }
        }
        if total != self.inner.num_edges {
            return Err(InvariantError {
                vertex: None,
                detail: format!(
                    "edge accounting: degrees sum to {total} but num_edges is {}",
                    self.inner.num_edges
                ),
            });
        }
        Ok(())
    }
}

impl Graph for GraphSnapshot {
    fn num_vertices(&self) -> usize {
        self.inner.blocks.len()
    }

    fn num_edges(&self) -> usize {
        self.inner.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.inner.blocks[v as usize].degree()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.inner.blocks[v as usize].for_each(f);
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.inner.blocks[v as usize].for_each_while(f)
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.inner.blocks[v as usize].contains(u, &self.inner.cfg)
    }
}

impl IterableGraph for GraphSnapshot {
    type NeighborIter<'a> = NeighborIter<'a>;

    fn neighbor_iter(&self, v: VertexId) -> Self::NeighborIter<'_> {
        self.inner.blocks[v as usize].iter()
    }
}
