//! The LSGraph engine: vertex-block table + per-vertex spill containers +
//! the parallel batch-update pipeline (paper §5, Fig. 11).

use lsgraph_api::batch::{max_vertex_id, runs_by_src, sorted_dedup_keys, SrcRun};
use lsgraph_api::fail_point;
use lsgraph_api::{
    DynamicGraph, Edge, Footprint, Graph, IterableGraph, LatencySnapshot, LatencyStats,
    MemoryFootprint, Phase, SnapshotSource, StructSnapshot, StructStats, VertexId,
};
use rayon::prelude::*;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::config::{Config, ConfigError};
use crate::error::{BatchOutcome, GraphError, InvariantError};
use crate::snapshot::{EpochRegistry, GraphSnapshot, SnapInner};
use crate::vertex::VertexBlock;

/// A shared-memory streaming graph engine with locality-centric storage.
///
/// # Examples
///
/// ```
/// use lsgraph_core::LsGraph;
/// use lsgraph_api::{DynamicGraph, Graph, Edge};
///
/// let mut g = LsGraph::new(4);
/// g.insert_batch(&[Edge::new(0, 1), Edge::new(0, 2), Edge::new(1, 2)]);
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.neighbors(0), vec![1, 2]);
/// ```
pub struct LsGraph {
    /// The vertex-block directory. Each block sits behind its own [`Arc`] so
    /// a snapshot ([`LsGraph::snapshot`]) is a clone of this vector —
    /// reference bumps only — and writes copy-on-write exactly the blocks
    /// they touch while any snapshot is outstanding.
    vertices: Vec<Arc<VertexBlock>>,
    cfg: Config,
    num_edges: usize,
    /// Structural observability counters; shared by the parallel apply tasks
    /// (relaxed atomics, see [`StructStats`]) and by outstanding snapshots.
    stats: Arc<StructStats>,
    /// Latency distributions: one `batch_apply` sample per batch, one
    /// `group_apply` sample per per-source run (recorded from the worker
    /// that applied it), one `reader` sample per snapshot read probe.
    latency: Arc<LatencyStats>,
    /// Vertices whose apply task panicked: their adjacency was dropped
    /// (degree 0) so the rest of the graph stays exact. They answer queries
    /// as isolated vertices, are skipped by later batches, and can be
    /// restored with [`LsGraph::repair_vertex`].
    quarantined: BTreeSet<VertexId>,
    /// Snapshot epochs and the retired-block reclamation pool.
    epochs: Arc<EpochRegistry>,
    /// Vertices mutated since the dirty set was last taken — the delta
    /// checkpoint working set. Marked on every committed or panicked apply
    /// run and on every whole-block replacement ([`LsGraph::install_block`]),
    /// so a persistence layer that drains it at a checkpoint freeze
    /// (`take_dirty_vertices`) captures exactly the vertices that changed
    /// since the previous freeze.
    dirty: BTreeSet<VertexId>,
    /// Batches committed so far; stamps [`BatchEvent::seq`].
    batch_seq: u64,
    /// Post-batch observers, notified in registration order after every
    /// committed batch (see [`PostBatchHook`]).
    hooks: Vec<Box<dyn PostBatchHook>>,
}

/// Which pipeline a committed batch went through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchKind {
    /// The batch inserted edges ([`LsGraph::try_insert_batch`]).
    Insert,
    /// The batch deleted edges ([`LsGraph::try_delete_batch`]).
    Delete,
}

/// What a post-batch hook observes: the batch that just committed, its
/// outcome, and a monotone sequence number ordering all batches applied to
/// this graph.
pub struct BatchEvent<'a> {
    /// 1-based position of this batch in the graph's update stream.
    pub seq: u64,
    /// Insert or delete pipeline.
    pub kind: BatchKind,
    /// The raw batch as passed by the caller (duplicates and no-ops
    /// included).
    pub batch: &'a [Edge],
    /// Per-vertex fault accounting for the batch.
    pub outcome: &'a BatchOutcome,
}

/// Observer invoked after every committed batch, while the writer still
/// holds the graph.
///
/// The hook runs on the writer thread, so implementations that do real work
/// should grab what they need — typically an O(1) [`LsGraph::snapshot`] — and
/// hand off to another thread rather than computing inline. The standing-query
/// layer (`lsgraph-queries`) is the canonical consumer.
///
/// `Send + Sync` because [`LsGraph`] itself is shared across the parallel
/// apply tasks; hooks are only ever *called* from the writer thread.
pub trait PostBatchHook: Send + Sync {
    /// Called once per committed batch, in `seq` order.
    fn on_batch(&mut self, graph: &LsGraph, event: &BatchEvent<'_>);
}

/// Result of one panic-isolated parallel apply pass.
struct RunApplyResult {
    /// Summed per-run counts from the runs that committed.
    applied: usize,
    /// Sources whose task panicked, with their pre-batch degrees. Sorted.
    panicked: Vec<(VertexId, usize)>,
    /// Runs skipped because their source was already quarantined.
    skipped_quarantined: usize,
}

/// Raw pointer to the vertex table, shared across the batch-apply tasks.
///
/// Send/Sync are sound because the batch pipeline guarantees each task
/// exclusively owns the vertex-block slots of the sources in its runs (runs
/// are grouped by source id and each source appears in exactly one run).
struct TablePtr(*mut Arc<VertexBlock>);

// SAFETY: see the type-level comment; disjoint-index access only.
unsafe impl Send for TablePtr {}
// SAFETY: see the type-level comment; disjoint-index access only.
unsafe impl Sync for TablePtr {}

impl TablePtr {
    /// Returns a mutable reference to the block slot at `i`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee `i` is in bounds and that no other task
    /// accesses index `i` for the lifetime of the returned reference.
    #[allow(clippy::mut_from_ref)]
    unsafe fn at(&self, i: usize) -> &mut Arc<VertexBlock> {
        // SAFETY: bounds and exclusivity are the caller's contract.
        unsafe { &mut *self.0.add(i) }
    }
}

/// Copy-on-write entry to a directory slot: returns exclusive access to the
/// block, cloning it first (shallow — the spill rides along by reference)
/// when an outstanding snapshot still shares this version.
///
/// Sound without synchronization because the writer holds `&mut self` for
/// the whole batch: no snapshot can be *created* concurrently, so the
/// strong count can only decrease under us. A count of 1 is therefore
/// definitively exclusive; a racing snapshot-drop after we observe > 1
/// costs at most one harmless extra copy. The displaced version goes to the
/// epoch pool rather than being freed inline.
fn cow_block<'a>(
    slot: &'a mut Arc<VertexBlock>,
    stats: &StructStats,
    epochs: &EpochRegistry,
) -> &'a mut VertexBlock {
    if Arc::strong_count(slot) > 1 {
        let old = Arc::clone(slot);
        *slot = Arc::new((**slot).clone());
        stats.record_cow_block_copy();
        epochs.retire(old);
    }
    Arc::get_mut(slot).expect("block exclusive after copy-on-write")
}

impl LsGraph {
    /// Creates an empty graph over `n` vertices with the default (paper)
    /// configuration.
    pub fn new(n: usize) -> Self {
        LsGraph::with_config(n, Config::default())
    }

    /// Creates an empty graph with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (`α <= 1`, misordered
    /// thresholds); use [`LsGraph::try_with_config`] for a fallible variant.
    pub fn with_config(n: usize, cfg: Config) -> Self {
        LsGraph::try_with_config(n, cfg).expect("invalid LSGraph configuration")
    }

    /// Creates an empty graph with an explicit configuration, rejecting an
    /// invalid one as a value instead of panicking.
    pub fn try_with_config(n: usize, cfg: Config) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(LsGraph {
            vertices: (0..n).map(|_| Arc::new(VertexBlock::new())).collect(),
            cfg,
            num_edges: 0,
            stats: Arc::new(StructStats::new()),
            latency: Arc::new(LatencyStats::new()),
            quarantined: BTreeSet::new(),
            epochs: Arc::new(EpochRegistry::new()),
            dirty: BTreeSet::new(),
            batch_seq: 0,
            hooks: Vec::new(),
        })
    }

    /// Bulk-loads a graph from an edge list in parallel.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid; use
    /// [`LsGraph::try_from_edges`] for a fallible variant (which also
    /// surfaces any contained per-vertex build faults).
    pub fn from_edges(n: usize, edges: &[Edge], cfg: Config) -> Self {
        let (g, _outcome) =
            LsGraph::try_from_edges(n, edges, cfg).expect("invalid LSGraph configuration");
        g
    }

    /// Bulk-loads a graph from an edge list in parallel, surfacing failures
    /// as values.
    ///
    /// Returns the graph plus a [`BatchOutcome`]: if a per-vertex build task
    /// panicked, that vertex is quarantined (degree 0) and listed in the
    /// outcome while every other vertex loads normally and `num_edges`
    /// stays exact.
    pub fn try_from_edges(
        n: usize,
        edges: &[Edge],
        cfg: Config,
    ) -> Result<(Self, BatchOutcome), GraphError> {
        let keys = sorted_dedup_keys(edges);
        let n = n.max(max_vertex_id(edges).map_or(0, |m| m as usize + 1));
        let mut g = LsGraph::try_with_config(n, cfg)?;
        let runs = runs_by_src(&keys);
        let failures: Mutex<Vec<VertexId>> = Mutex::new(Vec::new());
        let applied: usize = {
            let ptr = TablePtr(g.vertices.as_mut_ptr());
            let cfg = &g.cfg;
            runs.par_iter()
                .map(|run| {
                    let task = || {
                        fail_point!("apply_run");
                        let ns: Vec<u32> =
                            keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                        // SAFETY: `run.src < n` (the table was sized to the
                        // max id) and runs have pairwise-distinct sources, so
                        // this is the only task touching `vertices[run.src]`.
                        // No snapshot can exist yet (the graph is still being
                        // built), so plain replacement needs no retirement.
                        let slot = unsafe { ptr.at(run.src as usize) };
                        *slot = Arc::new(VertexBlock::from_sorted_neighbors(&ns, cfg));
                        ns.len()
                    };
                    match catch_unwind(AssertUnwindSafe(task)) {
                        Ok(cnt) => cnt,
                        Err(_) => {
                            failures.lock().unwrap().push(run.src);
                            0
                        }
                    }
                })
                .sum()
        };
        let mut quarantined = failures.into_inner().unwrap();
        quarantined.sort_unstable();
        for &src in &quarantined {
            // A panicked build may have left the block partially assigned;
            // force it back to a pristine empty block.
            g.vertices[src as usize] = Arc::new(VertexBlock::new());
            g.quarantined.insert(src);
            g.stats.record_apply_run_panic();
            g.stats.record_vertex_quarantined();
        }
        for run in &runs {
            g.dirty.insert(run.src);
        }
        g.num_edges = applied;
        let outcome = BatchOutcome {
            applied,
            quarantined,
            edges_lost: keys.len() - applied,
            skipped_quarantined: 0,
        };
        Ok((g, outcome))
    }

    /// The engine configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The engine's structural counters (live handle; snapshot with
    /// [`StructStats::snapshot`]).
    pub fn stats(&self) -> &StructStats {
        &self.stats
    }

    /// Snapshot of the structural counters.
    pub fn struct_snapshot(&self) -> StructSnapshot {
        self.stats.snapshot()
    }

    /// The vertex block of `v` (introspection for tier statistics).
    #[inline]
    pub(crate) fn vertex(&self, v: VertexId) -> &VertexBlock {
        &self.vertices[v as usize]
    }

    /// Ensures the vertex table covers ids up to `max_id`.
    fn grow_to(&mut self, max_id: u32) {
        if max_id as usize >= self.vertices.len() {
            self.vertices
                .resize_with(max_id as usize + 1, || Arc::new(VertexBlock::new()));
        }
    }

    /// Replaces `v`'s block wholesale, retiring the displaced version when
    /// an outstanding snapshot still references it. Used by every
    /// whole-block replacement path (quarantine reset, clear, restore,
    /// repair); batched per-edge mutation goes through [`cow_block`]
    /// instead.
    fn install_block(&mut self, v: VertexId, vb: VertexBlock) {
        let old = std::mem::replace(&mut self.vertices[v as usize], Arc::new(vb));
        if Arc::strong_count(&old) > 1 {
            self.epochs.retire(old);
        }
        self.dirty.insert(v);
    }

    /// Applies `op` to each run's vertex block in parallel with per-run
    /// panic isolation.
    ///
    /// A run whose task panics does not poison the batch: sibling runs
    /// commit normally (each task owns its source's block exclusively, so an
    /// unwound task cannot have touched anyone else's data), and the
    /// panicked source is quarantined — its block reset to empty, its id
    /// recorded — so `num_edges` can be kept exact by the caller using the
    /// returned pre-batch degrees. Runs whose source is already quarantined
    /// are skipped entirely.
    fn apply_runs(
        &mut self,
        keys: &[u64],
        runs: &[SrcRun],
        op: impl Fn(&mut VertexBlock, &[u64], &Config, &StructStats) -> usize + Sync,
    ) -> RunApplyResult {
        let failures: Mutex<Vec<(VertexId, usize)>> = Mutex::new(Vec::new());
        let skipped_quarantined;
        let applied = {
            let ptr = TablePtr(self.vertices.as_mut_ptr());
            let cfg = &self.cfg;
            let stats = &*self.stats;
            let latency = &self.latency;
            let epochs = &*self.epochs;
            let quarantined = &self.quarantined;
            let skipped = &Mutex::new(0usize);
            let _apply = stats.time(Phase::Apply);
            let batch_start = Instant::now();
            let n = runs
                .par_iter()
                .map(|run| {
                    if !quarantined.is_empty() && quarantined.contains(&run.src) {
                        *skipped.lock().unwrap() += 1;
                        return 0;
                    }
                    // SAFETY: runs are grouped by distinct source ids and the
                    // table has been grown to cover every id in the batch, so
                    // each slot is mutated by exactly one task.
                    let slot = unsafe { ptr.at(run.src as usize) };
                    let d_pre = slot.degree();
                    let run_start = Instant::now();
                    let task = || {
                        fail_point!("apply_run");
                        let vb = cow_block(slot, stats, epochs);
                        op(vb, &keys[run.start..run.end], cfg, stats)
                    };
                    match catch_unwind(AssertUnwindSafe(task)) {
                        Ok(n) => {
                            latency.group_apply.record_duration(run_start.elapsed());
                            n
                        }
                        Err(_) => {
                            failures.lock().unwrap().push((run.src, d_pre));
                            0
                        }
                    }
                })
                .sum();
            latency.batch_apply.record_duration(batch_start.elapsed());
            skipped_quarantined = *skipped.lock().unwrap();
            n
        };
        let mut panicked = failures.into_inner().unwrap();
        panicked.sort_unstable();
        // Every run that reached its block dirtied it (a committed run
        // mutated it, a panicked run is reset below); runs skipped for
        // quarantine touched nothing.
        for run in runs {
            if !self.quarantined.contains(&run.src) {
                self.dirty.insert(run.src);
            }
        }
        for &(src, _) in &panicked {
            // The panicked task may have left this block arbitrarily
            // corrupt; drop its adjacency and quarantine the vertex. If a
            // snapshot shares the version the panic landed on, it still
            // sees the pre-copy state (the CoW clone happens before any
            // mutation), so retiring it through `install_block` is safe.
            self.install_block(src, VertexBlock::new());
            self.quarantined.insert(src);
            self.stats.record_apply_run_panic();
            self.stats.record_vertex_quarantined();
        }
        RunApplyResult {
            applied,
            panicked,
            skipped_quarantined,
        }
    }

    /// Removes every out-edge of `v`, returning how many were removed
    /// (vertex deletion for directed use; for symmetric graphs pair with
    /// [`LsGraph::clear_vertex_undirected`]).
    pub fn clear_vertex(&mut self, v: VertexId) -> usize {
        let removed = self.vertices[v as usize].degree();
        self.install_block(v, VertexBlock::new());
        self.num_edges -= removed;
        removed
    }

    /// Removes `v`'s out-edges *and* their mirrors from the neighbors'
    /// adjacency — full vertex deletion on a symmetric graph. Returns the
    /// number of directed edges removed.
    pub fn clear_vertex_undirected(&mut self, v: VertexId) -> usize {
        let ns = self.neighbors(v);
        let mirrors: Vec<Edge> = ns.iter().map(|&u| Edge::new(u, v)).collect();
        let back = self.delete_batch(&mirrors);
        back + self.clear_vertex(v)
    }

    /// Inserts a batch, surfacing contained per-vertex faults as a
    /// [`BatchOutcome`] instead of unwinding.
    ///
    /// Semantics match [`DynamicGraph::insert_batch`] for the runs that
    /// commit; a run whose apply task panics quarantines its source (see
    /// [`LsGraph::repair_vertex`]) and `num_edges` stays exact.
    pub fn try_insert_batch(&mut self, batch: &[Edge]) -> Result<BatchOutcome, GraphError> {
        if batch.is_empty() {
            return Ok(BatchOutcome::default());
        }
        let keys = {
            let _t = self.stats.time(Phase::Sort);
            sorted_dedup_keys(batch)
        };
        if let Some(max_id) = max_vertex_id(batch) {
            self.grow_to(max_id);
        }
        let runs = {
            let _t = self.stats.time(Phase::Group);
            runs_by_src(&keys)
        };
        let r = self.apply_runs(&keys, &runs, |vb, run_keys, cfg, stats| {
            let mut n = 0;
            for &k in run_keys {
                if vb.insert_with(k as u32, cfg, stats) {
                    n += 1;
                }
            }
            n
        });
        let edges_lost: usize = r.panicked.iter().map(|&(_, d_pre)| d_pre).sum();
        // Committed runs added `applied` edges; quarantining dropped each
        // failed source's full pre-batch adjacency (its partial in-run
        // mutations were never counted), so the accounting stays exact.
        self.num_edges = self.num_edges + r.applied - edges_lost;
        self.epochs.reclaim(&self.stats);
        let outcome = BatchOutcome {
            applied: r.applied,
            quarantined: r.panicked.iter().map(|&(v, _)| v).collect(),
            edges_lost,
            skipped_quarantined: r.skipped_quarantined,
        };
        self.notify_hooks(BatchKind::Insert, batch, &outcome);
        Ok(outcome)
    }

    /// Deletes a batch, surfacing contained per-vertex faults as a
    /// [`BatchOutcome`] instead of unwinding. See
    /// [`LsGraph::try_insert_batch`].
    pub fn try_delete_batch(&mut self, batch: &[Edge]) -> Result<BatchOutcome, GraphError> {
        if batch.is_empty() {
            return Ok(BatchOutcome::default());
        }
        let keys = {
            let _t = self.stats.time(Phase::Sort);
            sorted_dedup_keys(batch)
        };
        // Ignore runs for vertices beyond the table; those edges cannot
        // exist.
        let n = self.vertices.len() as u64;
        let keys: Vec<u64> = keys.into_iter().filter(|&k| (k >> 32) < n).collect();
        let runs = {
            let _t = self.stats.time(Phase::Group);
            runs_by_src(&keys)
        };
        let r = self.apply_runs(&keys, &runs, |vb, run_keys, cfg, stats| {
            let mut n = 0;
            for &k in run_keys {
                if vb.delete_with(k as u32, cfg, stats) {
                    n += 1;
                }
            }
            n
        });
        let edges_lost: usize = r.panicked.iter().map(|&(_, d_pre)| d_pre).sum();
        self.num_edges -= r.applied + edges_lost;
        self.epochs.reclaim(&self.stats);
        let outcome = BatchOutcome {
            applied: r.applied,
            quarantined: r.panicked.iter().map(|&(v, _)| v).collect(),
            edges_lost,
            skipped_quarantined: r.skipped_quarantined,
        };
        self.notify_hooks(BatchKind::Delete, batch, &outcome);
        Ok(outcome)
    }

    /// Registers a post-batch observer; hooks fire in registration order
    /// after every committed batch.
    pub fn add_post_batch_hook(&mut self, hook: Box<dyn PostBatchHook>) {
        self.hooks.push(hook);
    }

    /// Batches committed so far (the `seq` the next [`BatchEvent`] will
    /// carry is `batch_seq() + 1`).
    pub fn batch_seq(&self) -> u64 {
        self.batch_seq
    }

    /// Stamps the event and fans it out. Hooks are moved out for the call so
    /// they can read `self` (take a snapshot, probe degrees) re-entrantly.
    fn notify_hooks(&mut self, kind: BatchKind, batch: &[Edge], outcome: &BatchOutcome) {
        self.batch_seq += 1;
        if self.hooks.is_empty() {
            return;
        }
        let mut hooks = std::mem::take(&mut self.hooks);
        let event = BatchEvent {
            seq: self.batch_seq,
            kind,
            batch,
            outcome,
        };
        for h in &mut hooks {
            h.on_batch(self, &event);
        }
        // A hook that registered another hook during the call would be lost;
        // keep any additions made re-entrantly.
        hooks.append(&mut self.hooks);
        self.hooks = hooks;
    }

    /// Freezes every eligible cold spill (length past the HITree threshold
    /// `M`) into the gap-encoded compressed tier, returning how many
    /// vertices were frozen. A no-op returning 0 unless the configuration
    /// enables [`Config::compress_cold`]. Quarantined vertices are skipped.
    ///
    /// Each vertex is all-or-nothing: the replacement block is built off to
    /// the side and swapped in via the CoW-aware installer, so a kill at the
    /// `spill_compress` failpoint unwinds to the caller with the vertex
    /// still intact on its previous tier, and outstanding snapshots keep
    /// reading the uncompressed version they captured.
    pub fn compress_cold_vertices(&mut self) -> usize {
        if !self.cfg.compress_cold {
            return 0;
        }
        let mut frozen = 0;
        let mut ns = Vec::new();
        for v in 0..self.vertices.len() as VertexId {
            if self.quarantined.contains(&v) {
                continue;
            }
            let vb = self.vertex(v);
            let eligible = vb.spill().is_some_and(|s| {
                s.len() > self.cfg.m && !matches!(s, crate::adjacency::Spill::Compressed(_))
            });
            if !eligible {
                continue;
            }
            ns.clear();
            vb.checkpoint_neighbors(&mut ns);
            let new_vb = VertexBlock::from_sorted_neighbors(&ns, &self.cfg);
            fail_point!("spill_compress");
            self.install_block(v, new_vb);
            // The codec records to the process-global sink; this engine's
            // own counters see the freeze only once it is actually
            // installed (a killed attempt above must leave them untouched).
            self.stats.record_spill_compression();
            frozen += 1;
        }
        frozen
    }

    /// Tier tag of `v` plus its adjacency appended to `out` in ascending
    /// order, walked tier-natively (see
    /// [`VertexBlock::checkpoint_neighbors`]) — the per-vertex checkpoint
    /// serialization visitor.
    pub fn checkpoint_vertex(&self, v: VertexId, out: &mut Vec<u32>) -> crate::stats::Tier {
        let tier = self.tier(v);
        self.vertices[v as usize].checkpoint_neighbors(out);
        tier
    }

    /// Installs `v`'s adjacency from a strictly-ascending duplicate-free
    /// slice during checkpoint restore, growing the vertex table as needed
    /// and keeping `num_edges` exact. The block's tier is rebuilt
    /// deterministically from the degree ([`VertexBlock::from_sorted_neighbors`]);
    /// a live graph's hysteresis-held tier may legitimately differ, which
    /// only changes layout, never content.
    pub fn restore_vertex_from_sorted(&mut self, v: VertexId, ns: &[u32]) {
        debug_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        self.grow_to(v);
        self.num_edges -= self.vertices[v as usize].degree();
        let vb = VertexBlock::from_sorted_neighbors(ns, &self.cfg);
        self.install_block(v, vb);
        self.num_edges += ns.len();
    }

    /// Re-marks `v` as quarantined during checkpoint restore, so WAL-tail
    /// replay skips the same runs the pre-crash process skipped. The vertex
    /// must currently be empty (quarantined blocks always are).
    pub fn restore_quarantine(&mut self, v: VertexId) -> Result<(), GraphError> {
        if v as usize >= self.vertices.len() {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.vertices.len(),
            });
        }
        debug_assert_eq!(self.vertices[v as usize].degree(), 0);
        self.quarantined.insert(v);
        Ok(())
    }

    /// Whether `v` is quarantined after an apply panic.
    pub fn is_quarantined(&self, v: VertexId) -> bool {
        self.quarantined.contains(&v)
    }

    /// The currently quarantined vertices, ascending.
    pub fn quarantined_vertices(&self) -> Vec<VertexId> {
        self.quarantined.iter().copied().collect()
    }

    /// Replaces the quarantine set wholesale during chain restore: each
    /// checkpoint image records the *complete* quarantine list at its
    /// freeze, so applying a delta supersedes the parent's marks (a vertex
    /// repaired between two freezes leaves quarantine here). Every marked
    /// vertex must currently read as degree 0.
    pub fn restore_quarantine_set(&mut self, vs: &[VertexId]) -> Result<(), GraphError> {
        for &v in vs {
            if v as usize >= self.vertices.len() {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: self.vertices.len(),
                });
            }
            debug_assert_eq!(self.vertices[v as usize].degree(), 0);
        }
        self.quarantined = vs.iter().copied().collect();
        Ok(())
    }

    /// Number of vertices mutated since the dirty set was last drained.
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// The vertices mutated since the last drain, ascending.
    pub fn dirty_vertices(&self) -> Vec<VertexId> {
        self.dirty.iter().copied().collect()
    }

    /// Drains and returns the dirty set (ascending) — the delta-checkpoint
    /// freeze point. Mutations applied after this call re-dirty their
    /// vertices, so the drained set covers exactly the interval since the
    /// previous drain.
    pub fn take_dirty_vertices(&mut self) -> Vec<VertexId> {
        std::mem::take(&mut self.dirty).into_iter().collect()
    }

    /// Clears the dirty set without reading it. A recovery that just
    /// restored from images calls this before WAL replay so the set ends up
    /// describing only post-checkpoint mutations.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Restores a quarantined vertex with a caller-supplied adjacency
    /// (deduplicated and sorted here), returning how many edges were
    /// installed. The vertex leaves quarantine and resumes accepting
    /// batched updates.
    pub fn repair_vertex(
        &mut self,
        v: VertexId,
        neighbors: &[VertexId],
    ) -> Result<usize, GraphError> {
        if v as usize >= self.vertices.len() {
            return Err(GraphError::VertexOutOfRange {
                vertex: v,
                num_vertices: self.vertices.len(),
            });
        }
        if !self.quarantined.remove(&v) {
            return Err(GraphError::NotQuarantined(v));
        }
        let mut ns = neighbors.to_vec();
        ns.sort_unstable();
        ns.dedup();
        let vb = VertexBlock::from_sorted_neighbors(&ns, &self.cfg);
        self.install_block(v, vb);
        // A quarantined block has degree 0, so the whole adjacency is new.
        self.num_edges += ns.len();
        self.stats.record_vertex_repaired();
        Ok(ns.len())
    }

    /// Verifies every structural invariant of the engine.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        let mut total = 0;
        for vb in &self.vertices {
            vb.check_invariants(&self.cfg);
            total += vb.degree();
        }
        for &q in &self.quarantined {
            assert!(
                (q as usize) < self.vertices.len(),
                "quarantined vertex {q} out of range"
            );
            assert_eq!(
                self.vertices[q as usize].degree(),
                0,
                "quarantined vertex {q} must read as degree 0"
            );
        }
        assert_eq!(total, self.num_edges, "edge accounting");
    }

    /// Non-panicking variant of [`LsGraph::check_invariants`]: verifies
    /// per-vertex structural consistency (inline ordering, degree
    /// accounting, spill ordering), quarantine state, and global edge
    /// accounting, reporting the first violation as an [`InvariantError`].
    pub fn validate_invariants(&self) -> Result<(), InvariantError> {
        let mut total = 0;
        for (v, vb) in self.vertices.iter().enumerate() {
            vb.validate(&self.cfg).map_err(|detail| InvariantError {
                vertex: Some(v as VertexId),
                detail,
            })?;
            total += vb.degree();
        }
        for &q in &self.quarantined {
            if q as usize >= self.vertices.len() {
                return Err(InvariantError {
                    vertex: Some(q),
                    detail: format!(
                        "quarantined vertex out of range (table has {})",
                        self.vertices.len()
                    ),
                });
            }
            let d = self.vertices[q as usize].degree();
            if d != 0 {
                return Err(InvariantError {
                    vertex: Some(q),
                    detail: format!("quarantined vertex has degree {d}, expected 0"),
                });
            }
        }
        if total != self.num_edges {
            return Err(InvariantError {
                vertex: None,
                detail: format!(
                    "edge accounting: degrees sum to {total} but num_edges is {}",
                    self.num_edges
                ),
            });
        }
        Ok(())
    }

    /// Index bytes (RIA index arrays, LIA models, slot metadata) versus
    /// total bytes — the paper's Table 3 `I/L` ratio.
    pub fn index_overhead(&self) -> f64 {
        self.footprint().index_ratio()
    }

    /// Freezes the current state into an immutable [`GraphSnapshot`].
    ///
    /// The flip clones the vertex-block directory — per-block reference
    /// bumps, no adjacency payload — and registers an epoch; later batches
    /// copy-on-write the blocks they touch, so the snapshot keeps reading
    /// exactly the state at the flip. Taking a snapshot requires `&self`,
    /// so it interleaves with batches at batch boundaries; the returned
    /// handle is `Clone + Send + Sync` and outlives the graph's borrow, so
    /// readers on other threads proceed wait-free while the writer streams.
    ///
    /// # Examples
    ///
    /// ```
    /// use lsgraph_core::LsGraph;
    /// use lsgraph_api::{DynamicGraph, Graph, Edge};
    ///
    /// let mut g = LsGraph::new(3);
    /// g.insert_batch(&[Edge::new(0, 1)]);
    /// let snap = g.snapshot();
    /// g.insert_batch(&[Edge::new(0, 2)]);
    /// assert_eq!(snap.neighbors(0), vec![1]); // frozen at the flip
    /// assert_eq!(g.neighbors(0), vec![1, 2]); // live view moved on
    /// ```
    pub fn snapshot(&self) -> GraphSnapshot {
        // Clone the directory *before* registering the epoch: if the flip
        // faults here (`snapshot_flip`), unwinding drops the clone and every
        // reference count returns to its pre-flip value — the live graph
        // and all outstanding snapshots are untouched, and neither
        // `snapshots_taken` nor the live-epoch table ever saw the attempt.
        let blocks = self.vertices.clone();
        fail_point!("snapshot_flip");
        let epoch = self.epochs.register();
        self.stats.record_snapshot_taken();
        GraphSnapshot::new(SnapInner {
            blocks,
            num_edges: self.num_edges,
            cfg: self.cfg,
            quarantined: self.quarantined.clone(),
            epoch,
            registry: Arc::clone(&self.epochs),
            stats: Arc::clone(&self.stats),
            latency: Arc::clone(&self.latency),
        })
    }

    /// Retired block versions currently awaiting epoch reclamation.
    ///
    /// Returns to 0 once every snapshot has dropped and a reclaim has run
    /// (batch boundaries and snapshot drops both reclaim).
    pub fn epoch_backlog(&self) -> usize {
        self.epochs.backlog()
    }

    /// Runs an epoch reclamation pass outside a batch boundary, freeing
    /// retired block versions no live snapshot can reference and refreshing
    /// the `epoch_reclaim_backlog` gauge.
    pub fn reclaim_epochs(&self) {
        self.epochs.reclaim(&self.stats);
    }

    /// Shared handle to this engine's structural counters, for registration
    /// with a [`lsgraph_api::MetricsRegistry`] — a sampler thread can then
    /// snapshot them live while batches apply.
    pub fn stats_handle(&self) -> Arc<StructStats> {
        Arc::clone(&self.stats)
    }

    /// Shared handle to this engine's latency histograms (see
    /// [`LsGraph::stats_handle`]).
    pub fn latency_handle(&self) -> Arc<LatencyStats> {
        Arc::clone(&self.latency)
    }
}

impl SnapshotSource for LsGraph {
    type Snapshot = GraphSnapshot;

    fn snapshot(&self) -> GraphSnapshot {
        LsGraph::snapshot(self)
    }
}

impl Graph for LsGraph {
    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].degree()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.vertices[v as usize].for_each(f);
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.vertices[v as usize].for_each_while(f)
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.vertices[v as usize].contains(u, &self.cfg)
    }
}

impl IterableGraph for LsGraph {
    type NeighborIter<'a> = crate::vertex::NeighborIter<'a>;

    fn neighbor_iter(&self, v: VertexId) -> Self::NeighborIter<'_> {
        self.vertices[v as usize].iter()
    }
}

impl DynamicGraph for LsGraph {
    fn insert_batch(&mut self, batch: &[Edge]) -> usize {
        self.try_insert_batch(batch)
            .expect("try_insert_batch has no error modes")
            .applied
    }

    fn delete_batch(&mut self, batch: &[Edge]) -> usize {
        self.try_delete_batch(batch)
            .expect("try_delete_batch has no error modes")
            .applied
    }

    fn struct_stats(&self) -> Option<StructSnapshot> {
        Some(self.stats.snapshot())
    }

    fn latency_stats(&self) -> Option<LatencySnapshot> {
        Some(self.latency.snapshot())
    }

    fn configured_alpha(&self) -> Option<f64> {
        Some(self.cfg.alpha)
    }

    fn reset_instrumentation(&mut self) {
        self.stats.reset();
        self.latency.reset();
    }

    fn validate_structure(&self) -> Result<(), String> {
        self.validate_invariants().map_err(|e| e.to_string())
    }
}

impl MemoryFootprint for LsGraph {
    fn footprint(&self) -> Footprint {
        let blocks = Footprint::new(self.vertices.len() * core::mem::size_of::<VertexBlock>(), 0);
        let spills: Footprint = self
            .vertices
            .par_iter()
            .map(|vb| vb.spill_footprint())
            .reduce(Footprint::default, Footprint::add);
        blocks + spills
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn edges(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs.iter().map(|&(a, b)| Edge::new(a, b)).collect()
    }

    #[test]
    fn empty_graph() {
        let g = LsGraph::new(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(0), Vec::<u32>::new());
        g.check_invariants();
    }

    #[test]
    fn insert_batch_counts_new_edges_only() {
        let mut g = LsGraph::new(4);
        assert_eq!(g.insert_batch(&edges(&[(0, 1), (0, 2), (0, 1)])), 2);
        assert_eq!(g.insert_batch(&edges(&[(0, 1), (1, 0)])), 1);
        assert_eq!(g.num_edges(), 3);
        g.check_invariants();
    }

    #[test]
    fn delete_batch() {
        let mut g = LsGraph::from_edges(3, &edges(&[(0, 1), (0, 2), (1, 2)]), Config::default());
        assert_eq!(g.delete_batch(&edges(&[(0, 1), (2, 0), (9, 9)])), 1);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), vec![2]);
        g.check_invariants();
    }

    #[test]
    fn grows_vertex_table_on_demand() {
        let mut g = LsGraph::new(2);
        g.insert_batch(&edges(&[(10, 20)]));
        assert_eq!(g.num_vertices(), 21);
        assert!(g.has_edge(10, 20));
        g.check_invariants();
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut es = Vec::new();
        for _ in 0..20_000 {
            es.push(Edge::new(rng.gen_range(0..50), rng.gen_range(0..2_000)));
        }
        let bulk = LsGraph::from_edges(2_000, &es, Config::default());
        let mut inc = LsGraph::new(2_000);
        for chunk in es.chunks(997) {
            inc.insert_batch(chunk);
        }
        assert_eq!(bulk.num_edges(), inc.num_edges());
        for v in 0..50u32 {
            assert_eq!(bulk.neighbors(v), inc.neighbors(v), "vertex {v}");
        }
        bulk.check_invariants();
        inc.check_invariants();
    }

    #[test]
    fn insert_then_delete_restores_original() {
        // The paper's throughput loop inserts a batch and then deletes it,
        // asserting the graph is unchanged.
        let mut rng = SmallRng::seed_from_u64(8);
        let base: Vec<Edge> = (0..5_000)
            .map(|_| Edge::new(rng.gen_range(0..100), rng.gen_range(0..1_000)))
            .collect();
        let mut g = LsGraph::from_edges(1_000, &base, Config::default());
        let before: Vec<Vec<u32>> = (0..100).map(|v| g.neighbors(v)).collect();
        let m = g.num_edges();
        let batch: Vec<Edge> = (0..3_000)
            .map(|_| Edge::new(rng.gen_range(0..100), rng.gen_range(1_000..5_000)))
            .collect();
        let added = g.insert_batch(&batch);
        assert!(added > 0);
        let removed = g.delete_batch(&batch);
        assert_eq!(added, removed);
        assert_eq!(g.num_edges(), m);
        for v in 0..100u32 {
            assert_eq!(g.neighbors(v), before[v as usize], "vertex {v}");
        }
        g.check_invariants();
    }

    #[test]
    fn high_degree_vertex_lifecycle() {
        let cfg = Config {
            m: 512,
            ..Config::default()
        };
        let mut g = LsGraph::with_config(10, cfg);
        let batch: Vec<Edge> = (0..8_000u32).map(|i| Edge::new(0, i + 1)).collect();
        assert_eq!(g.insert_batch(&batch), 8_000);
        assert_eq!(g.degree(0), 8_000);
        let ns = g.neighbors(0);
        assert!(ns.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(ns.len(), 8_000);
        g.check_invariants();
        assert_eq!(g.delete_batch(&batch), 8_000);
        assert_eq!(g.degree(0), 0);
        g.check_invariants();
    }

    #[test]
    fn undirected_insert() {
        let mut g = LsGraph::new(4);
        g.insert_batch_undirected(&edges(&[(0, 1), (2, 3)]));
        assert!(g.has_edge(0, 1) && g.has_edge(1, 0));
        assert!(g.has_edge(2, 3) && g.has_edge(3, 2));
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn differential_against_adjacency_map_random_stream() {
        let mut rng = SmallRng::seed_from_u64(77);
        let cfg = Config {
            m: 128,
            ..Config::default()
        };
        let mut g = LsGraph::with_config(300, cfg);
        let mut oracle: Vec<std::collections::BTreeSet<u32>> = vec![Default::default(); 300];
        for round in 0..30 {
            let batch: Vec<Edge> = (0..500)
                .map(|_| Edge::new(rng.gen_range(0..300), rng.gen_range(0..300)))
                .collect();
            if round % 3 == 2 {
                let removed = g.delete_batch(&batch);
                let mut expect = 0;
                for e in dedup(&batch) {
                    if oracle[e.src as usize].remove(&e.dst) {
                        expect += 1;
                    }
                }
                assert_eq!(removed, expect, "round {round}");
            } else {
                let added = g.insert_batch(&batch);
                let mut expect = 0;
                for e in dedup(&batch) {
                    if oracle[e.src as usize].insert(e.dst) {
                        expect += 1;
                    }
                }
                assert_eq!(added, expect, "round {round}");
            }
        }
        g.check_invariants();
        for v in 0..300u32 {
            assert_eq!(
                g.neighbors(v),
                oracle[v as usize].iter().copied().collect::<Vec<_>>(),
                "vertex {v}"
            );
        }
    }

    fn dedup(batch: &[Edge]) -> Vec<Edge> {
        let mut v = batch.to_vec();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn latency_histograms_count_batches_and_runs() {
        let mut g = LsGraph::new(10);
        // 3 batches; each batch has a known number of distinct sources
        // (= per-source runs), so the histogram *counts* are deterministic
        // even though the recorded latencies are not.
        let batches: Vec<Vec<Edge>> = vec![
            edges(&[(0, 1), (0, 2), (1, 2)]), // 2 runs
            edges(&[(2, 3)]),                 // 1 run
            edges(&[(3, 4), (4, 5), (5, 6)]), // 3 runs
        ];
        for b in &batches {
            g.insert_batch(b);
        }
        let lat = g.latency_stats().expect("lsgraph records latency");
        assert_eq!(lat.batch_apply.count(), 3);
        assert_eq!(lat.group_apply.count(), 6);
        assert!(lat.batch_apply.sum >= lat.batch_apply.max);
        g.reset_instrumentation();
        let lat = g.latency_stats().unwrap();
        assert_eq!(lat.batch_apply.count(), 0);
        assert_eq!(lat.group_apply.count(), 0);
        assert_eq!(g.configured_alpha(), Some(g.config().alpha));
    }

    #[test]
    fn footprint_and_index_overhead() {
        let mut rng = SmallRng::seed_from_u64(4);
        let es: Vec<Edge> = (0..50_000)
            .map(|_| Edge::new(rng.gen_range(0..1_000), rng.gen_range(0..10_000)))
            .collect();
        let g = LsGraph::from_edges(10_000, &es, Config::default());
        let fp = g.footprint();
        assert!(fp.total() > 0);
        // Paper Table 3 reports 2.9%–5.4% index overhead; ours is relative
        // to a smaller vertex-block share so allow a loose upper bound.
        assert!(g.index_overhead() < 0.30, "overhead {}", g.index_overhead());
    }

    #[test]
    #[should_panic(expected = "invalid LSGraph configuration")]
    fn invalid_config_rejected() {
        let _ = LsGraph::with_config(1, Config::default().with_alpha(0.9));
    }

    #[test]
    fn clear_vertex_directed() {
        let mut g = LsGraph::from_edges(
            4,
            &edges(&[(0, 1), (0, 2), (1, 0), (2, 3)]),
            Config::default(),
        );
        assert_eq!(g.clear_vertex(0), 2);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(1, 0), "in-edges untouched by directed clear");
        g.check_invariants();
        assert_eq!(g.clear_vertex(3), 0);
    }

    #[test]
    fn clear_vertex_undirected() {
        let mut g = LsGraph::new(5);
        g.insert_batch_undirected(&edges(&[(0, 1), (0, 2), (0, 3), (1, 2)]));
        let removed = g.clear_vertex_undirected(0);
        assert_eq!(removed, 6);
        assert_eq!(g.degree(0), 0);
        for v in 1..4u32 {
            assert!(!g.has_edge(v, 0), "mirror edge ({v},0) must be gone");
        }
        assert!(g.has_edge(1, 2) && g.has_edge(2, 1));
        g.check_invariants();
    }
}
