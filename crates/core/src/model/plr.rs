//! Piecewise linear regression model (paper §3.2 comparison).
//!
//! PLR predicts more accurately than a single line, but training is a scan
//! with error tracking and every prediction starts with a segment lookup —
//! exactly the costs the paper cites for rejecting it in LIA. It is kept here
//! so the `model_cost` Criterion bench can reproduce that trade-off.

use super::PositionModel;
use crate::search::lower_bound;

/// One segment of the piecewise model: valid from `start_key`, predicting
/// `slope * key + intercept`.
#[derive(Clone, Copy, Debug)]
struct Segment {
    start_key: u32,
    slope: f64,
    intercept: f64,
}

/// Greedy bounded-error piecewise linear regression.
#[derive(Clone, Debug)]
pub struct PlrModel {
    starts: Vec<u32>,
    segments: Vec<Segment>,
    slots: usize,
    max_slot: Vec<usize>,
}

impl PlrModel {
    /// Fits segments whose prediction error never exceeds `max_error` slots.
    ///
    /// Uses the shrinking-cone method: extend the current segment while some
    /// line through its origin fits all points within `max_error`.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn fit(keys: &[u32], slots: usize, max_error: usize) -> Self {
        assert!(slots > 0, "a model needs at least one slot");
        let n = keys.len();
        let mut model = PlrModel {
            starts: Vec::new(),
            segments: Vec::new(),
            slots,
            max_slot: Vec::new(),
        };
        if n == 0 {
            return model;
        }
        let scale = if n > 1 {
            (slots - 1) as f64 / (n - 1) as f64
        } else {
            0.0
        };
        let err = max_error as f64;
        let mut seg_start = 0usize;
        while seg_start < n {
            let x0 = keys[seg_start] as f64;
            let y0 = seg_start as f64 * scale;
            // Cone of feasible slopes through (x0, y0).
            let mut lo = 0.0f64;
            let mut hi = f64::INFINITY;
            let mut end = seg_start + 1;
            while end < n {
                let dx = keys[end] as f64 - x0;
                let dy = end as f64 * scale - y0;
                // Feasible slopes for this point: (dy - err)/dx ..= (dy + err)/dx.
                let new_lo = lo.max((dy - err) / dx);
                let new_hi = hi.min((dy + err) / dx);
                if new_lo > new_hi {
                    break;
                }
                lo = new_lo;
                hi = new_hi;
                end += 1;
            }
            let slope = if hi.is_finite() {
                ((lo + hi) / 2.0).max(0.0)
            } else {
                lo.max(0.0)
            };
            model.starts.push(keys[seg_start]);
            model.segments.push(Segment {
                start_key: keys[seg_start],
                slope,
                intercept: y0 - slope * x0,
            });
            let last = end - 1;
            model
                .max_slot
                .push(((last as f64 * scale) as usize + max_error).min(slots - 1));
            seg_start = end;
        }
        model
    }

    /// Number of fitted segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }
}

impl PositionModel for PlrModel {
    fn predict(&self, key: u32) -> usize {
        if self.segments.is_empty() {
            return 0;
        }
        let i = lower_bound(&self.starts, key);
        // `lower_bound` returns the first start >= key; the governing segment
        // is the previous one unless key matches a start exactly.
        let s = if i < self.starts.len() && self.starts[i] == key {
            i
        } else {
            i.saturating_sub(1)
        };
        let seg = &self.segments[s];
        let p = seg.slope * (key as f64 - seg.start_key as f64)
            + seg.slope * seg.start_key as f64
            + seg.intercept;
        let clamped = if p <= 0.0 { 0 } else { p as usize };
        // Cap at the segment's slot ceiling so predictions stay monotone
        // across segment boundaries.
        let lo = if s > 0 {
            self.max_slot[s - 1].saturating_sub(0)
        } else {
            0
        };
        clamped.clamp(lo.min(self.slots - 1), self.max_slot[s])
    }

    fn slots(&self) -> usize {
        self.slots
    }

    fn param_bytes(&self) -> usize {
        self.starts.len() * core::mem::size_of::<u32>()
            + self.segments.len() * core::mem::size_of::<Segment>()
            + self.max_slot.len() * core::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_within_error_bound_on_piecewise_data() {
        // Two regimes: dense then sparse keys.
        let mut keys: Vec<u32> = (0..500u32).collect();
        keys.extend((0..500u32).map(|i| 1000 + i * 50));
        let slots = keys.len();
        let m = PlrModel::fit(&keys, slots, 16);
        let scale = (slots - 1) as f64 / (keys.len() - 1) as f64;
        for (i, &k) in keys.iter().enumerate() {
            let target = i as f64 * scale;
            let got = m.predict(k) as f64;
            assert!(
                (got - target).abs() <= 17.0,
                "key {k} (rank {i}): got {got}, want {target}"
            );
        }
        assert!(m.num_segments() >= 2, "expected multiple segments");
    }

    #[test]
    fn fewer_segments_with_larger_error() {
        let keys: Vec<u32> = (0..2000u32).map(|i| i * i / 16).collect();
        let mut dedup = keys.clone();
        dedup.dedup();
        let tight = PlrModel::fit(&dedup, dedup.len(), 4);
        let loose = PlrModel::fit(&dedup, dedup.len(), 64);
        assert!(loose.num_segments() <= tight.num_segments());
    }

    #[test]
    fn empty_input() {
        let m = PlrModel::fit(&[], 8, 4);
        assert_eq!(m.predict(5), 0);
        assert_eq!(m.num_segments(), 0);
    }

    #[test]
    fn single_key() {
        let m = PlrModel::fit(&[77], 8, 4);
        assert!(m.predict(77) < 8);
    }
}
