//! Learned-index models for LIA (paper §3.1–§3.2).
//!
//! LSGraph approximates the CDF of a sorted key set with a *linear
//! regression* (LR) model: cheap to train, cheap to evaluate, and — crucially
//! for the LIA layout — monotone, so predicted slots never invert key order.
//! A piecewise linear regression (PLR) model is provided for the paper's
//! comparison (§3.2: LR beats PLR by an order of magnitude on update
//! throughput because of training/prediction cost); LSGraph itself always
//! uses LR.

mod linear;
mod plr;

pub use linear::LinearModel;
pub use plr::PlrModel;

/// A monotone model mapping a key to a predicted slot in `0..slots`.
pub trait PositionModel {
    /// Predicts the slot for `key`, clamped into `0..slots`.
    fn predict(&self, key: u32) -> usize;

    /// Number of addressable slots.
    fn slots(&self) -> usize;

    /// Bytes of model parameters (for Table 3 index accounting).
    fn param_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_monotone(model: &dyn PositionModel, keys: &[u32]) {
        let mut prev = 0usize;
        for &k in keys {
            let p = model.predict(k);
            assert!(p >= prev, "model not monotone at key {k}: {p} < {prev}");
            assert!(p < model.slots());
            prev = p;
        }
    }

    #[test]
    fn linear_model_is_monotone_on_skewed_keys() {
        let keys: Vec<u32> = (0..1000u32).map(|i| i * i / 4).collect();
        let mut dedup = keys.clone();
        dedup.dedup();
        let m = LinearModel::fit(&dedup, dedup.len() * 2);
        check_monotone(&m, &dedup);
    }

    #[test]
    fn plr_model_is_monotone() {
        // Strictly increasing but jittery keys (step between 3 and 11).
        let keys: Vec<u32> = (0..500u32).map(|i| i * 7 + (i % 5)).collect();
        let m = PlrModel::fit(&keys, keys.len() * 2, 8);
        check_monotone(&m, &keys);
    }
}
