//! Single linear-regression CDF model.

use super::PositionModel;

/// A least-squares line `slot = slope * key + intercept`, clamped to the slot
/// range and with a non-negative slope so that predictions are monotone.
#[derive(Clone, Copy, Debug)]
pub struct LinearModel {
    slope: f64,
    intercept: f64,
    slots: usize,
}

impl LinearModel {
    /// Fits a model over a sorted, duplicate-free key slice, targeting an
    /// even spread of the keys across `slots` positions.
    ///
    /// Keys are centered before the least-squares solve to keep the
    /// accumulators well-conditioned for large `u32` keys.
    ///
    /// # Panics
    ///
    /// Panics if `slots == 0`.
    pub fn fit(keys: &[u32], slots: usize) -> Self {
        assert!(slots > 0, "a model needs at least one slot");
        let n = keys.len();
        if n <= 1 {
            // Degenerate: map everything to slot 0; a single key has no CDF.
            return LinearModel {
                slope: 0.0,
                intercept: 0.0,
                slots,
            };
        }
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]));
        // Target positions spread the n keys over the slot range.
        let scale = (slots - 1) as f64 / (n - 1) as f64;
        let mean_x = keys.iter().map(|&k| k as f64).sum::<f64>() / n as f64;
        let mean_y = (n - 1) as f64 * scale / 2.0;
        let mut sxy = 0.0;
        let mut sxx = 0.0;
        for (i, &k) in keys.iter().enumerate() {
            let dx = k as f64 - mean_x;
            let dy = i as f64 * scale - mean_y;
            sxy += dx * dy;
            sxx += dx * dx;
        }
        // Keys are strictly increasing, so sxx > 0 and the slope is >= 0
        // (positions increase with keys); clamp defensively anyway.
        let slope = if sxx > 0.0 { (sxy / sxx).max(0.0) } else { 0.0 };
        let intercept = mean_y - slope * mean_x;
        LinearModel {
            slope,
            intercept,
            slots,
        }
    }

    /// Raw (unclamped) prediction, exposed for error-bound tests.
    #[inline]
    pub fn predict_f64(&self, key: u32) -> f64 {
        self.slope * key as f64 + self.intercept
    }
}

impl PositionModel for LinearModel {
    #[inline]
    fn predict(&self, key: u32) -> usize {
        let p = self.predict_f64(key);
        if p <= 0.0 {
            0
        } else {
            (p as usize).min(self.slots - 1)
        }
    }

    #[inline]
    fn slots(&self) -> usize {
        self.slots
    }

    fn param_bytes(&self) -> usize {
        core::mem::size_of::<Self>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_predict_nearly_exactly() {
        let keys: Vec<u32> = (0..1024u32).map(|i| i * 10).collect();
        let m = LinearModel::fit(&keys, 2048);
        for (i, &k) in keys.iter().enumerate() {
            let target = (i as f64 * 2047.0 / 1023.0) as isize;
            let got = m.predict(k) as isize;
            assert!(
                (got - target).abs() <= 1,
                "key {k}: got {got}, want ~{target}"
            );
        }
    }

    #[test]
    fn empty_and_singleton() {
        let m = LinearModel::fit(&[], 16);
        assert_eq!(m.predict(123), 0);
        let m = LinearModel::fit(&[42], 16);
        assert_eq!(m.predict(42), 0);
        assert_eq!(m.slots(), 16);
    }

    #[test]
    fn predictions_clamped_to_range() {
        let keys = [100u32, 200, 300];
        let m = LinearModel::fit(&keys, 8);
        assert_eq!(m.predict(0), 0);
        assert!(m.predict(u32::MAX) < 8);
    }

    #[test]
    fn huge_keys_remain_finite() {
        let keys = [u32::MAX - 2, u32::MAX - 1, u32::MAX];
        let m = LinearModel::fit(&keys, 64);
        for &k in &keys {
            assert!(m.predict(k) < 64);
        }
        assert!(m.predict(u32::MAX) >= m.predict(u32::MAX - 2));
    }

    #[test]
    fn two_keys() {
        let m = LinearModel::fit(&[10, 20], 10);
        assert_eq!(m.predict(10), 0);
        assert_eq!(m.predict(20), 9);
        assert!(m.predict(15) >= 1 && m.predict(15) <= 8);
    }
}
