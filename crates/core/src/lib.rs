//! LSGraph — a locality-centric high-performance streaming graph engine.
//!
//! Rust reproduction of *LSGraph* (Qi et al., EuroSys 2024). The engine
//! stores each vertex's adjacency in a degree-tiered, hierarchically indexed
//! representation:
//!
//! * one cache-line [`vertex block`](vertex::VertexBlock) per vertex with
//!   inline neighbors,
//! * a sorted array, a [`Ria`] (Redundant Indexed Array), or a
//!   [`HiTree`](hitree::HiTree) (LIA internal nodes over RIA/array leaves)
//!   for the spill, chosen by degree,
//!
//! and regulates data movement distance on updates: horizontal movement
//! within/near cache-line blocks first, array expansion by the space
//! amplification factor `α` or vertical movement (child creation) when the
//! locality bound would be exceeded.
//!
//! Batched updates are sorted, grouped by source vertex, and applied one
//! vertex per task without locks; analytics iterate neighbors in sorted
//! order through the [`lsgraph_api::Graph`] trait.
//!
//! # Quick start
//!
//! ```
//! use lsgraph_core::{Config, LsGraph};
//! use lsgraph_api::{DynamicGraph, Graph, Edge};
//!
//! let mut g = LsGraph::with_config(3, Config::default());
//! g.insert_batch_undirected(&[Edge::new(0, 1), Edge::new(1, 2)]);
//! assert_eq!(g.neighbors(1), vec![0, 2]);
//! g.delete_batch_undirected(&[Edge::new(0, 1)]);
//! assert_eq!(g.degree(0), 0);
//! ```

pub mod adjacency;
pub mod codec;
pub mod config;
pub mod error;
pub mod graph;
pub mod hitree;
pub mod model;
pub mod ria;
pub mod search;
pub mod snapshot;
pub mod stats;
pub mod vertex;

pub use codec::{CodecError, CompressedNeighbors};
pub use config::{Config, ConfigError, HighDegreeStore, LiaSearch, MediumStore, BKS, INLINE_CAP};
pub use error::{BatchOutcome, GraphError, InvariantError};
pub use graph::{BatchEvent, BatchKind, LsGraph, PostBatchHook};
pub use hitree::HiTree;
pub use hitree::HiTreeIter;
pub use hitree::SlotOccupancy;
pub use ria::{Ria, RiaIter};
pub use snapshot::GraphSnapshot;
pub use stats::{Tier, TierStats};
pub use vertex::NeighborIter;
