//! Delta-gap LEB128 neighbor compression — the cold spill tier's codec.
//!
//! A sorted duplicate-free adjacency is split into chunks of
//! [`CHUNK`] values. Each chunk stores its first value raw in a skip-pointer
//! array and the remaining values as LEB128 varints of `gap - 1` (gaps are
//! always `>= 1`, so the bias buys one extra bit per byte). A per-chunk byte
//! offset array completes the skip index, so membership probes decode **at
//! most one chunk**: the skip pointers are binary-searched branch-free
//! ([`crate::search`]), then one chunk's gap stream is walked.
//!
//! Codec events are recorded into the process-global
//! [`StructStats`](lsgraph_api::StructStats) sink (the codec sits below the
//! per-engine stats plumbing): `spill_compressions` and
//! `compressed_bytes_saved` at encode time, `compressed_chunks_decoded` per
//! probe decode.

use lsgraph_api::{Footprint, StructStats};

use crate::search;

/// Values per compressed chunk (four cache lines of raw `u32` ids).
pub const CHUNK: usize = 64;

/// A decode failure: the chunk's byte stream does not round-trip.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The gap stream ended before the recorded value count was produced.
    Truncated,
    /// A varint ran past 5 bytes (no valid `u32` encoding does).
    Overlong,
    /// Decoding produced a value that wrapped past `u32::MAX`.
    Overflow,
    /// The gap stream had bytes left after the recorded value count.
    TrailingBytes,
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "gap stream truncated mid-chunk"),
            CodecError::Overlong => write!(f, "varint longer than 5 bytes"),
            CodecError::Overflow => write!(f, "decoded value overflows u32"),
            CodecError::TrailingBytes => write!(f, "gap stream has trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        out.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one LEB128 `u32` from `bytes[*pos..]`, advancing `*pos`.
#[inline]
fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, CodecError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 35 || (shift == 28 && (b & 0x7f) > 0x0f) {
            return Err(if shift >= 35 {
                CodecError::Overlong
            } else {
                CodecError::Overflow
            });
        }
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encodes one chunk's gap stream: `values[0]` is *not* written (it lives in
/// the skip-pointer array); each later value contributes `gap - 1`.
pub fn encode_chunk(values: &[u32], out: &mut Vec<u8>) {
    debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
    for w in values.windows(2) {
        push_varint(out, w[1] - w[0] - 1);
    }
}

/// Decodes one chunk: `first` is the raw first value, `count` the total
/// values in the chunk, `bytes` exactly its gap stream. Rejects truncated,
/// overlong, overflowing, and over-long streams as values.
pub fn decode_chunk(first: u32, count: usize, bytes: &[u8]) -> Result<Vec<u32>, CodecError> {
    let mut out = Vec::with_capacity(count);
    if count == 0 {
        return if bytes.is_empty() {
            Ok(out)
        } else {
            Err(CodecError::TrailingBytes)
        };
    }
    out.push(first);
    let mut cur = first;
    let mut pos = 0usize;
    for _ in 1..count {
        let gap = read_varint(bytes, &mut pos)?;
        cur = cur
            .checked_add(gap)
            .and_then(|c| c.checked_add(1))
            .ok_or(CodecError::Overflow)?;
        out.push(cur);
    }
    if pos != bytes.len() {
        return Err(CodecError::TrailingBytes);
    }
    Ok(out)
}

/// A sorted duplicate-free neighbor set in delta-gap LEB128 chunks with
/// skip pointers.
#[derive(Clone, Debug)]
pub struct CompressedNeighbors {
    /// First value of each chunk (the skip-pointer keys, strictly
    /// ascending).
    first_keys: Vec<u32>,
    /// Byte offset of each chunk's gap stream in `bytes` (chunk `c` spans
    /// `offsets[c]..offsets[c + 1]`, the last chunk ends at `bytes.len()`).
    offsets: Vec<u32>,
    /// Concatenated gap streams.
    bytes: Vec<u8>,
    /// Total stored values.
    len: usize,
}

impl CompressedNeighbors {
    /// Compresses a sorted duplicate-free slice. Records one
    /// `spill_compressions` event and the bytes saved versus raw `u32`
    /// storage into the process-global stats sink.
    pub fn from_sorted(ns: &[u32]) -> Self {
        debug_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        let mut c = CompressedNeighbors {
            first_keys: Vec::with_capacity(ns.len().div_ceil(CHUNK)),
            offsets: Vec::with_capacity(ns.len().div_ceil(CHUNK)),
            bytes: Vec::new(),
            len: ns.len(),
        };
        for chunk in ns.chunks(CHUNK) {
            c.first_keys.push(chunk[0]);
            c.offsets.push(c.bytes.len() as u32);
            encode_chunk(chunk, &mut c.bytes);
        }
        let stats = StructStats::global();
        stats.record_spill_compression();
        stats.record_compressed_bytes_saved(
            std::mem::size_of_val(ns).saturating_sub(c.stored_bytes()) as u64,
        );
        c
    }

    /// Total stored values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunks.
    #[inline]
    pub fn num_chunks(&self) -> usize {
        self.first_keys.len()
    }

    /// Values in chunk `c` (all chunks are full except possibly the last).
    #[inline]
    fn chunk_count(&self, c: usize) -> usize {
        if c + 1 == self.num_chunks() {
            self.len - c * CHUNK
        } else {
            CHUNK
        }
    }

    /// Byte range of chunk `c`'s gap stream.
    #[inline]
    fn chunk_bytes(&self, c: usize) -> &[u8] {
        let start = self.offsets[c] as usize;
        let end = self
            .offsets
            .get(c + 1)
            .map_or(self.bytes.len(), |&o| o as usize);
        &self.bytes[start..end]
    }

    /// Bytes actually stored (gap streams plus the skip index).
    pub fn stored_bytes(&self) -> usize {
        self.bytes.len()
            + self.first_keys.len() * core::mem::size_of::<u32>()
            + self.offsets.len() * core::mem::size_of::<u32>()
    }

    /// Membership probe: branch-free skip-pointer search, then at most one
    /// chunk decode (recorded as `compressed_chunks_decoded`).
    pub fn contains(&self, key: u32) -> bool {
        let Some(c) = search::rightmost_le(&self.first_keys, key) else {
            return false; // key precedes every chunk (or the set is empty)
        };
        if self.first_keys[c] == key {
            return true; // skip-pointer hit, no decode needed
        }
        StructStats::global().record_compressed_chunk_decoded();
        let bytes = self.chunk_bytes(c);
        let mut cur = self.first_keys[c];
        let mut pos = 0usize;
        for _ in 1..self.chunk_count(c) {
            let gap =
                read_varint(bytes, &mut pos).expect("self-encoded chunk streams always decode");
            cur += gap + 1;
            if cur >= key {
                return cur == key;
            }
        }
        false
    }

    /// Applies `f` to every value in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        for v in self.iter() {
            f(v);
        }
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        for v in self.iter() {
            if !f(v) {
                return false;
            }
        }
        true
    }

    /// Collects every value into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Streaming ascending iterator (decodes gap streams on the fly).
    pub fn iter(&self) -> CompressedIter<'_> {
        CompressedIter {
            c: self,
            chunk: 0,
            emitted_in_chunk: 0,
            cur: 0,
            pos: 0,
        }
    }

    /// Payload/index byte split for footprint accounting.
    pub fn footprint(&self) -> Footprint {
        Footprint::new(
            self.bytes.len(),
            self.first_keys.len() * core::mem::size_of::<u32>()
                + self.offsets.len() * core::mem::size_of::<u32>(),
        )
    }

    /// Verifies every structural invariant, including that each chunk's gap
    /// stream decodes cleanly with no trailing bytes.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert_eq!(self.first_keys.len(), self.offsets.len());
        assert_eq!(self.num_chunks(), self.len.div_ceil(CHUNK));
        assert!(
            self.first_keys.windows(2).all(|w| w[0] < w[1]),
            "skip keys unsorted"
        );
        let mut prev: Option<u32> = None;
        for c in 0..self.num_chunks() {
            let vals = decode_chunk(self.first_keys[c], self.chunk_count(c), self.chunk_bytes(c))
                .unwrap_or_else(|e| panic!("chunk {c} does not decode: {e}"));
            for &v in &vals {
                if let Some(p) = prev {
                    assert!(p < v, "order violation across chunks: {p} !< {v}");
                }
                prev = Some(v);
            }
        }
    }
}

/// Streaming ascending iterator over a [`CompressedNeighbors`].
#[derive(Clone, Debug)]
pub struct CompressedIter<'a> {
    c: &'a CompressedNeighbors,
    chunk: usize,
    emitted_in_chunk: usize,
    cur: u32,
    /// Byte position within the current chunk's gap stream.
    pos: usize,
}

impl Iterator for CompressedIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.chunk >= self.c.num_chunks() {
            return None;
        }
        if self.emitted_in_chunk == 0 {
            self.cur = self.c.first_keys[self.chunk];
            self.pos = 0;
        } else {
            let bytes = self.c.chunk_bytes(self.chunk);
            let gap = read_varint(bytes, &mut self.pos)
                .expect("self-encoded chunk streams always decode");
            self.cur += gap + 1;
        }
        self.emitted_in_chunk += 1;
        let v = self.cur;
        if self.emitted_in_chunk == self.c.chunk_count(self.chunk) {
            self.chunk += 1;
            self.emitted_in_chunk = 0;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn round_trips_simple_sets() {
        for ns in [
            vec![],
            vec![7u32],
            vec![0, 1, 2, 3],
            (0..CHUNK as u32).collect::<Vec<_>>(),
            (0..CHUNK as u32 + 1).collect::<Vec<_>>(),
            (0..1_000u32).map(|i| i * 17 + 3).collect::<Vec<_>>(),
        ] {
            let c = CompressedNeighbors::from_sorted(&ns);
            c.check_invariants();
            assert_eq!(c.len(), ns.len());
            assert_eq!(c.to_vec(), ns);
        }
    }

    #[test]
    fn contains_decodes_at_most_one_chunk() {
        let ns: Vec<u32> = (0..10 * CHUNK as u32).map(|i| i * 3).collect();
        let c = CompressedNeighbors::from_sorted(&ns);
        let before = StructStats::global().snapshot().compressed_chunks_decoded;
        for probe in 0..(ns.len() as u32 * 3 + 5) {
            assert_eq!(c.contains(probe), probe % 3 == 0 && ns.contains(&probe));
        }
        let decoded = StructStats::global().snapshot().compressed_chunks_decoded - before;
        assert!(
            decoded <= ns.len() as u64 * 3 + 5,
            "at most one chunk decode per probe, saw {decoded}"
        );
    }

    #[test]
    fn random_sets_round_trip_and_probe_exactly() {
        let mut rng = SmallRng::seed_from_u64(0xC0DEC);
        for case in 0..40 {
            let n = rng.gen_range(0..2_000usize);
            let mut ns: Vec<u32> = (0..n).map(|_| rng.gen_range(0..100_000u32)).collect();
            ns.sort_unstable();
            ns.dedup();
            let c = CompressedNeighbors::from_sorted(&ns);
            c.check_invariants();
            assert_eq!(c.to_vec(), ns, "case {case}");
            let set: std::collections::BTreeSet<u32> = ns.iter().copied().collect();
            for _ in 0..200 {
                let probe = rng.gen_range(0..100_100u32);
                assert_eq!(c.contains(probe), set.contains(&probe), "case {case}");
            }
        }
    }

    #[test]
    fn adversarial_gap_patterns_round_trip() {
        // Minimal gaps, maximal gaps, and alternating extremes — the
        // varint edge cases (1-byte vs 5-byte encodings).
        let dense: Vec<u32> = (0..500).collect();
        let sparse: Vec<u32> = (0..32u32).map(|i| i.wrapping_mul(0x0800_0000)).collect();
        let mut alternating = vec![0u32];
        for i in 1..200u32 {
            let prev = *alternating.last().unwrap();
            let gap = if i % 2 == 0 { 1 } else { 1 << 20 };
            alternating.push(prev + gap);
        }
        let extremes = vec![0u32, 1, u32::MAX - 1, u32::MAX];
        for ns in [dense, sparse, alternating, extremes] {
            assert!(ns.windows(2).all(|w| w[0] < w[1]));
            let c = CompressedNeighbors::from_sorted(&ns);
            c.check_invariants();
            assert_eq!(c.to_vec(), ns);
            for &v in &ns {
                assert!(c.contains(v));
            }
        }
    }

    #[test]
    fn truncated_chunks_are_rejected() {
        let ns: Vec<u32> = (0..CHUNK as u32).map(|i| i * 1_000).collect();
        let mut bytes = Vec::new();
        encode_chunk(&ns, &mut bytes);
        assert_eq!(decode_chunk(ns[0], ns.len(), &bytes).unwrap(), ns);
        // Every proper prefix must be rejected, not silently short-decoded.
        for cut in 0..bytes.len() {
            assert!(
                decode_chunk(ns[0], ns.len(), &bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
        // Trailing garbage is rejected too.
        bytes.push(0);
        assert_eq!(
            decode_chunk(ns[0], ns.len(), &bytes),
            Err(CodecError::TrailingBytes)
        );
    }

    #[test]
    fn malformed_varints_are_rejected() {
        // 6 continuation bytes: no u32 needs more than 5.
        let overlong = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        assert_eq!(decode_chunk(0, 2, &overlong), Err(CodecError::Overlong));
        // 5-byte varint whose top bits overflow 32 bits.
        let overflow = [0xffu8, 0xff, 0xff, 0xff, 0x7f];
        assert_eq!(decode_chunk(0, 2, &overflow), Err(CodecError::Overflow));
        // A decoded gap that wraps past u32::MAX.
        let mut wrap = Vec::new();
        push_varint(&mut wrap, u32::MAX - 1);
        assert_eq!(
            decode_chunk(u32::MAX - 1, 2, &wrap),
            Err(CodecError::Overflow)
        );
    }

    #[test]
    fn dense_adjacency_actually_compresses() {
        let ns: Vec<u32> = (0..10_000u32).map(|i| i * 2).collect();
        let c = CompressedNeighbors::from_sorted(&ns);
        let raw = ns.len() * core::mem::size_of::<u32>();
        assert!(
            c.stored_bytes() * 2 < raw,
            "gap-1 coding of small gaps should at least halve {raw} bytes, got {}",
            c.stored_bytes()
        );
        let fp = c.footprint();
        assert_eq!(fp.payload_bytes + fp.index_bytes, c.stored_bytes());
    }

    #[test]
    fn iterator_streams_across_chunk_boundaries() {
        let ns: Vec<u32> = (0..3 * CHUNK as u32 + 7).map(|i| i * 5 + 1).collect();
        let c = CompressedNeighbors::from_sorted(&ns);
        let mut it = c.iter();
        for &v in &ns {
            assert_eq!(it.next(), Some(v));
        }
        assert_eq!(it.next(), None);
        // for_each_while stops exactly where asked.
        let mut seen = 0;
        assert!(!c.for_each_while(&mut |v| {
            seen += 1;
            v < ns[CHUNK]
        }));
        assert_eq!(seen, CHUNK + 1);
    }
}
