//! Engine introspection: how the degree-tiered hierarchy is populated.
//!
//! The paper's design rests on power-law degree distributions putting almost
//! every vertex in the cheap tiers (Fig. 9); these statistics make that
//! distribution observable, back the EXPERIMENTS.md narrative, and let tests
//! assert that tier transitions actually happen on skewed inputs.

use crate::adjacency::Spill;
use crate::graph::LsGraph;
use crate::hitree::SlotOccupancy;
use lsgraph_api::Graph;

/// Which container currently stores a vertex's spill.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// All neighbors fit in the inline cache line.
    Inline,
    /// Sorted-array spill.
    Array,
    /// RIA spill.
    Ria,
    /// Per-vertex PMA spill (ablation configuration).
    Pma,
    /// HITree spill.
    HiTree,
    /// Gap-encoded compressed cold spill ([`Config::compress_cold`]
    /// only).
    ///
    /// [`Config::compress_cold`]: crate::Config::compress_cold
    Compressed,
}

impl Tier {
    /// The one-byte tag this tier is recorded as in checkpoint images.
    pub fn tag(self) -> u8 {
        match self {
            Tier::Inline => 0,
            Tier::Array => 1,
            Tier::Ria => 2,
            Tier::Pma => 3,
            Tier::HiTree => 4,
            Tier::Compressed => 5,
        }
    }

    /// Inverse of [`Tier::tag`]; `None` for an unknown byte.
    pub fn from_tag(tag: u8) -> Option<Tier> {
        Some(match tag {
            0 => Tier::Inline,
            1 => Tier::Array,
            2 => Tier::Ria,
            3 => Tier::Pma,
            4 => Tier::HiTree,
            5 => Tier::Compressed,
            _ => return None,
        })
    }
}

/// Per-tier vertex and edge counts.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TierStats {
    /// Vertices whose neighbors are entirely inline.
    pub inline_vertices: usize,
    /// Vertices spilling into an array.
    pub array_vertices: usize,
    /// Vertices spilling into a RIA.
    pub ria_vertices: usize,
    /// Vertices spilling into a per-vertex PMA.
    pub pma_vertices: usize,
    /// Vertices spilling into a HITree.
    pub hitree_vertices: usize,
    /// Vertices frozen into the gap-encoded compressed cold tier.
    pub compressed_vertices: usize,
    /// Edges stored inline (including the inline prefix of spilled
    /// vertices).
    pub inline_edges: usize,
    /// Edges stored in spill containers.
    pub spill_edges: usize,
}

impl TierStats {
    /// Total vertices counted.
    pub fn total_vertices(&self) -> usize {
        self.inline_vertices
            + self.array_vertices
            + self.ria_vertices
            + self.pma_vertices
            + self.hitree_vertices
            + self.compressed_vertices
    }
}

impl LsGraph {
    /// The tier of vertex `v`.
    pub fn tier(&self, v: u32) -> Tier {
        match self.vertex(v).spill() {
            None => Tier::Inline,
            Some(Spill::Array(_)) => Tier::Array,
            Some(Spill::Ria(_)) => Tier::Ria,
            Some(Spill::Pma(_)) => Tier::Pma,
            Some(Spill::Tree(_)) => Tier::HiTree,
            Some(Spill::Compressed(_)) => Tier::Compressed,
        }
    }

    /// LIA slot occupancy aggregated over every HITree spill in the graph
    /// (the paper's §3.2 U/E/B/C slot types).
    pub fn lia_slot_occupancy(&self) -> SlotOccupancy {
        let mut occ = SlotOccupancy::default();
        for v in 0..self.num_vertices() as u32 {
            if let Some(Spill::Tree(t)) = self.vertex(v).spill() {
                let o = t.slot_occupancy();
                occ.unused += o.unused;
                occ.edge += o.edge;
                occ.block += o.block;
                occ.child += o.child;
            }
        }
        occ
    }

    /// Tier population statistics across the whole graph.
    pub fn tier_stats(&self) -> TierStats {
        let mut s = TierStats::default();
        for v in 0..self.num_vertices() as u32 {
            let vb = self.vertex(v);
            let deg = vb.degree();
            let spill = vb.spill().map_or(0, Spill::len);
            s.inline_edges += deg - spill;
            s.spill_edges += spill;
            match self.tier(v) {
                Tier::Inline => s.inline_vertices += 1,
                Tier::Array => s.array_vertices += 1,
                Tier::Ria => s.ria_vertices += 1,
                Tier::Pma => s.pma_vertices += 1,
                Tier::HiTree => s.hitree_vertices += 1,
                Tier::Compressed => s.compressed_vertices += 1,
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, INLINE_CAP};
    use lsgraph_api::{DynamicGraph, Edge};

    #[test]
    fn tiers_reflect_degrees() {
        let cfg = Config {
            m: 256,
            ..Config::default()
        };
        let mut g = LsGraph::with_config(4, cfg);
        let mk = |v: u32, d: u32| (0..d).map(move |i| Edge::new(v, i + 1)).collect::<Vec<_>>();
        g.insert_batch(&mk(0, 5)); // inline
        g.insert_batch(&mk(1, 30)); // array
        g.insert_batch(&mk(2, 200)); // ria
        g.insert_batch(&mk(3, 2_000)); // hitree
        assert_eq!(g.tier(0), Tier::Inline);
        assert_eq!(g.tier(1), Tier::Array);
        assert_eq!(g.tier(2), Tier::Ria);
        assert_eq!(g.tier(3), Tier::HiTree);
        let s = g.tier_stats();
        // The table grew to cover the largest destination id (2000).
        assert_eq!(s.total_vertices(), 2_001);
        assert_eq!(s.inline_edges + s.spill_edges, g.num_edges());
        assert_eq!(s.hitree_vertices, 1);
        assert_eq!(s.ria_vertices, 1);
    }

    #[test]
    fn power_law_keeps_most_vertices_inline() {
        use lsgraph_api::Edge;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        // R-MAT-style skew: repeatedly halve the id range with bias, giving
        // a heavy head and a long tail of low-degree vertices.
        let mut rng = SmallRng::seed_from_u64(12);
        let scale = 12u32;
        let n = 1u32 << scale;
        let mut batch = Vec::new();
        for _ in 0..40_000 {
            let mut pick = || {
                let mut x = 0u32;
                for _ in 0..scale {
                    x = (x << 1) | u32::from(rng.gen_bool(0.25));
                }
                x
            };
            batch.push(Edge::new(pick(), pick()));
        }
        let cfg = Config {
            m: 256,
            ..Config::default()
        }; // reachable HITree tier
        let g = LsGraph::from_edges(n as usize, &batch, cfg);
        let s = g.tier_stats();
        assert!(
            s.inline_vertices * 2 > s.total_vertices(),
            "power law should keep most vertices inline: {s:?}"
        );
        assert!(
            s.hitree_vertices >= 1,
            "head vertices should reach HITree: {s:?}"
        );
        assert_eq!(s.inline_edges + s.spill_edges, g.num_edges());
        // Inline capacity bound: inline edges per vertex <= INLINE_CAP.
        assert!(s.inline_edges <= s.total_vertices() * INLINE_CAP);
    }
}
