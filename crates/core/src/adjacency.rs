//! Per-vertex spill containers and the degree-tiered transitions between
//! them (paper §4.1, Fig. 9).
//!
//! Neighbors beyond a vertex's inline cache line spill into one of:
//!
//! * a plain sorted **array** while the spill is at most `A` elements,
//! * a **RIA** up to `M` elements (or a per-vertex **PMA** under the
//!   ablation configuration),
//! * a **HITree** beyond `M` (unless the RIA-only ablation is active).
//!
//! Containers upgrade eagerly when they outgrow their tier and downgrade
//! with 2× hysteresis on deletion so oscillating workloads do not thrash.

use lsgraph_api::fail_point;
use lsgraph_api::trace::{span, SpanKind};
use lsgraph_api::{Footprint, MemoryFootprint, StructStats};
use lsgraph_pma::{Pma, PmaParams};

use crate::codec::CompressedNeighbors;
use crate::config::{Config, HighDegreeStore, MediumStore};
use crate::hitree::HiTree;
use crate::ria::Ria;
use crate::search;

/// Spill storage for one vertex's non-inline neighbors.
#[derive(Clone, Debug)]
pub enum Spill {
    /// Sorted array tier (`<= A`).
    Array(Vec<u32>),
    /// RIA tier (`<= M`).
    Ria(Ria),
    /// Per-vertex PMA tier (ablation replacement for RIA).
    Pma(Pma<u32>),
    /// HITree tier (`> M`).
    Tree(HiTree),
    /// Gap-encoded cold tier (`> M`, [`Config::compress_cold`] only): frozen
    /// delta-gap LEB128 chunks with skip pointers. Read-optimized for
    /// footprint; any write thaws it back to the writable tier first.
    Compressed(CompressedNeighbors),
}

impl Spill {
    /// Builds the right tier for a sorted duplicate-free neighbor slice.
    ///
    /// Under [`Config::compress_cold`], spills past the HITree threshold
    /// `M` freeze straight into the compressed cold tier — this is the path
    /// checkpoint restore takes, so a restored graph re-derives compressed
    /// tiers deterministically from degree + config.
    pub fn from_sorted(ns: &[u32], cfg: &Config) -> Spill {
        if cfg.compress_cold && ns.len() > cfg.m {
            return Spill::Compressed(CompressedNeighbors::from_sorted(ns));
        }
        Spill::from_sorted_writable(ns, cfg)
    }

    /// Builds the writable tier for the slice's length, never the frozen
    /// compressed tier — the thaw target for writes against a compressed
    /// spill.
    pub fn from_sorted_writable(ns: &[u32], cfg: &Config) -> Spill {
        if ns.len() <= cfg.a {
            Spill::Array(ns.to_vec())
        } else if ns.len() <= cfg.m || cfg.high == HighDegreeStore::RiaOnly {
            match cfg.medium {
                MediumStore::Ria => Spill::Ria(Ria::from_sorted(ns, cfg.alpha)),
                MediumStore::Pma => Spill::Pma(Pma::from_sorted(ns, PmaParams::dense())),
            }
        } else {
            Spill::Tree(HiTree::from_sorted(ns, cfg))
        }
    }

    /// Number of stored neighbors.
    pub fn len(&self) -> usize {
        match self {
            Spill::Array(v) => v.len(),
            Spill::Ria(r) => r.len(),
            Spill::Pma(p) => p.len(),
            Spill::Tree(t) => t.len(),
            Spill::Compressed(c) => c.len(),
        }
    }

    /// Whether the spill is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns whether `u` is present.
    pub fn contains(&self, u: u32, cfg: &Config) -> bool {
        match self {
            Spill::Array(v) => search::find(v, u).is_ok(),
            Spill::Ria(r) => r.contains(u),
            Spill::Pma(p) => p.contains(u),
            Spill::Tree(t) => t.contains(u, cfg),
            Spill::Compressed(c) => c.contains(u),
        }
    }

    /// Inserts `u`, upgrading the tier if needed; returns whether it was
    /// added. Records into the process-global [`StructStats`] sink.
    pub fn insert(&mut self, u: u32, cfg: &Config) -> bool {
        self.insert_with(u, cfg, StructStats::global())
    }

    /// Inserts `u`, recording structural movement into `stats`.
    pub fn insert_with(&mut self, u: u32, cfg: &Config, stats: &StructStats) -> bool {
        self.maybe_upgrade(cfg, stats);
        match self {
            Spill::Array(v) => match search::find(v, u) {
                Ok(_) => false,
                Err(i) => {
                    stats.record_arr_shift((v.len() - i) as u64);
                    v.insert(i, u);
                    true
                }
            },
            Spill::Ria(r) => r.insert_with(u, stats).inserted(),
            Spill::Pma(p) => p.insert(u),
            Spill::Tree(t) => t.insert_with(u, cfg, stats),
            Spill::Compressed(_) => unreachable!("maybe_upgrade thaws compressed spills"),
        }
    }

    /// Deletes `u`, downgrading the tier with hysteresis; returns whether it
    /// was present. Records into the process-global [`StructStats`] sink.
    pub fn delete(&mut self, u: u32, cfg: &Config) -> bool {
        self.delete_with(u, cfg, StructStats::global())
    }

    /// Deletes `u`, recording structural movement into `stats`.
    pub fn delete_with(&mut self, u: u32, cfg: &Config, stats: &StructStats) -> bool {
        // A frozen spill cannot absorb writes; thaw it to the writable tier
        // first (misses pay the thaw too, matching insert's upgrade path).
        self.thaw(cfg, stats);
        let removed = match self {
            Spill::Array(v) => match search::find(v, u) {
                Ok(i) => {
                    v.remove(i);
                    stats.record_arr_shift((v.len() - i) as u64);
                    true
                }
                Err(_) => false,
            },
            Spill::Ria(r) => r.delete_with(u, stats),
            Spill::Pma(p) => p.delete(u),
            Spill::Tree(t) => t.delete_with(u, cfg, stats),
            Spill::Compressed(_) => unreachable!("thawed above"),
        };
        if removed {
            self.maybe_downgrade(cfg, stats);
        }
        removed
    }

    /// Removes and returns the smallest neighbor (used to refill a vertex
    /// block's inline line after an inline delete).
    pub fn pop_min(&mut self, cfg: &Config) -> Option<u32> {
        self.pop_min_with(cfg, StructStats::global())
    }

    /// [`Spill::pop_min`] recording structural movement into `stats`.
    pub fn pop_min_with(&mut self, cfg: &Config, stats: &StructStats) -> Option<u32> {
        let min = match self {
            Spill::Array(v) => v.first().copied(),
            Spill::Ria(r) => {
                let mut m = None;
                r.for_each_while(|x| {
                    m = Some(x);
                    false
                });
                m
            }
            Spill::Pma(p) => {
                let mut m = None;
                p.for_each_range_while(0, u32::MAX, |x| {
                    m = Some(x);
                    false
                });
                m
            }
            Spill::Tree(t) => {
                let mut m = None;
                t.for_each_while(&mut |x| {
                    m = Some(x);
                    false
                });
                m
            }
            Spill::Compressed(c) => c.iter().next(),
        }?;
        let removed = self.delete_with(min, cfg, stats);
        debug_assert!(removed);
        Some(min)
    }

    /// Applies `f` to every neighbor in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        match self {
            Spill::Array(v) => {
                for &x in v {
                    f(x);
                }
            }
            Spill::Ria(r) => r.for_each(f),
            Spill::Pma(p) => p.for_each(&mut *f),
            Spill::Tree(t) => t.for_each(f),
            Spill::Compressed(c) => c.for_each(f),
        }
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        match self {
            Spill::Array(v) => {
                for &x in v {
                    if !f(x) {
                        return false;
                    }
                }
                true
            }
            Spill::Ria(r) => r.for_each_while(f),
            Spill::Pma(p) => p.for_each_range_while(0, u32::MAX, &mut *f),
            Spill::Tree(t) => t.for_each_while(f),
            Spill::Compressed(c) => c.for_each_while(f),
        }
    }

    /// Collects all neighbors into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(&mut |x| v.push(x));
        v
    }

    /// Appends every neighbor to `out` in ascending order, walking each
    /// tier's container natively — the checkpoint serialization visitor:
    ///
    /// * **Array**: one contiguous slice copy;
    /// * **RIA**: block-by-block via the redundant index array
    ///   ([`Ria::for_each_block`]), asserting the index/first-element
    ///   redundancy so a corrupt index cannot serialize silently;
    /// * **PMA** (ablation): occupied slots in order;
    /// * **HITree**: the tree's ascending iterator.
    pub fn checkpoint_extend(&self, out: &mut Vec<u32>) {
        match self {
            Spill::Array(v) => out.extend_from_slice(v),
            Spill::Ria(r) => r.for_each_block(|first, block| {
                debug_assert_eq!(
                    block.first().copied(),
                    (!block.is_empty()).then_some(first),
                    "RIA index entry disagrees with its block"
                );
                out.extend_from_slice(block);
            }),
            Spill::Pma(p) => out.extend(p.iter()),
            Spill::Tree(t) => out.extend(t.iter()),
            Spill::Compressed(c) => out.extend(c.iter()),
        }
    }

    /// Iterates neighbors in ascending order.
    pub fn iter(&self) -> SpillIter<'_> {
        match self {
            Spill::Array(v) => SpillIter::Arr(v.iter()),
            Spill::Ria(r) => SpillIter::Ria(r.iter()),
            Spill::Pma(p) => SpillIter::Pma(p.iter()),
            Spill::Tree(t) => SpillIter::Tree(t.iter()),
            Spill::Compressed(c) => SpillIter::Compressed(c.iter()),
        }
    }

    /// Thaws a compressed spill back to its writable tier ahead of a write;
    /// a no-op on every other tier. The `spill_compress` failpoint covers
    /// the decode window: a kill here unwinds before `self` is replaced, so
    /// the vertex keeps its frozen tier intact.
    fn thaw(&mut self, cfg: &Config, stats: &StructStats) {
        if let Spill::Compressed(c) = self {
            fail_point!("spill_compress");
            let ns = c.to_vec();
            *self = Spill::from_sorted_writable(&ns, cfg);
            stats.record_spill_thaw();
        }
    }

    /// Upgrades to the next tier ahead of an insert when this one is full.
    /// Compressed spills thaw here: the caller is about to write.
    fn maybe_upgrade(&mut self, cfg: &Config, stats: &StructStats) {
        self.thaw(cfg, stats);
        let next = match self {
            Spill::Array(v) if v.len() >= cfg.a => true,
            Spill::Ria(r) if r.len() >= cfg.m && cfg.high == HighDegreeStore::HiTree => true,
            Spill::Pma(p) if p.len() >= cfg.m && cfg.high == HighDegreeStore::HiTree => true,
            _ => false,
        };
        if next {
            let _span = span(SpanKind::TierUpgrade);
            fail_point!("tier_upgrade");
            let ns = self.to_vec();
            *self = match self {
                Spill::Array(_) => match cfg.medium {
                    MediumStore::Ria => Spill::Ria(Ria::from_sorted(&ns, cfg.alpha)),
                    MediumStore::Pma => Spill::Pma(Pma::from_sorted(&ns, PmaParams::dense())),
                },
                Spill::Ria(_) | Spill::Pma(_) => Spill::Tree(HiTree::from_sorted(&ns, cfg)),
                Spill::Tree(_) | Spill::Compressed(_) => unreachable!(),
            };
            stats.record_tier_upgrade();
        }
    }

    /// Downgrades with 2× hysteresis after deletions.
    fn maybe_downgrade(&mut self, cfg: &Config, stats: &StructStats) {
        let rebuild = match self {
            Spill::Array(_) => false,
            Spill::Ria(r) => r.len() * 2 < cfg.a,
            Spill::Pma(p) => p.len() * 2 < cfg.a,
            Spill::Tree(t) => t.len() * 2 < cfg.m,
            // Frozen spills never shrink in place: a delete thaws first.
            Spill::Compressed(_) => false,
        };
        if rebuild {
            fail_point!("spill_downgrade");
            let ns = self.to_vec();
            *self = Spill::from_sorted(&ns, cfg);
            stats.record_tier_downgrade();
        }
    }
}

/// Ascending iterator over a [`Spill`] container.
pub enum SpillIter<'a> {
    /// Array tier.
    Arr(core::slice::Iter<'a, u32>),
    /// RIA tier.
    Ria(crate::ria::RiaIter<'a>),
    /// PMA tier (ablation).
    Pma(lsgraph_pma::PmaIter<'a, u32>),
    /// HITree tier.
    Tree(crate::hitree::HiTreeIter<'a>),
    /// Compressed cold tier (streaming gap decode).
    Compressed(crate::codec::CompressedIter<'a>),
}

impl Iterator for SpillIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            SpillIter::Arr(it) => it.next().copied(),
            SpillIter::Ria(it) => it.next(),
            SpillIter::Pma(it) => it.next(),
            SpillIter::Tree(it) => it.next(),
            SpillIter::Compressed(it) => it.next(),
        }
    }
}

impl MemoryFootprint for Spill {
    fn footprint(&self) -> Footprint {
        match self {
            Spill::Array(v) => Footprint::new(v.capacity() * core::mem::size_of::<u32>(), 0),
            Spill::Ria(r) => r.footprint(),
            Spill::Pma(p) => p.footprint(),
            Spill::Tree(t) => t.footprint(),
            Spill::Compressed(c) => c.footprint(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LiaSearch;

    fn cfg() -> Config {
        Config {
            m: 256, // keep tier transitions reachable in small tests
            ..Config::default()
        }
    }

    #[test]
    fn grows_through_every_tier() {
        let cfg = cfg();
        let mut s = Spill::Array(Vec::new());
        for u in 0..1_000u32 {
            assert!(s.insert(u, &cfg), "insert {u}");
        }
        assert!(matches!(s, Spill::Tree(_)), "expected HITree tier");
        assert_eq!(s.len(), 1_000);
        assert_eq!(s.to_vec(), (0..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn stops_at_ria_under_riaonly_ablation() {
        let mut c = cfg();
        c.high = HighDegreeStore::RiaOnly;
        let mut s = Spill::Array(Vec::new());
        for u in 0..1_000u32 {
            s.insert(u, &c);
        }
        assert!(matches!(s, Spill::Ria(_)), "ablation should cap at RIA");
        assert_eq!(s.len(), 1_000);
    }

    #[test]
    fn pma_ablation_replaces_ria() {
        let mut c = cfg();
        c.medium = MediumStore::Pma;
        let mut s = Spill::Array(Vec::new());
        for u in 0..100u32 {
            s.insert(u, &c);
        }
        assert!(matches!(s, Spill::Pma(_)));
        for u in 0..100u32 {
            assert!(s.contains(u, &c));
        }
    }

    #[test]
    fn downgrades_with_hysteresis() {
        let cfg = cfg();
        let mut s = Spill::from_sorted(&(0..1_000).collect::<Vec<_>>(), &cfg);
        assert!(matches!(s, Spill::Tree(_)));
        for u in 0..960u32 {
            assert!(s.delete(u, &cfg), "delete {u}");
        }
        assert!(!matches!(s, Spill::Tree(_)), "should have downgraded");
        assert_eq!(s.to_vec(), (960..1_000).collect::<Vec<_>>());
    }

    #[test]
    fn pop_min_across_tiers() {
        let cfg = cfg();
        for n in [10usize, 100, 600] {
            let mut s =
                Spill::from_sorted(&(0..n as u32).map(|i| i * 2 + 4).collect::<Vec<_>>(), &cfg);
            assert_eq!(s.pop_min(&cfg), Some(4));
            assert_eq!(s.pop_min(&cfg), Some(6));
            assert_eq!(s.len(), n - 2);
        }
        let mut empty = Spill::Array(Vec::new());
        assert_eq!(empty.pop_min(&cfg), None);
    }

    #[test]
    fn binary_search_ablation_same_results() {
        let mut c = cfg();
        c.lia_search = LiaSearch::Binary;
        let mut s = Spill::Array(Vec::new());
        for u in (0..2_000u32).rev() {
            s.insert(u, &c);
        }
        assert_eq!(s.len(), 2_000);
        for u in (0..2_000).step_by(13) {
            assert!(s.contains(u, &c));
        }
        assert!(!s.contains(5_000, &c));
    }

    #[test]
    fn compressed_tier_freezes_and_thaws() {
        let c = cfg().with_compress_cold(true);
        let ns: Vec<u32> = (0..600u32).map(|i| i * 2).collect();
        let mut s = Spill::from_sorted(&ns, &c);
        assert!(matches!(s, Spill::Compressed(_)), "len > m should freeze");
        assert_eq!(s.len(), 600);
        assert_eq!(s.to_vec(), ns);
        assert_eq!(s.iter().collect::<Vec<_>>(), ns);
        for u in (0..1_200u32).step_by(17) {
            assert_eq!(s.contains(u, &c), u % 2 == 0 && u < 1_200);
        }
        // Any insert thaws back to the writable tier for that degree.
        assert!(s.insert(1, &c));
        assert!(matches!(s, Spill::Tree(_)), "thaw target is the HITree");
        assert!(s.contains(1, &c));
        assert_eq!(s.len(), 601);
        // Deletes thaw too; a miss still pays the thaw (it is a write path).
        let mut s = Spill::from_sorted(&ns, &c);
        assert!(s.delete(0, &c));
        assert!(!matches!(s, Spill::Compressed(_)));
        assert_eq!(s.len(), 599);
        // With the knob off the same slice stays on the writable ladder.
        let s = Spill::from_sorted(&ns, &cfg());
        assert!(matches!(s, Spill::Tree(_)));
    }

    #[test]
    fn duplicate_and_missing_handling_each_tier() {
        let cfg = cfg();
        for n in [8usize, 64, 600] {
            let ns: Vec<u32> = (0..n as u32).map(|i| i * 3).collect();
            let mut s = Spill::from_sorted(&ns, &cfg);
            assert!(!s.insert(0, &cfg), "dup at n={n}");
            assert!(!s.delete(1, &cfg), "missing at n={n}");
            assert_eq!(s.len(), n);
        }
    }
}
