//! HITree — the *Hybrid Indexed Tree* (paper §3.2, Fig. 8).
//!
//! High-degree vertices store their spill neighbors in a HITree: LIA internal
//! nodes (learned placement, horizontal-then-vertical conflict resolution)
//! over RIA or array leaves. The hybrid combines the PMA-like cache locality
//! of gapped arrays with the bounded data movement of trees.

mod iter;
mod lia;
mod node;
pub mod typevec;

pub use iter::HiTreeIter;
pub use lia::Lia;
pub use node::Node;

use lsgraph_api::{Footprint, MemoryFootprint, StructStats};

use crate::config::Config;

/// LIA slot occupancy by slot type, aggregated over a subtree (the paper's
/// §3.2 U/E/B/C entries).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlotOccupancy {
    /// Unused (free) slots.
    pub unused: usize,
    /// Exact-placed edge slots.
    pub edge: usize,
    /// Slots inside packed sorted prefixes.
    pub block: usize,
    /// Slots of blocks delegated to children.
    pub child: usize,
}

impl SlotOccupancy {
    /// Total slots counted.
    pub fn total(&self) -> usize {
        self.unused + self.edge + self.block + self.child
    }
}

/// An ordered `u32` set stored as a hybrid indexed tree.
#[derive(Clone, Debug)]
pub struct HiTree {
    root: Node,
}

impl HiTree {
    /// Bulk-loads a HITree from a sorted duplicate-free slice.
    pub fn from_sorted(ns: &[u32], cfg: &Config) -> Self {
        HiTree {
            root: Node::from_sorted(ns, cfg, 0),
        }
    }

    /// Creates an empty tree.
    pub fn new(cfg: &Config) -> Self {
        HiTree::from_sorted(&[], cfg)
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.root.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.root.is_empty()
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u32, cfg: &Config) -> bool {
        self.root.contains(key, cfg)
    }

    /// Inserts `key`; returns whether it was added (false = duplicate).
    /// Records into the process-global [`StructStats`] sink.
    pub fn insert(&mut self, key: u32, cfg: &Config) -> bool {
        self.insert_with(key, cfg, StructStats::global())
    }

    /// Inserts `key`, recording structural movement into `stats`.
    pub fn insert_with(&mut self, key: u32, cfg: &Config, stats: &StructStats) -> bool {
        self.root.insert(key, cfg, 0, stats)
    }

    /// Deletes `key`; returns whether it was present. Records into the
    /// process-global [`StructStats`] sink.
    pub fn delete(&mut self, key: u32, cfg: &Config) -> bool {
        self.delete_with(key, cfg, StructStats::global())
    }

    /// Deletes `key`, recording structural movement into `stats`.
    pub fn delete_with(&mut self, key: u32, cfg: &Config, stats: &StructStats) -> bool {
        self.root.delete(key, cfg, 0, stats)
    }

    /// LIA slot occupancy aggregated over every LIA node in the tree.
    pub fn slot_occupancy(&self) -> SlotOccupancy {
        let mut occ = SlotOccupancy::default();
        self.root.add_slot_occupancy(&mut occ);
        occ
    }

    /// Applies `f` to every element in ascending order (the paper's
    /// *Traverse* operation backing `EdgeMap`).
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        self.root.for_each(f);
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        self.root.for_each_while(f)
    }

    /// Collects all elements into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        self.root.to_vec()
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> HiTreeIter<'_> {
        HiTreeIter::new(&self.root)
    }

    /// Verifies structural invariants recursively.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self, cfg: &Config) {
        self.root.check_invariants(cfg);
    }
}

impl MemoryFootprint for HiTree {
    fn footprint(&self) -> Footprint {
        self.root.footprint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, LiaSearch};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn small_cfg() -> Config {
        // Small M so tests exercise LIA nodes without huge inputs.
        Config {
            m: 128,
            ..Config::default()
        }
    }

    #[test]
    fn bulkload_roundtrip_across_kinds() {
        let cfg = small_cfg();
        for n in [0usize, 1, 30, 33, 100, 129, 1000, 5000] {
            let v: Vec<u32> = (0..n as u32).map(|i| i * 7 + 3).collect();
            let t = HiTree::from_sorted(&v, &cfg);
            t.check_invariants(&cfg);
            assert_eq!(t.to_vec(), v, "n = {n}");
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn bulkload_uses_lia_above_m() {
        let cfg = small_cfg();
        let v: Vec<u32> = (0..1000u32).collect();
        let t = HiTree::from_sorted(&v, &cfg);
        assert!(matches!(t.root, Node::Lia(_)));
    }

    #[test]
    fn insert_into_lia_all_paths() {
        let cfg = small_cfg();
        // Bulk-load a skewed set, then hammer one region to force the
        // U → E → B → C progression.
        let v: Vec<u32> = (0..500u32).map(|i| i * 20).collect();
        let mut t = HiTree::from_sorted(&v, &cfg);
        let mut oracle: std::collections::BTreeSet<u32> = v.iter().copied().collect();
        for k in 3000..3600u32 {
            assert_eq!(t.insert(k, &cfg), oracle.insert(k), "key {k}");
        }
        t.check_invariants(&cfg);
        assert_eq!(t.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
    }

    #[test]
    fn random_differential_vs_btreeset() {
        let cfg = small_cfg();
        let mut rng = SmallRng::seed_from_u64(42);
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for step in 0..30_000 {
            let k = rng.gen_range(0..5_000u32);
            if rng.gen_bool(0.65) {
                assert_eq!(t.insert(k, &cfg), oracle.insert(k), "insert {k} at {step}");
            } else {
                assert_eq!(t.delete(k, &cfg), oracle.remove(&k), "delete {k} at {step}");
            }
            assert_eq!(t.len(), oracle.len());
        }
        t.check_invariants(&cfg);
        assert_eq!(t.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
        for k in (0..5_000).step_by(7) {
            assert_eq!(t.contains(k, &cfg), oracle.contains(&k), "contains {k}");
        }
    }

    #[test]
    fn binary_search_mode_behaves_identically() {
        let mut cfg = small_cfg();
        cfg.lia_search = LiaSearch::Binary;
        let mut rng = SmallRng::seed_from_u64(9);
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..15_000 {
            let k = rng.gen_range(0..3_000u32);
            if rng.gen_bool(0.7) {
                assert_eq!(t.insert(k, &cfg), oracle.insert(k));
            } else {
                assert_eq!(t.delete(k, &cfg), oracle.remove(&k));
            }
        }
        t.check_invariants(&cfg);
        assert_eq!(t.to_vec(), oracle.iter().copied().collect::<Vec<_>>());
        for k in 0..3_000 {
            assert_eq!(t.contains(k, &cfg), oracle.contains(&k), "contains {k}");
        }
    }

    #[test]
    fn clustered_inserts_create_children_vertical_movement() {
        let cfg = small_cfg();
        // Spread bulk-load, then insert a dense cluster into one model region
        // so a block must overflow into a child (vertical movement).
        let v: Vec<u32> = (0..300u32).map(|i| i * 1000).collect();
        let mut t = HiTree::from_sorted(&v, &cfg);
        for k in 150_000..150_200u32 {
            t.insert(k, &cfg);
        }
        t.check_invariants(&cfg);
        // 300 bulk-loaded + 200 inserted, minus the duplicate 150_000.
        assert_eq!(t.len(), 499);
        let all = t.to_vec();
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        for k in 150_000..150_200 {
            assert!(t.contains(k, &cfg), "clustered key {k}");
        }
    }

    #[test]
    fn growth_from_empty_crosses_every_tier() {
        let cfg = small_cfg();
        let mut t = HiTree::new(&cfg);
        for k in 0..2_000u32 {
            assert!(t.insert(k, &cfg));
        }
        t.check_invariants(&cfg);
        assert_eq!(t.len(), 2_000);
        assert!(
            matches!(t.root, Node::Lia(_)),
            "should have upgraded to LIA"
        );
    }

    #[test]
    fn delete_down_to_empty() {
        let cfg = small_cfg();
        let v: Vec<u32> = (0..400).collect();
        let mut t = HiTree::from_sorted(&v, &cfg);
        for k in 0..400 {
            assert!(t.delete(k, &cfg), "delete {k}");
        }
        assert!(t.is_empty());
        t.check_invariants(&cfg);
        assert!(!t.delete(0, &cfg));
        assert!(t.insert(7, &cfg));
        assert_eq!(t.to_vec(), vec![7]);
    }

    #[test]
    fn for_each_while_early_exit() {
        let cfg = small_cfg();
        let v: Vec<u32> = (0..1000).collect();
        let t = HiTree::from_sorted(&v, &cfg);
        let mut n = 0;
        assert!(!t.for_each_while(&mut |_| {
            n += 1;
            n < 10
        }));
        assert_eq!(n, 10);
    }

    #[test]
    fn footprint_grows_with_content() {
        let cfg = small_cfg();
        let small = HiTree::from_sorted(&(0..100).collect::<Vec<_>>(), &cfg);
        let large = HiTree::from_sorted(&(0..10_000).collect::<Vec<_>>(), &cfg);
        assert!(large.footprint().total() > small.footprint().total());
        // Index overhead stays a small fraction (paper Table 3: 2.9%–5.4%).
        assert!(large.footprint().index_ratio() < 0.25);
    }

    #[test]
    fn adversarial_same_block_hammering() {
        // Insert keys that all predict into the same few blocks to stress
        // B-packing and child creation, then verify and delete everything.
        let cfg = small_cfg();
        let mut base: Vec<u32> = (0..200u32).map(|i| i * 500).collect();
        let mut t = HiTree::from_sorted(&base, &cfg);
        for k in 50_000..50_400u32 {
            t.insert(k, &cfg);
            base.push(k);
        }
        t.check_invariants(&cfg);
        base.sort_unstable();
        base.dedup();
        assert_eq!(t.to_vec(), base);
        for &k in &base {
            assert!(t.delete(k, &cfg));
        }
        assert!(t.is_empty());
    }
}
