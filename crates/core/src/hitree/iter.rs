//! External iterators over HITree nodes.
//!
//! The tree is iterated with an explicit cursor stack — one [`LiaCursor`]
//! per LIA level plus slice/RIA cursors at the leaves — so callers can drive
//! iteration lazily (streaming set intersection, merge joins) instead of
//! materializing neighbor arrays.

use super::lia::{Lia, LiaCursor, LiaStep};
use super::node::Node;
use crate::ria::RiaIter;

/// Per-node iteration state on the stack.
enum Cursor<'a> {
    Arr(core::slice::Iter<'a, u32>),
    Ria(RiaIter<'a>),
    Lia(&'a Lia, LiaCursor),
}

impl<'a> Cursor<'a> {
    fn for_node(node: &'a Node) -> Cursor<'a> {
        match node {
            Node::Arr(v) => Cursor::Arr(v.iter()),
            Node::Ria(r) => Cursor::Ria(r.iter()),
            Node::Lia(l) => Cursor::Lia(l, LiaCursor::default()),
        }
    }
}

/// Ascending iterator over a [`HiTree`](super::HiTree).
pub struct HiTreeIter<'a> {
    stack: Vec<Cursor<'a>>,
}

impl<'a> HiTreeIter<'a> {
    pub(super) fn new(root: &'a Node) -> Self {
        HiTreeIter {
            stack: vec![Cursor::for_node(root)],
        }
    }
}

impl Iterator for HiTreeIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            match self.stack.last_mut()? {
                Cursor::Arr(it) => match it.next() {
                    Some(&v) => return Some(v),
                    None => {
                        self.stack.pop();
                    }
                },
                Cursor::Ria(it) => match it.next() {
                    Some(v) => return Some(v),
                    None => {
                        self.stack.pop();
                    }
                },
                Cursor::Lia(lia, cur) => match lia.step(cur) {
                    LiaStep::Yield(v) => return Some(v),
                    LiaStep::Child(node) => self.stack.push(Cursor::for_node(node)),
                    LiaStep::Done => {
                        self.stack.pop();
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::HiTree;
    use crate::config::Config;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn cfg() -> Config {
        Config {
            m: 128,
            ..Config::default()
        }
    }

    #[test]
    fn iter_matches_to_vec_across_kinds() {
        let cfg = cfg();
        for n in [0usize, 1, 30, 100, 1_000, 20_000] {
            let v: Vec<u32> = (0..n as u32).map(|i| i * 5 + 2).collect();
            let t = HiTree::from_sorted(&v, &cfg);
            let it: Vec<u32> = t.iter().collect();
            assert_eq!(it, v, "n = {n}");
        }
    }

    #[test]
    fn iter_after_heavy_mutation() {
        let cfg = cfg();
        let mut rng = SmallRng::seed_from_u64(55);
        let mut t = HiTree::new(&cfg);
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..4_000u32);
            if rng.gen_bool(0.65) {
                t.insert(k, &cfg);
                oracle.insert(k);
            } else {
                t.delete(k, &cfg);
                oracle.remove(&k);
            }
        }
        let it: Vec<u32> = t.iter().collect();
        assert_eq!(it, oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn iter_is_lazy_and_resumable() {
        let cfg = cfg();
        let t = HiTree::from_sorted(&(0..1_000).collect::<Vec<_>>(), &cfg);
        let mut it = t.iter();
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next(), Some(1));
        let rest: Vec<u32> = it.collect();
        assert_eq!(rest.len(), 998);
        assert_eq!(rest[0], 2);
    }

    #[test]
    fn clustered_tree_with_children_iterates_in_order() {
        let cfg = cfg();
        let mut base: Vec<u32> = (0..300u32).map(|i| i * 1_000).collect();
        let mut t = HiTree::from_sorted(&base, &cfg);
        for k in 150_001..150_400u32 {
            t.insert(k, &cfg);
            base.push(k);
        }
        base.sort_unstable();
        let it: Vec<u32> = t.iter().collect();
        assert_eq!(it, base);
    }
}
