//! HITree nodes: small sorted arrays, RIA leaves, and LIA internal nodes.

use lsgraph_api::fail_point;
use lsgraph_api::trace::{span, SpanKind};
use lsgraph_api::{Footprint, MemoryFootprint, StructStats};

use super::lia::{Lia, MAX_DEPTH};
use super::SlotOccupancy;
use crate::config::Config;
use crate::ria::Ria;
use crate::search;

/// One HITree node (paper Fig. 8: a child pointer may reference a LIA, a
/// RIA, or an array).
#[derive(Clone, Debug)]
pub enum Node {
    /// Small sorted array leaf.
    Arr(Vec<u32>),
    /// Gapped-block leaf with a redundant index.
    Ria(Ria),
    /// Learned internal node.
    Lia(Box<Lia>),
}

impl Node {
    /// Builds the appropriate node kind for a sorted duplicate-free slice
    /// (Algorithm 1's dispatch between RIA and LIA, plus the array case for
    /// small children).
    pub fn from_sorted(ns: &[u32], cfg: &Config, depth: usize) -> Node {
        if ns.len() <= cfg.a {
            Node::Arr(ns.to_vec())
        } else if ns.len() <= cfg.m || depth >= MAX_DEPTH {
            Node::Ria(Ria::from_sorted(ns, cfg.alpha))
        } else {
            Node::Lia(Box::new(Lia::build(ns, cfg, depth)))
        }
    }

    /// Builds a *child* node with a progress guard: when a degenerate model
    /// funnels most of a parent into one child, recursing into another LIA
    /// would not shrink the problem, so fall back to a RIA leaf.
    pub(crate) fn from_sorted_child(
        ns: &[u32],
        cfg: &Config,
        depth: usize,
        parent_len: usize,
    ) -> Node {
        let no_progress = parent_len != usize::MAX && ns.len() * 2 > parent_len;
        if ns.len() > cfg.m && (no_progress || depth >= MAX_DEPTH) {
            return Node::Ria(Ria::from_sorted(ns, cfg.alpha));
        }
        Node::from_sorted(ns, cfg, depth)
    }

    /// Number of elements in this subtree.
    pub fn len(&self) -> usize {
        match self {
            Node::Arr(v) => v.len(),
            Node::Ria(r) => r.len(),
            Node::Lia(l) => l.len(),
        }
    }

    /// Whether this subtree is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u32, cfg: &Config) -> bool {
        match self {
            Node::Arr(v) => search::find(v, key).is_ok(),
            Node::Ria(r) => r.contains(key),
            Node::Lia(l) => l.contains(key, cfg),
        }
    }

    /// Inserts `key`, upgrading the node representation when it outgrows its
    /// kind (Arr → RIA at the array threshold, RIA → LIA past `M`, LIA
    /// retrain once it doubles). Returns whether the key was added.
    pub fn insert(&mut self, key: u32, cfg: &Config, depth: usize, stats: &StructStats) -> bool {
        self.maybe_upgrade(cfg, depth, stats);
        match self {
            Node::Arr(v) => match search::find(v, key) {
                Ok(_) => false,
                Err(i) => {
                    stats.record_arr_shift((v.len() - i) as u64);
                    v.insert(i, key);
                    true
                }
            },
            Node::Ria(r) => r.insert_with(key, stats).inserted(),
            Node::Lia(l) => l.insert(key, cfg, depth, stats),
        }
    }

    /// Deletes `key`; returns whether it was present.
    pub fn delete(&mut self, key: u32, cfg: &Config, depth: usize, stats: &StructStats) -> bool {
        match self {
            Node::Arr(v) => match search::find(v, key) {
                Ok(i) => {
                    v.remove(i);
                    stats.record_arr_shift((v.len() - i) as u64);
                    true
                }
                Err(_) => false,
            },
            Node::Ria(r) => r.delete_with(key, stats),
            Node::Lia(l) => l.delete(key, cfg, depth, stats),
        }
    }

    /// Upgrades the representation ahead of an insert when thresholds are
    /// crossed.
    fn maybe_upgrade(&mut self, cfg: &Config, depth: usize, stats: &StructStats) {
        let retrain = matches!(self, Node::Lia(_));
        let rebuild = match self {
            Node::Arr(v) => v.len() >= cfg.a + cfg.a / 2,
            Node::Ria(r) => r.len() > cfg.m && depth < MAX_DEPTH,
            Node::Lia(l) => l.len() >= l.built_len().saturating_mul(2),
        };
        if rebuild {
            let _span = span(if retrain {
                SpanKind::LiaRetrain
            } else {
                SpanKind::TierUpgrade
            });
            fail_point!(if retrain {
                "lia_retrain"
            } else {
                "tier_upgrade"
            });
            let all = self.to_vec();
            // Route through `from_sorted` so the right kind is chosen for the
            // new size; `depth >= MAX_DEPTH` RIAs intentionally stay RIAs.
            *self = Node::from_sorted(&all, cfg, depth);
            if retrain {
                stats.record_lia_retrain();
            } else {
                stats.record_node_upgrade();
            }
        }
    }

    /// Adds this subtree's LIA slot-type counts into `occ`.
    pub(super) fn add_slot_occupancy(&self, occ: &mut SlotOccupancy) {
        if let Node::Lia(l) = self {
            l.add_slot_occupancy(occ);
        }
    }

    /// Applies `f` to every element in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        match self {
            Node::Arr(v) => {
                for &x in v {
                    f(x);
                }
            }
            Node::Ria(r) => r.for_each(f),
            Node::Lia(l) => l.for_each(f),
        }
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        match self {
            Node::Arr(v) => {
                for &x in v {
                    if !f(x) {
                        return false;
                    }
                }
                true
            }
            Node::Ria(r) => r.for_each_while(f),
            Node::Lia(l) => l.for_each_while(f),
        }
    }

    /// Smallest element, or `None` when empty.
    pub fn min_key(&self) -> Option<u32> {
        match self {
            Node::Arr(v) => v.first().copied(),
            Node::Ria(r) => {
                let mut m = None;
                r.for_each_while(|x| {
                    m = Some(x);
                    false
                });
                m
            }
            Node::Lia(l) => l.min_key(),
        }
    }

    /// Collects all elements into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(&mut |x| v.push(x));
        v
    }

    /// Verifies structural invariants recursively.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self, cfg: &Config) {
        match self {
            Node::Arr(v) => {
                assert!(v.windows(2).all(|w| w[0] < w[1]), "array leaf unsorted");
            }
            Node::Ria(r) => r.check_invariants(),
            Node::Lia(l) => l.check_invariants(cfg),
        }
    }
}

impl MemoryFootprint for Node {
    fn footprint(&self) -> Footprint {
        match self {
            Node::Arr(v) => Footprint::new(v.capacity() * core::mem::size_of::<u32>(), 0),
            Node::Ria(r) => r.footprint(),
            Node::Lia(l) => l.footprint(),
        }
    }
}
