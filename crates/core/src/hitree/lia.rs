//! LIA — the *Learned Indexed Array* (paper §3.2), HITree's internal node.
//!
//! A LIA addresses a gapped slot array with a linear-regression model. The
//! monotone model guarantees that predicted slots never invert key order, so
//! elements placed at their predicted slots are globally sorted and a lookup
//! is O(1) model evaluation plus at most one cache-line block scan.
//!
//! Position conflicts are resolved *locality-first*: conflicting elements are
//! packed inside their predicted cache-line block (horizontal movement, `B`
//! slots); only when a block overflows is a child node created (vertical
//! movement, `C` slots). Children created for adjacent overflowing blocks at
//! bulk-load time are merged to cut random pointer chases.
//!
//! ## Placement invariant
//!
//! Every element lives in the block its model prediction maps to, or in that
//! block's child. `E` slots additionally sit at their *exact* predicted slot.
//! Because the model is monotone this implies a strict range partition across
//! blocks, which both the learned and the binary (ablation) search paths rely
//! on.

use lsgraph_api::fail_point;
use lsgraph_api::{Footprint, MemoryFootprint, StructStats};

use super::node::Node;
use super::typevec::{SlotType, TypeVec};
use super::SlotOccupancy;
use crate::config::{Config, LiaSearch, BKS};
use crate::model::{LinearModel, PositionModel};
use crate::search;

/// Sentinel for "block has no child".
const NO_CHILD: u32 = u32::MAX;

/// Maximum HITree depth before forcing RIA leaves (defends against
/// degenerate models causing unbounded vertical movement).
pub(crate) const MAX_DEPTH: usize = 16;

/// Learned Indexed Array: HITree internal node.
#[derive(Clone, Debug)]
pub struct Lia {
    model: LinearModel,
    slots: Vec<u32>,
    types: TypeVec,
    /// Per-block child index into `children`, or [`NO_CHILD`].
    child_of_block: Vec<u32>,
    children: Vec<Option<Box<Node>>>,
    /// Total elements in this subtree.
    len: usize,
    /// Subtree size when the model was (re)trained; once `len` doubles past
    /// this the node retrains and repacks (amortized-O(1) rebuild rule).
    built_len: usize,
}

/// Iteration state over one LIA node's blocks.
#[derive(Clone, Debug)]
pub struct LiaCursor {
    block: usize,
    pos: usize,
    last_child: u32,
}

impl Default for LiaCursor {
    fn default() -> Self {
        LiaCursor {
            block: 0,
            pos: 0,
            last_child: NO_CHILD,
        }
    }
}

/// One step of LIA iteration.
pub enum LiaStep<'a> {
    /// The next element.
    Yield(u32),
    /// Descend into a child node (then resume this cursor).
    Child(&'a Node),
    /// This node is exhausted.
    Done,
}

/// What a block's first slot says about how the block is organized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BlockKind {
    /// Mixed `E` slots at exact predicted positions and `U` gaps.
    ExactOrUnused,
    /// Sorted prefix of `B` slots.
    Packed,
    /// Delegated to a child node.
    Delegated,
}

impl Lia {
    /// Bulk-loads a LIA from a sorted duplicate-free slice (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if `ns` is empty; callers build an `Arr`/`Ria` node instead.
    pub fn build(ns: &[u32], cfg: &Config, depth: usize) -> Self {
        assert!(!ns.is_empty(), "LIA bulk-load requires elements");
        debug_assert!(ns.windows(2).all(|w| w[0] < w[1]));
        let nb = ((ns.len() as f64 * cfg.alpha).ceil() as usize)
            .div_ceil(BKS)
            .max(1);
        let num_slots = nb * BKS;
        let model = LinearModel::fit(ns, num_slots);
        let mut lia = Lia {
            model,
            slots: vec![0; num_slots],
            types: TypeVec::new(num_slots),
            child_of_block: vec![NO_CHILD; nb],
            children: Vec::new(),
            len: ns.len(),
            built_len: ns.len(),
        };
        // Group elements by predicted block; predictions are monotone so the
        // groups are contiguous runs of `ns`.
        let mut poss = Vec::with_capacity(ns.len());
        for &k in ns {
            poss.push(lia.model.predict(k));
        }
        // Ranges of ns delegated to children, keyed by starting block; runs
        // of adjacent delegated blocks are merged afterwards.
        let mut delegated: Vec<(usize, usize, usize, usize)> = Vec::new(); // (b, b_end, s, e)
        let mut i = 0;
        while i < ns.len() {
            let b = poss[i] / BKS;
            let mut j = i + 1;
            while j < ns.len() && poss[j] / BKS == b {
                j += 1;
            }
            let group = &ns[i..j];
            let group_poss = &poss[i..j];
            let unique = group_poss.windows(2).all(|w| w[0] < w[1]);
            if unique {
                for (&k, &p) in group.iter().zip(group_poss) {
                    lia.slots[p] = k;
                    lia.types.set(p, SlotType::Edge);
                }
            } else if group.len() <= BKS {
                lia.write_packed_block(b, group);
            } else {
                delegated.push((b, b, i, j));
            }
            i = j;
        }
        // MergeAdjacentChildren (Algorithm 1 line 21): fuse runs of adjacent
        // delegated blocks into one shared child.
        let mut merged: Vec<(usize, usize, usize, usize)> = Vec::new();
        for d in delegated {
            match merged.last_mut() {
                Some(last) if last.1 + 1 == d.0 => {
                    last.1 = d.1;
                    last.3 = d.3;
                }
                _ => merged.push(d),
            }
        }
        for (b0, b1, s, e) in merged {
            let sub = &ns[s..e];
            let idx = lia.children.len() as u32;
            lia.children.push(Some(Box::new(Node::from_sorted_child(
                sub,
                cfg,
                depth + 1,
                ns.len(),
            ))));
            for b in b0..=b1 {
                lia.child_of_block[b] = idx;
                lia.types.set_range(b * BKS..(b + 1) * BKS, SlotType::Child);
            }
        }
        lia
    }

    /// Total elements in this subtree.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the subtree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Subtree size at the last (re)train.
    #[inline]
    pub fn built_len(&self) -> usize {
        self.built_len
    }

    #[inline]
    fn num_blocks(&self) -> usize {
        self.child_of_block.len()
    }

    #[inline]
    fn kind(&self, b: usize) -> BlockKind {
        match self.types.get(b * BKS) {
            SlotType::Child => BlockKind::Delegated,
            SlotType::Block => BlockKind::Packed,
            SlotType::Unused | SlotType::Edge => BlockKind::ExactOrUnused,
        }
    }

    /// Length of a packed block's sorted `B` prefix.
    fn packed_len(&self, b: usize) -> usize {
        let base = b * BKS;
        let mut k = 0;
        while k < BKS && self.types.get(base + k) == SlotType::Block {
            k += 1;
        }
        k
    }

    /// Writes `group` as the sorted packed prefix of block `b`.
    fn write_packed_block(&mut self, b: usize, group: &[u32]) {
        debug_assert!(group.len() <= BKS);
        let base = b * BKS;
        self.slots[base..base + group.len()].copy_from_slice(group);
        self.types
            .set_range(base..base + group.len(), SlotType::Block);
        self.types
            .set_range(base + group.len()..base + BKS, SlotType::Unused);
    }

    /// Returns whether `key` is present (learned search path).
    pub fn contains(&self, key: u32, cfg: &Config) -> bool {
        if cfg.lia_search == LiaSearch::Binary {
            return self.contains_binary(key, cfg);
        }
        let pos = self.model.predict(key);
        let b = pos / BKS;
        match self.kind(b) {
            BlockKind::ExactOrUnused => {
                self.types.get(pos) == SlotType::Edge && self.slots[pos] == key
            }
            BlockKind::Packed => {
                let base = b * BKS;
                let blk = &self.slots[base..base + self.packed_len(b)];
                search::find(blk, key).is_ok()
            }
            BlockKind::Delegated => self.child(b).contains(key, cfg),
        }
    }

    #[inline]
    fn child(&self, b: usize) -> &Node {
        let idx = self.child_of_block[b];
        debug_assert_ne!(idx, NO_CHILD);
        self.children[idx as usize]
            .as_deref()
            .expect("delegated block must have a live child")
    }

    #[inline]
    fn child_mut(&mut self, b: usize) -> &mut Node {
        let idx = self.child_of_block[b];
        debug_assert_ne!(idx, NO_CHILD);
        self.children[idx as usize]
            .as_deref_mut()
            .expect("delegated block must have a live child")
    }

    /// Inserts `key` (Algorithm 2, LIA branch). Returns whether it was
    /// added. Horizontal packs, within-block shifts, and vertical child
    /// creations are recorded into `stats`.
    pub fn insert(&mut self, key: u32, cfg: &Config, depth: usize, stats: &StructStats) -> bool {
        if cfg.lia_search == LiaSearch::Binary {
            // Ablation §6.2: locate by binary search instead of the model.
            // Placement below still follows the model (the structure is
            // unchanged); the ablation measures pure search cost.
            if self.contains_binary(key, cfg) {
                return false;
            }
        }
        let pos = self.model.predict(key);
        let b = pos / BKS;
        let base = b * BKS;
        match self.kind(b) {
            BlockKind::Delegated => {
                let inserted = self.child_mut(b).insert(key, cfg, depth + 1, stats);
                if inserted {
                    self.len += 1;
                }
                inserted
            }
            BlockKind::ExactOrUnused => match self.types.get(pos) {
                SlotType::Unused => {
                    self.slots[pos] = key;
                    self.types.set(pos, SlotType::Edge);
                    self.len += 1;
                    true
                }
                SlotType::Edge => {
                    if self.slots[pos] == key {
                        return false;
                    }
                    // Conflict: gather the block's exact-placed elements plus
                    // the new key and repack horizontally (or go vertical).
                    let mut merged = Vec::with_capacity(BKS + 1);
                    for i in base..base + BKS {
                        if self.types.get(i) == SlotType::Edge {
                            merged.push(self.slots[i]);
                        }
                    }
                    let at = search::stream_lower_bound(&merged, key);
                    merged.insert(at, key);
                    self.settle_block(b, merged, cfg, depth, stats);
                    self.len += 1;
                    true
                }
                SlotType::Block | SlotType::Child => {
                    unreachable!("kind() classified block {b} as ExactOrUnused")
                }
            },
            BlockKind::Packed => {
                let plen = self.packed_len(b);
                let prefix = &self.slots[base..base + plen];
                let at = match search::stream_find(prefix, key) {
                    Ok(_) => return false,
                    Err(i) => i,
                };
                if plen < BKS {
                    // Horizontal movement within the block: shift the packed
                    // suffix right by one slot.
                    self.slots
                        .copy_within(base + at..base + plen, base + at + 1);
                    self.slots[base + at] = key;
                    self.types.set(base + plen, SlotType::Block);
                    stats.record_lia_within_shift((plen - at) as u64);
                } else {
                    // Block full: vertical movement (Fig. 10 case 3).
                    let mut merged = Vec::with_capacity(BKS + 1);
                    merged.extend_from_slice(&self.slots[base..base + plen]);
                    merged.insert(at, key);
                    self.settle_block(b, merged, cfg, depth, stats);
                }
                self.len += 1;
                true
            }
        }
    }

    /// Stores `merged` (sorted, len may exceed BKS) into block `b`, packing
    /// horizontally when it fits and creating a child otherwise.
    fn settle_block(
        &mut self,
        b: usize,
        merged: Vec<u32>,
        cfg: &Config,
        depth: usize,
        stats: &StructStats,
    ) {
        if merged.len() <= BKS {
            self.write_packed_block(b, &merged);
            stats.record_lia_pack();
        } else {
            // Vertical movement is only reached when the merged contents
            // overflow the block's BKS slots; `record_lia_vertical(false)`
            // would flag a policy violation.
            stats.record_lia_vertical(merged.len() > BKS);
            fail_point!("hitree_vertical");
            let idx = self.children.len() as u32;
            self.children.push(Some(Box::new(Node::from_sorted_child(
                &merged,
                cfg,
                depth + 1,
                usize::MAX,
            ))));
            self.child_of_block[b] = idx;
            self.types
                .set_range(b * BKS..(b + 1) * BKS, SlotType::Child);
        }
    }

    /// Deletes `key`; returns whether it was present.
    pub fn delete(&mut self, key: u32, cfg: &Config, depth: usize, stats: &StructStats) -> bool {
        let pos = self.model.predict(key);
        let b = pos / BKS;
        let base = b * BKS;
        match self.kind(b) {
            BlockKind::Delegated => {
                let idx = self.child_of_block[b];
                let removed = self.child_mut(b).delete(key, cfg, depth + 1, stats);
                if removed {
                    self.len -= 1;
                    if self.children[idx as usize]
                        .as_ref()
                        .is_some_and(|c| c.is_empty())
                    {
                        self.remove_child(idx);
                    }
                }
                removed
            }
            BlockKind::ExactOrUnused => {
                if self.types.get(pos) == SlotType::Edge && self.slots[pos] == key {
                    self.types.set(pos, SlotType::Unused);
                    self.len -= 1;
                    true
                } else {
                    false
                }
            }
            BlockKind::Packed => {
                let plen = self.packed_len(b);
                let prefix = &self.slots[base..base + plen];
                match search::stream_find(prefix, key) {
                    Ok(i) => {
                        self.slots.copy_within(base + i + 1..base + plen, base + i);
                        self.types.set(base + plen - 1, SlotType::Unused);
                        stats.record_lia_within_shift((plen - i - 1) as u64);
                        self.len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
        }
    }

    /// Drops child `idx` and reverts its blocks to plain unused space.
    fn remove_child(&mut self, idx: u32) {
        self.children[idx as usize] = None;
        for b in 0..self.num_blocks() {
            if self.child_of_block[b] == idx {
                self.child_of_block[b] = NO_CHILD;
                self.types
                    .set_range(b * BKS..(b + 1) * BKS, SlotType::Unused);
            }
        }
    }

    /// Applies `f` to every element in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        self.for_each_while(&mut |x| {
            f(x);
            true
        });
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        let mut last_child = NO_CHILD;
        for b in 0..self.num_blocks() {
            match self.kind(b) {
                BlockKind::Delegated => {
                    let idx = self.child_of_block[b];
                    if idx != last_child {
                        last_child = idx;
                        if !self.child(b).for_each_while(f) {
                            return false;
                        }
                    }
                }
                BlockKind::Packed => {
                    let base = b * BKS;
                    for i in base..base + self.packed_len(b) {
                        if !f(self.slots[i]) {
                            return false;
                        }
                    }
                }
                BlockKind::ExactOrUnused => {
                    let base = b * BKS;
                    for i in base..base + BKS {
                        if self.types.get(i) == SlotType::Edge && !f(self.slots[i]) {
                            return false;
                        }
                    }
                }
            }
            if self.kind(b) != BlockKind::Delegated {
                last_child = NO_CHILD;
            }
        }
        true
    }

    /// Smallest element in the subtree, or `None` when empty.
    pub fn min_key(&self) -> Option<u32> {
        let mut found = None;
        self.for_each_while(&mut |x| {
            found = Some(x);
            false
        });
        found
    }

    /// First element of block `b` (descending into children), or `None` when
    /// the block holds nothing.
    fn block_first(&self, b: usize) -> Option<u32> {
        let base = b * BKS;
        match self.kind(b) {
            BlockKind::Delegated => self.child(b).min_key(),
            BlockKind::Packed => Some(self.slots[base]),
            BlockKind::ExactOrUnused => (base..base + BKS)
                .find(|&i| self.types.get(i) == SlotType::Edge)
                .map(|i| self.slots[i]),
        }
    }

    /// Ablation search: rightmost non-empty block whose first element is
    /// `<= key`, located by binary search with on-demand block probing —
    /// exactly the serial-dependent, cache-unfriendly pattern the paper's
    /// motivation (§2.3) attributes to PMA search.
    fn find_block_binary(&self, key: u32) -> Option<usize> {
        let nb = self.num_blocks();
        let mut ans = None;
        let mut lo = 0isize;
        let mut hi = nb as isize - 1;
        while lo <= hi {
            let mid = lo + (hi - lo) / 2;
            // Probe the nearest non-empty block at or left of mid.
            let mut p = mid;
            let mut probe = None;
            while p >= lo {
                if let Some(v) = self.block_first(p as usize) {
                    probe = Some((p, v));
                    break;
                }
                p -= 1;
            }
            match probe {
                None => lo = mid + 1,
                Some((p, v)) => {
                    if v <= key {
                        ans = Some(p as usize);
                        lo = mid + 1;
                    } else {
                        hi = p - 1;
                    }
                }
            }
        }
        ans
    }

    /// Binary-search-based membership (ablation mode).
    fn contains_binary(&self, key: u32, cfg: &Config) -> bool {
        let Some(b) = self.find_block_binary(key) else {
            return false;
        };
        let base = b * BKS;
        match self.kind(b) {
            BlockKind::Delegated => self.child(b).contains(key, cfg),
            BlockKind::Packed => {
                let blk = &self.slots[base..base + self.packed_len(b)];
                search::find(blk, key).is_ok()
            }
            BlockKind::ExactOrUnused => (base..base + BKS)
                .any(|i| self.types.get(i) == SlotType::Edge && self.slots[i] == key),
        }
    }

    /// Collects all elements into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(&mut |x| v.push(x));
        v
    }

    /// Advances an external cursor by one step (iterator support: the
    /// HITree iterator keeps one cursor per LIA level on its stack).
    pub(super) fn step<'a>(&'a self, cur: &mut LiaCursor) -> LiaStep<'a> {
        while cur.block < self.num_blocks() {
            let base = cur.block * BKS;
            match self.kind(cur.block) {
                BlockKind::Delegated => {
                    let idx = self.child_of_block[cur.block];
                    cur.block += 1;
                    cur.pos = 0;
                    if idx != cur.last_child {
                        cur.last_child = idx;
                        return LiaStep::Child(
                            self.children[idx as usize]
                                .as_deref()
                                .expect("delegated block must have a live child"),
                        );
                    }
                }
                BlockKind::Packed => {
                    if cur.pos < self.packed_len(cur.block) {
                        let v = self.slots[base + cur.pos];
                        cur.pos += 1;
                        return LiaStep::Yield(v);
                    }
                    cur.block += 1;
                    cur.pos = 0;
                    cur.last_child = NO_CHILD;
                }
                BlockKind::ExactOrUnused => {
                    while cur.pos < BKS {
                        let i = base + cur.pos;
                        cur.pos += 1;
                        if self.types.get(i) == SlotType::Edge {
                            return LiaStep::Yield(self.slots[i]);
                        }
                    }
                    cur.block += 1;
                    cur.pos = 0;
                    cur.last_child = NO_CHILD;
                }
            }
        }
        LiaStep::Done
    }

    /// Adds this node's (and recursively its children's) slot-type counts
    /// into `occ`.
    pub(super) fn add_slot_occupancy(&self, occ: &mut SlotOccupancy) {
        for i in 0..self.types.len() {
            match self.types.get(i) {
                SlotType::Unused => occ.unused += 1,
                SlotType::Edge => occ.edge += 1,
                SlotType::Block => occ.block += 1,
                SlotType::Child => occ.child += 1,
            }
        }
        for c in self.children.iter().flatten() {
            c.add_slot_occupancy(occ);
        }
    }

    /// Verifies the placement invariant and internal accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self, cfg: &Config) {
        let v = self.to_vec();
        assert_eq!(v.len(), self.len, "len mismatch");
        assert!(v.windows(2).all(|w| w[0] < w[1]), "not sorted/dedup");
        for b in 0..self.num_blocks() {
            let base = b * BKS;
            match self.kind(b) {
                BlockKind::ExactOrUnused => {
                    for i in base..base + BKS {
                        let t = self.types.get(i);
                        assert!(
                            t == SlotType::Unused || t == SlotType::Edge,
                            "stray type {t:?} in EU block {b}"
                        );
                        if t == SlotType::Edge {
                            assert_eq!(
                                self.model.predict(self.slots[i]),
                                i,
                                "E slot not at predicted position"
                            );
                        }
                    }
                }
                BlockKind::Packed => {
                    let plen = self.packed_len(b);
                    assert!(plen > 0);
                    let blk = &self.slots[base..base + plen];
                    assert!(
                        blk.windows(2).all(|w| w[0] < w[1]),
                        "packed prefix unsorted"
                    );
                    for &x in blk {
                        assert_eq!(
                            self.model.predict(x) / BKS,
                            b,
                            "packed element in wrong block"
                        );
                    }
                    for i in base + plen..base + BKS {
                        assert_eq!(self.types.get(i), SlotType::Unused, "non-U after prefix");
                    }
                }
                BlockKind::Delegated => {
                    let idx = self.child_of_block[b];
                    assert_ne!(idx, NO_CHILD, "C block without child");
                    let child = self.children[idx as usize]
                        .as_deref()
                        .expect("C block with dropped child");
                    assert!(!child.is_empty(), "empty child retained");
                    child.check_invariants(cfg);
                    for i in base..base + BKS {
                        assert_eq!(self.types.get(i), SlotType::Child);
                    }
                }
            }
        }
        // Every element routed to a delegated block must be inside that
        // block's child.
        let mut per_child: Vec<usize> = vec![0; self.children.len()];
        let mut direct = 0usize;
        for &x in &v {
            let b = self.model.predict(x) / BKS;
            match self.kind(b) {
                BlockKind::Delegated => per_child[self.child_of_block[b] as usize] += 1,
                _ => direct += 1,
            }
        }
        let child_total: usize = self
            .children
            .iter()
            .map(|c| c.as_ref().map_or(0, |n| n.len()))
            .sum();
        assert_eq!(direct + child_total, self.len, "direct/child accounting");
        for (i, c) in self.children.iter().enumerate() {
            if let Some(n) = c {
                assert_eq!(per_child[i], n.len(), "child {i} routing mismatch");
            }
        }
    }
}

impl MemoryFootprint for Lia {
    fn footprint(&self) -> Footprint {
        let mut fp = Footprint::new(
            self.slots.len() * core::mem::size_of::<u32>(),
            // Model parameters plus slot-type and child routing metadata.
            self.model.param_bytes()
                + self.types.bytes()
                + self.child_of_block.len() * core::mem::size_of::<u32>(),
        );
        for c in self.children.iter().flatten() {
            fp += c.footprint();
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::default()
    }

    #[test]
    fn build_places_uniform_keys_as_exact_slots() {
        // Uniform keys predict almost perfectly: expect mostly E slots, no
        // children.
        let ns: Vec<u32> = (0..1_000).map(|i| i * 100).collect();
        let lia = Lia::build(&ns, &cfg(), 0);
        lia.check_invariants(&cfg());
        assert_eq!(lia.len(), 1_000);
        assert!(
            lia.children.is_empty(),
            "uniform keys should not need children"
        );
        assert_eq!(lia.to_vec(), ns);
    }

    #[test]
    fn build_clustered_keys_creates_children() {
        // A heavy cluster inside a wide range funnels one region's
        // predictions into few blocks, forcing B packs and C children.
        let mut ns: Vec<u32> = (0..64u32).map(|i| i * 1_000_000).collect();
        ns.extend(5_000_000..5_002_000u32);
        ns.sort_unstable();
        ns.dedup();
        let lia = Lia::build(&ns, &cfg(), 0);
        lia.check_invariants(&cfg());
        assert!(
            !lia.children.is_empty(),
            "cluster should delegate to children"
        );
        assert_eq!(lia.to_vec(), ns);
    }

    #[test]
    fn insert_progression_u_e_b_c() {
        // Start with a sparse set; hammer one region to walk a block through
        // U -> E -> B (packed) -> C (child).
        let ns: Vec<u32> = (0..200).map(|i| i * 1_000).collect();
        let mut lia = Lia::build(&ns, &cfg(), 0);
        for k in 100_001..100_100u32 {
            assert!(
                lia.insert(k, &cfg(), 0, StructStats::global()),
                "insert {k}"
            );
        }
        lia.check_invariants(&cfg());
        assert!(lia.contains(100_050, &cfg()));
        assert!(!lia.contains(99_999, &cfg()));
    }

    #[test]
    fn duplicate_inserts_rejected_in_every_slot_kind() {
        let ns: Vec<u32> = (0..500).map(|i| i * 7).collect();
        let mut lia = Lia::build(&ns, &cfg(), 0);
        for &k in &ns {
            assert!(
                !lia.insert(k, &cfg(), 0, StructStats::global()),
                "duplicate {k}"
            );
        }
        assert_eq!(lia.len(), 500);
    }

    #[test]
    fn delete_from_every_slot_kind() {
        let mut ns: Vec<u32> = (0..64u32).map(|i| i * 1_000_000).collect();
        ns.extend(5_000_000..5_001_000u32);
        ns.sort_unstable();
        ns.dedup();
        let mut lia = Lia::build(&ns, &cfg(), 0);
        for &k in &ns {
            assert!(
                lia.delete(k, &cfg(), 0, StructStats::global()),
                "delete {k}"
            );
            assert!(
                !lia.delete(k, &cfg(), 0, StructStats::global()),
                "double delete {k}"
            );
        }
        assert!(lia.is_empty());
        lia.check_invariants(&cfg());
    }

    #[test]
    fn min_key_and_block_first() {
        let ns: Vec<u32> = (10..300).map(|i| i * 3).collect();
        let lia = Lia::build(&ns, &cfg(), 0);
        assert_eq!(lia.min_key(), Some(30));
        let empty_blocks = (0..lia.num_blocks())
            .filter(|&b| lia.block_first(b).is_none())
            .count();
        assert!(empty_blocks < lia.num_blocks(), "some block must hold data");
    }

    #[test]
    fn binary_find_block_agrees_with_model_for_present_keys() {
        let ns: Vec<u32> = (0..2_000).map(|i| i * 5 + 1).collect();
        let lia = Lia::build(&ns, &cfg(), 0);
        let bcfg = Config {
            lia_search: LiaSearch::Binary,
            ..Config::default()
        };
        for &k in ns.iter().step_by(37) {
            assert!(lia.contains(k, &bcfg), "binary lookup {k}");
            assert!(lia.contains(k, &cfg()), "learned lookup {k}");
        }
        for k in [0u32, 2, 4, 10_001] {
            assert_eq!(
                lia.contains(k, &bcfg),
                lia.contains(k, &cfg()),
                "absent {k}"
            );
        }
    }

    #[test]
    fn footprint_counts_model_and_types_as_index() {
        let ns: Vec<u32> = (0..4_096).collect();
        let lia = Lia::build(&ns, &cfg(), 0);
        let fp = lia.footprint();
        assert!(fp.index_bytes > 0);
        assert!(fp.payload_bytes >= 4_096 * 4);
        // Types are 2 bits/slot, routing 4 bytes/block, model constant:
        // index share must stay well below payload.
        assert!(fp.index_bytes < fp.payload_bytes);
    }
}
