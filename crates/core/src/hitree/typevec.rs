//! Packed 2-bit slot-type vector for LIA (paper §3.2).
//!
//! Each LIA slot carries one of four types; packing them two bits per slot
//! keeps the whole type vector of a 4096-slot node in 1 KiB — 16 cache
//! lines — so type checks during traversal stay in cache.

/// Type of one LIA slot (paper §3.2's U/E/B/C entries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum SlotType {
    /// Unused: free space for a future insert.
    Unused = 0,
    /// Edge: the slot stores a destination vertex id at its predicted slot.
    Edge = 1,
    /// Block: part of a packed sorted prefix within its cache-line block.
    Block = 2,
    /// Child: the block is delegated to a child node.
    Child = 3,
}

impl SlotType {
    #[inline]
    fn from_bits(b: u64) -> SlotType {
        match b & 0b11 {
            0 => SlotType::Unused,
            1 => SlotType::Edge,
            2 => SlotType::Block,
            _ => SlotType::Child,
        }
    }
}

/// A vector of 2-bit [`SlotType`]s, 32 per `u64` word.
#[derive(Clone, Debug)]
pub struct TypeVec {
    words: Vec<u64>,
    len: usize,
}

impl TypeVec {
    /// Creates a vector of `len` slots, all [`SlotType::Unused`].
    pub fn new(len: usize) -> Self {
        TypeVec {
            words: vec![0; len.div_ceil(32)],
            len,
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the type of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> SlotType {
        assert!(i < self.len, "slot {i} out of bounds (len {})", self.len);
        SlotType::from_bits(self.words[i / 32] >> ((i % 32) * 2))
    }

    /// Sets the type of slot `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize, t: SlotType) {
        assert!(i < self.len, "slot {i} out of bounds (len {})", self.len);
        let shift = (i % 32) * 2;
        let w = &mut self.words[i / 32];
        *w = (*w & !(0b11 << shift)) | ((t as u64) << shift);
    }

    /// Sets every slot in `range` to `t`.
    pub fn set_range(&mut self, range: core::ops::Range<usize>, t: SlotType) {
        for i in range {
            self.set(i, t);
        }
    }

    /// Bytes of backing storage (for footprint accounting).
    pub fn bytes(&self) -> usize {
        self.words.len() * core::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_all_types() {
        let mut tv = TypeVec::new(100);
        let kinds = [
            SlotType::Unused,
            SlotType::Edge,
            SlotType::Block,
            SlotType::Child,
        ];
        for i in 0..100 {
            tv.set(i, kinds[i % 4]);
        }
        for i in 0..100 {
            assert_eq!(tv.get(i), kinds[i % 4], "slot {i}");
        }
    }

    #[test]
    fn new_is_all_unused() {
        let tv = TypeVec::new(65);
        for i in 0..65 {
            assert_eq!(tv.get(i), SlotType::Unused);
        }
        assert_eq!(tv.len(), 65);
    }

    #[test]
    fn set_does_not_clobber_neighbors() {
        let mut tv = TypeVec::new(64);
        tv.set(10, SlotType::Child);
        tv.set(11, SlotType::Edge);
        tv.set(10, SlotType::Unused);
        assert_eq!(tv.get(11), SlotType::Edge);
        assert_eq!(tv.get(9), SlotType::Unused);
        assert_eq!(tv.get(10), SlotType::Unused);
    }

    #[test]
    fn set_range_spans_words() {
        let mut tv = TypeVec::new(96);
        tv.set_range(20..70, SlotType::Block);
        for i in 0..96 {
            let want = if (20..70).contains(&i) {
                SlotType::Block
            } else {
                SlotType::Unused
            };
            assert_eq!(tv.get(i), want, "slot {i}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let tv = TypeVec::new(10);
        let _ = tv.get(10);
    }

    #[test]
    fn bytes_accounting() {
        assert_eq!(TypeVec::new(32).bytes(), 8);
        assert_eq!(TypeVec::new(33).bytes(), 16);
        assert_eq!(TypeVec::new(0).bytes(), 0);
    }
}
