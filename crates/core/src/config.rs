//! Engine configuration: the paper's tuning knobs and ablation switches.

/// Number of neighbor ids stored inline in one cache-line vertex block.
///
/// A 64-byte line holds a `u32` degree, 13 inline `u32` neighbors, and an
/// 8-byte spill pointer (paper §5: "each vertex is assigned the size of a
/// single cache line within the vertex blocks").
pub const INLINE_CAP: usize = 13;

/// Elements per block in RIA and LIA: one 64-byte cache line of `u32` ids
/// (paper §5: "the BKS in RIA and LIA also fits within a cache line").
pub const BKS: usize = 16;

/// How the LIA locates the block for a key (ablation §6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LiaSearch {
    /// Predict the slot with the learned linear model (the paper's design).
    Learned,
    /// Binary-search the per-block minima instead of consulting the model.
    ///
    /// Placement is unchanged, so this isolates exactly the *search* benefit
    /// of the learned index, which the paper reports as 1.8%–7.2%.
    Binary,
}

/// Which container stores medium-degree spill edges (ablation §6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MediumStore {
    /// Redundant Indexed Array (the paper's design).
    Ria,
    /// Per-vertex Packed Memory Array (the "PMA instead of RIA" ablation).
    Pma,
}

/// Whether high-degree vertices upgrade to HITree (ablation §6.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HighDegreeStore {
    /// HITree above threshold `M` (the paper's design).
    HiTree,
    /// Keep using RIA regardless of degree ("RIA instead of HITree").
    RiaOnly,
}

/// Configuration of an [`LsGraph`](crate::LsGraph) instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Config {
    /// Space amplification factor `α` (paper default 1.2; must be > 1.0).
    pub alpha: f64,
    /// Spill-size threshold above which an array upgrades to RIA
    /// (paper §5: two cache lines of ids).
    pub a: usize,
    /// Spill-size threshold `M` above which RIA upgrades to HITree
    /// (paper default 2^12).
    pub m: usize,
    /// LIA block-location strategy.
    pub lia_search: LiaSearch,
    /// Medium-degree container choice.
    pub medium: MediumStore,
    /// High-degree container choice.
    pub high: HighDegreeStore,
    /// Whether [`LsGraph::compress_cold_vertices`](crate::LsGraph) may
    /// freeze high-degree spills (`len > m`) into the gap-encoded
    /// compressed cold tier, and whether checkpoint restore re-derives that
    /// tier for such vertices. Off by default: the compressed tier trades
    /// write speed for footprint, so it is opt-in.
    pub compress_cold: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            alpha: 1.2,
            a: 2 * BKS,
            m: 1 << 12,
            lia_search: LiaSearch::Learned,
            medium: MediumStore::Ria,
            high: HighDegreeStore::HiTree,
            compress_cold: false,
        }
    }
}

impl Config {
    /// Validates the configuration.
    ///
    /// `alpha` must exceed 1.0 (a gapped array with no gaps degenerates into
    /// unbounded rebuild loops) and the tier thresholds must be ordered.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.alpha.is_finite() || self.alpha <= 1.0 {
            return Err(ConfigError::InvalidAlpha(self.alpha));
        }
        if self.a == 0 || self.m < self.a {
            return Err(ConfigError::InvalidThresholds {
                a: self.a,
                m: self.m,
            });
        }
        Ok(())
    }

    /// Returns a copy with a different `alpha` (sensitivity sweeps, Fig. 14).
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Returns a copy with a different `M` (sensitivity sweeps, Fig. 14).
    pub fn with_m(mut self, m: usize) -> Self {
        self.m = m;
        self
    }

    /// Returns a copy with the gap-encoded compressed cold tier enabled or
    /// disabled.
    pub fn with_compress_cold(mut self, on: bool) -> Self {
        self.compress_cold = on;
        self
    }
}

/// Rejected configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ConfigError {
    /// `alpha` was not a finite value greater than 1.0.
    InvalidAlpha(f64),
    /// The tier thresholds were zero or out of order.
    InvalidThresholds {
        /// Offending `a`.
        a: usize,
        /// Offending `m`.
        m: usize,
    },
}

impl core::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConfigError::InvalidAlpha(a) => {
                write!(
                    f,
                    "space amplification factor must be finite and > 1.0, got {a}"
                )
            }
            ConfigError::InvalidThresholds { a, m } => {
                write!(f, "thresholds must satisfy 0 < a <= m, got a={a}, m={m}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = Config::default();
        c.validate().unwrap();
        assert_eq!(c.m, 4096);
        assert!((c.alpha - 1.2).abs() < 1e-12);
        assert_eq!(c.a, 32);
    }

    #[test]
    fn rejects_alpha_at_or_below_one() {
        assert!(Config::default().with_alpha(1.0).validate().is_err());
        assert!(Config::default().with_alpha(0.5).validate().is_err());
        assert!(Config::default().with_alpha(f64::NAN).validate().is_err());
        assert!(Config::default()
            .with_alpha(f64::INFINITY)
            .validate()
            .is_err());
    }

    #[test]
    fn rejects_misordered_thresholds() {
        let mut c = Config {
            m: 8,
            ..Config::default()
        };
        assert!(c.validate().is_err());
        c.a = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn vertex_block_geometry() {
        // One cache line: degree + inline ids + spill pointer.
        assert_eq!(4 + INLINE_CAP * 4 + 8, 64);
        // One cache line of ids per block.
        assert_eq!(BKS * 4, 64);
    }
}
