//! Shared ordered-search helpers: every intra-container probe in the engine
//! routes through this module.
//!
//! The paper's motivation (§2.3) is that binary search over a large PMA has
//! serial data dependencies and poor spatial locality. The structures here
//! instead search *small* index arrays and cache-line blocks, so the helpers
//! are tuned accordingly:
//!
//! * [`lower_bound`] — branchless binary search (conditional moves, no
//!   mispredicted branches) for index arrays;
//! * [`chunk_lower_bound`] — branch-free fixed-width block compare: the
//!   slice is consumed in SIMD-width chunks and each lane contributes
//!   `(x < key) as usize` to a running count, which LLVM autovectorizes to
//!   packed compares on every SIMD-capable target. On `x86_64` an explicit
//!   `core::arch` SSE2 path is used instead (stable, no runtime detection —
//!   SSE2 is baseline on that architecture);
//! * [`find`] — drop-in replacement for `slice::binary_search` built on the
//!   hybrid probe, so scalar call sites swap over in one line;
//! * [`prefetch_read`] — a software prefetch hint for streaming merge and
//!   rebuild loops.
//!
//! Probes above [`CHUNK_SEARCH_WINDOW`] elements first narrow branchlessly,
//! then finish with one fixed-width compare over a single
//! [`CHUNK_SEARCH_WINDOW`]-element window, so one entry point serves the
//! 13-element inline line, 16-element RIA/LIA blocks, 32-element array
//! spills, and arbitrarily large rebuild buffers alike.
//!
//! The halving loops route the range update through
//! [`core::hint::select_unpredictable`]. An ordinary `if` here is *not*
//! equivalent: LLVM lowers it to a conditional jump, and a probe against a
//! random key mispredicts every other step, which measured ~3x slower per
//! step than the conditional move on the bench host.

/// Window below which the hybrid probe switches from branchless halving to
/// one fixed 16-lane branch-free compare (a cache line of `u32` ids — the
/// SIMD width the tail compare is written for).
pub const CHUNK_SEARCH_WINDOW: usize = 16;

/// Returns the first index `i` with `a[i] >= key` (i.e. `a.len()` if none).
///
/// Branchless binary search: each step halves the range with a conditional
/// move instead of a branch, which avoids mispredictions on random keys.
#[inline]
pub fn lower_bound(a: &[u32], key: u32) -> usize {
    let mut base = 0usize;
    let mut size = a.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: `mid < base + size <= a.len()` is maintained by the loop.
        let probe = unsafe { *a.get_unchecked(mid) };
        base = core::hint::select_unpredictable(probe < key, mid, base);
        size -= half;
    }
    if base < a.len() && a[base] < key {
        base + 1
    } else {
        base
    }
}

/// How many of the sixteen `u32`s starting at `p` are less than `key`.
///
/// # Safety
/// `p..p + 16` must be in bounds of a single allocation.
#[cfg(target_arch = "x86_64")]
#[inline]
unsafe fn count_less_16(p: *const u32, key: u32) -> usize {
    use core::arch::x86_64::*;
    // SAFETY: SSE2 is part of the x86_64 baseline; the caller guarantees the
    // sixteen lanes are readable. `_mm_cmplt_epi32` is a signed compare, so
    // both sides are biased by `i32::MIN` to make it unsigned. A matching
    // lane is -1; subtracting the masks accumulates +1 per match, and one
    // horizontal fold at the end yields the count.
    unsafe {
        let bias = _mm_set1_epi32(i32::MIN);
        let k = _mm_xor_si128(_mm_set1_epi32(key as i32), bias);
        let v0 = _mm_xor_si128(_mm_loadu_si128(p.cast()), bias);
        let v1 = _mm_xor_si128(_mm_loadu_si128(p.add(4).cast()), bias);
        let v2 = _mm_xor_si128(_mm_loadu_si128(p.add(8).cast()), bias);
        let v3 = _mm_xor_si128(_mm_loadu_si128(p.add(12).cast()), bias);
        let mut acc = _mm_setzero_si128();
        acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v0, k));
        acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v1, k));
        acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v2, k));
        acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v3, k));
        let f = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0b00_01_10_11));
        let f = _mm_add_epi32(f, _mm_shuffle_epi32(f, 0b00_00_00_01));
        _mm_cvtsi128_si32(f) as usize
    }
}

/// Portable 16-lane compare step (independent flag adds, which LLVM
/// autovectorizes to packed compares on SIMD targets).
///
/// # Safety
/// `p..p + 16` must be in bounds of a single allocation.
#[cfg(not(target_arch = "x86_64"))]
#[inline]
unsafe fn count_less_16(p: *const u32, key: u32) -> usize {
    // SAFETY: the caller guarantees sixteen readable lanes.
    let c: &[u32; 16] = unsafe { &*p.cast() };
    let mut n = 0usize;
    for &x in c {
        n += (x < key) as usize;
    }
    n
}

/// Branch-free lower bound over a sorted slice via fixed-width chunked
/// compares: the answer is the count of elements less than `key`, and the
/// count is accumulated sixteen lanes at a time with no data-dependent
/// branches. Intended for block-sized inputs (a few cache lines); cost is
/// linear in `a.len()`.
///
/// Explicit SSE2 on `x86_64` (baseline there, so no feature detection); the
/// portable fallback is written as independent flag adds, which LLVM
/// autovectorizes to packed compares on SIMD targets.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn chunk_lower_bound(a: &[u32], key: u32) -> usize {
    use core::arch::x86_64::*;
    // SAFETY: SSE2 is part of the x86_64 baseline; every load is unaligned
    // and within the bounds `chunks_exact` hands out.
    unsafe {
        // `_mm_cmplt_epi32` is a signed compare; biasing both sides by
        // `i32::MIN` turns it into the unsigned compare we need. A matching
        // lane is -1, so subtracting the mask accumulates +1 per match in a
        // vector register; one horizontal fold at the very end replaces a
        // per-chunk reduction (the fold is what made the first cut of this
        // routine lose to scalar binary search).
        let bias = _mm_set1_epi32(i32::MIN);
        let k = _mm_xor_si128(_mm_set1_epi32(key as i32), bias);
        let mut acc = _mm_setzero_si128();
        let mut chunks = a.chunks_exact(16);
        for c in chunks.by_ref() {
            let p = c.as_ptr();
            let v0 = _mm_xor_si128(_mm_loadu_si128(p.cast()), bias);
            let v1 = _mm_xor_si128(_mm_loadu_si128(p.add(4).cast()), bias);
            let v2 = _mm_xor_si128(_mm_loadu_si128(p.add(8).cast()), bias);
            let v3 = _mm_xor_si128(_mm_loadu_si128(p.add(12).cast()), bias);
            acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v0, k));
            acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v1, k));
            acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v2, k));
            acc = _mm_sub_epi32(acc, _mm_cmplt_epi32(v3, k));
        }
        let folded = _mm_add_epi32(acc, _mm_shuffle_epi32(acc, 0b00_01_10_11));
        let folded = _mm_add_epi32(folded, _mm_shuffle_epi32(folded, 0b00_00_00_01));
        let mut n = _mm_cvtsi128_si32(folded) as usize;
        for &x in chunks.remainder() {
            n += (x < key) as usize;
        }
        n
    }
}

/// Portable chunked lower bound (autovectorizes on stable; see the
/// `x86_64` variant above for the algorithm).
#[cfg(not(target_arch = "x86_64"))]
#[inline]
pub fn chunk_lower_bound(a: &[u32], key: u32) -> usize {
    let mut n = 0usize;
    let mut chunks = a.chunks_exact(8);
    for c in chunks.by_ref() {
        n += (c[0] < key) as usize
            + (c[1] < key) as usize
            + (c[2] < key) as usize
            + (c[3] < key) as usize
            + (c[4] < key) as usize
            + (c[5] < key) as usize
            + (c[6] < key) as usize
            + (c[7] < key) as usize;
    }
    for &x in chunks.remainder() {
        n += (x < key) as usize;
    }
    n
}

/// Hybrid branch-free lower bound: branchless halving down to
/// [`CHUNK_SEARCH_WINDOW`] elements, then the chunked compare. This is the
/// production probe — block-sized inputs go straight to the vector path,
/// large inputs pay `log2(len / 64)` conditional-move steps first.
#[inline]
pub fn hybrid_lower_bound(a: &[u32], key: u32) -> usize {
    if a.len() < CHUNK_SEARCH_WINDOW {
        return chunk_lower_bound(a, key);
    }
    let mut base = 0usize;
    let mut size = a.len();
    // Loop invariant: every index below `base` holds a value `< key`, every
    // index at or past `base + size` holds a value `>= key`, so the lower
    // bound lies in `base..=base + size`.
    while size > CHUNK_SEARCH_WINDOW {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: `mid < base + size <= a.len()` is maintained by the loop.
        let probe = unsafe { *a.get_unchecked(mid) };
        base = core::hint::select_unpredictable(probe < key, mid, base);
        size -= half;
    }
    // One fixed 16-lane compare finishes the job. The window is anchored at
    // `base` but clamped so it never runs past the end; by the invariant the
    // clamp is harmless: lanes pulled in below `base` are all `< key` (they
    // count, and the `w +` offset accounts for them), lanes past
    // `base + size` are all `>= key` (they contribute nothing). The fixed
    // width is what keeps this branch-free — there is no remainder loop.
    let w = base.min(a.len() - CHUNK_SEARCH_WINDOW);
    // SAFETY: `w + 16 <= a.len()` by the clamp, and `a.len() >= 16` was
    // checked on entry.
    w + unsafe { count_less_16(a.as_ptr().add(w), key) }
}

/// Drop-in replacement for `slice::binary_search` on sorted `u32` slices,
/// built on [`hybrid_lower_bound`]: `Ok(i)` when `a[i] == key`, otherwise
/// `Err(i)` with the insertion index. Unlike `slice::binary_search`, the
/// returned `Ok` index is always the *first* occurrence (our containers are
/// duplicate-free, so the distinction never matters in practice).
#[inline]
pub fn find(a: &[u32], key: u32) -> Result<usize, usize> {
    let len = a.len();
    if len == 0 {
        return Err(0);
    }
    let i = hybrid_lower_bound(a, key);
    // Branch-free membership epilogue. The obvious
    // `i < len && a[i] == key` short-circuit mispredicts on every mixed
    // hit/miss stream (the branch is exactly "is the key present"), and on
    // the bench host that one branch cost more than the whole halving loop.
    // Clamping the index makes the load unconditional so the hit flag can
    // resolve as data flow instead.
    let j = core::hint::select_unpredictable(i < len, i, 0);
    // SAFETY: `j` is `i` clamped into the non-empty slice.
    let probe = unsafe { *a.as_ptr().add(j) };
    let hit = (i < len) & (probe == key);
    if hit {
        Ok(i)
    } else {
        Err(i)
    }
}

/// Returns the index of the *rightmost* element `<= key`, or `None` if every
/// element is greater than `key` (or the slice is empty).
///
/// This is the block-locating primitive: RIA index arrays store each block's
/// first element, and a key belongs to the rightmost block whose first
/// element does not exceed it.
#[inline]
pub fn rightmost_le(a: &[u32], key: u32) -> Option<usize> {
    let len = a.len();
    if len == 0 {
        return None;
    }
    let i = hybrid_lower_bound(a, key);
    // Same branch-free membership trick as [`find`]: clamp, load, flag.
    let j = core::hint::select_unpredictable(i < len, i, 0);
    // SAFETY: `j` is `i` clamped into the non-empty slice.
    let probe = unsafe { *a.as_ptr().add(j) };
    if (i < len) & (probe == key) {
        Some(i)
    } else if i == 0 {
        None
    } else {
        Some(i - 1)
    }
}

/// Lower bound tuned for *correlated* probe streams — sorted-batch apply
/// and rebuild merges, where successive keys land near each other. Plain
/// branchy halving all the way down: under a sorted batch the branch
/// history predicts the halving decisions almost perfectly, so each step
/// costs about a cycle, and even the fixed 16-lane SIMD tail of
/// [`hybrid_lower_bound`] loses to the four perfectly-predicted steps it
/// replaces. On random streams the roles reverse, so point-membership
/// probes should use [`hybrid_lower_bound`]/[`find`] instead.
#[inline]
pub fn stream_lower_bound(a: &[u32], key: u32) -> usize {
    let mut size = a.len();
    if size == 0 {
        return 0;
    }
    let mut base = 0usize;
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: `mid < base + size <= a.len()` is maintained by the loop.
        if unsafe { *a.get_unchecked(mid) } < key {
            base = mid;
        }
        size -= half;
    }
    // SAFETY: `base < a.len()` — the loop narrows but never empties.
    base + usize::from(unsafe { *a.get_unchecked(base) } < key)
}

/// [`find`] for correlated probe streams, built on [`stream_lower_bound`].
/// The epilogue keeps its short-circuit branch: on an apply stream a hit
/// means "duplicate edge in the batch", which is rare and thus predictable,
/// unlike the mixed hit/miss pattern of point-membership queries.
#[inline]
pub fn stream_find(a: &[u32], key: u32) -> Result<usize, usize> {
    let i = stream_lower_bound(a, key);
    if i < a.len() && a[i] == key {
        Ok(i)
    } else {
        Err(i)
    }
}

/// [`rightmost_le`] for correlated probe streams (block location during
/// sorted-batch apply), built on [`stream_lower_bound`].
#[inline]
pub fn stream_rightmost_le(a: &[u32], key: u32) -> Option<usize> {
    let i = stream_lower_bound(a, key);
    if i < a.len() && a[i] == key {
        Some(i)
    } else if i == 0 {
        None
    } else {
        Some(i - 1)
    }
}

/// Linear lower bound for cache-line-sized slices (kept as the scalar
/// reference the ablation and microbench compare against).
#[inline]
pub fn linear_lower_bound(a: &[u32], key: u32) -> usize {
    let mut i = 0;
    while i < a.len() && a[i] < key {
        i += 1;
    }
    i
}

/// Software prefetch hint: pull the cache line containing `p` toward L1
/// ahead of a streaming read. A no-op on architectures without a stable
/// prefetch primitive; never faults (prefetch instructions ignore invalid
/// addresses), but callers should still pass in-bounds pointers.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 has no architectural effect beyond cache state.
    unsafe {
        core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(p.cast::<i8>());
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM PLDL1KEEP has no architectural effect beyond cache state.
    unsafe {
        core::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) p,
            options(nostack, preserves_flags)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_matches_std() {
        let a = [2u32, 4, 4, 7, 9, 9, 9, 12];
        for key in 0..15 {
            assert_eq!(
                lower_bound(&a, key),
                a.partition_point(|&x| x < key),
                "key {key}"
            );
        }
        assert_eq!(lower_bound(&[], 5), 0);
    }

    #[test]
    fn lower_bound_singleton() {
        assert_eq!(lower_bound(&[5], 4), 0);
        assert_eq!(lower_bound(&[5], 5), 0);
        assert_eq!(lower_bound(&[5], 6), 1);
    }

    #[test]
    fn rightmost_le_cases() {
        let a = [10u32, 20, 30];
        assert_eq!(rightmost_le(&a, 5), None);
        assert_eq!(rightmost_le(&a, 10), Some(0));
        assert_eq!(rightmost_le(&a, 15), Some(0));
        assert_eq!(rightmost_le(&a, 20), Some(1));
        assert_eq!(rightmost_le(&a, 99), Some(2));
        assert_eq!(rightmost_le(&[], 1), None);
    }

    #[test]
    fn linear_matches_branchless() {
        let a = [1u32, 3, 5, 7, 9, 11, 13, 15];
        for key in 0..17 {
            assert_eq!(linear_lower_bound(&a, key), lower_bound(&a, key));
        }
    }

    #[test]
    fn chunk_matches_std_across_lengths_and_extremes() {
        // Lengths straddling the 8-lane chunk boundary, including empty and
        // remainder-only slices, probed with boundary keys (0, u32::MAX).
        for len in 0..=40usize {
            let a: Vec<u32> = (0..len as u32).map(|i| i * 3 + 1).collect();
            for key in 0..(len as u32 * 3 + 4) {
                assert_eq!(
                    chunk_lower_bound(&a, key),
                    a.partition_point(|&x| x < key),
                    "len {len} key {key}"
                );
            }
            assert_eq!(chunk_lower_bound(&a, 0), 0);
            assert_eq!(chunk_lower_bound(&a, u32::MAX), len);
        }
        assert_eq!(chunk_lower_bound(&[u32::MAX], u32::MAX), 0);
    }

    #[test]
    fn hybrid_matches_std_above_and_below_window() {
        for len in [0usize, 1, 13, 16, 63, 64, 65, 500, 4096] {
            let a: Vec<u32> = (0..len as u32).map(|i| i * 2).collect();
            for probe in 0..200u32 {
                let key = probe.wrapping_mul(41) % (len as u32 * 2 + 3);
                assert_eq!(
                    hybrid_lower_bound(&a, key),
                    a.partition_point(|&x| x < key),
                    "len {len} key {key}"
                );
                assert_eq!(
                    stream_lower_bound(&a, key),
                    a.partition_point(|&x| x < key),
                    "stream len {len} key {key}"
                );
            }
            assert_eq!(hybrid_lower_bound(&a, u32::MAX), len);
            assert_eq!(stream_lower_bound(&a, u32::MAX), len);
        }
    }

    #[test]
    fn hybrid_clamped_tail_window_is_exact() {
        // The hybrid probe finishes with a fixed 16-lane window clamped to
        // the slice end, relying on the halving-loop invariant to make the
        // overlap harmless. Stress exactly that: lengths just above the
        // window, heavy duplicate runs (so `base` sits anywhere relative to
        // the clamp), and every key in range.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = move |bound: u32| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 33) as u32 % bound.max(1)
        };
        for len in 16..=80usize {
            for _ in 0..8 {
                let mut a: Vec<u32> = (0..len).map(|_| next(24)).collect();
                a.sort_unstable();
                for key in 0..26u32 {
                    let want = a.partition_point(|&x| x < key);
                    assert_eq!(
                        hybrid_lower_bound(&a, key),
                        want,
                        "len {len} key {key} a {a:?}"
                    );
                    assert_eq!(
                        stream_lower_bound(&a, key),
                        want,
                        "stream len {len} key {key} a {a:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn find_matches_slice_binary_search() {
        let a: Vec<u32> = (0..300u32).map(|i| i * 7 + 2).collect();
        for key in 0..2_200u32 {
            match (find(&a, key), a.binary_search(&key)) {
                (Ok(i), Ok(j)) => assert_eq!(i, j, "key {key}"),
                (Err(i), Err(j)) => assert_eq!(i, j, "key {key}"),
                (mine, std) => panic!("key {key}: {mine:?} vs {std:?}"),
            }
            assert_eq!(stream_find(&a, key), find(&a, key), "stream key {key}");
            assert_eq!(
                stream_rightmost_le(&a, key),
                rightmost_le(&a, key),
                "stream rle key {key}"
            );
        }
        assert_eq!(find(&[], 9), Err(0));
        assert_eq!(stream_find(&[], 9), Err(0));
        assert_eq!(stream_rightmost_le(&[], 9), None);
    }

    #[test]
    fn lower_bound_exhaustive_small() {
        // Every sorted multiset over a tiny alphabet, checked against std
        // for all three probe implementations.
        let alphabet = [0u32, 1, 2, 3];
        for len in 0..=4usize {
            let mut idx = vec![0usize; len];
            loop {
                let a: Vec<u32> = idx.iter().map(|&i| alphabet[i]).collect();
                if a.windows(2).all(|w| w[0] <= w[1]) {
                    for key in 0..5 {
                        let want = a.partition_point(|&x| x < key);
                        assert_eq!(lower_bound(&a, key), want);
                        assert_eq!(chunk_lower_bound(&a, key), want);
                        assert_eq!(hybrid_lower_bound(&a, key), want);
                    }
                }
                // Odometer increment.
                let mut k = 0;
                while k < len {
                    idx[k] += 1;
                    if idx[k] < alphabet.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == len {
                    break;
                }
            }
        }
    }

    #[test]
    fn prefetch_is_callable_everywhere() {
        let a = [1u32, 2, 3];
        prefetch_read(a.as_ptr());
        prefetch_read(unsafe { a.as_ptr().add(2) });
    }
}
