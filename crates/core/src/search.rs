//! Shared ordered-search helpers.
//!
//! The paper's motivation (§2.3) is that binary search over a large PMA has
//! serial data dependencies and poor spatial locality. The structures here
//! instead search *small* index arrays, so the helpers are tuned for short
//! inputs: a branchless lower bound for index arrays and a linear scan for
//! within-block searches (a block is one cache line).

/// Returns the first index `i` with `a[i] >= key` (i.e. `a.len()` if none).
///
/// Branchless binary search: each step halves the range with a conditional
/// move instead of a branch, which avoids mispredictions on random keys.
#[inline]
pub fn lower_bound(a: &[u32], key: u32) -> usize {
    let mut base = 0usize;
    let mut size = a.len();
    while size > 1 {
        let half = size / 2;
        let mid = base + half;
        // SAFETY: `mid < base + size <= a.len()` is maintained by the loop.
        let probe = unsafe { *a.get_unchecked(mid) };
        if probe < key {
            base = mid;
        }
        size -= half;
    }
    if base < a.len() && a[base] < key {
        base + 1
    } else {
        base
    }
}

/// Returns the index of the *rightmost* element `<= key`, or `None` if every
/// element is greater than `key` (or the slice is empty).
///
/// This is the block-locating primitive: RIA index arrays store each block's
/// first element, and a key belongs to the rightmost block whose first
/// element does not exceed it.
#[inline]
pub fn rightmost_le(a: &[u32], key: u32) -> Option<usize> {
    let i = lower_bound(a, key);
    if i < a.len() && a[i] == key {
        Some(i)
    } else if i == 0 {
        None
    } else {
        Some(i - 1)
    }
}

/// Linear lower bound for cache-line-sized slices.
#[inline]
pub fn linear_lower_bound(a: &[u32], key: u32) -> usize {
    let mut i = 0;
    while i < a.len() && a[i] < key {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_bound_matches_std() {
        let a = [2u32, 4, 4, 7, 9, 9, 9, 12];
        for key in 0..15 {
            assert_eq!(
                lower_bound(&a, key),
                a.partition_point(|&x| x < key),
                "key {key}"
            );
        }
        assert_eq!(lower_bound(&[], 5), 0);
    }

    #[test]
    fn lower_bound_singleton() {
        assert_eq!(lower_bound(&[5], 4), 0);
        assert_eq!(lower_bound(&[5], 5), 0);
        assert_eq!(lower_bound(&[5], 6), 1);
    }

    #[test]
    fn rightmost_le_cases() {
        let a = [10u32, 20, 30];
        assert_eq!(rightmost_le(&a, 5), None);
        assert_eq!(rightmost_le(&a, 10), Some(0));
        assert_eq!(rightmost_le(&a, 15), Some(0));
        assert_eq!(rightmost_le(&a, 20), Some(1));
        assert_eq!(rightmost_le(&a, 99), Some(2));
        assert_eq!(rightmost_le(&[], 1), None);
    }

    #[test]
    fn linear_matches_branchless() {
        let a = [1u32, 3, 5, 7, 9, 11, 13, 15];
        for key in 0..17 {
            assert_eq!(linear_lower_bound(&a, key), lower_bound(&a, key));
        }
    }

    #[test]
    fn lower_bound_exhaustive_small() {
        // Every sorted multiset over a tiny alphabet, checked against std.
        let alphabet = [0u32, 1, 2, 3];
        for len in 0..=4usize {
            let mut idx = vec![0usize; len];
            loop {
                let a: Vec<u32> = idx.iter().map(|&i| alphabet[i]).collect();
                if a.windows(2).all(|w| w[0] <= w[1]) {
                    for key in 0..5 {
                        assert_eq!(lower_bound(&a, key), a.partition_point(|&x| x < key));
                    }
                }
                // Odometer increment.
                let mut k = 0;
                while k < len {
                    idx[k] += 1;
                    if idx[k] < alphabet.len() {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == len {
                    break;
                }
            }
        }
    }
}
