//! RIA — the *Redundant Indexed Array* (paper §3.1).
//!
//! An ordered set of `u32` keys stored in cache-line-sized blocks with a
//! compact *index array* that redundantly copies each block's first element.
//! A lookup binary-searches the index array (dense, cache-friendly) and then
//! scans one block, instead of binary-searching one large gapped array as a
//! PMA does.
//!
//! Inserting into a full block moves data *horizontally* across at most
//! `log2(num_blocks)` neighboring blocks (the paper's locality-aware bound on
//! movement distance); beyond that bound the whole array is rebuilt with
//! space-amplification factor `α`, leaving every block with fresh gaps.
//!
//! Unlike a PMA, RIA keeps **no upper density bound** (updates to one vertex
//! are single-threaded in LSGraph, §5) and **no empty blocks** (elements are
//! distributed evenly at build time), so it is memory-efficient.

use lsgraph_api::fail_point;
use lsgraph_api::trace::{span, SpanKind};
use lsgraph_api::{Footprint, MemoryFootprint, StructStats};

use crate::config::BKS;
use crate::search::{
    chunk_lower_bound, linear_lower_bound, prefetch_read, rightmost_le, stream_lower_bound,
    stream_rightmost_le,
};

/// Outcome of [`Ria::insert`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InsertOutcome {
    /// The key was added without rebuilding.
    Inserted,
    /// The key was added, and the array was rebuilt/expanded to make room.
    InsertedWithRebuild,
    /// The key was already present; nothing changed.
    Duplicate,
}

impl InsertOutcome {
    /// Whether the key was actually added.
    #[inline]
    pub fn inserted(self) -> bool {
        !matches!(self, InsertOutcome::Duplicate)
    }
}

/// Redundant Indexed Array: an ordered `u32` set in gapped cache-line blocks.
#[derive(Clone, Debug)]
pub struct Ria {
    /// First element of each block, redundantly copied (the "index array").
    index: Vec<u32>,
    /// Block storage: `num_blocks * BKS` slots; each block keeps its elements
    /// sorted in a contiguous prefix.
    data: Vec<u32>,
    /// Occupancy of each block's prefix.
    counts: Vec<u16>,
    /// Total number of elements.
    len: usize,
    /// Space amplification factor `α` used on rebuilds.
    alpha: f64,
}

impl Ria {
    /// Creates an empty RIA.
    ///
    /// # Panics
    ///
    /// Panics if `alpha <= 1.0`; [`Config::validate`](crate::Config::validate)
    /// rejects such configurations before they reach this layer.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 1.0, "space amplification factor must exceed 1.0");
        Ria {
            index: vec![0],
            data: vec![0; BKS],
            counts: vec![0],
            len: 0,
            alpha,
        }
    }

    /// Builds a RIA from a sorted, duplicate-free slice.
    ///
    /// Elements are spread evenly across `ceil(len * α / BKS)` blocks so no
    /// block starts full and none is empty.
    pub fn from_sorted(sorted: &[u32], alpha: f64) -> Self {
        let mut ria = Ria::new(alpha);
        if !sorted.is_empty() {
            debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
            ria.rebuild_from(sorted);
        }
        ria
    }

    /// Number of elements stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks currently allocated.
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.counts.len()
    }

    #[inline]
    fn block(&self, b: usize) -> &[u32] {
        &self.data[b * BKS..b * BKS + self.counts[b] as usize]
    }

    /// Walks the occupied blocks in order via the redundant index array,
    /// calling `f(index_entry, block_elements)` per block — the
    /// serialization visitor checkpoints use. For every non-empty block the
    /// index entry equals the block's first element (the RIA's core
    /// redundancy invariant).
    pub fn for_each_block(&self, mut f: impl FnMut(u32, &[u32])) {
        for b in 0..self.counts.len() {
            f(self.index[b], self.block(b));
        }
    }

    /// Locates the block that would hold `key`.
    ///
    /// Sound because blocks are never empty while `len > 0` (deletes refill
    /// or rebuild, see [`Ria::refill_empty_block`]), so the index array is
    /// strictly increasing and identifies blocks unambiguously.
    #[inline]
    fn find_block(&self, key: u32) -> usize {
        rightmost_le(&self.index, key).unwrap_or(0)
    }

    /// [`Ria::find_block`] for the mutation paths: a sorted batch walks the
    /// index with highly correlated keys, where the branchy stream probe
    /// beats the branch-free one (see [`crate::search::stream_lower_bound`]).
    #[inline]
    fn find_block_stream(&self, key: u32) -> usize {
        stream_rightmost_le(&self.index, key).unwrap_or(0)
    }

    /// Returns whether `key` is present.
    pub fn contains(&self, key: u32) -> bool {
        if self.len == 0 {
            return false;
        }
        let b = self.find_block(key);
        let blk = self.block(b);
        let i = chunk_lower_bound(blk, key);
        i < blk.len() && blk[i] == key
    }

    /// Inserts `key`, returning what happened. Structural events are
    /// recorded into the process-global [`StructStats`] sink; instrumented
    /// callers use [`Ria::insert_with`].
    pub fn insert(&mut self, key: u32) -> InsertOutcome {
        self.insert_with(key, StructStats::global())
    }

    /// Inserts `key`, recording structural movement into `stats`.
    pub fn insert_with(&mut self, key: u32, stats: &StructStats) -> InsertOutcome {
        if self.len == 0 {
            self.data[0] = key;
            self.counts[0] = 1;
            self.index[0] = key;
            self.len = 1;
            return InsertOutcome::Inserted;
        }
        let b = self.find_block_stream(key);
        let blk = self.block(b);
        let i = linear_lower_bound(blk, key);
        if i < blk.len() && blk[i] == key {
            return InsertOutcome::Duplicate;
        }
        if (self.counts[b] as usize) < BKS {
            self.insert_into_block(b, i, key, stats);
            self.len += 1;
            return InsertOutcome::Inserted;
        }
        // Position conflict with a full block: bounded horizontal movement.
        if let Some(donor) = self.find_donor(b) {
            let bound = self.counts.len().ilog2() as u64 + 1;
            let span = donor.abs_diff(b) as u64;
            self.ripple_insert(b, i, key, donor, stats);
            // One element crosses each block boundary between b and donor.
            stats.record_ria_ripple(span, span, bound);
            self.len += 1;
            return InsertOutcome::Inserted;
        }
        // Movement would exceed the locality bound: expand with factor α.
        let _span = span(SpanKind::RiaRebuild);
        fail_point!("ria_rebuild");
        let mut all = Vec::with_capacity(self.len + 1);
        self.for_each(|x| all.push(x));
        let pos = stream_lower_bound(&all, key);
        all.insert(pos, key);
        self.rebuild_from(&all);
        stats.record_ria_rebuild();
        InsertOutcome::InsertedWithRebuild
    }

    /// Deletes `key`; returns whether it was present. Structural events go
    /// to the process-global [`StructStats`] sink; instrumented callers use
    /// [`Ria::delete_with`].
    pub fn delete(&mut self, key: u32) -> bool {
        self.delete_with(key, StructStats::global())
    }

    /// Deletes `key`, recording structural movement into `stats`.
    pub fn delete_with(&mut self, key: u32, stats: &StructStats) -> bool {
        if self.len == 0 {
            return false;
        }
        let b = self.find_block_stream(key);
        let cnt = self.counts[b] as usize;
        let blk = &self.data[b * BKS..b * BKS + cnt];
        let i = linear_lower_bound(blk, key);
        if i >= cnt || blk[i] != key {
            return false;
        }
        self.data
            .copy_within(b * BKS + i + 1..b * BKS + cnt, b * BKS + i);
        stats.record_ria_within_shift((cnt - i - 1) as u64);
        self.counts[b] -= 1;
        self.len -= 1;
        if self.counts[b] == 0 {
            self.refill_empty_block(b, stats);
        } else if i == 0 {
            self.index[b] = self.data[b * BKS];
        }
        self.maybe_shrink(stats);
        true
    }

    /// Applies `f` to every element in ascending order.
    #[inline]
    pub fn for_each(&self, mut f: impl FnMut(u32)) {
        for b in 0..self.counts.len() {
            for &x in self.block(b) {
                f(x);
            }
        }
    }

    /// Applies `f` to every element in ascending order until it returns
    /// `false`; returns whether the scan completed.
    pub fn for_each_while(&self, mut f: impl FnMut(u32) -> bool) -> bool {
        for b in 0..self.counts.len() {
            for &x in self.block(b) {
                if !f(x) {
                    return false;
                }
            }
        }
        true
    }

    /// Collects every element into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(|x| v.push(x));
        v
    }

    /// Iterates elements in ascending order.
    pub fn iter(&self) -> RiaIter<'_> {
        RiaIter {
            ria: self,
            block: 0,
            pos: 0,
        }
    }

    /// Inserts `key` at in-block position `i` of block `b`, which has space.
    fn insert_into_block(&mut self, b: usize, i: usize, key: u32, stats: &StructStats) {
        let cnt = self.counts[b] as usize;
        debug_assert!(cnt < BKS && i <= cnt);
        let base = b * BKS;
        self.data.copy_within(base + i..base + cnt, base + i + 1);
        stats.record_ria_within_shift((cnt - i) as u64);
        self.data[base + i] = key;
        self.counts[b] += 1;
        if i == 0 {
            self.index[b] = key;
        }
    }

    /// Finds the nearest block with a free slot within the locality bound of
    /// `log2(num_blocks) + 1` blocks on each side (paper §4.2), or `None`.
    fn find_donor(&self, b: usize) -> Option<usize> {
        let nb = self.counts.len();
        let bound = nb.ilog2() as usize + 1;
        for d in 1..=bound {
            if b + d < nb && (self.counts[b + d] as usize) < BKS {
                return Some(b + d);
            }
            if d <= b && (self.counts[b - d] as usize) < BKS {
                return Some(b - d);
            }
        }
        None
    }

    /// Horizontal movement: inserts `key` at position `i` of full block `b`
    /// by carrying the displaced boundary element block-by-block to `donor`,
    /// which has a free slot. Each intermediate block moves exactly one
    /// element, so the movement distance is bounded by `|donor - b|` blocks.
    fn ripple_insert(&mut self, b: usize, i: usize, key: u32, donor: usize, stats: &StructStats) {
        debug_assert_eq!(self.counts[b] as usize, BKS);
        debug_assert!((self.counts[donor] as usize) < BKS);
        if donor > b {
            // Carry the block maximum rightward.
            let mut carry = if i == BKS {
                key
            } else {
                let max = self.pop_back(b);
                self.insert_into_block(b, i, key, stats);
                max
            };
            for k in b + 1..donor {
                let next = self.pop_back(k);
                self.push_front(k, carry);
                carry = next;
            }
            self.push_front(donor, carry);
        } else {
            // Carry the block minimum leftward.
            let mut carry = if i == 0 {
                key
            } else {
                let min = self.pop_front(b);
                self.insert_into_block(b, i - 1, key, stats);
                min
            };
            for k in (donor + 1..b).rev() {
                let next = self.pop_front(k);
                self.push_back(k, carry);
                carry = next;
            }
            self.push_back(donor, carry);
        }
    }

    fn pop_back(&mut self, b: usize) -> u32 {
        let cnt = self.counts[b] as usize;
        debug_assert!(cnt > 0);
        self.counts[b] -= 1;
        self.data[b * BKS + cnt - 1]
    }

    fn pop_front(&mut self, b: usize) -> u32 {
        let cnt = self.counts[b] as usize;
        debug_assert!(cnt > 0);
        let base = b * BKS;
        let v = self.data[base];
        self.data.copy_within(base + 1..base + cnt, base);
        self.counts[b] -= 1;
        if self.counts[b] > 0 {
            self.index[b] = self.data[base];
        }
        v
    }

    fn push_front(&mut self, b: usize, v: u32) {
        let cnt = self.counts[b] as usize;
        debug_assert!(cnt < BKS);
        let base = b * BKS;
        self.data.copy_within(base..base + cnt, base + 1);
        self.data[base] = v;
        self.counts[b] += 1;
        self.index[b] = v;
    }

    fn push_back(&mut self, b: usize, v: u32) {
        let cnt = self.counts[b] as usize;
        debug_assert!(cnt < BKS);
        self.data[b * BKS + cnt] = v;
        self.counts[b] += 1;
        if cnt == 0 {
            self.index[b] = v;
        }
    }

    /// Restores the no-empty-block invariant after a delete emptied block
    /// `b`: steal one element from an adjacent block that can spare one (a
    /// horizontal move, paper §4.2 "Delete"), or rebuild when both neighbors
    /// are down to a single element — a state only reachable at very low
    /// occupancy, where the shrink path would rebuild shortly anyway.
    fn refill_empty_block(&mut self, b: usize, stats: &StructStats) {
        debug_assert_eq!(self.counts[b], 0);
        if self.len == 0 {
            self.rebuild_from(&[]);
            return;
        }
        if b + 1 < self.counts.len() && self.counts[b + 1] >= 2 {
            let v = self.pop_front(b + 1);
            self.push_back(b, v);
            stats.record_ria_within_shift(1);
        } else if b > 0 && self.counts[b - 1] >= 2 {
            let v = self.pop_back(b - 1);
            self.push_front(b, v);
            stats.record_ria_within_shift(1);
        } else {
            let _span = span(SpanKind::RiaRebuild);
            fail_point!("ria_rebuild");
            let all = self.to_vec();
            self.rebuild_from(&all);
            stats.record_ria_rebuild();
        }
    }

    /// Rebuilds from a sorted slice, redistributing evenly with factor `α`.
    fn rebuild_from(&mut self, sorted: &[u32]) {
        let n = sorted.len();
        if n == 0 {
            self.index = vec![0];
            self.data = vec![0; BKS];
            self.counts = vec![0];
            self.len = 0;
            return;
        }
        let capacity = ((n as f64 * self.alpha).ceil() as usize).max(n);
        let nb = capacity.div_ceil(BKS).max(1);
        debug_assert!(n.div_ceil(nb) <= BKS);
        self.index = vec![0; nb];
        self.data = vec![0; nb * BKS];
        self.counts = vec![0; nb];
        let base = n / nb;
        let extra = n % nb;
        let mut src = 0;
        for b in 0..nb {
            let take = base + usize::from(b < extra);
            // Pull the source a few blocks ahead into cache while this
            // block's copy is in flight; the destination is written
            // streaming and needs no hint.
            if let Some(ahead) = sorted.get(src + 4 * BKS) {
                prefetch_read(ahead);
            }
            self.data[b * BKS..b * BKS + take].copy_from_slice(&sorted[src..src + take]);
            self.counts[b] = take as u16;
            self.index[b] = sorted[src];
            src += take;
        }
        debug_assert_eq!(src, n);
        self.len = n;
    }

    /// Shrinks after heavy deletion (occupancy below 25%) to bound memory.
    fn maybe_shrink(&mut self, stats: &StructStats) {
        let capacity = self.counts.len() * BKS;
        if self.counts.len() > 1 && self.len * 4 < capacity {
            let _span = span(SpanKind::RiaRebuild);
            fail_point!("ria_rebuild");
            let all = self.to_vec();
            self.rebuild_from(&all);
            stats.record_ria_rebuild();
        }
    }

    /// Checks every structural invariant; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn check_invariants(&self) {
        assert_eq!(self.index.len(), self.counts.len());
        assert_eq!(self.data.len(), self.counts.len() * BKS);
        let total: usize = self.counts.iter().map(|&c| c as usize).sum();
        assert_eq!(total, self.len, "count sum mismatch");
        let mut prev: Option<u32> = None;
        for b in 0..self.counts.len() {
            let blk = self.block(b);
            if self.len > 0 {
                assert!(!blk.is_empty(), "empty block {b} while len = {}", self.len);
                assert_eq!(self.index[b], blk[0], "index mismatch at block {b}");
            }
            for &x in blk {
                if let Some(p) = prev {
                    assert!(p < x, "order violation: {p} !< {x}");
                }
                prev = Some(x);
            }
        }
    }
}

/// Ascending iterator over a [`Ria`].
#[derive(Clone, Debug)]
pub struct RiaIter<'a> {
    ria: &'a Ria,
    block: usize,
    pos: usize,
}

impl Iterator for RiaIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        while self.block < self.ria.counts.len() {
            if self.pos < self.ria.counts[self.block] as usize {
                let v = self.ria.data[self.block * BKS + self.pos];
                self.pos += 1;
                return Some(v);
            }
            self.block += 1;
            self.pos = 0;
        }
        None
    }
}

impl<'a> IntoIterator for &'a Ria {
    type Item = u32;
    type IntoIter = RiaIter<'a>;

    fn into_iter(self) -> RiaIter<'a> {
        self.iter()
    }
}

impl MemoryFootprint for Ria {
    fn footprint(&self) -> Footprint {
        Footprint::new(
            self.data.len() * core::mem::size_of::<u32>(),
            self.index.len() * core::mem::size_of::<u32>()
                + self.counts.len() * core::mem::size_of::<u16>(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut r = Ria::new(1.2);
        for k in [5u32, 1, 9, 3, 7] {
            assert!(r.insert(k).inserted());
        }
        r.check_invariants();
        for k in [1u32, 3, 5, 7, 9] {
            assert!(r.contains(k));
        }
        for k in [0u32, 2, 4, 6, 8, 10] {
            assert!(!r.contains(k));
        }
        assert_eq!(r.to_vec(), vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn duplicates_rejected() {
        let mut r = Ria::new(1.2);
        assert_eq!(r.insert(4), InsertOutcome::Inserted);
        assert_eq!(r.insert(4), InsertOutcome::Duplicate);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ascending_bulk_insert_stays_sorted() {
        let mut r = Ria::new(1.2);
        for k in 0..10_000u32 {
            r.insert(k);
        }
        r.check_invariants();
        assert_eq!(r.len(), 10_000);
        assert_eq!(r.to_vec(), (0..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn descending_bulk_insert_stays_sorted() {
        let mut r = Ria::new(1.2);
        for k in (0..5_000u32).rev() {
            r.insert(k);
        }
        r.check_invariants();
        assert_eq!(r.to_vec(), (0..5_000).collect::<Vec<_>>());
    }

    #[test]
    fn from_sorted_round_trips() {
        let v: Vec<u32> = (0..1000).map(|i| i * 3).collect();
        let r = Ria::from_sorted(&v, 1.5);
        r.check_invariants();
        assert_eq!(r.to_vec(), v);
        assert_eq!(r.len(), v.len());
    }

    #[test]
    fn from_sorted_no_empty_blocks() {
        let v: Vec<u32> = (0..333).collect();
        let r = Ria::from_sorted(&v, 1.2);
        assert!(r.counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn delete_roundtrip() {
        let mut r = Ria::from_sorted(&(0..1000).collect::<Vec<_>>(), 1.2);
        for k in (0..1000).step_by(2) {
            assert!(r.delete(k));
        }
        r.check_invariants();
        assert_eq!(r.len(), 500);
        for k in 0..1000 {
            assert_eq!(r.contains(k), k % 2 == 1, "key {k}");
        }
        assert!(!r.delete(0));
        assert!(!r.delete(2000));
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut r = Ria::from_sorted(&(0..100).collect::<Vec<_>>(), 1.2);
        for k in 0..100 {
            assert!(r.delete(k));
        }
        assert!(r.is_empty());
        r.check_invariants();
        assert!(r.insert(42).inserted());
        assert_eq!(r.to_vec(), vec![42]);
    }

    #[test]
    fn shrinks_after_heavy_deletion() {
        let mut r = Ria::from_sorted(&(0..10_000).collect::<Vec<_>>(), 1.2);
        let blocks_before = r.num_blocks();
        for k in 0..9_900 {
            r.delete(k);
        }
        r.check_invariants();
        assert!(r.num_blocks() < blocks_before / 4);
        assert_eq!(r.to_vec(), (9_900..10_000).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_while_stops_early() {
        let r = Ria::from_sorted(&(0..100).collect::<Vec<_>>(), 1.2);
        let mut n = 0;
        let complete = r.for_each_while(|x| {
            n += 1;
            x < 10
        });
        assert!(!complete);
        // Elements 0..=10 are visited; the call with x = 10 returns false.
        assert_eq!(n, 11);
    }

    #[test]
    fn footprint_index_is_small() {
        let r = Ria::from_sorted(&(0..100_000).collect::<Vec<_>>(), 1.2);
        let fp = r.footprint();
        assert!(fp.payload_bytes >= 100_000 * 4);
        // Index overhead should be well under the paper's ~5% range at α=1.2.
        assert!(fp.index_ratio() < 0.12, "ratio {}", fp.index_ratio());
    }

    #[test]
    #[should_panic(expected = "space amplification")]
    fn rejects_alpha_one() {
        let _ = Ria::new(1.0);
    }

    #[test]
    fn interleaved_insert_delete_random() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        let mut r = Ria::new(1.2);
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let k = rng.gen_range(0..2_000u32);
            if rng.gen_bool(0.6) {
                assert_eq!(r.insert(k).inserted(), oracle.insert(k));
            } else {
                assert_eq!(r.delete(k), oracle.remove(&k));
            }
        }
        r.check_invariants();
        assert_eq!(r.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }
}
