//! Fault-injection differential suite (requires `--features failpoints`).
//!
//! For every failpoint site, under several seeds, a fault is injected in the
//! middle of batched updates and the suite asserts the blast radius is
//! exactly one vertex: invariants hold, `num_edges` stays exact, every
//! non-quarantined vertex is oracle-equal, and `repair_vertex` restores the
//! quarantined ones.

#![cfg(feature = "failpoints")]

use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, Once};

use lsgraph_api::failpoints::{self, FailMode};
use lsgraph_api::{DynamicGraph, Edge, Graph, VertexId};
use lsgraph_core::{Config, GraphError, LsGraph, Tier};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Failpoint configuration is process-global; every test serializes here.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A previous test may have panicked while holding the lock (e.g. a
    // failed assertion); the registry is still fine, so ignore poisoning.
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Suppresses the default panic-hook stderr spew for intentional failpoint
/// panics (they are caught by the engine); everything else still prints.
fn quiet_failpoint_panics() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg_is_failpoint = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("failpoint"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|s| s.contains("failpoint"));
            if !msg_is_failpoint {
                prev(info);
            }
        }));
    });
}

const N: usize = 200;
const ROUNDS: usize = 12;

/// Small `m` so vertices cross every tier (array → RIA → HITree) within the
/// workload, reaching all structural-movement failpoint sites.
fn cfg() -> Config {
    Config {
        m: 64,
        ..Config::default()
    }
}

/// Firing probability per evaluation: `apply_run` is evaluated once per
/// per-source run (thousands of hits), the structural sites far less often.
fn p_for(site: &str) -> f64 {
    match site {
        "apply_run" => 0.02,
        _ => 0.25,
    }
}

/// One round's batch: two super-hot sources taking clustered ranges (LIA
/// block overflows → vertical moves and retrains), a band of medium sources
/// hovering around the tier thresholds, and a cold tail.
fn gen_batch(rng: &mut SmallRng) -> Vec<Edge> {
    let mut b = Vec::new();
    for src in 0..2u32 {
        let center = rng.gen_range(0..3_000u32);
        for j in 0..80 {
            b.push(Edge::new(src, center + j));
        }
        for _ in 0..20 {
            b.push(Edge::new(src, rng.gen_range(0..4_000)));
        }
    }
    for src in 2..40u32 {
        for _ in 0..10 {
            b.push(Edge::new(src, rng.gen_range(0..200)));
        }
    }
    for _ in 0..60 {
        b.push(Edge::new(
            rng.gen_range(40..N as u32),
            rng.gen_range(0..N as u32),
        ));
    }
    b
}

fn shadow_neighbors(shadow: &[BTreeSet<u32>], v: VertexId) -> Vec<u32> {
    shadow[v as usize].iter().copied().collect()
}

/// Runs the differential workload with `site` armed during every batch,
/// asserting containment + exactness each round and repairing quarantined
/// vertices from the oracle. Returns the per-round quarantine lists.
///
/// Caller must hold [`LOCK`].
fn run_workload(site: &str, seed: u64) -> Vec<Vec<VertexId>> {
    quiet_failpoint_panics();
    failpoints::reset();
    let mut g = LsGraph::with_config(N, cfg());
    let mut shadow: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); N];
    // The workload stream is seeded independently of the failpoint seed so
    // every (site, seed) combination sees the same update sequence.
    let mut rng = SmallRng::seed_from_u64(0xC0FFEE);
    let mut history = Vec::new();
    let mut total_quarantines = 0u64;
    let mut total_fired = 0u64;

    for round in 0..ROUNDS {
        let batch = gen_batch(&mut rng);
        let deleting = round % 3 == 2;
        failpoints::configure(
            site,
            FailMode::Probability {
                p: p_for(site),
                seed: seed.wrapping_add(round as u64),
            },
        );
        let outcome = if deleting {
            g.try_delete_batch(&batch).unwrap()
        } else {
            g.try_insert_batch(&batch).unwrap()
        };
        total_fired += failpoints::fired(site);
        // Disarm while we inspect and repair: `repair_vertex` rebuilds
        // containers and must not itself be faulted.
        failpoints::configure(site, FailMode::Off);

        // Every vertex was healthy at batch start (repaired last round).
        assert_eq!(outcome.skipped_quarantined, 0, "round {round}");

        // The oracle applies the full batch fault-free.
        for e in &batch {
            if deleting {
                shadow[e.src as usize].remove(&e.dst);
            } else {
                shadow[e.src as usize].insert(e.dst);
            }
        }

        g.validate_invariants()
            .unwrap_or_else(|e| panic!("round {round}: {e}"));
        assert_eq!(g.quarantined_vertices(), outcome.quarantined);
        let q: BTreeSet<VertexId> = outcome.quarantined.iter().copied().collect();
        let mut expect_edges = 0;
        for v in 0..N as VertexId {
            if q.contains(&v) {
                assert!(g.is_quarantined(v));
                assert_eq!(g.degree(v), 0, "quarantined vertex {v} round {round}");
            } else {
                assert_eq!(
                    g.neighbors(v),
                    shadow_neighbors(&shadow, v),
                    "vertex {v} diverged from oracle in round {round}"
                );
                expect_edges += shadow[v as usize].len();
            }
        }
        assert_eq!(g.num_edges(), expect_edges, "num_edges round {round}");

        total_quarantines += outcome.quarantined.len() as u64;
        for &v in &outcome.quarantined {
            let ns = shadow_neighbors(&shadow, v);
            let installed = g.repair_vertex(v, &ns).unwrap();
            assert_eq!(installed, ns.len());
            assert!(!g.is_quarantined(v));
            assert_eq!(g.neighbors(v), ns);
        }
        g.validate_invariants().unwrap();
        assert_eq!(
            g.num_edges(),
            shadow.iter().map(BTreeSet::len).sum::<usize>(),
            "post-repair accounting round {round}"
        );
        history.push(outcome.quarantined);
    }

    assert!(
        total_fired >= 1,
        "site {site} seed {seed}: no fault ever fired — workload misses the site"
    );
    assert_eq!(
        total_quarantines, total_fired,
        "each fire quarantines one vertex"
    );
    let snap = g.struct_snapshot();
    assert_eq!(snap.apply_run_panics, total_quarantines);
    assert_eq!(snap.vertices_quarantined, total_quarantines);
    assert_eq!(snap.vertices_repaired, total_quarantines);
    failpoints::reset();
    history
}

fn run_site_under_seeds(site: &str) {
    let _l = lock();
    for seed in 1..=4 {
        run_workload(site, seed);
    }
}

#[test]
fn faults_at_ria_rebuild_are_contained() {
    run_site_under_seeds("ria_rebuild");
}

#[test]
fn faults_at_lia_retrain_are_contained() {
    run_site_under_seeds("lia_retrain");
}

#[test]
fn faults_at_hitree_vertical_are_contained() {
    run_site_under_seeds("hitree_vertical");
}

#[test]
fn faults_at_tier_upgrade_are_contained() {
    run_site_under_seeds("tier_upgrade");
}

#[test]
fn faults_at_apply_run_are_contained() {
    run_site_under_seeds("apply_run");
}

/// The `spill_downgrade` site fires on the delete path, when a spill
/// container shrinks below half its tier threshold and rebuilds into a
/// smaller tier. The random workload rarely shrinks a vertex that far, so
/// this drives it deterministically: grow one vertex into the HITree tier,
/// then delete it down through the downgrade point.
#[test]
fn faults_at_spill_downgrade_are_contained() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let mut g = LsGraph::with_config(16, cfg());
    let grow: Vec<Edge> = (1..=100u32).map(|j| Edge::new(0, j % 400 + 1)).collect();
    let grow: Vec<Edge> = {
        let mut v = grow;
        v.sort_by_key(|e| e.dst);
        v.dedup_by_key(|e| e.dst);
        v
    };
    g.insert_batch(&grow);
    g.insert_batch(&[Edge::new(1, 2), Edge::new(1, 3)]);
    let degree0 = g.degree(0);
    assert!(
        degree0 > 64,
        "vertex 0 must sit in the HITree tier (m = 64)"
    );

    // Deleting well past the half-threshold point guarantees the armed
    // downgrade is reached mid-batch.
    let shrink: Vec<Edge> = grow[..80].to_vec();
    failpoints::configure("spill_downgrade", FailMode::Nth(1));
    let outcome = g.try_delete_batch(&shrink).unwrap();
    assert_eq!(failpoints::fired("spill_downgrade"), 1, "Nth fires once");
    failpoints::configure("spill_downgrade", FailMode::Off);
    assert_eq!(outcome.quarantined, vec![0]);
    assert_eq!(outcome.edges_lost, degree0, "whole adjacency dropped");
    assert_eq!(g.degree(0), 0);
    assert!(g.is_quarantined(0));
    // Blast radius is exactly vertex 0.
    assert_eq!(g.neighbors(1), vec![2, 3]);
    assert_eq!(g.num_edges(), 2);
    g.validate_invariants().unwrap();
    let snap = g.struct_snapshot();
    assert_eq!(snap.apply_run_panics, 1);
    assert_eq!(snap.vertices_quarantined, 1);

    // Repair from the oracle (the full batch applied: survivors only).
    let survivors: Vec<u32> = grow[80..].iter().map(|e| e.dst).collect();
    assert_eq!(g.repair_vertex(0, &survivors), Ok(survivors.len()));
    assert_eq!(g.neighbors(0), survivors);

    // Disarmed, the same shrink pattern downgrades for real.
    let before = g.struct_snapshot().tier_downgrades;
    g.insert_batch(&grow);
    g.delete_batch(&grow[..80]);
    assert!(
        g.struct_snapshot().tier_downgrades > before,
        "the disarmed path must actually downgrade"
    );
    assert_eq!(g.neighbors(0), survivors);
    g.check_invariants();
    failpoints::reset();
}

/// The `spill_compress` site covers both windows of the compressed cold
/// tier: the encode window in [`LsGraph::compress_cold_vertices`] (after the
/// replacement block is built, before it is installed) and the decode window
/// in the thaw that precedes a write to a frozen vertex. A kill in the
/// encode window must leave the vertex on its previous tier, oracle-equal; a
/// kill in the decode window is absorbed by the apply pipeline and
/// quarantines exactly the frozen vertex.
#[test]
fn faults_at_spill_compress_are_contained() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let cold = Config {
        m: 64,
        compress_cold: true,
        ..Config::default()
    };
    let mut g = LsGraph::with_config(16, cold);
    // Vertex 0 grows past M = 64 onto the HITree tier; vertex 1 is a
    // bystander proving the blast radius later.
    let grow: Vec<Edge> = (1..=100u32).map(|j| Edge::new(0, j)).collect();
    g.insert_batch(&grow);
    g.insert_batch(&[Edge::new(1, 2), Edge::new(1, 3)]);
    let before = g.neighbors(0);
    assert_eq!(g.tier(0), Tier::HiTree);

    // Encode window: the kill lands after the replacement block is built
    // but before it is installed, so the attempt vanishes without a trace.
    failpoints::configure("spill_compress", FailMode::Nth(1));
    let attempt =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.compress_cold_vertices()));
    assert!(attempt.is_err(), "armed compression must panic");
    assert_eq!(failpoints::fired("spill_compress"), 1, "Nth fires once");
    failpoints::configure("spill_compress", FailMode::Off);
    assert_eq!(
        g.tier(0),
        Tier::HiTree,
        "killed freeze must not change tiers"
    );
    assert_eq!(g.neighbors(0), before);
    assert_eq!(g.neighbors(1), vec![2, 3]);
    assert_eq!(g.num_edges(), before.len() + 2);
    g.validate_invariants().unwrap();
    assert_eq!(g.struct_snapshot().spill_compressions, 0);
    assert_eq!(g.struct_snapshot().vertices_quarantined, 0);

    // Disarmed, the same call freezes for real and stays oracle-equal.
    assert_eq!(g.compress_cold_vertices(), 1);
    assert_eq!(g.tier(0), Tier::Compressed);
    assert_eq!(g.neighbors(0), before);
    assert!(g.has_edge(0, 50));
    g.validate_invariants().unwrap();
    assert_eq!(g.struct_snapshot().spill_compressions, 1);

    // Decode window: a write to the frozen vertex forces a thaw; the armed
    // kill is absorbed by the apply pipeline and quarantines exactly the
    // frozen vertex while the bystander's edge still lands.
    failpoints::configure("spill_compress", FailMode::Nth(1));
    let outcome = g
        .try_insert_batch(&[Edge::new(0, 200), Edge::new(1, 4)])
        .unwrap();
    assert_eq!(failpoints::fired("spill_compress"), 1);
    failpoints::configure("spill_compress", FailMode::Off);
    assert_eq!(outcome.quarantined, vec![0]);
    assert_eq!(outcome.applied, 1, "bystander's edge applied");
    assert_eq!(outcome.edges_lost, before.len());
    assert_eq!(g.degree(0), 0);
    assert!(g.is_quarantined(0));
    assert_eq!(g.neighbors(1), vec![2, 3, 4]);
    g.validate_invariants().unwrap();

    // Repair from the oracle: the replacement adjacency is past M, so the
    // compress-enabled config re-derives the frozen tier directly, and the
    // vertex resumes normal (thaw-on-write) service.
    let mut oracle = before.clone();
    oracle.push(200);
    assert_eq!(g.repair_vertex(0, &oracle), Ok(oracle.len()));
    assert_eq!(g.tier(0), Tier::Compressed);
    assert_eq!(g.neighbors(0), oracle);
    assert_eq!(g.insert_batch(&[Edge::new(0, 201)]), 1);
    assert!(g.has_edge(0, 201));
    assert!(
        g.struct_snapshot().spill_thaws >= 1,
        "the disarmed write must actually thaw"
    );
    g.validate_invariants().unwrap();
    failpoints::reset();
}

#[test]
fn same_seed_reproduces_the_same_quarantine_sequence() {
    let _l = lock();
    // Pin to one worker so per-site hit order is interleaving-free on any
    // machine (the differential assertions above don't need this; exact
    // sequence equality does).
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let a = pool.install(|| run_workload("ria_rebuild", 5));
    let b = pool.install(|| run_workload("ria_rebuild", 5));
    assert_eq!(a, b, "same seed must reproduce the same fault pattern");
    assert!(a.iter().any(|round| !round.is_empty()));
}

#[test]
fn nth_mode_quarantines_exactly_one_deterministic_run() {
    let _l = lock();
    quiet_failpoint_panics();
    let one_shot = || {
        failpoints::reset();
        let mut g = LsGraph::with_config(4, cfg());
        failpoints::configure("apply_run", FailMode::Nth(1));
        // A single-source batch has exactly one run, so the first hit is
        // deterministic regardless of scheduling.
        let outcome = g
            .try_insert_batch(&[Edge::new(2, 0), Edge::new(2, 1), Edge::new(2, 3)])
            .unwrap();
        failpoints::reset();
        (outcome, g.num_edges())
    };
    let (o1, m1) = one_shot();
    let (o2, m2) = one_shot();
    assert_eq!(o1, o2);
    assert_eq!(o1.quarantined, vec![2]);
    assert_eq!(o1.applied, 0);
    assert_eq!(o1.edges_lost, 0, "vertex was empty before the batch");
    assert_eq!((m1, m2), (0, 0));
}

#[test]
fn quarantined_sources_are_skipped_until_repaired() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let mut g = LsGraph::with_config(4, cfg());
    g.insert_batch(&[Edge::new(0, 1), Edge::new(0, 2)]);
    failpoints::configure("apply_run", FailMode::Nth(1));
    let outcome = g.try_insert_batch(&[Edge::new(0, 3)]).unwrap();
    failpoints::reset();
    assert_eq!(outcome.quarantined, vec![0]);
    assert_eq!(outcome.edges_lost, 2, "pre-batch adjacency was dropped");
    assert_eq!(g.num_edges(), 0);
    assert_eq!(g.degree(0), 0);

    // With the site disarmed, batches touching the quarantined source skip
    // it (and report that) while other sources proceed normally.
    let outcome = g
        .try_insert_batch(&[Edge::new(0, 3), Edge::new(1, 3)])
        .unwrap();
    assert_eq!(outcome.skipped_quarantined, 1);
    assert_eq!(outcome.applied, 1);
    assert_eq!(g.degree(0), 0);
    assert!(g.has_edge(1, 3));
    assert!(g.is_quarantined(0));
    // Deletes skip it too.
    let outcome = g.try_delete_batch(&[Edge::new(0, 1)]).unwrap();
    assert_eq!(outcome.skipped_quarantined, 1);

    // Repair restores the vertex and it resumes accepting updates.
    assert_eq!(g.repair_vertex(0, &[2, 1, 2]), Ok(2));
    assert!(!g.is_quarantined(0));
    assert_eq!(g.neighbors(0), vec![1, 2]);
    assert_eq!(g.num_edges(), 3);
    assert_eq!(g.insert_batch(&[Edge::new(0, 3)]), 1);
    g.check_invariants();

    // Repair misuse is rejected as values.
    assert_eq!(g.repair_vertex(1, &[]), Err(GraphError::NotQuarantined(1)));
    assert_eq!(
        g.repair_vertex(99, &[]),
        Err(GraphError::VertexOutOfRange {
            vertex: 99,
            num_vertices: 4
        })
    );
}

#[test]
fn faults_at_snapshot_flip_leave_live_graph_and_snapshots_intact() {
    let _l = lock();
    quiet_failpoint_panics();
    for seed in 1..=4u64 {
        failpoints::reset();
        let mut rng = SmallRng::seed_from_u64(0xF11B + seed);
        let mut g = LsGraph::with_config(N, cfg());
        let mut shadow: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); N];
        let batch = gen_batch(&mut rng);
        g.insert_batch(&batch);
        for e in &batch {
            shadow[e.src as usize].insert(e.dst);
        }
        let survivor = g.snapshot();
        let frozen: Vec<Vec<u32>> = (0..N as u32).map(|v| g.neighbors(v)).collect();
        let frozen_m = g.num_edges();

        // The flip itself faults: the attempt must vanish without a trace.
        failpoints::configure("snapshot_flip", FailMode::Nth(1));
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.snapshot()));
        assert!(attempt.is_err(), "seed {seed}: armed flip must panic");
        assert_eq!(failpoints::fired("snapshot_flip"), 1, "fires exactly once");
        failpoints::configure("snapshot_flip", FailMode::Off);

        // Live graph intact and oracle-equal.
        g.validate_invariants().unwrap();
        for v in 0..N as VertexId {
            assert_eq!(g.neighbors(v), shadow_neighbors(&shadow, v), "seed {seed}");
        }
        // The pre-fault snapshot survived untouched.
        survivor.validate_invariants().unwrap();
        assert_eq!(survivor.num_edges(), frozen_m);
        for v in 0..N as VertexId {
            assert_eq!(survivor.neighbors(v), frozen[v as usize], "seed {seed}");
        }
        // The failed attempt never registered: only the survivor was taken,
        // and snapshotting still works afterwards.
        assert_eq!(g.struct_snapshot().snapshots_taken, 1, "seed {seed}");
        let after = g.snapshot();
        g.insert_batch(&gen_batch(&mut rng));
        assert_eq!(after.num_edges(), frozen_m, "seed {seed}");
        after.validate_invariants().unwrap();

        drop((survivor, after));
        g.reclaim_epochs();
        assert_eq!(g.epoch_backlog(), 0, "seed {seed}");
        assert_eq!(g.struct_snapshot().snapshots_retired, 2, "seed {seed}");
    }
    failpoints::reset();
}

#[test]
fn faults_at_epoch_reclaim_leave_graph_and_snapshots_intact() {
    let _l = lock();
    quiet_failpoint_panics();
    for seed in 1..=4u64 {
        failpoints::reset();
        let mut rng = SmallRng::seed_from_u64(0xEC1A + seed);
        let mut g = LsGraph::with_config(N, cfg());
        let mut shadow: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); N];
        let batch = gen_batch(&mut rng);
        g.insert_batch(&batch);
        for e in &batch {
            shadow[e.src as usize].insert(e.dst);
        }
        let snap = g.snapshot();
        let frozen: Vec<Vec<u32>> = (0..N as u32).map(|v| g.neighbors(v)).collect();
        let frozen_m = g.num_edges();

        // The next batch retires CoW-displaced versions and then reclaims at
        // the batch boundary; the armed site panics at the very top of that
        // reclaim — after the batch has fully applied and been accounted.
        let batch2 = gen_batch(&mut rng);
        failpoints::configure("epoch_reclaim", FailMode::Nth(1));
        let attempt =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| g.try_insert_batch(&batch2)));
        assert!(attempt.is_err(), "seed {seed}: armed reclaim must panic");
        assert_eq!(failpoints::fired("epoch_reclaim"), 1, "fires exactly once");
        failpoints::configure("epoch_reclaim", FailMode::Off);
        for e in &batch2 {
            shadow[e.src as usize].insert(e.dst);
        }

        // The batch committed before the reclaim fault: live view is
        // oracle-equal including batch2, and the snapshot still reads the
        // pre-batch2 state.
        g.validate_invariants().unwrap();
        for v in 0..N as VertexId {
            assert_eq!(g.neighbors(v), shadow_neighbors(&shadow, v), "seed {seed}");
        }
        snap.validate_invariants().unwrap();
        assert_eq!(snap.num_edges(), frozen_m);
        for v in 0..N as VertexId {
            assert_eq!(snap.neighbors(v), frozen[v as usize], "seed {seed}");
        }
        // The aborted reclaim freed nothing (the snapshot still pins the
        // displaced versions anyway); quiescence drains it as usual.
        assert!(g.epoch_backlog() > 0, "seed {seed}: CoW retired versions");
        drop(snap);
        g.reclaim_epochs();
        assert_eq!(g.epoch_backlog(), 0, "seed {seed}");
        assert_eq!(g.struct_snapshot().epoch_reclaim_backlog, 0, "seed {seed}");
    }
    failpoints::reset();
}

#[test]
fn try_from_edges_contains_bulk_load_faults() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();
    let mut edges = Vec::new();
    for src in 0..50u32 {
        for j in 0..30u32 {
            edges.push(Edge::new(src, (src * 7 + j * 3) % 400));
        }
    }
    let mut expected: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); 400];
    for e in &edges {
        expected[e.src as usize].insert(e.dst);
    }
    failpoints::configure("apply_run", FailMode::Probability { p: 0.2, seed: 9 });
    let (mut g, outcome) = LsGraph::try_from_edges(400, &edges, cfg()).unwrap();
    failpoints::reset();
    assert!(
        !outcome.quarantined.is_empty(),
        "p=0.2 over 50 build runs should fault at least once"
    );
    g.validate_invariants().unwrap();
    let q: BTreeSet<VertexId> = outcome.quarantined.iter().copied().collect();
    let mut live_edges = 0;
    for v in 0..400u32 {
        if q.contains(&v) {
            assert_eq!(g.degree(v), 0);
            assert!(g.is_quarantined(v));
        } else {
            assert_eq!(
                g.neighbors(v),
                expected[v as usize].iter().copied().collect::<Vec<_>>()
            );
            live_edges += expected[v as usize].len();
        }
    }
    assert_eq!(g.num_edges(), live_edges);
    assert_eq!(outcome.applied, live_edges);
    let lost: usize = outcome
        .quarantined
        .iter()
        .map(|&v| expected[v as usize].len())
        .sum();
    assert_eq!(outcome.edges_lost, lost);

    // Repair every casualty; the load converges to the fault-free graph.
    for &v in &outcome.quarantined {
        let ns: Vec<u32> = expected[v as usize].iter().copied().collect();
        assert_eq!(g.repair_vertex(v, &ns), Ok(ns.len()));
    }
    g.check_invariants();
    assert_eq!(
        g.num_edges(),
        expected.iter().map(BTreeSet::len).sum::<usize>()
    );
}

#[test]
fn killed_sampler_never_corrupts_metrics_stream_or_engine_counters() {
    let _l = lock();
    quiet_failpoint_panics();
    failpoints::reset();

    let path = std::env::temp_dir().join(format!(
        "lsgraph_fault_metrics_{}.jsonl",
        std::process::id()
    ));
    lsgraph_api::metrics::stream_to_file(&path).unwrap();
    assert!(lsgraph_api::metrics::write_header("fault", 2).unwrap());

    let mut g = LsGraph::with_config(N, cfg());
    let mut rng = SmallRng::seed_from_u64(0xFA17);
    g.try_insert_batch(&gen_batch(&mut rng)).unwrap();

    let mut registry = lsgraph_api::MetricsRegistry::new();
    registry.register_struct_stats("lsgraph", g.stats_handle());
    registry.register_latency_stats("lsgraph", g.latency_handle());
    let mut sampler = lsgraph_api::Sampler::new(std::sync::Arc::new(registry), "fault/m=64");

    // Tick 0 succeeds while the site is disarmed.
    assert!(sampler.tick(&[("writer_eps", 1.0)]).unwrap());
    assert_eq!(sampler.ticks(), 1);

    // Arm the site and kill the next tick. The failpoint is evaluated
    // before the registry is read or any byte written, so the panic must
    // leave both the engine counters and the JSONL prefix untouched.
    let before = g.stats_handle().snapshot();
    failpoints::configure("metrics_sample", FailMode::Nth(1));
    let killed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = sampler.tick(&[("writer_eps", 1.0)]);
    }));
    assert!(killed.is_err(), "armed metrics_sample tick must panic");
    assert_eq!(failpoints::fired("metrics_sample"), 1);
    assert_eq!(sampler.ticks(), 1, "killed tick must not count");
    assert_eq!(
        g.stats_handle().snapshot(),
        before,
        "a killed sampler tick must not perturb engine counters"
    );
    failpoints::reset();

    // Sampling resumes cleanly, and the engine keeps working underneath.
    g.try_insert_batch(&gen_batch(&mut rng)).unwrap();
    assert!(sampler.tick(&[("writer_eps", 0.0)]).unwrap());
    assert_eq!(sampler.ticks(), 2);
    let samples = lsgraph_api::metrics::finish_stream().unwrap();
    assert_eq!(samples, Some(2));
    g.validate_invariants().unwrap();

    // The stream on disk is whole lines only: a header plus exactly the
    // two surviving samples, no torn partial line from the killed tick.
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "header + 2 samples, got: {text}");
    assert!(lines[0].contains("\"schema\":\"lsgraph-metrics-v1\""));
    assert!(lines[0].contains("\"samples_expected\":2"));
    for (i, line) in lines[1..].iter().enumerate() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "torn line: {line}"
        );
        assert!(line.contains(&format!("\"tick\":{i}")));
        assert!(line.contains("\"cell\":\"fault/m=64\""));
        assert!(line.contains("lsgraph_vb_inline_hits"));
    }
}
