//! Structural-movement bound tests (paper §3.1 / §3.2).
//!
//! These tests pin the paper's two locality claims as *counter invariants*:
//! a RIA insertion never moves data across more than `log2(num_blocks) + 1`
//! blocks without falling back to a rebuild (`ria_bound_exceeded == 0`), and
//! the HITree only creates vertical children when a block overflow forces it
//! (`lia_vertical_premature == 0`) — horizontal packing always comes first.

use lsgraph_api::{DynamicGraph, Edge, Graph, StructStats};
use lsgraph_core::{Config, LsGraph, Ria};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// Mixed insert/delete stream over a RIA: every cross-block ripple stays
/// within the locality bound, and once local slack is exhausted the
/// structure rebuilds instead of rippling further.
#[test]
fn ria_mixed_stream_respects_locality_bound() {
    let stats = StructStats::new();
    // Spread 10k elements, then hammer one narrow key range so the local
    // blocks fill up, forcing ripples and eventually bound-driven rebuilds.
    let base: Vec<u32> = (0..10_000u32).map(|i| i * 10).collect();
    let mut r = Ria::from_sorted(&base, 1.2);
    let mut oracle: std::collections::BTreeSet<u32> = base.iter().copied().collect();
    for k in 50_000..52_000u32 {
        assert_eq!(r.insert_with(k, &stats).inserted(), oracle.insert(k));
    }
    // Interleave random inserts and deletes across the whole range.
    let mut rng = SmallRng::seed_from_u64(99);
    for _ in 0..30_000 {
        let k = rng.gen_range(0..100_000u32);
        if rng.gen_bool(0.6) {
            assert_eq!(r.insert_with(k, &stats).inserted(), oracle.insert(k));
        } else {
            assert_eq!(r.delete_with(k, &stats), oracle.remove(&k));
        }
    }
    r.check_invariants();
    assert_eq!(r.to_vec(), oracle.into_iter().collect::<Vec<_>>());

    let s = stats.snapshot();
    assert!(s.ria_ripples > 0, "workload never rippled: {s:?}");
    assert!(s.ria_rebuilds > 0, "workload never rebuilt: {s:?}");
    assert!(s.ria_within_block_shifts > 0);
    assert!(s.ria_cross_block_moves > 0);
    assert!(s.ria_bound > 0, "bound gauge never recorded");
    assert_eq!(
        s.ria_bound_exceeded, 0,
        "an insertion moved data past log2(num_blocks)+1 blocks without rebuilding"
    );
}

/// A hub vertex pushed through Array -> RIA -> HITree: vertical children
/// appear only after horizontal packing of overflowing blocks, never
/// preemptively.
#[test]
fn hitree_verticals_only_after_block_overflow() {
    // Small medium-tier ceiling so the hub reaches the HITree quickly.
    let cfg = Config::default().with_m(128);
    let n = 5_000usize;
    let mut g = LsGraph::with_config(n, cfg);
    // Insert the hub's neighbors in seeded shuffled batches (clustered keys
    // exercise packing; spread keys exercise child creation).
    let mut dsts: Vec<u32> = (1..n as u32).collect();
    let mut rng = SmallRng::seed_from_u64(7);
    for i in (1..dsts.len()).rev() {
        dsts.swap(i, rng.gen_range(0..i + 1));
    }
    for chunk in dsts.chunks(256) {
        let batch: Vec<Edge> = chunk.iter().map(|&d| Edge::new(0, d)).collect();
        g.insert_batch(&batch);
    }
    g.check_invariants();
    assert_eq!(g.degree(0), n - 1);

    let s = g.struct_snapshot();
    assert!(s.tier_upgrades >= 2, "hub never climbed the tiers: {s:?}");
    assert!(s.lia_horizontal_packs > 0, "no horizontal packing: {s:?}");
    assert!(
        s.lia_vertical_child_creates > 0,
        "no vertical children: {s:?}"
    );
    assert!(s.hitree_node_upgrades > 0, "no HITree node upgrades: {s:?}");
    assert_eq!(
        s.lia_vertical_premature, 0,
        "a vertical child was created without a block overflow"
    );
}

/// Relaxed-atomic counter totals are schedule-independent: the same batch
/// stream applied under 1 worker thread and under 8 yields identical counts
/// for every deterministic (non-timing) field.
#[test]
fn parallel_counter_totals_match_single_threaded() {
    let run = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut g = LsGraph::with_config(4_096, Config::default().with_m(128));
            let mut rng = SmallRng::seed_from_u64(42);
            for round in 0..8 {
                // Skewed sources: 64 hubs accumulate degree past `m`, so the
                // batches drive the RIA and HITree tiers, not just inline.
                let batch: Vec<Edge> = (0..4_000)
                    .map(|_| Edge::new(rng.gen_range(0..64), rng.gen_range(0..4_096)))
                    .collect();
                g.insert_batch(&batch);
                if round % 2 == 1 {
                    g.delete_batch(&batch[..1_000]);
                }
            }
            g.struct_snapshot()
        })
    };
    let single = run(1);
    let many = run(8);
    assert_eq!(single.deterministic_fields(), many.deterministic_fields());
    // Sanity: the workload actually produced structural movement.
    assert!(single.ria_within_block_shifts > 0);
    assert!(single.vb_inline_hits > 0);
}

/// `snapshot().since(earlier)` isolates exactly the second phase's counts:
/// replaying only that phase on a clone from the cut point, with a fresh
/// sink, reproduces the diff field-for-field.
#[test]
fn snapshot_since_diff_is_exact() {
    let stats = StructStats::new();
    let mut r = Ria::new(1.2);
    let mut rng = SmallRng::seed_from_u64(5);
    let phase1: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..50_000)).collect();
    for &k in &phase1 {
        r.insert_with(k, &stats);
    }
    let cut = stats.snapshot();
    let checkpoint = r.clone();

    let phase2: Vec<(u32, bool)> = (0..5_000)
        .map(|_| (rng.gen_range(0..50_000), rng.gen_bool(0.5)))
        .collect();
    for &(k, ins) in &phase2 {
        if ins {
            r.insert_with(k, &stats);
        } else {
            r.delete_with(k, &stats);
        }
    }
    let diff = stats.snapshot().since(cut);

    let replay_stats = StructStats::new();
    let mut replay = checkpoint;
    for &(k, ins) in &phase2 {
        if ins {
            replay.insert_with(k, &replay_stats);
        } else {
            replay.delete_with(k, &replay_stats);
        }
    }
    // Gauges (`ria_max_ripple_span`, `ria_bound`) are carried through
    // `since` rather than diffed, so they reflect both phases; every true
    // counter must match the replay exactly.
    let counters_only = |s: &lsgraph_api::StructSnapshot| {
        s.deterministic_fields()
            .into_iter()
            .filter(|(name, _)| !matches!(*name, "ria_max_ripple_span" | "ria_bound"))
            .collect::<Vec<_>>()
    };
    assert_eq!(
        counters_only(&diff),
        counters_only(&replay_stats.snapshot())
    );
    assert!(diff.ria_within_block_shifts > 0, "phase 2 was a no-op");
}
