//! Snapshot-isolation differential suite: a [`GraphSnapshot`] taken at a
//! batch boundary must keep reading exactly the state at its flip — no
//! later insert or delete may leak into it — while the live graph moves on.
//!
//! Each test freezes a `BTreeSet` adjacency oracle at snapshot time and
//! re-verifies every outstanding snapshot against its frozen oracle after
//! every subsequent batch, across 4 seeds. The copy-on-write and epoch
//! counters are checked exactly: with a fresh snapshot taken before every
//! batch, each per-source run copies its block exactly once, and the
//! reclamation backlog must return to zero once the last snapshot drops.

use std::collections::BTreeSet;
use std::sync::mpsc;

use rand::{rngs::SmallRng, Rng, SeedableRng};

use lsgraph_api::{DynamicGraph, Edge, Graph};
use lsgraph_core::{Config, GraphSnapshot, LsGraph};

const N: usize = 120;
const ROUNDS: usize = 16;

/// Small thresholds so the stream exercises array, RIA, and HITree spills
/// (copy-on-write must preserve every tier, not just inline blocks).
fn cfg() -> Config {
    Config {
        a: 4,
        m: 32,
        ..Config::default()
    }
}

fn gen_batch(rng: &mut SmallRng) -> (bool, Vec<Edge>) {
    let is_insert = rng.gen_bool(0.65);
    let len = rng.gen_range(1usize..200);
    let batch = (0..len)
        .map(|_| Edge::new(rng.gen_range(0..N as u32), rng.gen_range(0..N as u32)))
        .collect();
    (is_insert, batch)
}

fn apply_to_oracle(oracle: &mut [BTreeSet<u32>], is_insert: bool, batch: &[Edge]) {
    for e in batch {
        if is_insert {
            oracle[e.src as usize].insert(e.dst);
        } else {
            oracle[e.src as usize].remove(&e.dst);
        }
    }
}

/// Materializes the oracle as sorted adjacency lists plus the edge total.
fn freeze(oracle: &[BTreeSet<u32>]) -> (Vec<Vec<u32>>, usize) {
    let adj: Vec<Vec<u32>> = oracle.iter().map(|s| s.iter().copied().collect()).collect();
    let m = adj.iter().map(Vec::len).sum();
    (adj, m)
}

/// Asserts `snap` reads exactly the frozen state `(adj, m)`.
fn assert_snapshot_matches(snap: &GraphSnapshot, adj: &[Vec<u32>], m: usize, ctx: &str) {
    assert_eq!(snap.num_edges(), m, "{ctx}: num_edges");
    for v in 0..N as u32 {
        assert_eq!(snap.neighbors(v), adj[v as usize], "{ctx}: vertex {v}");
    }
    snap.validate_invariants()
        .unwrap_or_else(|e| panic!("{ctx}: snapshot invariants: {e}"));
}

#[test]
fn snapshot_at_every_batch_boundary_matches_frozen_oracle() {
    for seed in 1..=4u64 {
        let mut rng = SmallRng::seed_from_u64(0x51AB_0000 + seed);
        let mut g = LsGraph::with_config(N, cfg());
        let mut oracle: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); N];
        let mut snaps: Vec<(GraphSnapshot, Vec<Vec<u32>>, usize)> = Vec::new();
        let mut expected_cow = 0u64;

        for round in 0..ROUNDS {
            // Flip BEFORE the batch: the snapshot must freeze the pre-batch
            // state, making the batch itself the first "later write" it is
            // forbidden to observe.
            let (adj, m) = freeze(&oracle);
            snaps.push((g.snapshot(), adj, m));

            let (is_insert, batch) = gen_batch(&mut rng);
            // A snapshot now shares every block, so each per-source run of
            // this batch copies its block exactly once.
            expected_cow += batch.iter().map(|e| e.src).collect::<BTreeSet<_>>().len() as u64;
            if is_insert {
                g.insert_batch(&batch);
            } else {
                g.delete_batch(&batch);
            }
            apply_to_oracle(&mut oracle, is_insert, &batch);

            // Every outstanding snapshot still reads its own frozen past.
            for (i, (snap, adj, m)) in snaps.iter().enumerate() {
                assert_snapshot_matches(
                    snap,
                    adj,
                    *m,
                    &format!("seed {seed} round {round} snap {i}"),
                );
            }
            g.check_invariants();
        }

        // The live view converged on the full stream.
        let (adj, m) = freeze(&oracle);
        assert_eq!(g.num_edges(), m, "seed {seed}: live num_edges");
        for v in 0..N as u32 {
            assert_eq!(
                g.neighbors(v),
                adj[v as usize],
                "seed {seed}: live vertex {v}"
            );
        }

        let s = g.stats().snapshot();
        assert_eq!(s.snapshots_taken, ROUNDS as u64, "seed {seed}");
        assert_eq!(s.cow_block_copies, expected_cow, "seed {seed}");
        assert_eq!(s.snapshots_retired, 0, "seed {seed}: all snaps still held");

        // Quiescence: dropping every snapshot and reclaiming must drain the
        // retired-version pool and zero the backlog gauge.
        drop(snaps);
        g.reclaim_epochs();
        assert_eq!(g.epoch_backlog(), 0, "seed {seed}");
        let s = g.stats().snapshot();
        assert_eq!(s.snapshots_retired, s.snapshots_taken, "seed {seed}");
        assert_eq!(s.epoch_reclaim_backlog, 0, "seed {seed}");
        g.check_invariants();
    }
}

#[test]
fn snapshot_clones_share_one_epoch_and_retire_once() {
    let mut g = LsGraph::with_config(8, cfg());
    g.insert_batch(&[Edge::new(0, 1), Edge::new(1, 2)]);
    let snap = g.snapshot();
    let twin = snap.clone();
    assert_eq!(snap.epoch(), twin.epoch());
    g.insert_batch(&[Edge::new(0, 3)]);
    assert_eq!(snap.neighbors(0), vec![1]);
    assert_eq!(twin.neighbors(0), vec![1]);

    // Dropping one clone retires nothing; the epoch stays live.
    drop(twin);
    let s = g.stats().snapshot();
    assert_eq!(s.snapshots_taken, 1);
    assert_eq!(s.snapshots_retired, 0);

    drop(snap);
    g.reclaim_epochs();
    let s = g.stats().snapshot();
    assert_eq!(s.snapshots_retired, 1);
    assert_eq!(g.epoch_backlog(), 0);
}

#[test]
fn snapshot_freezes_quarantine_and_repair_state() {
    let mut g = LsGraph::with_config(16, cfg());
    g.insert_batch(&[Edge::new(3, 1), Edge::new(3, 2), Edge::new(4, 5)]);
    let before = g.snapshot();

    // Clear + requarantine + repair is the post-fault lifecycle; a snapshot
    // taken before it must keep the original adjacency, one taken between
    // must see the quarantined (empty) vertex.
    g.clear_vertex(3);
    g.restore_quarantine(3).unwrap();
    let during = g.snapshot();
    g.repair_vertex(3, &[7, 1]).unwrap();

    assert_eq!(before.neighbors(3), vec![1, 2]);
    assert!(!before.is_quarantined(3));
    assert_eq!(during.neighbors(3), Vec::<u32>::new());
    assert!(during.is_quarantined(3));
    assert_eq!(during.quarantined_vertices(), vec![3]);
    assert_eq!(g.neighbors(3), vec![1, 7]);
    assert!(!g.is_quarantined(3));

    before.validate_invariants().unwrap();
    during.validate_invariants().unwrap();
    g.check_invariants();

    drop((before, during));
    g.reclaim_epochs();
    assert_eq!(g.epoch_backlog(), 0);
}

/// Writer thread + N reader threads: the writer streams batches, flipping a
/// snapshot (with its frozen oracle) to every reader at every batch
/// boundary; each reader fully verifies every snapshot it receives. The
/// interleaving is deterministic in outcome — each reader checks each
/// snapshot against state frozen at the flip, so scheduling cannot change
/// what any assertion sees.
#[test]
fn concurrent_readers_see_frozen_state_under_write_load() {
    const READERS: usize = 4;

    let mut rng = SmallRng::seed_from_u64(0xC0FF_EE01);
    let mut g = LsGraph::with_config(N, cfg());
    let mut oracle: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); N];

    let mut txs = Vec::new();
    let mut handles = Vec::new();
    for reader in 0..READERS {
        let (tx, rx) = mpsc::channel::<(GraphSnapshot, Vec<Vec<u32>>, usize)>();
        txs.push(tx);
        handles.push(std::thread::spawn(move || {
            let mut verified = 0usize;
            while let Ok((snap, adj, m)) = rx.recv() {
                assert_snapshot_matches(&snap, &adj, m, &format!("reader {reader}"));
                verified += 1;
            }
            verified
        }));
    }

    for _ in 0..ROUNDS {
        let (adj, m) = freeze(&oracle);
        let snap = g.snapshot();
        for tx in &txs {
            tx.send((snap.clone(), adj.clone(), m)).unwrap();
        }
        drop(snap);
        let (is_insert, batch) = gen_batch(&mut rng);
        if is_insert {
            g.insert_batch(&batch);
        } else {
            g.delete_batch(&batch);
        }
        apply_to_oracle(&mut oracle, is_insert, &batch);
    }
    drop(txs);
    for h in handles {
        assert_eq!(h.join().expect("reader panicked"), ROUNDS);
    }

    // All readers exited, so every snapshot clone is gone: reclamation
    // drains the pool.
    g.reclaim_epochs();
    assert_eq!(g.epoch_backlog(), 0);
    let s = g.stats().snapshot();
    assert_eq!(s.snapshots_taken, ROUNDS as u64);
    assert_eq!(s.snapshots_retired, ROUNDS as u64);
    assert_eq!(s.epoch_reclaim_backlog, 0);
    g.check_invariants();
}
