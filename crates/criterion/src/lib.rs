//! Offline stand-in for the subset of the `criterion` benchmarking API this
//! workspace's `[[bench]]` targets use.
//!
//! The build environment cannot fetch crates, so this shim keeps the bench
//! files compiling and runnable (`cargo bench`). It performs a small fixed
//! number of timed iterations per benchmark and prints mean wall-clock time —
//! no statistics, no HTML reports. Treat the output as a smoke signal, not a
//! measurement; the real measurement path for this repo is
//! `repro ... --json` (see crates/bench).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: std::marker::PhantomData,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, &mut f);
        self
    }

    /// Called by `criterion_main!` in real criterion; a no-op here.
    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    _parent: std::marker::PhantomData<&'a mut Criterion>,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up pass.
        black_box(f());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(f());
            self.total += t.elapsed();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.total += t.elapsed();
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut F,
) {
    let mut b = Bencher {
        samples,
        total: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters == 0 {
        println!("{label:<60} (no samples)");
        return;
    }
    let mean = b.total / b.iters as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:.2} Melem/s", per_sec / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
            let per_sec = n as f64 / mean.as_secs_f64();
            format!("  {:.2} MiB/s", per_sec / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("{label:<60} {mean:>12.3?}/iter{rate}");
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_bench_function() {
        let mut c = Criterion::default().sample_size(2);
        let mut g = c.benchmark_group("shim");
        let mut hits = 0u32;
        g.bench_function("counts", |b| b.iter(|| hits += 1));
        g.finish();
        // warm-up + 2 samples
        assert_eq!(hits, 3);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(3);
        let mut g = c.benchmark_group("shim");
        let mut setups = 0u32;
        g.bench_with_input(BenchmarkId::new("b", 1), &5u32, |b, &x| {
            b.iter_batched(
                || {
                    setups += 1;
                    x
                },
                |v| v * 2,
                BatchSize::LargeInput,
            )
        });
        g.finish();
        assert_eq!(setups, 4);
    }
}
