//! Shared traits and types for the LSGraph reproduction workspace.
//!
//! Every engine in this workspace — LSGraph itself and the three baselines
//! (Terrace, Aspen, PaC-tree) — implements [`Graph`] for reads and
//! [`DynamicGraph`] for batched streaming updates, so the analytics layer
//! and the benchmark harness are engine-agnostic.

pub mod batch;
pub mod counters;
pub mod edge;
pub mod failpoints;
pub mod footprint;
pub mod histogram;
pub mod metrics;
pub mod trace;

pub use counters::{CounterSnapshot, OpCounters, Phase, PhaseTimer, StructSnapshot, StructStats};
pub use edge::{Edge, VertexId};
pub use footprint::{Footprint, MemoryFootprint};
pub use histogram::{
    kernel_scope, HistogramSnapshot, KernelScope, LatencyHistogram, LatencySnapshot, LatencyStats,
};
pub use metrics::{MetricsRegistry, RegistrySample, Sampler, SamplerThread};
pub use trace::{Span, SpanKind};

/// Read-only view of a graph.
///
/// Neighbor iteration must be **sorted by destination id** and free of
/// duplicates — several analytics kernels (notably triangle counting) and the
/// paper's set-computation argument rely on that ordering.
pub trait Graph: Sync {
    /// Number of vertices (ids are `0..num_vertices()`).
    fn num_vertices(&self) -> usize;

    /// Number of directed edges currently stored.
    fn num_edges(&self) -> usize;

    /// Out-degree of `v`.
    fn degree(&self, v: VertexId) -> usize;

    /// Applies `f` to every out-neighbor of `v` in ascending id order.
    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId));

    /// Applies `f` to every out-neighbor of `v` in ascending id order until
    /// `f` returns `false`.
    ///
    /// Returns `true` if the iteration ran to completion.
    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        let mut complete = true;
        self.for_each_neighbor(v, &mut |u| {
            if complete {
                complete = f(u);
            }
        });
        complete
    }

    /// Appends the sorted out-neighbors of `v` to `out`.
    ///
    /// Used by kernels such as triangle counting that repeatedly intersect
    /// adjacency sets and therefore want flat arrays.
    fn copy_neighbors_into(&self, v: VertexId, out: &mut Vec<VertexId>) {
        self.for_each_neighbor(v, &mut |u| out.push(u));
    }

    /// Returns whether edge `(v, u)` is present.
    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        !self.for_each_neighbor_while(v, &mut |w| w != u)
    }

    /// Collects the sorted out-neighbors of `v` into a fresh vector.
    fn neighbors(&self, v: VertexId) -> Vec<VertexId> {
        let mut out = Vec::with_capacity(self.degree(v));
        self.copy_neighbors_into(v, &mut out);
        out
    }
}

/// Graphs exposing *lazy* neighbor iterators (a non-object-safe extension
/// of [`Graph`]).
///
/// Kernels built on ordered set computations — triangle counting, pattern
/// mining joins — can stream two adjacency lists through a merge without
/// materializing either; this is the access pattern the paper's GPM
/// motivation describes.
pub trait IterableGraph: Graph {
    /// Iterator over a vertex's neighbors in ascending id order.
    type NeighborIter<'a>: Iterator<Item = VertexId> + 'a
    where
        Self: 'a;

    /// Lazily iterates `v`'s sorted neighbors.
    fn neighbor_iter(&self, v: VertexId) -> Self::NeighborIter<'_>;
}

/// A graph that ingests batched streaming updates.
///
/// Batches may contain duplicates and edges already present (for inserts) or
/// absent (for deletes); engines must treat those as no-ops so that update
/// streams generated independently of the current graph state are legal, as
/// in the paper's throughput experiments.
pub trait DynamicGraph: Graph {
    /// Inserts a batch of directed edges.
    ///
    /// Returns the number of edges actually added (i.e. not already present).
    fn insert_batch(&mut self, batch: &[Edge]) -> usize;

    /// Deletes a batch of directed edges.
    ///
    /// Returns the number of edges actually removed.
    fn delete_batch(&mut self, batch: &[Edge]) -> usize;

    /// Inserts each `(u, v)` and its mirror `(v, u)`.
    ///
    /// The paper evaluates symmetrized graphs; engines may override this with
    /// a fused implementation.
    fn insert_batch_undirected(&mut self, batch: &[Edge]) -> usize {
        let mut both = Vec::with_capacity(batch.len() * 2);
        for e in batch {
            both.push(*e);
            both.push(e.reversed());
        }
        self.insert_batch(&both)
    }

    /// Deletes each `(u, v)` and its mirror `(v, u)`.
    fn delete_batch_undirected(&mut self, batch: &[Edge]) -> usize {
        let mut both = Vec::with_capacity(batch.len() * 2);
        for e in batch {
            both.push(*e);
            both.push(e.reversed());
        }
        self.delete_batch(&both)
    }

    /// Snapshot of this engine's coarse search/movement counters, if it is
    /// instrumented with [`OpCounters`]. Baselines (Terrace, Aspen,
    /// PaC-tree, PCSR) override this.
    fn op_counters(&self) -> Option<CounterSnapshot> {
        None
    }

    /// Snapshot of this engine's per-container-class structural counters, if
    /// it is instrumented with [`StructStats`]. LSGraph overrides this.
    fn struct_stats(&self) -> Option<StructSnapshot> {
        None
    }

    /// Snapshot of this engine's latency histograms (per-batch and
    /// per-source-group apply latency), if it records them. LSGraph
    /// overrides this.
    fn latency_stats(&self) -> Option<LatencySnapshot> {
        None
    }

    /// The configured space-amplification bound α, for engines whose layout
    /// reserves gaps up to a factor α (LSGraph's RIA). Benchmarks compare
    /// this against the measured payload amplification.
    fn configured_alpha(&self) -> Option<f64> {
        None
    }

    /// Zeroes whatever instrumentation this engine carries. Benchmarks call
    /// this after the build phase so reported counters cover only the
    /// measured updates.
    fn reset_instrumentation(&mut self) {}

    /// Cheap non-panicking structural self-check, run by the benchmark
    /// harness after every measured cell so a silently-corrupt engine cannot
    /// produce a plausible-looking report. The default is a no-op `Ok`;
    /// LSGraph overrides this with its invariant validator.
    fn validate_structure(&self) -> Result<(), String> {
        Ok(())
    }
}

/// An engine that can produce immutable point-in-time snapshots for
/// wait-free concurrent readers.
///
/// Taking a snapshot must not block the writer for more than the cost of
/// cloning the vertex directory (reference bumps, no payload copies), and
/// readers holding a snapshot must never observe writes applied after the
/// snapshot was taken. The handle is `Clone + Send + Sync` so one snapshot
/// can fan out to many reader threads; cloning the handle is O(1).
///
/// This is a separate trait from [`DynamicGraph`] (rather than an
/// associated-type method on it) so `DynamicGraph` stays object-safe for
/// the engines that cannot snapshot.
pub trait SnapshotSource {
    /// The immutable snapshot handle type.
    type Snapshot: Graph + Clone + Send + Sync + 'static;

    /// Freezes the current graph state into an immutable snapshot.
    fn snapshot(&self) -> Self::Snapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal adjacency-map graph used to exercise the default methods.
    struct Toy {
        adj: Vec<Vec<VertexId>>,
        m: usize,
    }

    impl Toy {
        fn new(n: usize, edges: &[(u32, u32)]) -> Self {
            let mut adj = vec![Vec::new(); n];
            for &(u, v) in edges {
                adj[u as usize].push(v);
            }
            for a in &mut adj {
                a.sort_unstable();
                a.dedup();
            }
            let m = adj.iter().map(Vec::len).sum();
            Toy { adj, m }
        }
    }

    impl Graph for Toy {
        fn num_vertices(&self) -> usize {
            self.adj.len()
        }
        fn num_edges(&self) -> usize {
            self.m
        }
        fn degree(&self, v: VertexId) -> usize {
            self.adj[v as usize].len()
        }
        fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
            for &u in &self.adj[v as usize] {
                f(u);
            }
        }
    }

    #[test]
    fn default_neighbors_returns_sorted() {
        let g = Toy::new(4, &[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(g.neighbors(0), vec![1, 2, 3]);
    }

    #[test]
    fn default_has_edge() {
        let g = Toy::new(4, &[(0, 3), (1, 2)]);
        assert!(g.has_edge(0, 3));
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(2, 0));
    }

    #[test]
    fn for_each_neighbor_while_early_exit() {
        let g = Toy::new(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut seen = Vec::new();
        let complete = g.for_each_neighbor_while(0, &mut |u| {
            seen.push(u);
            u < 2
        });
        assert!(!complete);
        assert_eq!(seen, vec![1, 2]);
    }

    #[test]
    fn copy_neighbors_appends() {
        let g = Toy::new(3, &[(0, 1), (0, 2)]);
        let mut out = vec![99];
        g.copy_neighbors_into(0, &mut out);
        assert_eq!(out, vec![99, 1, 2]);
    }
}
