//! Batch-update preparation shared by every engine (paper §5, "Batch
//! Updates").
//!
//! The paper's pipeline sorts a batch by source then destination id, dedups
//! it, and splits it into per-source groups so each group is applied by one
//! thread without locking. The sort runs in parallel and its time is charged
//! to the update, exactly as the paper charges it to throughput.

use rayon::prelude::*;

use crate::edge::Edge;

/// Sorts a batch by `(src, dst)` in parallel and removes duplicates.
pub fn sorted_dedup_keys(batch: &[Edge]) -> Vec<u64> {
    let mut keys: Vec<u64> = batch.iter().map(|e| e.key()).collect();
    keys.par_sort_unstable();
    keys.dedup();
    keys
}

/// A contiguous run of sorted keys sharing one source vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrcRun {
    /// The shared source vertex.
    pub src: u32,
    /// Start offset into the key slice.
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

/// Splits sorted packed keys into per-source runs.
pub fn runs_by_src(keys: &[u64]) -> Vec<SrcRun> {
    let mut runs = Vec::new();
    let mut i = 0;
    while i < keys.len() {
        let src = (keys[i] >> 32) as u32;
        let mut j = i + 1;
        while j < keys.len() && (keys[j] >> 32) as u32 == src {
            j += 1;
        }
        runs.push(SrcRun {
            src,
            start: i,
            end: j,
        });
        i = j;
    }
    runs
}

/// Largest vertex id referenced by a batch, or `None` for an empty batch.
pub fn max_vertex_id(batch: &[Edge]) -> Option<u32> {
    batch.iter().map(|e| e.src.max(e.dst)).max()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_dedup_orders_by_src_then_dst() {
        let batch = [
            Edge::new(2, 1),
            Edge::new(0, 9),
            Edge::new(2, 0),
            Edge::new(0, 9),
            Edge::new(1, 5),
        ];
        let keys = sorted_dedup_keys(&batch);
        let edges: Vec<Edge> = keys.iter().map(|&k| Edge::from_key(k)).collect();
        assert_eq!(
            edges,
            vec![
                Edge::new(0, 9),
                Edge::new(1, 5),
                Edge::new(2, 0),
                Edge::new(2, 1)
            ]
        );
    }

    #[test]
    fn runs_group_by_source() {
        let keys = sorted_dedup_keys(&[
            Edge::new(3, 3),
            Edge::new(1, 2),
            Edge::new(1, 4),
            Edge::new(3, 1),
        ]);
        let runs = runs_by_src(&keys);
        assert_eq!(
            runs,
            vec![
                SrcRun {
                    src: 1,
                    start: 0,
                    end: 2
                },
                SrcRun {
                    src: 3,
                    start: 2,
                    end: 4
                }
            ]
        );
    }

    #[test]
    fn empty_batch() {
        assert!(sorted_dedup_keys(&[]).is_empty());
        assert!(runs_by_src(&[]).is_empty());
        assert_eq!(max_vertex_id(&[]), None);
    }

    #[test]
    fn max_vertex() {
        assert_eq!(
            max_vertex_id(&[Edge::new(3, 9), Edge::new(12, 0)]),
            Some(12)
        );
    }
}
