//! Instrumentation counters for the motivation experiments (paper Fig. 4).
//!
//! The paper attributes Terrace's slow inserts to PMA search cost and data
//! movement. To regenerate Fig. 4 we count, per structure, how many element
//! slots were examined while searching and how many elements were moved,
//! plus wall-clock nanoseconds attributed to each phase.

use core::sync::atomic::{AtomicU64, Ordering};

/// Cheap relaxed-atomic counters shared by instrumented structures.
///
/// Counters are updated with `Ordering::Relaxed`: they are statistics, not
/// synchronization, and relaxed increments keep the instrumented fast paths
/// honest.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Element comparisons performed while locating insert/delete positions.
    pub search_steps: AtomicU64,
    /// Elements moved to resolve position conflicts or rebalance.
    pub elements_moved: AtomicU64,
    /// Nanoseconds spent in search phases (single-threaded runs only).
    pub search_nanos: AtomicU64,
    /// Nanoseconds spent moving data (single-threaded runs only).
    pub move_nanos: AtomicU64,
    /// Number of whole-structure rebuilds / array expansions.
    pub rebuilds: AtomicU64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        OpCounters {
            search_steps: AtomicU64::new(0),
            elements_moved: AtomicU64::new(0),
            search_nanos: AtomicU64::new(0),
            move_nanos: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Adds `n` search steps.
    #[inline]
    pub fn add_search(&self, n: u64) {
        self.search_steps.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` moved elements.
    #[inline]
    pub fn add_moves(&self, n: u64) {
        self.elements_moved.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one rebuild/expansion.
    #[inline]
    pub fn add_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds nanoseconds to the search-phase clock.
    #[inline]
    pub fn add_search_nanos(&self, n: u64) {
        self.search_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds nanoseconds to the move-phase clock.
    #[inline]
    pub fn add_move_nanos(&self, n: u64) {
        self.move_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.search_steps.store(0, Ordering::Relaxed);
        self.elements_moved.store(0, Ordering::Relaxed);
        self.search_nanos.store(0, Ordering::Relaxed);
        self.move_nanos.store(0, Ordering::Relaxed);
        self.rebuilds.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            search_steps: self.search_steps.load(Ordering::Relaxed),
            elements_moved: self.elements_moved.load(Ordering::Relaxed),
            search_nanos: self.search_nanos.load(Ordering::Relaxed),
            move_nanos: self.move_nanos.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`OpCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// See [`OpCounters::search_steps`].
    pub search_steps: u64,
    /// See [`OpCounters::elements_moved`].
    pub elements_moved: u64,
    /// See [`OpCounters::search_nanos`].
    pub search_nanos: u64,
    /// See [`OpCounters::move_nanos`].
    pub move_nanos: u64,
    /// See [`OpCounters::rebuilds`].
    pub rebuilds: u64,
}

impl CounterSnapshot {
    /// Difference `self - earlier`, saturating at zero.
    pub fn since(self, earlier: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            search_steps: self.search_steps.saturating_sub(earlier.search_steps),
            elements_moved: self.elements_moved.saturating_sub(earlier.elements_moved),
            search_nanos: self.search_nanos.saturating_sub(earlier.search_nanos),
            move_nanos: self.move_nanos.saturating_sub(earlier.move_nanos),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = OpCounters::new();
        c.add_search(3);
        c.add_search(2);
        c.add_moves(7);
        c.add_rebuild();
        let s = c.snapshot();
        assert_eq!(s.search_steps, 5);
        assert_eq!(s.elements_moved, 7);
        assert_eq!(s.rebuilds, 1);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn snapshot_since() {
        let c = OpCounters::new();
        c.add_moves(10);
        let a = c.snapshot();
        c.add_moves(5);
        c.add_search(1);
        let d = c.snapshot().since(a);
        assert_eq!(d.elements_moved, 5);
        assert_eq!(d.search_steps, 1);
    }
}
