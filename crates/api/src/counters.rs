//! Instrumentation counters for the motivation experiments (paper Fig. 4)
//! and the structural observability layer.
//!
//! Two families live here:
//!
//! - [`OpCounters`]: coarse per-structure search/movement totals, used by the
//!   PMA-based baselines to regenerate Fig. 4.
//! - [`StructStats`]: per-container-class counters for LSGraph's own
//!   structures — vertex blocks, the sorted-array spill tier, the RIA, and
//!   the HITree/LIA — plus wall-clock phase timers for the batch-update
//!   pipeline (sort / group / apply) and analytics kernels. These make the
//!   paper's §4 bounded-movement claims checkable: every horizontal ripple
//!   records its span against the `log2(num_blocks)` bound, and every
//!   vertical (child-creating) move records whether a block overflow
//!   preceded it.
//!
//! All counters are updated with `Ordering::Relaxed`: they are statistics,
//! not synchronization. Because LSGraph partitions a batch into disjoint
//! per-source runs, each structural event happens exactly once regardless of
//! thread interleaving, so *count* fields are deterministic across runs and
//! thread counts; only the `*_nanos` fields vary.

use core::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::trace;

/// Cheap relaxed-atomic counters shared by instrumented structures.
///
/// Counters are updated with `Ordering::Relaxed`: they are statistics, not
/// synchronization, and relaxed increments keep the instrumented fast paths
/// honest.
#[derive(Debug, Default)]
pub struct OpCounters {
    /// Element comparisons performed while locating insert/delete positions.
    pub search_steps: AtomicU64,
    /// Elements moved to resolve position conflicts or rebalance.
    pub elements_moved: AtomicU64,
    /// Nanoseconds spent in search phases (single-threaded runs only).
    pub search_nanos: AtomicU64,
    /// Nanoseconds spent moving data (single-threaded runs only).
    pub move_nanos: AtomicU64,
    /// Number of whole-structure rebuilds / array expansions.
    pub rebuilds: AtomicU64,
}

impl OpCounters {
    /// Creates zeroed counters.
    pub const fn new() -> Self {
        OpCounters {
            search_steps: AtomicU64::new(0),
            elements_moved: AtomicU64::new(0),
            search_nanos: AtomicU64::new(0),
            move_nanos: AtomicU64::new(0),
            rebuilds: AtomicU64::new(0),
        }
    }

    /// Adds `n` search steps.
    #[inline]
    pub fn add_search(&self, n: u64) {
        self.search_steps.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` moved elements.
    #[inline]
    pub fn add_moves(&self, n: u64) {
        self.elements_moved.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one rebuild/expansion.
    #[inline]
    pub fn add_rebuild(&self) {
        self.rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds nanoseconds to the search-phase clock.
    #[inline]
    pub fn add_search_nanos(&self, n: u64) {
        self.search_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds nanoseconds to the move-phase clock.
    #[inline]
    pub fn add_move_nanos(&self, n: u64) {
        self.move_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.search_steps.store(0, Ordering::Relaxed);
        self.elements_moved.store(0, Ordering::Relaxed);
        self.search_nanos.store(0, Ordering::Relaxed);
        self.move_nanos.store(0, Ordering::Relaxed);
        self.rebuilds.store(0, Ordering::Relaxed);
    }

    /// Snapshot of the current values.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            search_steps: self.search_steps.load(Ordering::Relaxed),
            elements_moved: self.elements_moved.load(Ordering::Relaxed),
            search_nanos: self.search_nanos.load(Ordering::Relaxed),
            move_nanos: self.move_nanos.load(Ordering::Relaxed),
            rebuilds: self.rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`OpCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// See [`OpCounters::search_steps`].
    pub search_steps: u64,
    /// See [`OpCounters::elements_moved`].
    pub elements_moved: u64,
    /// See [`OpCounters::search_nanos`].
    pub search_nanos: u64,
    /// See [`OpCounters::move_nanos`].
    pub move_nanos: u64,
    /// See [`OpCounters::rebuilds`].
    pub rebuilds: u64,
}

impl CounterSnapshot {
    /// Difference `self - earlier`, saturating at zero.
    pub fn since(self, earlier: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            search_steps: self.search_steps.saturating_sub(earlier.search_steps),
            elements_moved: self.elements_moved.saturating_sub(earlier.elements_moved),
            search_nanos: self.search_nanos.saturating_sub(earlier.search_nanos),
            move_nanos: self.move_nanos.saturating_sub(earlier.move_nanos),
            rebuilds: self.rebuilds.saturating_sub(earlier.rebuilds),
        }
    }

    /// `(field name, value)` pairs in a fixed order — the serialization
    /// schema. Report writers and schema-stability tests both read this, so
    /// renaming a field here is a deliberate schema change.
    pub fn fields(self) -> [(&'static str, u64); 5] {
        [
            ("search_steps", self.search_steps),
            ("elements_moved", self.elements_moved),
            ("search_nanos", self.search_nanos),
            ("move_nanos", self.move_nanos),
            ("rebuilds", self.rebuilds),
        ]
    }

    /// The count fields that must be identical across reruns with the same
    /// input — every field except wall-clock nanos.
    pub fn deterministic_fields(self) -> Vec<(&'static str, u64)> {
        self.fields()
            .into_iter()
            .filter(|(name, _)| !name.ends_with("_nanos"))
            .collect()
    }

    /// Rebuilds a snapshot from `(field name, value)` pairs, the inverse of
    /// [`CounterSnapshot::fields`]. Unknown names are rejected; missing
    /// names stay zero.
    pub fn from_fields<'a>(
        pairs: impl IntoIterator<Item = (&'a str, u64)>,
    ) -> Result<CounterSnapshot, String> {
        let mut s = CounterSnapshot::default();
        for (name, v) in pairs {
            match name {
                "search_steps" => s.search_steps = v,
                "elements_moved" => s.elements_moved = v,
                "search_nanos" => s.search_nanos = v,
                "move_nanos" => s.move_nanos = v,
                "rebuilds" => s.rebuilds = v,
                other => return Err(format!("unknown CounterSnapshot field: {other}")),
            }
        }
        Ok(s)
    }
}

/// Pipeline phase attributed by a [`PhaseTimer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Batch key sort + dedup.
    Sort,
    /// Grouping sorted keys into per-source runs.
    Group,
    /// Applying runs to the per-vertex structures.
    Apply,
    /// Analytics kernel execution (BFS, PageRank, ...).
    Kernel,
}

/// Structure-level counters for LSGraph's container classes.
///
/// Field groups mirror the paper's structures: `vb_*` for the 64-byte vertex
/// blocks (§4.1), `arr_*`/`tier_*` for the sorted-array spill tier and its
/// tier transitions, `ria_*` for the Redundant Indexed Array (§3.1/§4.2),
/// `lia_*`/`hitree_*` for the Learned Index Array and HITree (§4.3), and
/// `phase_*_nanos` for the batch pipeline.
#[derive(Debug, Default)]
pub struct StructStats {
    /// Inserts satisfied entirely inside a vertex block's inline array.
    pub vb_inline_hits: AtomicU64,
    /// Elements shifted within inline arrays to make room.
    pub vb_inline_shifts: AtomicU64,
    /// Inline maxima evicted into a spill structure by an inline insert.
    pub vb_spill_evictions: AtomicU64,
    /// Inserts routed directly to a vertex block's spill structure.
    pub vb_spill_inserts: AtomicU64,
    /// Spill minima pulled back inline after an inline delete.
    pub vb_spill_refills: AtomicU64,

    /// Elements shifted inside sorted-array spill tiers (`Spill::Array`).
    pub arr_shifts: AtomicU64,
    /// Spill tier upgrades (Array → RIA/PMA, RIA/PMA → HITree).
    pub tier_upgrades: AtomicU64,
    /// Spill tier downgrades after heavy deletion.
    pub tier_downgrades: AtomicU64,

    /// Elements shifted inside one RIA block (within-block horizontal move).
    pub ria_within_block_shifts: AtomicU64,
    /// Elements carried across RIA block boundaries by ripple inserts
    /// (cross-block horizontal move).
    pub ria_cross_block_moves: AtomicU64,
    /// Ripple-insert events (one per insert that crossed block boundaries).
    pub ria_ripples: AtomicU64,
    /// Largest ripple span observed, in blocks (gauge, not a sum).
    pub ria_max_ripple_span: AtomicU64,
    /// Most recent `log2(num_blocks) + 1` locality bound in effect when a
    /// ripple was recorded (gauge, not a sum).
    pub ria_bound: AtomicU64,
    /// Ripples whose span exceeded the locality bound. The paper's §4.2
    /// movement bound says this must stay zero; tests assert it.
    pub ria_bound_exceeded: AtomicU64,
    /// RIA rebuild events (α-expansion, shrink, or delete-refill rebuild).
    pub ria_rebuilds: AtomicU64,

    /// LIA within-block shifts while packing into a partially-filled block.
    pub lia_within_block_shifts: AtomicU64,
    /// Horizontal packing events: an overflowing LIA block re-packed in
    /// place because the merged contents still fit `BKS` slots.
    pub lia_horizontal_packs: AtomicU64,
    /// Vertical movement events: an overflowing LIA block delegated to a
    /// newly created child node.
    pub lia_vertical_child_creates: AtomicU64,
    /// Vertical moves NOT preceded by a block overflow. The paper's §4.3
    /// horizontal-then-vertical policy says this must stay zero; tests
    /// assert it.
    pub lia_vertical_premature: AtomicU64,
    /// LIA model retrain events (node rebuilt with a fresh linear model).
    pub lia_model_retrains: AtomicU64,
    /// HITree node tier upgrades (Arr → RIA → LIA).
    pub hitree_node_upgrades: AtomicU64,

    /// Per-source apply tasks that panicked and were contained by the
    /// panic-safe batch pipeline. Must stay zero in normal (fault-free)
    /// runs; `repro check` gates on it.
    pub apply_run_panics: AtomicU64,
    /// Vertices quarantined (adjacency dropped, degree forced to 0) after an
    /// apply panic. Must stay zero in normal runs.
    pub vertices_quarantined: AtomicU64,
    /// Quarantined vertices restored via `repair_vertex`. Must stay zero in
    /// normal runs.
    pub vertices_repaired: AtomicU64,

    /// WAL frames appended by the durability layer (one per logged batch).
    pub wal_frames_appended: AtomicU64,
    /// Bytes written by the most recent checkpoint image (gauge, not a sum).
    pub checkpoint_bytes: AtomicU64,
    /// WAL frames replayed through the batch pipeline during recovery.
    pub recovery_frames_replayed: AtomicU64,
    /// WAL frames discarded as torn/corrupt during recovery.
    pub recovery_frames_discarded: AtomicU64,

    /// WAL segments sealed and rotated out by the segmented log.
    pub wal_segments_rotated: AtomicU64,
    /// WAL segments deleted by retention GC.
    pub wal_segments_deleted: AtomicU64,
    /// Bytes currently held by live WAL segments on disk (gauge, not a
    /// sum). Retention GC keeps this bounded by the retention window.
    pub wal_live_bytes: AtomicU64,
    /// Delta (dirty-vertex-only) checkpoint images written.
    pub delta_checkpoints_written: AtomicU64,
    /// Dirty vertices captured by the most recent checkpoint freeze
    /// (gauge, not a sum). Delta image size scales with this.
    pub checkpoint_dirty_vertices: AtomicU64,
    /// Checkpoint images discarded as corrupt/unlinked while rebuilding the
    /// recovery chain. Must stay zero on clean runs; `repro check` gates it.
    pub recovery_images_discarded: AtomicU64,

    /// Read snapshots taken from the live graph (epoch registrations).
    pub snapshots_taken: AtomicU64,
    /// Read snapshots dropped (epoch deregistrations).
    pub snapshots_retired: AtomicU64,
    /// Vertex blocks copied on write because a snapshot still referenced
    /// them when a batch mutated the vertex.
    pub cow_block_copies: AtomicU64,
    /// Retired block versions awaiting epoch reclamation (gauge, not a
    /// sum). Must return to zero once the last snapshot drops; `repro
    /// check` treats a nonzero value as an invariant violation.
    pub epoch_reclaim_backlog: AtomicU64,

    /// Standing-query subscriptions currently registered (gauge, not a
    /// sum). Quarantined subscriptions still count until cancelled.
    pub subscriptions_active: AtomicU64,
    /// Result deltas delivered to standing-query subscribers (one per
    /// subscription per applied batch).
    pub deltas_delivered: AtomicU64,
    /// Individual added/removed/changed entries carried by delivered
    /// deltas. The amortized-cost argument for standing queries is that
    /// this stays proportional to the batch, not the graph.
    pub delta_entries_emitted: AtomicU64,
    /// Subscription evaluations that panicked and were quarantined by the
    /// delivery loop. Must stay zero in normal (fault-free) runs; `repro
    /// check` treats a nonzero value as an invariant violation.
    pub subscription_panics: AtomicU64,

    /// Membership/position probes answered by the scalar binary-search
    /// baseline (recorded by the `repro search` ablation, not the hot path).
    pub search_scalar_probes: AtomicU64,
    /// Probes answered by the branch-free block-compare hybrid search
    /// (recorded by the `repro search` ablation, not the hot path).
    pub search_block_probes: AtomicU64,
    /// Gap-encoded chunks decoded by compressed-tier membership probes.
    /// The skip-pointer design bounds this at one per probe.
    pub compressed_chunks_decoded: AtomicU64,
    /// Bytes saved by compressed-tier encodes versus raw `u32` storage
    /// (accumulated at encode time).
    pub compressed_bytes_saved: AtomicU64,
    /// Cold spills frozen into the gap-encoded compressed tier.
    pub spill_compressions: AtomicU64,
    /// Compressed spills thawed back to a writable tier by a write.
    pub spill_thaws: AtomicU64,

    /// Nanoseconds in the batch sort+dedup phase.
    pub phase_sort_nanos: AtomicU64,
    /// Nanoseconds grouping keys into per-source runs.
    pub phase_group_nanos: AtomicU64,
    /// Nanoseconds applying runs to vertex structures.
    pub phase_apply_nanos: AtomicU64,
    /// Nanoseconds inside analytics kernels timed via [`Phase::Kernel`].
    pub phase_kernel_nanos: AtomicU64,
}

/// Process-wide default sink for un-instrumented call paths.
static GLOBAL_STRUCT_STATS: StructStats = StructStats::new();

impl StructStats {
    /// Creates zeroed stats.
    pub const fn new() -> Self {
        StructStats {
            vb_inline_hits: AtomicU64::new(0),
            vb_inline_shifts: AtomicU64::new(0),
            vb_spill_evictions: AtomicU64::new(0),
            vb_spill_inserts: AtomicU64::new(0),
            vb_spill_refills: AtomicU64::new(0),
            arr_shifts: AtomicU64::new(0),
            tier_upgrades: AtomicU64::new(0),
            tier_downgrades: AtomicU64::new(0),
            ria_within_block_shifts: AtomicU64::new(0),
            ria_cross_block_moves: AtomicU64::new(0),
            ria_ripples: AtomicU64::new(0),
            ria_max_ripple_span: AtomicU64::new(0),
            ria_bound: AtomicU64::new(0),
            ria_bound_exceeded: AtomicU64::new(0),
            ria_rebuilds: AtomicU64::new(0),
            lia_within_block_shifts: AtomicU64::new(0),
            lia_horizontal_packs: AtomicU64::new(0),
            lia_vertical_child_creates: AtomicU64::new(0),
            lia_vertical_premature: AtomicU64::new(0),
            lia_model_retrains: AtomicU64::new(0),
            hitree_node_upgrades: AtomicU64::new(0),
            apply_run_panics: AtomicU64::new(0),
            vertices_quarantined: AtomicU64::new(0),
            vertices_repaired: AtomicU64::new(0),
            wal_frames_appended: AtomicU64::new(0),
            checkpoint_bytes: AtomicU64::new(0),
            recovery_frames_replayed: AtomicU64::new(0),
            recovery_frames_discarded: AtomicU64::new(0),
            wal_segments_rotated: AtomicU64::new(0),
            wal_segments_deleted: AtomicU64::new(0),
            wal_live_bytes: AtomicU64::new(0),
            delta_checkpoints_written: AtomicU64::new(0),
            checkpoint_dirty_vertices: AtomicU64::new(0),
            recovery_images_discarded: AtomicU64::new(0),
            snapshots_taken: AtomicU64::new(0),
            snapshots_retired: AtomicU64::new(0),
            cow_block_copies: AtomicU64::new(0),
            epoch_reclaim_backlog: AtomicU64::new(0),
            subscriptions_active: AtomicU64::new(0),
            deltas_delivered: AtomicU64::new(0),
            delta_entries_emitted: AtomicU64::new(0),
            subscription_panics: AtomicU64::new(0),
            search_scalar_probes: AtomicU64::new(0),
            search_block_probes: AtomicU64::new(0),
            compressed_chunks_decoded: AtomicU64::new(0),
            compressed_bytes_saved: AtomicU64::new(0),
            spill_compressions: AtomicU64::new(0),
            spill_thaws: AtomicU64::new(0),
            phase_sort_nanos: AtomicU64::new(0),
            phase_group_nanos: AtomicU64::new(0),
            phase_apply_nanos: AtomicU64::new(0),
            phase_kernel_nanos: AtomicU64::new(0),
        }
    }

    /// The process-wide default sink, used by convenience entry points that
    /// are not wired to a per-graph instance (e.g. direct `Ria::insert`
    /// calls in tests).
    pub fn global() -> &'static StructStats {
        &GLOBAL_STRUCT_STATS
    }

    /// Records an insert satisfied inline, shifting `shifted` elements.
    #[inline]
    pub fn record_vb_inline_insert(&self, shifted: u64) {
        self.vb_inline_hits.fetch_add(1, Ordering::Relaxed);
        self.vb_inline_shifts.fetch_add(shifted, Ordering::Relaxed);
    }

    /// Records `n` elements shifted in an inline array without an insert
    /// (the delete compaction path).
    #[inline]
    pub fn record_vb_inline_shift(&self, n: u64) {
        self.vb_inline_shifts.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an inline max evicted to the spill structure.
    #[inline]
    pub fn record_vb_spill_eviction(&self) {
        self.vb_spill_evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an insert routed directly to the spill structure.
    #[inline]
    pub fn record_vb_spill_insert(&self) {
        self.vb_spill_inserts.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a spill minimum refilled inline after a delete.
    #[inline]
    pub fn record_vb_spill_refill(&self) {
        self.vb_spill_refills.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` elements shifted in a sorted-array spill tier.
    #[inline]
    pub fn record_arr_shift(&self, n: u64) {
        self.arr_shifts.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one spill tier upgrade.
    #[inline]
    pub fn record_tier_upgrade(&self) {
        self.tier_upgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one spill tier downgrade.
    #[inline]
    pub fn record_tier_downgrade(&self) {
        self.tier_downgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` elements shifted within a single RIA block.
    #[inline]
    pub fn record_ria_within_shift(&self, n: u64) {
        self.ria_within_block_shifts.fetch_add(n, Ordering::Relaxed);
    }

    /// Records a cross-block ripple insert spanning `span` blocks under
    /// locality bound `bound`, carrying `moved` elements across boundaries.
    #[inline]
    pub fn record_ria_ripple(&self, span: u64, moved: u64, bound: u64) {
        self.ria_ripples.fetch_add(1, Ordering::Relaxed);
        self.ria_cross_block_moves
            .fetch_add(moved, Ordering::Relaxed);
        self.ria_max_ripple_span.fetch_max(span, Ordering::Relaxed);
        self.ria_bound.store(bound, Ordering::Relaxed);
        if span > bound {
            self.ria_bound_exceeded.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one RIA rebuild.
    #[inline]
    pub fn record_ria_rebuild(&self) {
        self.ria_rebuilds.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` elements shifted within one LIA block.
    #[inline]
    pub fn record_lia_within_shift(&self, n: u64) {
        self.lia_within_block_shifts.fetch_add(n, Ordering::Relaxed);
    }

    /// Records an overflowing LIA block re-packed horizontally.
    #[inline]
    pub fn record_lia_pack(&self) {
        self.lia_horizontal_packs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a vertical child creation; `overflowed` says whether a block
    /// overflow forced it (the only legal reason).
    #[inline]
    pub fn record_lia_vertical(&self, overflowed: bool) {
        self.lia_vertical_child_creates
            .fetch_add(1, Ordering::Relaxed);
        if !overflowed {
            self.lia_vertical_premature.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one LIA model retrain.
    #[inline]
    pub fn record_lia_retrain(&self) {
        self.lia_model_retrains.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one HITree node tier upgrade.
    #[inline]
    pub fn record_node_upgrade(&self) {
        self.hitree_node_upgrades.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one contained per-source apply panic.
    #[inline]
    pub fn record_apply_run_panic(&self) {
        self.apply_run_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one vertex quarantined after an apply panic.
    #[inline]
    pub fn record_vertex_quarantined(&self) {
        self.vertices_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one quarantined vertex restored by `repair_vertex`.
    #[inline]
    pub fn record_vertex_repaired(&self) {
        self.vertices_repaired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one WAL frame appended by the durability layer.
    #[inline]
    pub fn record_wal_frame_appended(&self) {
        self.wal_frames_appended.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the size of the checkpoint image just written (gauge).
    #[inline]
    pub fn record_checkpoint_bytes(&self, n: u64) {
        self.checkpoint_bytes.store(n, Ordering::Relaxed);
    }

    /// Records one WAL frame replayed during recovery.
    #[inline]
    pub fn record_recovery_frame_replayed(&self) {
        self.recovery_frames_replayed
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` torn/corrupt WAL frames discarded during recovery.
    #[inline]
    pub fn record_recovery_frames_discarded(&self, n: u64) {
        self.recovery_frames_discarded
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records one WAL segment sealed and rotated out.
    #[inline]
    pub fn record_wal_segment_rotated(&self) {
        self.wal_segments_rotated.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` WAL segments deleted by retention GC.
    #[inline]
    pub fn record_wal_segments_deleted(&self, n: u64) {
        self.wal_segments_deleted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records the bytes currently held by live WAL segments (gauge).
    #[inline]
    pub fn record_wal_live_bytes(&self, n: u64) {
        self.wal_live_bytes.store(n, Ordering::Relaxed);
    }

    /// Records one delta checkpoint image written.
    #[inline]
    pub fn record_delta_checkpoint_written(&self) {
        self.delta_checkpoints_written
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records the dirty-vertex count frozen by the latest checkpoint
    /// (gauge).
    #[inline]
    pub fn record_checkpoint_dirty_vertices(&self, n: u64) {
        self.checkpoint_dirty_vertices.store(n, Ordering::Relaxed);
    }

    /// Records `n` checkpoint images discarded while rebuilding the
    /// recovery chain.
    #[inline]
    pub fn record_recovery_images_discarded(&self, n: u64) {
        self.recovery_images_discarded
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Records one read snapshot taken (epoch registered).
    #[inline]
    pub fn record_snapshot_taken(&self) {
        self.snapshots_taken.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one read snapshot dropped (epoch deregistered).
    #[inline]
    pub fn record_snapshot_retired(&self) {
        self.snapshots_retired.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one vertex block copied on write under an outstanding
    /// snapshot.
    #[inline]
    pub fn record_cow_block_copy(&self) {
        self.cow_block_copies.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the current epoch-reclamation backlog (gauge).
    #[inline]
    pub fn record_epoch_backlog(&self, n: u64) {
        self.epoch_reclaim_backlog.store(n, Ordering::Relaxed);
    }

    /// Records the number of standing-query subscriptions currently
    /// registered (gauge).
    #[inline]
    pub fn record_subscriptions_active(&self, n: u64) {
        self.subscriptions_active.store(n, Ordering::Relaxed);
    }

    /// Records one result delta delivered to a subscriber carrying
    /// `entries` added/removed/changed entries.
    #[inline]
    pub fn record_delta_delivered(&self, entries: u64) {
        self.deltas_delivered.fetch_add(1, Ordering::Relaxed);
        self.delta_entries_emitted
            .fetch_add(entries, Ordering::Relaxed);
    }

    /// Records one subscription evaluation contained by the panic-safe
    /// delivery loop.
    #[inline]
    pub fn record_subscription_panic(&self) {
        self.subscription_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` probes answered by the scalar binary-search baseline.
    #[inline]
    pub fn record_search_scalar_probes(&self, n: u64) {
        self.search_scalar_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` probes answered by the branch-free block-compare search.
    #[inline]
    pub fn record_search_block_probes(&self, n: u64) {
        self.search_block_probes.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one gap-encoded chunk decoded by a compressed-tier probe.
    #[inline]
    pub fn record_compressed_chunk_decoded(&self) {
        self.compressed_chunks_decoded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` bytes saved by a compressed-tier encode versus raw
    /// `u32` storage.
    #[inline]
    pub fn record_compressed_bytes_saved(&self, n: u64) {
        self.compressed_bytes_saved.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one cold spill frozen into the compressed tier.
    #[inline]
    pub fn record_spill_compression(&self) {
        self.spill_compressions.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one compressed spill thawed back to a writable tier.
    #[inline]
    pub fn record_spill_thaw(&self) {
        self.spill_thaws.fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a scoped timer attributing wall-clock time to `phase`; the
    /// elapsed nanoseconds are added when the returned guard drops. For the
    /// batch-pipeline phases the guard also carries a trace span (see
    /// [`crate::trace`]); the `Kernel` phase does not — kernels get a named
    /// span from [`crate::kernel_scope`] instead, avoiding duplicates.
    #[inline]
    pub fn time(&self, phase: Phase) -> PhaseTimer<'_> {
        let (target, span_kind) = match phase {
            Phase::Sort => (&self.phase_sort_nanos, Some(trace::SpanKind::Sort)),
            Phase::Group => (&self.phase_group_nanos, Some(trace::SpanKind::Group)),
            Phase::Apply => (&self.phase_apply_nanos, Some(trace::SpanKind::Apply)),
            Phase::Kernel => (&self.phase_kernel_nanos, None),
        };
        PhaseTimer {
            target,
            start: Instant::now(),
            _span: span_kind.map(trace::span),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        let zeroed = StructSnapshot::default();
        self.load_snapshot(zeroed);
    }

    fn load_snapshot(&self, s: StructSnapshot) {
        self.vb_inline_hits
            .store(s.vb_inline_hits, Ordering::Relaxed);
        self.vb_inline_shifts
            .store(s.vb_inline_shifts, Ordering::Relaxed);
        self.vb_spill_evictions
            .store(s.vb_spill_evictions, Ordering::Relaxed);
        self.vb_spill_inserts
            .store(s.vb_spill_inserts, Ordering::Relaxed);
        self.vb_spill_refills
            .store(s.vb_spill_refills, Ordering::Relaxed);
        self.arr_shifts.store(s.arr_shifts, Ordering::Relaxed);
        self.tier_upgrades.store(s.tier_upgrades, Ordering::Relaxed);
        self.tier_downgrades
            .store(s.tier_downgrades, Ordering::Relaxed);
        self.ria_within_block_shifts
            .store(s.ria_within_block_shifts, Ordering::Relaxed);
        self.ria_cross_block_moves
            .store(s.ria_cross_block_moves, Ordering::Relaxed);
        self.ria_ripples.store(s.ria_ripples, Ordering::Relaxed);
        self.ria_max_ripple_span
            .store(s.ria_max_ripple_span, Ordering::Relaxed);
        self.ria_bound.store(s.ria_bound, Ordering::Relaxed);
        self.ria_bound_exceeded
            .store(s.ria_bound_exceeded, Ordering::Relaxed);
        self.ria_rebuilds.store(s.ria_rebuilds, Ordering::Relaxed);
        self.lia_within_block_shifts
            .store(s.lia_within_block_shifts, Ordering::Relaxed);
        self.lia_horizontal_packs
            .store(s.lia_horizontal_packs, Ordering::Relaxed);
        self.lia_vertical_child_creates
            .store(s.lia_vertical_child_creates, Ordering::Relaxed);
        self.lia_vertical_premature
            .store(s.lia_vertical_premature, Ordering::Relaxed);
        self.lia_model_retrains
            .store(s.lia_model_retrains, Ordering::Relaxed);
        self.hitree_node_upgrades
            .store(s.hitree_node_upgrades, Ordering::Relaxed);
        self.apply_run_panics
            .store(s.apply_run_panics, Ordering::Relaxed);
        self.vertices_quarantined
            .store(s.vertices_quarantined, Ordering::Relaxed);
        self.vertices_repaired
            .store(s.vertices_repaired, Ordering::Relaxed);
        self.wal_frames_appended
            .store(s.wal_frames_appended, Ordering::Relaxed);
        self.checkpoint_bytes
            .store(s.checkpoint_bytes, Ordering::Relaxed);
        self.recovery_frames_replayed
            .store(s.recovery_frames_replayed, Ordering::Relaxed);
        self.recovery_frames_discarded
            .store(s.recovery_frames_discarded, Ordering::Relaxed);
        self.wal_segments_rotated
            .store(s.wal_segments_rotated, Ordering::Relaxed);
        self.wal_segments_deleted
            .store(s.wal_segments_deleted, Ordering::Relaxed);
        self.wal_live_bytes
            .store(s.wal_live_bytes, Ordering::Relaxed);
        self.delta_checkpoints_written
            .store(s.delta_checkpoints_written, Ordering::Relaxed);
        self.checkpoint_dirty_vertices
            .store(s.checkpoint_dirty_vertices, Ordering::Relaxed);
        self.recovery_images_discarded
            .store(s.recovery_images_discarded, Ordering::Relaxed);
        self.snapshots_taken
            .store(s.snapshots_taken, Ordering::Relaxed);
        self.snapshots_retired
            .store(s.snapshots_retired, Ordering::Relaxed);
        self.cow_block_copies
            .store(s.cow_block_copies, Ordering::Relaxed);
        self.epoch_reclaim_backlog
            .store(s.epoch_reclaim_backlog, Ordering::Relaxed);
        self.subscriptions_active
            .store(s.subscriptions_active, Ordering::Relaxed);
        self.deltas_delivered
            .store(s.deltas_delivered, Ordering::Relaxed);
        self.delta_entries_emitted
            .store(s.delta_entries_emitted, Ordering::Relaxed);
        self.subscription_panics
            .store(s.subscription_panics, Ordering::Relaxed);
        self.search_scalar_probes
            .store(s.search_scalar_probes, Ordering::Relaxed);
        self.search_block_probes
            .store(s.search_block_probes, Ordering::Relaxed);
        self.compressed_chunks_decoded
            .store(s.compressed_chunks_decoded, Ordering::Relaxed);
        self.compressed_bytes_saved
            .store(s.compressed_bytes_saved, Ordering::Relaxed);
        self.spill_compressions
            .store(s.spill_compressions, Ordering::Relaxed);
        self.spill_thaws.store(s.spill_thaws, Ordering::Relaxed);
        self.phase_sort_nanos
            .store(s.phase_sort_nanos, Ordering::Relaxed);
        self.phase_group_nanos
            .store(s.phase_group_nanos, Ordering::Relaxed);
        self.phase_apply_nanos
            .store(s.phase_apply_nanos, Ordering::Relaxed);
        self.phase_kernel_nanos
            .store(s.phase_kernel_nanos, Ordering::Relaxed);
    }

    /// Snapshot of the current values.
    pub fn snapshot(&self) -> StructSnapshot {
        StructSnapshot {
            vb_inline_hits: self.vb_inline_hits.load(Ordering::Relaxed),
            vb_inline_shifts: self.vb_inline_shifts.load(Ordering::Relaxed),
            vb_spill_evictions: self.vb_spill_evictions.load(Ordering::Relaxed),
            vb_spill_inserts: self.vb_spill_inserts.load(Ordering::Relaxed),
            vb_spill_refills: self.vb_spill_refills.load(Ordering::Relaxed),
            arr_shifts: self.arr_shifts.load(Ordering::Relaxed),
            tier_upgrades: self.tier_upgrades.load(Ordering::Relaxed),
            tier_downgrades: self.tier_downgrades.load(Ordering::Relaxed),
            ria_within_block_shifts: self.ria_within_block_shifts.load(Ordering::Relaxed),
            ria_cross_block_moves: self.ria_cross_block_moves.load(Ordering::Relaxed),
            ria_ripples: self.ria_ripples.load(Ordering::Relaxed),
            ria_max_ripple_span: self.ria_max_ripple_span.load(Ordering::Relaxed),
            ria_bound: self.ria_bound.load(Ordering::Relaxed),
            ria_bound_exceeded: self.ria_bound_exceeded.load(Ordering::Relaxed),
            ria_rebuilds: self.ria_rebuilds.load(Ordering::Relaxed),
            lia_within_block_shifts: self.lia_within_block_shifts.load(Ordering::Relaxed),
            lia_horizontal_packs: self.lia_horizontal_packs.load(Ordering::Relaxed),
            lia_vertical_child_creates: self.lia_vertical_child_creates.load(Ordering::Relaxed),
            lia_vertical_premature: self.lia_vertical_premature.load(Ordering::Relaxed),
            lia_model_retrains: self.lia_model_retrains.load(Ordering::Relaxed),
            hitree_node_upgrades: self.hitree_node_upgrades.load(Ordering::Relaxed),
            apply_run_panics: self.apply_run_panics.load(Ordering::Relaxed),
            vertices_quarantined: self.vertices_quarantined.load(Ordering::Relaxed),
            vertices_repaired: self.vertices_repaired.load(Ordering::Relaxed),
            wal_frames_appended: self.wal_frames_appended.load(Ordering::Relaxed),
            checkpoint_bytes: self.checkpoint_bytes.load(Ordering::Relaxed),
            recovery_frames_replayed: self.recovery_frames_replayed.load(Ordering::Relaxed),
            recovery_frames_discarded: self.recovery_frames_discarded.load(Ordering::Relaxed),
            wal_segments_rotated: self.wal_segments_rotated.load(Ordering::Relaxed),
            wal_segments_deleted: self.wal_segments_deleted.load(Ordering::Relaxed),
            wal_live_bytes: self.wal_live_bytes.load(Ordering::Relaxed),
            delta_checkpoints_written: self.delta_checkpoints_written.load(Ordering::Relaxed),
            checkpoint_dirty_vertices: self.checkpoint_dirty_vertices.load(Ordering::Relaxed),
            recovery_images_discarded: self.recovery_images_discarded.load(Ordering::Relaxed),
            snapshots_taken: self.snapshots_taken.load(Ordering::Relaxed),
            snapshots_retired: self.snapshots_retired.load(Ordering::Relaxed),
            cow_block_copies: self.cow_block_copies.load(Ordering::Relaxed),
            epoch_reclaim_backlog: self.epoch_reclaim_backlog.load(Ordering::Relaxed),
            subscriptions_active: self.subscriptions_active.load(Ordering::Relaxed),
            deltas_delivered: self.deltas_delivered.load(Ordering::Relaxed),
            delta_entries_emitted: self.delta_entries_emitted.load(Ordering::Relaxed),
            subscription_panics: self.subscription_panics.load(Ordering::Relaxed),
            search_scalar_probes: self.search_scalar_probes.load(Ordering::Relaxed),
            search_block_probes: self.search_block_probes.load(Ordering::Relaxed),
            compressed_chunks_decoded: self.compressed_chunks_decoded.load(Ordering::Relaxed),
            compressed_bytes_saved: self.compressed_bytes_saved.load(Ordering::Relaxed),
            spill_compressions: self.spill_compressions.load(Ordering::Relaxed),
            spill_thaws: self.spill_thaws.load(Ordering::Relaxed),
            phase_sort_nanos: self.phase_sort_nanos.load(Ordering::Relaxed),
            phase_group_nanos: self.phase_group_nanos.load(Ordering::Relaxed),
            phase_apply_nanos: self.phase_apply_nanos.load(Ordering::Relaxed),
            phase_kernel_nanos: self.phase_kernel_nanos.load(Ordering::Relaxed),
        }
    }
}

/// Scoped phase timer returned by [`StructStats::time`]; accumulates elapsed
/// nanoseconds into its target counter on drop.
#[must_use = "the timer records on drop; binding it to `_` drops immediately"]
pub struct PhaseTimer<'a> {
    target: &'a AtomicU64,
    start: Instant,
    /// Trace span covering the same scope (batch-pipeline phases only).
    _span: Option<trace::Span>,
}

impl PhaseTimer<'_> {
    /// Stops the timer early, recording the elapsed time now.
    pub fn stop(self) {}
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.target.fetch_add(nanos, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`StructStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StructSnapshot {
    /// See [`StructStats::vb_inline_hits`].
    pub vb_inline_hits: u64,
    /// See [`StructStats::vb_inline_shifts`].
    pub vb_inline_shifts: u64,
    /// See [`StructStats::vb_spill_evictions`].
    pub vb_spill_evictions: u64,
    /// See [`StructStats::vb_spill_inserts`].
    pub vb_spill_inserts: u64,
    /// See [`StructStats::vb_spill_refills`].
    pub vb_spill_refills: u64,
    /// See [`StructStats::arr_shifts`].
    pub arr_shifts: u64,
    /// See [`StructStats::tier_upgrades`].
    pub tier_upgrades: u64,
    /// See [`StructStats::tier_downgrades`].
    pub tier_downgrades: u64,
    /// See [`StructStats::ria_within_block_shifts`].
    pub ria_within_block_shifts: u64,
    /// See [`StructStats::ria_cross_block_moves`].
    pub ria_cross_block_moves: u64,
    /// See [`StructStats::ria_ripples`].
    pub ria_ripples: u64,
    /// See [`StructStats::ria_max_ripple_span`] (gauge).
    pub ria_max_ripple_span: u64,
    /// See [`StructStats::ria_bound`] (gauge).
    pub ria_bound: u64,
    /// See [`StructStats::ria_bound_exceeded`].
    pub ria_bound_exceeded: u64,
    /// See [`StructStats::ria_rebuilds`].
    pub ria_rebuilds: u64,
    /// See [`StructStats::lia_within_block_shifts`].
    pub lia_within_block_shifts: u64,
    /// See [`StructStats::lia_horizontal_packs`].
    pub lia_horizontal_packs: u64,
    /// See [`StructStats::lia_vertical_child_creates`].
    pub lia_vertical_child_creates: u64,
    /// See [`StructStats::lia_vertical_premature`].
    pub lia_vertical_premature: u64,
    /// See [`StructStats::lia_model_retrains`].
    pub lia_model_retrains: u64,
    /// See [`StructStats::hitree_node_upgrades`].
    pub hitree_node_upgrades: u64,
    /// See [`StructStats::apply_run_panics`].
    pub apply_run_panics: u64,
    /// See [`StructStats::vertices_quarantined`].
    pub vertices_quarantined: u64,
    /// See [`StructStats::vertices_repaired`].
    pub vertices_repaired: u64,
    /// See [`StructStats::wal_frames_appended`].
    pub wal_frames_appended: u64,
    /// See [`StructStats::checkpoint_bytes`] (gauge).
    pub checkpoint_bytes: u64,
    /// See [`StructStats::recovery_frames_replayed`].
    pub recovery_frames_replayed: u64,
    /// See [`StructStats::recovery_frames_discarded`].
    pub recovery_frames_discarded: u64,
    /// See [`StructStats::wal_segments_rotated`].
    pub wal_segments_rotated: u64,
    /// See [`StructStats::wal_segments_deleted`].
    pub wal_segments_deleted: u64,
    /// See [`StructStats::wal_live_bytes`] (gauge).
    pub wal_live_bytes: u64,
    /// See [`StructStats::delta_checkpoints_written`].
    pub delta_checkpoints_written: u64,
    /// See [`StructStats::checkpoint_dirty_vertices`] (gauge).
    pub checkpoint_dirty_vertices: u64,
    /// See [`StructStats::recovery_images_discarded`].
    pub recovery_images_discarded: u64,
    /// See [`StructStats::snapshots_taken`].
    pub snapshots_taken: u64,
    /// See [`StructStats::snapshots_retired`].
    pub snapshots_retired: u64,
    /// See [`StructStats::cow_block_copies`].
    pub cow_block_copies: u64,
    /// See [`StructStats::epoch_reclaim_backlog`] (gauge).
    pub epoch_reclaim_backlog: u64,
    /// See [`StructStats::subscriptions_active`] (gauge).
    pub subscriptions_active: u64,
    /// See [`StructStats::deltas_delivered`].
    pub deltas_delivered: u64,
    /// See [`StructStats::delta_entries_emitted`].
    pub delta_entries_emitted: u64,
    /// See [`StructStats::subscription_panics`].
    pub subscription_panics: u64,
    /// See [`StructStats::search_scalar_probes`].
    pub search_scalar_probes: u64,
    /// See [`StructStats::search_block_probes`].
    pub search_block_probes: u64,
    /// See [`StructStats::compressed_chunks_decoded`].
    pub compressed_chunks_decoded: u64,
    /// See [`StructStats::compressed_bytes_saved`].
    pub compressed_bytes_saved: u64,
    /// See [`StructStats::spill_compressions`].
    pub spill_compressions: u64,
    /// See [`StructStats::spill_thaws`].
    pub spill_thaws: u64,
    /// See [`StructStats::phase_sort_nanos`].
    pub phase_sort_nanos: u64,
    /// See [`StructStats::phase_group_nanos`].
    pub phase_group_nanos: u64,
    /// See [`StructStats::phase_apply_nanos`].
    pub phase_apply_nanos: u64,
    /// See [`StructStats::phase_kernel_nanos`].
    pub phase_kernel_nanos: u64,
}

impl StructSnapshot {
    /// Difference `self - earlier` for monotonic counters, saturating at
    /// zero. The gauges `ria_max_ripple_span`, `ria_bound`,
    /// `checkpoint_bytes`, `epoch_reclaim_backlog`, `wal_live_bytes`,
    /// `checkpoint_dirty_vertices`, and `subscriptions_active` keep
    /// `self`'s value (a max and a most-recent value do not subtract
    /// meaningfully).
    pub fn since(self, earlier: StructSnapshot) -> StructSnapshot {
        StructSnapshot {
            vb_inline_hits: self.vb_inline_hits.saturating_sub(earlier.vb_inline_hits),
            vb_inline_shifts: self
                .vb_inline_shifts
                .saturating_sub(earlier.vb_inline_shifts),
            vb_spill_evictions: self
                .vb_spill_evictions
                .saturating_sub(earlier.vb_spill_evictions),
            vb_spill_inserts: self
                .vb_spill_inserts
                .saturating_sub(earlier.vb_spill_inserts),
            vb_spill_refills: self
                .vb_spill_refills
                .saturating_sub(earlier.vb_spill_refills),
            arr_shifts: self.arr_shifts.saturating_sub(earlier.arr_shifts),
            tier_upgrades: self.tier_upgrades.saturating_sub(earlier.tier_upgrades),
            tier_downgrades: self.tier_downgrades.saturating_sub(earlier.tier_downgrades),
            ria_within_block_shifts: self
                .ria_within_block_shifts
                .saturating_sub(earlier.ria_within_block_shifts),
            ria_cross_block_moves: self
                .ria_cross_block_moves
                .saturating_sub(earlier.ria_cross_block_moves),
            ria_ripples: self.ria_ripples.saturating_sub(earlier.ria_ripples),
            ria_max_ripple_span: self.ria_max_ripple_span,
            ria_bound: self.ria_bound,
            ria_bound_exceeded: self
                .ria_bound_exceeded
                .saturating_sub(earlier.ria_bound_exceeded),
            ria_rebuilds: self.ria_rebuilds.saturating_sub(earlier.ria_rebuilds),
            lia_within_block_shifts: self
                .lia_within_block_shifts
                .saturating_sub(earlier.lia_within_block_shifts),
            lia_horizontal_packs: self
                .lia_horizontal_packs
                .saturating_sub(earlier.lia_horizontal_packs),
            lia_vertical_child_creates: self
                .lia_vertical_child_creates
                .saturating_sub(earlier.lia_vertical_child_creates),
            lia_vertical_premature: self
                .lia_vertical_premature
                .saturating_sub(earlier.lia_vertical_premature),
            lia_model_retrains: self
                .lia_model_retrains
                .saturating_sub(earlier.lia_model_retrains),
            hitree_node_upgrades: self
                .hitree_node_upgrades
                .saturating_sub(earlier.hitree_node_upgrades),
            apply_run_panics: self
                .apply_run_panics
                .saturating_sub(earlier.apply_run_panics),
            vertices_quarantined: self
                .vertices_quarantined
                .saturating_sub(earlier.vertices_quarantined),
            vertices_repaired: self
                .vertices_repaired
                .saturating_sub(earlier.vertices_repaired),
            wal_frames_appended: self
                .wal_frames_appended
                .saturating_sub(earlier.wal_frames_appended),
            checkpoint_bytes: self.checkpoint_bytes,
            recovery_frames_replayed: self
                .recovery_frames_replayed
                .saturating_sub(earlier.recovery_frames_replayed),
            recovery_frames_discarded: self
                .recovery_frames_discarded
                .saturating_sub(earlier.recovery_frames_discarded),
            wal_segments_rotated: self
                .wal_segments_rotated
                .saturating_sub(earlier.wal_segments_rotated),
            wal_segments_deleted: self
                .wal_segments_deleted
                .saturating_sub(earlier.wal_segments_deleted),
            wal_live_bytes: self.wal_live_bytes,
            delta_checkpoints_written: self
                .delta_checkpoints_written
                .saturating_sub(earlier.delta_checkpoints_written),
            checkpoint_dirty_vertices: self.checkpoint_dirty_vertices,
            recovery_images_discarded: self
                .recovery_images_discarded
                .saturating_sub(earlier.recovery_images_discarded),
            snapshots_taken: self.snapshots_taken.saturating_sub(earlier.snapshots_taken),
            snapshots_retired: self
                .snapshots_retired
                .saturating_sub(earlier.snapshots_retired),
            cow_block_copies: self
                .cow_block_copies
                .saturating_sub(earlier.cow_block_copies),
            epoch_reclaim_backlog: self.epoch_reclaim_backlog,
            subscriptions_active: self.subscriptions_active,
            deltas_delivered: self
                .deltas_delivered
                .saturating_sub(earlier.deltas_delivered),
            delta_entries_emitted: self
                .delta_entries_emitted
                .saturating_sub(earlier.delta_entries_emitted),
            subscription_panics: self
                .subscription_panics
                .saturating_sub(earlier.subscription_panics),
            search_scalar_probes: self
                .search_scalar_probes
                .saturating_sub(earlier.search_scalar_probes),
            search_block_probes: self
                .search_block_probes
                .saturating_sub(earlier.search_block_probes),
            compressed_chunks_decoded: self
                .compressed_chunks_decoded
                .saturating_sub(earlier.compressed_chunks_decoded),
            compressed_bytes_saved: self
                .compressed_bytes_saved
                .saturating_sub(earlier.compressed_bytes_saved),
            spill_compressions: self
                .spill_compressions
                .saturating_sub(earlier.spill_compressions),
            spill_thaws: self.spill_thaws.saturating_sub(earlier.spill_thaws),
            phase_sort_nanos: self
                .phase_sort_nanos
                .saturating_sub(earlier.phase_sort_nanos),
            phase_group_nanos: self
                .phase_group_nanos
                .saturating_sub(earlier.phase_group_nanos),
            phase_apply_nanos: self
                .phase_apply_nanos
                .saturating_sub(earlier.phase_apply_nanos),
            phase_kernel_nanos: self
                .phase_kernel_nanos
                .saturating_sub(earlier.phase_kernel_nanos),
        }
    }

    /// Total horizontal RIA movement (within-block + cross-block).
    pub fn ria_horizontal_moves(self) -> u64 {
        self.ria_within_block_shifts + self.ria_cross_block_moves
    }

    /// `(field name, value)` pairs in a fixed order — the serialization
    /// schema. Report writers and schema-stability tests both read this, so
    /// renaming a field here is a deliberate schema change.
    pub fn fields(self) -> [(&'static str, u64); 52] {
        [
            ("vb_inline_hits", self.vb_inline_hits),
            ("vb_inline_shifts", self.vb_inline_shifts),
            ("vb_spill_evictions", self.vb_spill_evictions),
            ("vb_spill_inserts", self.vb_spill_inserts),
            ("vb_spill_refills", self.vb_spill_refills),
            ("arr_shifts", self.arr_shifts),
            ("tier_upgrades", self.tier_upgrades),
            ("tier_downgrades", self.tier_downgrades),
            ("ria_within_block_shifts", self.ria_within_block_shifts),
            ("ria_cross_block_moves", self.ria_cross_block_moves),
            ("ria_ripples", self.ria_ripples),
            ("ria_max_ripple_span", self.ria_max_ripple_span),
            ("ria_bound", self.ria_bound),
            ("ria_bound_exceeded", self.ria_bound_exceeded),
            ("ria_rebuilds", self.ria_rebuilds),
            ("lia_within_block_shifts", self.lia_within_block_shifts),
            ("lia_horizontal_packs", self.lia_horizontal_packs),
            (
                "lia_vertical_child_creates",
                self.lia_vertical_child_creates,
            ),
            ("lia_vertical_premature", self.lia_vertical_premature),
            ("lia_model_retrains", self.lia_model_retrains),
            ("hitree_node_upgrades", self.hitree_node_upgrades),
            ("apply_run_panics", self.apply_run_panics),
            ("vertices_quarantined", self.vertices_quarantined),
            ("vertices_repaired", self.vertices_repaired),
            ("wal_frames_appended", self.wal_frames_appended),
            ("checkpoint_bytes", self.checkpoint_bytes),
            ("recovery_frames_replayed", self.recovery_frames_replayed),
            ("recovery_frames_discarded", self.recovery_frames_discarded),
            ("wal_segments_rotated", self.wal_segments_rotated),
            ("wal_segments_deleted", self.wal_segments_deleted),
            ("wal_live_bytes", self.wal_live_bytes),
            ("delta_checkpoints_written", self.delta_checkpoints_written),
            ("checkpoint_dirty_vertices", self.checkpoint_dirty_vertices),
            ("recovery_images_discarded", self.recovery_images_discarded),
            ("snapshots_taken", self.snapshots_taken),
            ("snapshots_retired", self.snapshots_retired),
            ("cow_block_copies", self.cow_block_copies),
            ("epoch_reclaim_backlog", self.epoch_reclaim_backlog),
            ("subscriptions_active", self.subscriptions_active),
            ("deltas_delivered", self.deltas_delivered),
            ("delta_entries_emitted", self.delta_entries_emitted),
            ("subscription_panics", self.subscription_panics),
            ("search_scalar_probes", self.search_scalar_probes),
            ("search_block_probes", self.search_block_probes),
            ("compressed_chunks_decoded", self.compressed_chunks_decoded),
            ("compressed_bytes_saved", self.compressed_bytes_saved),
            ("spill_compressions", self.spill_compressions),
            ("spill_thaws", self.spill_thaws),
            ("phase_sort_nanos", self.phase_sort_nanos),
            ("phase_group_nanos", self.phase_group_nanos),
            ("phase_apply_nanos", self.phase_apply_nanos),
            ("phase_kernel_nanos", self.phase_kernel_nanos),
        ]
    }

    /// The count fields that must be identical across reruns with the same
    /// input — every field except wall-clock nanos and the two gauges.
    pub fn deterministic_fields(self) -> Vec<(&'static str, u64)> {
        self.fields()
            .into_iter()
            .filter(|(name, _)| !name.ends_with("_nanos"))
            .collect()
    }

    /// Rebuilds a snapshot from `(field name, value)` pairs, the inverse of
    /// [`StructSnapshot::fields`]. Unknown names are rejected; missing names
    /// stay zero.
    pub fn from_fields<'a>(
        pairs: impl IntoIterator<Item = (&'a str, u64)>,
    ) -> Result<StructSnapshot, String> {
        let mut s = StructSnapshot::default();
        for (name, v) in pairs {
            match name {
                "vb_inline_hits" => s.vb_inline_hits = v,
                "vb_inline_shifts" => s.vb_inline_shifts = v,
                "vb_spill_evictions" => s.vb_spill_evictions = v,
                "vb_spill_inserts" => s.vb_spill_inserts = v,
                "vb_spill_refills" => s.vb_spill_refills = v,
                "arr_shifts" => s.arr_shifts = v,
                "tier_upgrades" => s.tier_upgrades = v,
                "tier_downgrades" => s.tier_downgrades = v,
                "ria_within_block_shifts" => s.ria_within_block_shifts = v,
                "ria_cross_block_moves" => s.ria_cross_block_moves = v,
                "ria_ripples" => s.ria_ripples = v,
                "ria_max_ripple_span" => s.ria_max_ripple_span = v,
                "ria_bound" => s.ria_bound = v,
                "ria_bound_exceeded" => s.ria_bound_exceeded = v,
                "ria_rebuilds" => s.ria_rebuilds = v,
                "lia_within_block_shifts" => s.lia_within_block_shifts = v,
                "lia_horizontal_packs" => s.lia_horizontal_packs = v,
                "lia_vertical_child_creates" => s.lia_vertical_child_creates = v,
                "lia_vertical_premature" => s.lia_vertical_premature = v,
                "lia_model_retrains" => s.lia_model_retrains = v,
                "hitree_node_upgrades" => s.hitree_node_upgrades = v,
                "apply_run_panics" => s.apply_run_panics = v,
                "vertices_quarantined" => s.vertices_quarantined = v,
                "vertices_repaired" => s.vertices_repaired = v,
                "wal_frames_appended" => s.wal_frames_appended = v,
                "checkpoint_bytes" => s.checkpoint_bytes = v,
                "recovery_frames_replayed" => s.recovery_frames_replayed = v,
                "recovery_frames_discarded" => s.recovery_frames_discarded = v,
                "wal_segments_rotated" => s.wal_segments_rotated = v,
                "wal_segments_deleted" => s.wal_segments_deleted = v,
                "wal_live_bytes" => s.wal_live_bytes = v,
                "delta_checkpoints_written" => s.delta_checkpoints_written = v,
                "checkpoint_dirty_vertices" => s.checkpoint_dirty_vertices = v,
                "recovery_images_discarded" => s.recovery_images_discarded = v,
                "snapshots_taken" => s.snapshots_taken = v,
                "snapshots_retired" => s.snapshots_retired = v,
                "cow_block_copies" => s.cow_block_copies = v,
                "epoch_reclaim_backlog" => s.epoch_reclaim_backlog = v,
                "subscriptions_active" => s.subscriptions_active = v,
                "deltas_delivered" => s.deltas_delivered = v,
                "delta_entries_emitted" => s.delta_entries_emitted = v,
                "subscription_panics" => s.subscription_panics = v,
                "search_scalar_probes" => s.search_scalar_probes = v,
                "search_block_probes" => s.search_block_probes = v,
                "compressed_chunks_decoded" => s.compressed_chunks_decoded = v,
                "compressed_bytes_saved" => s.compressed_bytes_saved = v,
                "spill_compressions" => s.spill_compressions = v,
                "spill_thaws" => s.spill_thaws = v,
                "phase_sort_nanos" => s.phase_sort_nanos = v,
                "phase_group_nanos" => s.phase_group_nanos = v,
                "phase_apply_nanos" => s.phase_apply_nanos = v,
                "phase_kernel_nanos" => s.phase_kernel_nanos = v,
                other => return Err(format!("unknown StructSnapshot field: {other}")),
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let c = OpCounters::new();
        c.add_search(3);
        c.add_search(2);
        c.add_moves(7);
        c.add_rebuild();
        let s = c.snapshot();
        assert_eq!(s.search_steps, 5);
        assert_eq!(s.elements_moved, 7);
        assert_eq!(s.rebuilds, 1);
        c.reset();
        assert_eq!(c.snapshot(), CounterSnapshot::default());
    }

    #[test]
    fn snapshot_since() {
        let c = OpCounters::new();
        c.add_moves(10);
        let a = c.snapshot();
        c.add_moves(5);
        c.add_search(1);
        let d = c.snapshot().since(a);
        assert_eq!(d.elements_moved, 5);
        assert_eq!(d.search_steps, 1);
    }

    #[test]
    fn struct_stats_record_and_reset() {
        let s = StructStats::new();
        s.record_vb_inline_insert(3);
        s.record_vb_inline_insert(0);
        s.record_vb_spill_eviction();
        s.record_arr_shift(9);
        s.record_ria_within_shift(4);
        s.record_ria_ripple(2, 2, 5);
        s.record_ria_rebuild();
        s.record_lia_pack();
        s.record_lia_vertical(true);
        s.record_lia_retrain();
        s.record_node_upgrade();
        let snap = s.snapshot();
        assert_eq!(snap.vb_inline_hits, 2);
        assert_eq!(snap.vb_inline_shifts, 3);
        assert_eq!(snap.vb_spill_evictions, 1);
        assert_eq!(snap.arr_shifts, 9);
        assert_eq!(snap.ria_within_block_shifts, 4);
        assert_eq!(snap.ria_cross_block_moves, 2);
        assert_eq!(snap.ria_ripples, 1);
        assert_eq!(snap.ria_max_ripple_span, 2);
        assert_eq!(snap.ria_bound, 5);
        assert_eq!(snap.ria_bound_exceeded, 0);
        assert_eq!(snap.ria_rebuilds, 1);
        assert_eq!(snap.lia_horizontal_packs, 1);
        assert_eq!(snap.lia_vertical_child_creates, 1);
        assert_eq!(snap.lia_vertical_premature, 0);
        assert_eq!(snap.lia_model_retrains, 1);
        assert_eq!(snap.hitree_node_upgrades, 1);
        s.reset();
        assert_eq!(s.snapshot(), StructSnapshot::default());
    }

    #[test]
    fn ripple_past_bound_flags_violation() {
        let s = StructStats::new();
        s.record_ria_ripple(7, 7, 5);
        let snap = s.snapshot();
        assert_eq!(snap.ria_bound_exceeded, 1);
        assert_eq!(snap.ria_max_ripple_span, 7);
    }

    #[test]
    fn premature_vertical_flags_violation() {
        let s = StructStats::new();
        s.record_lia_vertical(false);
        assert_eq!(s.snapshot().lia_vertical_premature, 1);
    }

    #[test]
    fn struct_snapshot_since_diffs_counters_keeps_gauges() {
        let s = StructStats::new();
        s.record_ria_within_shift(10);
        s.record_ria_ripple(3, 3, 6);
        let a = s.snapshot();
        s.record_ria_within_shift(5);
        s.record_ria_ripple(2, 2, 6);
        let d = s.snapshot().since(a);
        assert_eq!(d.ria_within_block_shifts, 5);
        assert_eq!(d.ria_ripples, 1);
        assert_eq!(d.ria_cross_block_moves, 2);
        // Gauges keep the later absolute value.
        assert_eq!(d.ria_max_ripple_span, 3);
        assert_eq!(d.ria_bound, 6);
    }

    #[test]
    fn phase_timer_attributes_time() {
        let s = StructStats::new();
        {
            let _t = s.time(Phase::Sort);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        {
            let t = s.time(Phase::Apply);
            std::thread::sleep(std::time::Duration::from_millis(1));
            t.stop();
        }
        let snap = s.snapshot();
        assert!(snap.phase_sort_nanos >= 1_000_000);
        assert!(snap.phase_apply_nanos >= 500_000);
        assert_eq!(snap.phase_group_nanos, 0);
    }

    #[test]
    fn fields_are_schema_stable() {
        let names: Vec<&str> = StructSnapshot::default()
            .fields()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(names.len(), 52);
        // A rename here must be an intentional schema change.
        assert!(names.contains(&"ria_cross_block_moves"));
        assert!(names.contains(&"lia_vertical_child_creates"));
        assert!(names.contains(&"apply_run_panics"));
        assert!(names.contains(&"vertices_quarantined"));
        assert!(names.contains(&"vertices_repaired"));
        assert!(names.contains(&"wal_frames_appended"));
        assert!(names.contains(&"checkpoint_bytes"));
        assert!(names.contains(&"recovery_frames_replayed"));
        assert!(names.contains(&"recovery_frames_discarded"));
        assert!(names.contains(&"wal_segments_rotated"));
        assert!(names.contains(&"wal_segments_deleted"));
        assert!(names.contains(&"wal_live_bytes"));
        assert!(names.contains(&"delta_checkpoints_written"));
        assert!(names.contains(&"checkpoint_dirty_vertices"));
        assert!(names.contains(&"recovery_images_discarded"));
        assert!(names.contains(&"snapshots_taken"));
        assert!(names.contains(&"snapshots_retired"));
        assert!(names.contains(&"cow_block_copies"));
        assert!(names.contains(&"epoch_reclaim_backlog"));
        assert!(names.contains(&"subscriptions_active"));
        assert!(names.contains(&"deltas_delivered"));
        assert!(names.contains(&"delta_entries_emitted"));
        assert!(names.contains(&"subscription_panics"));
        assert!(names.contains(&"search_scalar_probes"));
        assert!(names.contains(&"search_block_probes"));
        assert!(names.contains(&"compressed_chunks_decoded"));
        assert!(names.contains(&"compressed_bytes_saved"));
        assert!(names.contains(&"spill_compressions"));
        assert!(names.contains(&"spill_thaws"));
        assert!(names.contains(&"phase_apply_nanos"));
    }
}
