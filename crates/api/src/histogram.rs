//! Lock-free, log2-bucketed latency histograms (observability tier 2).
//!
//! [`StructStats`](crate::StructStats) answers "how much structural movement
//! happened"; cumulative sums, however, hide exactly what LSGraph's bounded
//! movement design protects: **tail behaviour**. A single RIA rebuild or a
//! premature HITree vertical move shows up as a p99 latency spike, not in an
//! average. The histograms here record full latency *distributions* —
//! per-batch apply latency, per-source-group apply latency, and per-kernel
//! latency — cheaply enough to stay always-on.
//!
//! Design:
//!
//! - **log2 buckets**: a recorded value `v` (nanoseconds) lands in bucket
//!   `floor(log2(v)) + 1` (bucket 0 holds exactly `v == 0`), so 64 buckets
//!   cover the entire `u64` range and bucket boundaries are exact powers of
//!   two. Quantiles are reported as the **upper bound of the bucket**
//!   containing the requested rank — deterministic, and never exceeding the
//!   tracked true maximum.
//! - **per-thread shards**: each recording thread owns one of
//!   [`NUM_SHARDS`] shard slots (assigned round-robin on first use), so
//!   recording is a few relaxed atomic RMWs with no cross-thread contention
//!   in the common case. There are no locks anywhere on the record path.
//! - **deterministic merge**: [`LatencyHistogram::snapshot`] folds shards in
//!   fixed index order. Because bucket counts and sums are additive and the
//!   max is a lattice join, the merged snapshot is identical for any thread
//!   interleaving of the same recorded multiset — the same property
//!   [`StructStats`](crate::StructStats) counters have.

use core::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use crate::counters::{Phase, PhaseTimer, StructStats};
use crate::trace::{self, SpanKind};

/// Number of log2 buckets; covers every representable `u64` nanosecond value.
pub const NUM_BUCKETS: usize = 64;

/// Number of per-thread shard slots per histogram. Threads are assigned
/// round-robin, so more than `NUM_SHARDS` concurrent threads merely share
/// slots (still correct: buckets are atomic), they do not lose updates.
pub const NUM_SHARDS: usize = 16;

/// Next shard slot to hand out; threads take one on first record.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard slot, fixed at first use.
    static SHARD_INDEX: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % NUM_SHARDS;
}

/// Bucket index for a nanosecond value: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `b`: 0 for bucket 0, `2^b - 1` otherwise
/// (`u64::MAX` for the top bucket).
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    match b {
        0 => 0,
        1..=63 => (1u64 << b) - 1,
        _ => u64::MAX,
    }
}

/// One shard: a private set of buckets plus sum/max gauges.
struct Shard {
    buckets: [AtomicU64; NUM_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Shard {
    const fn new() -> Self {
        Shard {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// A lock-free latency histogram with per-thread shards.
///
/// `Debug` prints the merged snapshot, not the raw shards.
pub struct LatencyHistogram {
    shards: [Shard; NUM_SHARDS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl core::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_tuple("LatencyHistogram")
            .field(&self.snapshot())
            .finish()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            shards: [const { Shard::new() }; NUM_SHARDS],
        }
    }

    /// Records one latency sample in nanoseconds.
    #[inline]
    pub fn record(&self, nanos: u64) {
        let s = SHARD_INDEX.with(|i| *i);
        let shard = &self.shards[s];
        shard.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(nanos, Ordering::Relaxed);
        shard.max.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Records one latency sample from a [`Duration`].
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Merges every shard (in fixed index order) into a point-in-time
    /// snapshot. Deterministic for a fixed recorded multiset.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for shard in &self.shards {
            for (b, bucket) in shard.buckets.iter().enumerate() {
                out.buckets[b] += bucket.load(Ordering::Relaxed);
            }
            out.sum += shard.sum.load(Ordering::Relaxed);
            out.max = out.max.max(shard.max.load(Ordering::Relaxed));
        }
        out
    }

    /// Zeroes every shard.
    pub fn reset(&self) {
        for shard in &self.shards {
            for bucket in &shard.buckets {
                bucket.store(0, Ordering::Relaxed);
            }
            shard.sum.store(0, Ordering::Relaxed);
            shard.max.store(0, Ordering::Relaxed);
        }
    }
}

/// Point-in-time merged copy of a [`LatencyHistogram`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log2 bucket (see [`bucket_index`]).
    pub buckets: [u64; NUM_BUCKETS],
    /// Sum of all recorded nanosecond values.
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; NUM_BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Mean recorded value in nanoseconds (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) as the upper bound of the bucket
    /// holding rank `ceil(q * count)`, clamped to the exact tracked maximum.
    /// Returns 0 for an empty histogram. Deterministic: depends only on the
    /// merged bucket counts, never on thread interleaving.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Median (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Difference `self - earlier` bucket-wise, saturating at zero. The
    /// `max` gauge keeps `self`'s value (a max does not subtract).
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (b, o) in out.buckets.iter_mut().enumerate() {
            *o = o.saturating_sub(earlier.buckets[b]);
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// `(bucket index, count)` pairs for every non-empty bucket, in
    /// ascending index order — the sparse serialization form.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// Rebuilds a snapshot from sparse `(bucket index, count)` pairs plus
    /// the `sum`/`max` gauges — the inverse of
    /// [`HistogramSnapshot::nonzero_buckets`]. Out-of-range indices are
    /// rejected.
    pub fn from_parts(
        pairs: impl IntoIterator<Item = (usize, u64)>,
        sum: u64,
        max: u64,
    ) -> Result<HistogramSnapshot, String> {
        let mut s = HistogramSnapshot {
            sum,
            max,
            ..HistogramSnapshot::default()
        };
        for (b, c) in pairs {
            if b >= NUM_BUCKETS {
                return Err(format!("histogram bucket index out of range: {b}"));
            }
            s.buckets[b] += c;
        }
        Ok(s)
    }
}

/// The latency distributions the engine and harness record.
#[derive(Debug, Default)]
pub struct LatencyStats {
    /// Wall-clock latency of one whole batch-apply phase (one sample per
    /// `insert_batch`/`delete_batch` call).
    pub batch_apply: LatencyHistogram,
    /// Wall-clock latency of applying one per-source run (one sample per
    /// run, recorded from the worker thread that applied it).
    pub group_apply: LatencyHistogram,
    /// Wall-clock latency of one analytics kernel invocation (one sample
    /// per [`kernel_scope`] guard).
    pub kernel: LatencyHistogram,
    /// Wall-clock latency of one snapshot read operation, recorded by
    /// readers running against a `GraphSnapshot` while the writer streams
    /// batches (the `repro mixed` experiment).
    pub reader: LatencyHistogram,
}

/// Process-wide sink for call paths not wired to an engine instance — in
/// particular the analytics kernels, which run over any `Graph`.
static GLOBAL_LATENCY: LatencyStats = LatencyStats::new();

impl LatencyStats {
    /// Creates zeroed stats.
    pub const fn new() -> Self {
        LatencyStats {
            batch_apply: LatencyHistogram::new(),
            group_apply: LatencyHistogram::new(),
            kernel: LatencyHistogram::new(),
            reader: LatencyHistogram::new(),
        }
    }

    /// The process-wide default sink (analytics kernels record here).
    pub fn global() -> &'static LatencyStats {
        &GLOBAL_LATENCY
    }

    /// Merged snapshot of all histograms.
    pub fn snapshot(&self) -> LatencySnapshot {
        LatencySnapshot {
            batch_apply: self.batch_apply.snapshot(),
            group_apply: self.group_apply.snapshot(),
            kernel: self.kernel.snapshot(),
            reader: self.reader.snapshot(),
        }
    }

    /// Zeroes all histograms.
    pub fn reset(&self) {
        self.batch_apply.reset();
        self.group_apply.reset();
        self.kernel.reset();
        self.reader.reset();
    }
}

/// Point-in-time copy of [`LatencyStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySnapshot {
    /// See [`LatencyStats::batch_apply`].
    pub batch_apply: HistogramSnapshot,
    /// See [`LatencyStats::group_apply`].
    pub group_apply: HistogramSnapshot,
    /// See [`LatencyStats::kernel`].
    pub kernel: HistogramSnapshot,
    /// See [`LatencyStats::reader`].
    pub reader: HistogramSnapshot,
}

impl LatencySnapshot {
    /// Component-wise [`HistogramSnapshot::since`].
    pub fn since(&self, earlier: &LatencySnapshot) -> LatencySnapshot {
        LatencySnapshot {
            batch_apply: self.batch_apply.since(&earlier.batch_apply),
            group_apply: self.group_apply.since(&earlier.group_apply),
            kernel: self.kernel.since(&earlier.kernel),
            reader: self.reader.since(&earlier.reader),
        }
    }

    /// `(name, histogram)` pairs in the fixed serialization order.
    pub fn fields(&self) -> [(&'static str, &HistogramSnapshot); 4] {
        [
            ("batch_apply", &self.batch_apply),
            ("group_apply", &self.group_apply),
            ("kernel", &self.kernel),
            ("reader", &self.reader),
        ]
    }
}

/// Scoped guard for one analytics-kernel invocation: attributes wall-clock
/// time to [`Phase::Kernel`] on the global [`StructStats`], records the
/// elapsed latency into the global kernel histogram, and emits a named
/// `kernel` trace span — all on drop.
#[must_use = "the guard records on drop; binding it to `_` drops immediately"]
pub struct KernelScope {
    start: Instant,
    _timer: PhaseTimer<'static>,
    _span: trace::Span,
}

/// Opens a [`KernelScope`] for the kernel named `name` (shown in traces).
pub fn kernel_scope(name: &'static str) -> KernelScope {
    KernelScope {
        start: Instant::now(),
        _timer: StructStats::global().time(Phase::Kernel),
        _span: trace::span_named(SpanKind::Kernel, name),
    }
}

impl Drop for KernelScope {
    fn drop(&mut self) {
        LatencyStats::global()
            .kernel
            .record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64); // top bucket
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_are_inclusive_maxima() {
        // Every value maps to a bucket whose upper bound is >= the value and
        // whose predecessor bucket's bound is < the value.
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX] {
            let b = bucket_index(v);
            assert!(bucket_upper_bound(b) >= v, "v={v}");
            if b > 0 {
                assert!(bucket_upper_bound(b - 1) < v, "v={v}");
            }
        }
    }

    #[test]
    fn quantiles_from_bucket_bounds() {
        let h = LatencyHistogram::new();
        // 90 samples at ~100ns (bucket 7, bound 127), 10 at ~10_000ns
        // (bucket 14, bound 16383).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(10_000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 100);
        assert_eq!(s.max, 10_000);
        assert_eq!(s.p50(), 127);
        assert_eq!(s.p90(), 127);
        assert_eq!(
            s.p99(),
            10_000.min(bucket_upper_bound(bucket_index(10_000)))
        );
        // p99 rank lands in the 10_000 bucket; the bound is clamped to max.
        assert_eq!(s.p99(), 10_000);
        assert_eq!(s.quantile(1.0), 10_000);
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn shard_merge_is_deterministic_across_thread_counts() {
        // The same multiset of samples recorded by 1 thread and by 8 threads
        // must merge to identical snapshots.
        let values: Vec<u64> = (0..4_000u64).map(|i| (i * 37) % 50_000).collect();
        let h1 = LatencyHistogram::new();
        for &v in &values {
            h1.record(v);
        }
        let h8 = LatencyHistogram::new();
        std::thread::scope(|s| {
            for chunk in values.chunks(values.len() / 8) {
                let h8 = &h8;
                s.spawn(move || {
                    for &v in chunk {
                        h8.record(v);
                    }
                });
            }
        });
        assert_eq!(h1.snapshot(), h8.snapshot());
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = LatencyHistogram::new();
        h.record(5);
        h.record(500);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn since_diffs_buckets_keeps_max() {
        let h = LatencyHistogram::new();
        h.record(100);
        h.record(10_000);
        let a = h.snapshot();
        h.record(100);
        let d = h.snapshot().since(&a);
        assert_eq!(d.count(), 1);
        assert_eq!(d.buckets[bucket_index(100)], 1);
        assert_eq!(d.sum, 100);
        assert_eq!(d.max, 10_000, "max gauge keeps the later absolute value");
    }

    #[test]
    fn sparse_round_trip() {
        let h = LatencyHistogram::new();
        for v in [0u64, 1, 1, 300, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_parts(s.nonzero_buckets(), s.sum, s.max).unwrap();
        assert_eq!(back, s);
        assert!(HistogramSnapshot::from_parts([(64, 1)], 0, 0).is_err());
    }

    #[test]
    fn kernel_scope_records_globally() {
        let before = LatencyStats::global().kernel.snapshot();
        {
            let _k = kernel_scope("test-kernel");
            std::thread::sleep(Duration::from_millis(1));
        }
        let after = LatencyStats::global().kernel.snapshot();
        let d = after.since(&before);
        assert_eq!(d.count(), 1);
        assert!(d.sum >= 500_000, "recorded {} ns", d.sum);
    }
}
