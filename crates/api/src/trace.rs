//! Vendored, no-deps trace shim with chrome://tracing export.
//!
//! Scoped spans ([`span`]/[`span_named`]) record `(kind, name, start, dur)`
//! into **per-thread ring buffers**; the whole facility is gated on a single
//! relaxed [`AtomicBool`], so when tracing is disabled (the default) a span
//! guard costs one atomic load and nothing is allocated.
//!
//! Rings are bounded ([`RING_CAP`] events per thread): when a ring fills,
//! the oldest events are overwritten and a drop counter is kept, so a long
//! run keeps the *most recent* window — the usual choice for "what just
//! happened before the spike" debugging.
//!
//! [`export_chrome_json`] merges every thread's ring (including threads that
//! have already exited — rings are kept alive by a global registry) and
//! writes the `trace_event` JSON array format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): complete
//! events (`"ph":"X"`) with microsecond `ts`/`dur` relative to the first
//! [`enable`] call.
//!
//! For long runs where the most-recent-window semantics of the rings would
//! clip history, [`stream_to_file`] switches the facility into **streaming
//! mode**: every completed span is appended directly to a buffered file
//! sink as it drops (bypassing the rings entirely), so an arbitrarily long
//! traced run loses zero events. [`finish_stream`] terminates the JSON
//! document with a `droppedEvents: 0` footer and returns the event count.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Capacity of each per-thread event ring.
pub const RING_CAP: usize = 1 << 15;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Wall-clock origin for exported timestamps (set on first [`enable`]).
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// The structural sites instrumented with spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanKind {
    /// Batch pipeline: sorting the edge batch.
    Sort,
    /// Batch pipeline: grouping sorted edges into per-source runs.
    Group,
    /// Batch pipeline: applying all runs to the structure.
    Apply,
    /// One analytics-kernel invocation.
    Kernel,
    /// RIA α-triggered (or shrink/refill) rebuild.
    RiaRebuild,
    /// HITree leaf model retrain (horizontal move on an LIA node).
    LiaRetrain,
    /// Container tier upgrade (array→RIA, PMA→tree, B-tree→LIA, ...).
    TierUpgrade,
}

impl SpanKind {
    /// Stable lowercase name used in trace output.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Sort => "sort",
            SpanKind::Group => "group",
            SpanKind::Apply => "apply",
            SpanKind::Kernel => "kernel",
            SpanKind::RiaRebuild => "ria_rebuild",
            SpanKind::LiaRetrain => "lia_retrain",
            SpanKind::TierUpgrade => "tier_upgrade",
        }
    }
}

/// One recorded complete event.
#[derive(Clone, Copy, Debug)]
struct Event {
    kind: SpanKind,
    /// Extra label for named spans (kernel name); `""` means "use kind name".
    name: &'static str,
    /// Nanoseconds since [`epoch`].
    start_ns: u64,
    dur_ns: u64,
}

/// Fixed-capacity overwrite-oldest ring of events for one thread.
struct Ring {
    tid: u64,
    events: Vec<Event>,
    /// Next write position once `events` is full.
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, e: Event) {
        if self.events.len() < RING_CAP {
            self.events.push(e);
        } else {
            self.events[self.head] = e;
            self.head = (self.head + 1) % RING_CAP;
            self.dropped += 1;
        }
    }
}

/// All rings ever created, so events from exited threads still export.
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Incremental on-disk sink for streaming mode ([`stream_to_file`]).
struct StreamSink {
    w: std::io::BufWriter<std::fs::File>,
    /// Events written so far (drives comma placement and the final count).
    events: u64,
}

static SINK: Mutex<Option<StreamSink>> = Mutex::new(None);

/// Fast-path flag mirroring `SINK.is_some()`, so `Span::drop` only takes
/// the sink lock when streaming is actually active.
static STREAMING: AtomicBool = AtomicBool::new(false);

thread_local! {
    static MY_RING: Arc<Mutex<Ring>> = {
        let ring = Arc::new(Mutex::new(Ring {
            tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }));
        REGISTRY.lock().unwrap().push(Arc::clone(&ring));
        ring
    };
}

/// Turns tracing on (spans start recording). Also fixes the export epoch.
pub fn enable() {
    epoch();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events are kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether spans currently record.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears every ring (drop counters included). Tracing state is unchanged.
pub fn reset() {
    for ring in REGISTRY.lock().unwrap().iter() {
        let mut r = ring.lock().unwrap();
        r.events.clear();
        r.head = 0;
        r.dropped = 0;
    }
}

/// Scoped span guard: records one complete event on drop (only if tracing
/// was enabled when the guard was created).
#[must_use = "the span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    /// `None` when tracing was disabled at creation — drop is then free.
    info: Option<(SpanKind, &'static str, Instant)>,
}

/// Opens a span of `kind` (labelled with the kind's own name).
#[inline]
pub fn span(kind: SpanKind) -> Span {
    span_named(kind, "")
}

/// Opens a span of `kind` with an extra `name` label (e.g. a kernel name).
#[inline]
pub fn span_named(kind: SpanKind, name: &'static str) -> Span {
    Span {
        info: if is_enabled() {
            Some((kind, name, Instant::now()))
        } else {
            None
        },
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((kind, name, start)) = self.info.take() {
            let ep = epoch();
            let start_ns = start
                .checked_duration_since(ep)
                .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
                .unwrap_or(0);
            let dur_ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            let e = Event {
                kind,
                name,
                start_ns,
                dur_ns,
            };
            MY_RING.with(|ring| {
                let mut r = ring.lock().unwrap();
                if STREAMING.load(Ordering::Relaxed) && write_streamed(r.tid, &e) {
                    return;
                }
                r.push(e);
            });
        }
    }
}

/// Appends one event to the streaming sink. Returns `false` when no sink is
/// installed (or the write failed), in which case the caller falls back to
/// the thread's ring so the event is not lost.
fn write_streamed(tid: u64, e: &Event) -> bool {
    let mut guard = SINK.lock().unwrap_or_else(|p| p.into_inner());
    let Some(sink) = guard.as_mut() else {
        return false;
    };
    let sep = if sink.events == 0 { "\n" } else { ",\n" };
    let line = format!("{sep}    {}", event_json(tid, e));
    if sink.w.write_all(line.as_bytes()).is_ok() {
        sink.events += 1;
        true
    } else {
        false
    }
}

/// Starts streaming every subsequently recorded span to `path` as
/// chrome://tracing JSON, bypassing the bounded per-thread rings so no
/// event is ever dropped. Replaces any previously active stream without
/// terminating it; call [`finish_stream`] first if its footer matters.
///
/// Returns a [`StreamGuard`] that finalizes the stream on drop, so a traced
/// run that panics still gets a flushed, parseable trace file instead of a
/// truncated JSON array. [`finish_stream`] is idempotent: callers that want
/// the event count call it explicitly before the guard drops.
///
/// Events already sitting in the rings are not copied over — enable
/// streaming before the traced workload starts.
pub fn stream_to_file(path: &Path) -> std::io::Result<StreamGuard> {
    let f = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(f);
    w.write_all(b"{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [")?;
    let mut guard = SINK.lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(StreamSink { w, events: 0 });
    STREAMING.store(true, Ordering::Relaxed);
    Ok(StreamGuard { _private: () })
}

/// Drop guard returned by [`stream_to_file`]: finalizes the active stream
/// when dropped (including during a panic unwind), writing the array
/// terminator and footer so the trace file is never left unparseable.
#[must_use = "dropping the guard immediately would finalize the stream now"]
pub struct StreamGuard {
    _private: (),
}

impl Drop for StreamGuard {
    fn drop(&mut self) {
        // Idempotent: a no-op if the stream was already finished explicitly
        // (or replaced). Errors are swallowed — drop runs during unwinding,
        // where the original panic matters more than a flush failure.
        let _ = finish_stream();
    }
}

/// Whether a streaming sink is currently installed.
pub fn is_streaming() -> bool {
    STREAMING.load(Ordering::Relaxed)
}

/// Terminates the active stream: writes the `traceEvents` array terminator
/// and a `droppedEvents: 0` footer (streaming never drops), flushes, and
/// returns the number of events written. Returns `Ok(None)` when no stream
/// was active.
pub fn finish_stream() -> std::io::Result<Option<u64>> {
    STREAMING.store(false, Ordering::Relaxed);
    let sink = SINK.lock().unwrap_or_else(|p| p.into_inner()).take();
    let Some(mut sink) = sink else {
        return Ok(None);
    };
    sink.w.write_all(b"\n  ],\n  \"droppedEvents\": 0\n}\n")?;
    sink.w.flush()?;
    Ok(Some(sink.events))
}

fn fmt_us(ns: u64) -> String {
    // Microseconds with 3 decimals (i.e. nanosecond precision), as
    // chrome://tracing expects fractional-µs floats.
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One complete event in chrome://tracing JSON form (no trailing comma).
fn event_json(tid: u64, e: &Event) -> String {
    let label = if e.name.is_empty() {
        e.kind.name().to_string()
    } else {
        format!("{}:{}", e.kind.name(), e.name)
    };
    format!(
        "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
        label,
        e.kind.name(),
        tid,
        fmt_us(e.start_ns),
        fmt_us(e.dur_ns)
    )
}

/// Serializes every recorded event as chrome://tracing `trace_event` JSON
/// (object form, `"traceEvents"` array of `"ph":"X"` complete events).
/// Events are globally sorted by `(start, tid)` so output is stable for a
/// fixed set of recorded events. Returns the JSON string and the total
/// number of events dropped to ring overflow (reported as metadata too).
pub fn export_chrome_json() -> (String, u64) {
    let mut all: Vec<(u64, Event)> = Vec::new();
    let mut dropped = 0u64;
    let mut dropped_by_thread: Vec<(u64, u64)> = Vec::new();
    for ring in REGISTRY.lock().unwrap().iter() {
        let r = ring.lock().unwrap();
        dropped += r.dropped;
        if r.dropped > 0 {
            dropped_by_thread.push((r.tid, r.dropped));
        }
        for e in &r.events {
            all.push((r.tid, *e));
        }
    }
    all.sort_by_key(|&(tid, e)| (e.start_ns, tid, e.dur_ns));
    dropped_by_thread.sort_unstable();

    let mut out = String::with_capacity(128 + all.len() * 96);
    out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n");
    out.push_str(&format!("  \"droppedEvents\": {dropped},\n"));
    // Per-thread attribution of ring overflow, so a truncated trace names
    // the thread whose window was clipped. Only overflowing tids appear.
    out.push_str("  \"droppedEventsByThread\": [");
    for (i, (tid, n)) in dropped_by_thread.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[{tid}, {n}]"));
    }
    out.push_str("],\n");
    out.push_str("  \"traceEvents\": [\n");
    for (i, (tid, e)) in all.iter().enumerate() {
        out.push_str(&format!(
            "    {}{}\n",
            event_json(*tid, e),
            if i + 1 < all.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    (out, dropped)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracing state (rings, sink, enabled flag) is process-global;
    /// serialize the tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    // Ring-based recording and export are exercised in one test to avoid
    // interleaving enable/disable windows under the parallel test runner.
    #[test]
    fn spans_record_and_export_only_when_enabled() {
        let _g = locked();
        reset();
        disable();
        {
            let _s = span(SpanKind::Sort);
        }
        let (json, _) = export_chrome_json();
        assert!(!json.contains("\"name\": \"sort\""), "disabled span leaked");

        enable();
        {
            let _s = span(SpanKind::RiaRebuild);
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
        {
            let _k = span_named(SpanKind::Kernel, "bfs");
        }
        std::thread::spawn(|| {
            let _s = span(SpanKind::Apply);
        })
        .join()
        .unwrap();
        disable();

        let (json, dropped) = export_chrome_json();
        assert_eq!(dropped, 0);
        assert!(
            json.contains("\"droppedEventsByThread\": []"),
            "no thread overflowed, so the per-thread list must be empty"
        );
        assert!(json.contains("\"name\": \"ria_rebuild\""));
        assert!(json.contains("\"name\": \"kernel:bfs\""));
        assert!(json.contains("\"cat\": \"kernel\""));
        assert!(
            json.contains("\"name\": \"apply\""),
            "exited-thread ring lost"
        );
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));

        reset();
        let (json, _) = export_chrome_json();
        assert!(!json.contains("ria_rebuild"));

        // Ring overflow is attributed per thread in the export metadata.
        // Inject a pre-overflowed ring rather than recording RING_CAP+3 real
        // spans, then remove it so later tests see a clean registry.
        let fake = Arc::new(Mutex::new(Ring {
            tid: 7777,
            events: Vec::new(),
            head: 0,
            dropped: 3,
        }));
        REGISTRY.lock().unwrap().push(Arc::clone(&fake));
        let (json, dropped) = export_chrome_json();
        assert_eq!(dropped, 3);
        assert!(
            json.contains("\"droppedEventsByThread\": [[7777, 3]]"),
            "overflowing tid missing from metadata: {json}"
        );
        REGISTRY.lock().unwrap().retain(|r| !Arc::ptr_eq(r, &fake));
    }

    #[test]
    fn streaming_sink_drops_zero_events_past_ring_capacity() {
        let _g = locked();
        reset();
        let path = std::env::temp_dir().join(format!(
            "lsgraph_trace_stream_test_{}.json",
            std::process::id()
        ));
        let _guard = stream_to_file(&path).unwrap();
        assert!(is_streaming());
        enable();
        // Well past RING_CAP: ring mode would overwrite the oldest
        // `total - RING_CAP` events; streaming must keep every one.
        let total = RING_CAP as u64 + 100;
        for _ in 0..total {
            let _s = span(SpanKind::Apply);
        }
        disable();
        let written = finish_stream().unwrap().expect("stream was active");
        assert!(!is_streaming());
        assert_eq!(written, total, "streamed event count");

        let json = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            json.matches("\"ph\": \"X\"").count() as u64,
            total,
            "every span must appear in the streamed file"
        );
        assert!(json.contains("\"droppedEvents\": 0"));
        assert!(json.trim_start().starts_with('{'));
        assert!(json.trim_end().ends_with('}'));

        // The rings were bypassed entirely: nothing recorded, nothing
        // dropped, so the in-memory export stays empty.
        let (ring_json, dropped) = export_chrome_json();
        assert_eq!(dropped, 0);
        assert!(!ring_json.contains("\"name\": \"apply\""));

        // A second finish with no active stream is a no-op.
        assert_eq!(finish_stream().unwrap(), None);
        std::fs::remove_file(&path).ok();
        reset();
    }

    #[test]
    fn stream_guard_finalizes_on_panic() {
        let _g = locked();
        reset();
        let path = std::env::temp_dir().join(format!(
            "lsgraph_trace_panic_test_{}.json",
            std::process::id()
        ));
        let path2 = path.clone();
        // A traced run that panics mid-stream: the guard unwinds with it
        // and must leave a complete, parseable trace document behind.
        let r = std::panic::catch_unwind(move || {
            let _guard = stream_to_file(&path2).unwrap();
            enable();
            {
                let _s = span(SpanKind::Apply);
            }
            panic!("traced workload died");
        });
        assert!(r.is_err());
        disable();
        assert!(!is_streaming(), "guard must tear down the stream");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"name\": \"apply\""));
        assert!(json.contains("\"droppedEvents\": 0"));
        assert!(json.trim_end().ends_with('}'), "file must be finalized");
        std::fs::remove_file(&path).ok();
        reset();
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut r = Ring {
            tid: 99,
            events: Vec::new(),
            head: 0,
            dropped: 0,
        };
        for i in 0..(RING_CAP as u64 + 10) {
            r.push(Event {
                kind: SpanKind::Sort,
                name: "",
                start_ns: i,
                dur_ns: 0,
            });
        }
        assert_eq!(r.events.len(), RING_CAP);
        assert_eq!(r.dropped, 10);
        // Oldest 10 events (start_ns 0..10) were overwritten.
        assert!(r.events.iter().all(|e| e.start_ns >= 10));
    }

    #[test]
    fn fmt_us_is_fractional_microseconds() {
        assert_eq!(fmt_us(0), "0.000");
        assert_eq!(fmt_us(1_500), "1.500");
        assert_eq!(fmt_us(999), "0.999");
        assert_eq!(fmt_us(2_000_001), "2000.001");
    }
}
