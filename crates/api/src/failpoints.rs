//! Deterministic fault injection for robustness testing.
//!
//! A *failpoint* is a named site in the engine where a fault (a panic) can
//! be injected on demand. Sites are compiled in only under the `failpoints`
//! feature; without it the [`fail_point!`](crate::fail_point) macro expands
//! to nothing, so production builds carry **zero** overhead — not even an
//! atomic load.
//!
//! Activation is deterministic so failures reproduce exactly:
//!
//! - [`FailMode::Nth`] fires on the n-th evaluation of the site (1-based)
//!   and never again until reconfigured — "fail the third RIA rebuild".
//! - [`FailMode::Probability`] fires pseudo-randomly with probability `p`,
//!   derived by hashing `(seed, hit index)` with a splitmix64 mix — the same
//!   seed always fires on the same hit indices, independent of thread
//!   interleaving *per site* (each site keeps its own hit counter, and
//!   LSGraph's disjoint-run pipeline evaluates each structural event exactly
//!   once).
//!
//! Configuration is **process-global** (sites are reached from deep inside
//! container code where threading a handle through would distort the very
//! code paths under test), so tests that configure failpoints must
//! serialize on a shared lock and call [`reset`] when done.

use std::sync::Mutex;

/// The failpoint sites wired into the engine, in stable order.
///
/// | site | fires just before |
/// |------|-------------------|
/// | `ria_rebuild` | a RIA α-expansion / shrink / refill rebuild |
/// | `lia_retrain` | an LIA node retrains its linear model |
/// | `hitree_vertical` | an overflowing LIA block creates a child node |
/// | `tier_upgrade` | a spill container upgrades to the next tier |
/// | `apply_run` | a per-source run is applied by the batch pipeline |
/// | `wal_append` | a batch frame is appended to the write-ahead log |
/// | `wal_sync` | buffered WAL frames are flushed + fsynced |
/// | `checkpoint_write` | a checkpoint image is serialized to disk |
/// | `recovery_replay` | a WAL-tail frame is replayed during recovery |
/// | `snapshot_flip` | a read snapshot registers its epoch (mid-flip) |
/// | `epoch_reclaim` | retired block versions are reclaimed |
/// | `metrics_sample` | a sampler tick snapshots the metrics registry |
/// | `wal_rotate` | the WAL seals a full segment and opens the next one |
/// | `segment_gc` | retention GC deletes superseded segments/images |
/// | `delta_checkpoint` | a dirty-vertex delta image is serialized to disk |
/// | `spill_downgrade` | a sparse spill container downgrades to a lower tier |
/// | `subscription_deliver` | a standing-query subscription evaluates its per-batch delta |
/// | `spill_compress` | a cold spill freezes into the gap-encoded tier, or a frozen spill thaws for a write |
pub const SITES: [&str; 18] = [
    "ria_rebuild",
    "lia_retrain",
    "hitree_vertical",
    "tier_upgrade",
    "apply_run",
    "wal_append",
    "wal_sync",
    "checkpoint_write",
    "recovery_replay",
    "snapshot_flip",
    "epoch_reclaim",
    "metrics_sample",
    "wal_rotate",
    "segment_gc",
    "delta_checkpoint",
    "spill_downgrade",
    "subscription_deliver",
    "spill_compress",
];

/// When a configured site fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FailMode {
    /// Never fire (the default for every site).
    Off,
    /// Fire on exactly the n-th evaluation (1-based) of the site.
    Nth(u64),
    /// Fire on each evaluation with probability `p`, deterministically
    /// derived from `seed` and the site's hit index.
    Probability {
        /// Firing probability in `[0, 1]`.
        p: f64,
        /// Seed mixed into every per-hit decision.
        seed: u64,
    },
}

#[derive(Clone, Copy, Debug)]
struct SiteState {
    mode: FailMode,
    /// Evaluations of this site since the last [`reset`]/[`configure`].
    hits: u64,
    /// Times this site actually fired.
    fired: u64,
}

const OFF: SiteState = SiteState {
    mode: FailMode::Off,
    hits: 0,
    fired: 0,
};

static REGISTRY: Mutex<[SiteState; SITES.len()]> = Mutex::new([OFF; SITES.len()]);

fn site_index(site: &str) -> usize {
    SITES
        .iter()
        .position(|&s| s == site)
        .unwrap_or_else(|| panic!("unknown failpoint site '{site}' (known: {SITES:?})"))
}

/// splitmix64 finalizer: a high-quality 64-bit mix.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Arms `site` with `mode`, resetting its hit and fired counters.
///
/// # Panics
///
/// Panics if `site` is not one of [`SITES`] (catches typos at the test
/// site rather than silently never firing).
pub fn configure(site: &str, mode: FailMode) {
    let i = site_index(site);
    let mut reg = REGISTRY.lock().unwrap();
    reg[i] = SiteState {
        mode,
        hits: 0,
        fired: 0,
    };
}

/// Disarms every site and zeroes all counters.
pub fn reset() {
    let mut reg = REGISTRY.lock().unwrap();
    *reg = [OFF; SITES.len()];
}

/// Evaluations of `site` since it was last configured/reset.
pub fn hits(site: &str) -> u64 {
    REGISTRY.lock().unwrap()[site_index(site)].hits
}

/// Times `site` actually fired since it was last configured/reset.
pub fn fired(site: &str) -> u64 {
    REGISTRY.lock().unwrap()[site_index(site)].fired
}

/// Records one evaluation of `site` and decides whether it fires.
///
/// Called by the [`fail_point!`](crate::fail_point) macro; not meant to be
/// called directly outside of tests.
pub fn should_fire(site: &str) -> bool {
    let i = site_index(site);
    let mut reg = REGISTRY.lock().unwrap();
    let s = &mut reg[i];
    s.hits += 1;
    let fire = match s.mode {
        FailMode::Off => false,
        FailMode::Nth(n) => s.hits == n,
        FailMode::Probability { p, seed } => {
            // 53 high bits give an unbiased uniform in [0, 1).
            let h = mix(seed ^ mix(s.hits));
            ((h >> 11) as f64) / ((1u64 << 53) as f64) < p
        }
    };
    if fire {
        s.fired += 1;
    }
    fire
}

/// Injects a fault (panics) at a named site if that site is armed.
///
/// Expands to nothing when the `failpoints` feature is off.
#[cfg(feature = "failpoints")]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {
        if $crate::failpoints::should_fire($site) {
            panic!("failpoint '{}' fired", $site);
        }
    };
}

/// Injects a fault (panics) at a named site if that site is armed.
///
/// Expands to nothing when the `failpoints` feature is off.
#[cfg(not(feature = "failpoints"))]
#[macro_export]
macro_rules! fail_point {
    ($site:expr) => {};
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Failpoint state is process-global; serialize the tests touching it.
    static LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn off_by_default_and_after_reset() {
        let _g = locked();
        reset();
        for site in SITES {
            assert!(!should_fire(site), "{site} fired while off");
        }
        configure("apply_run", FailMode::Nth(1));
        assert!(should_fire("apply_run"));
        reset();
        assert!(!should_fire("apply_run"));
        reset();
    }

    #[test]
    fn nth_fires_exactly_once_on_the_nth_hit() {
        let _g = locked();
        reset();
        configure("ria_rebuild", FailMode::Nth(3));
        let fires: Vec<bool> = (0..6).map(|_| should_fire("ria_rebuild")).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        assert_eq!(hits("ria_rebuild"), 6);
        assert_eq!(fired("ria_rebuild"), 1);
        reset();
    }

    #[test]
    fn probability_is_deterministic_per_seed_and_seed_sensitive() {
        let _g = locked();
        reset();
        let run = |seed: u64| -> Vec<bool> {
            configure("tier_upgrade", FailMode::Probability { p: 0.5, seed });
            (0..64).map(|_| should_fire("tier_upgrade")).collect()
        };
        let a1 = run(42);
        let a2 = run(42);
        assert_eq!(a1, a2, "same seed must reproduce exactly");
        let b = run(43);
        assert_ne!(a1, b, "different seeds should differ on 64 draws");
        let fired_n = a1.iter().filter(|&&f| f).count();
        assert!(
            (10..=54).contains(&fired_n),
            "p=0.5 over 64 draws fired {fired_n} times"
        );
        reset();
    }

    #[test]
    fn probability_extremes() {
        let _g = locked();
        reset();
        configure("lia_retrain", FailMode::Probability { p: 0.0, seed: 7 });
        assert!((0..100).all(|_| !should_fire("lia_retrain")));
        configure("lia_retrain", FailMode::Probability { p: 1.0, seed: 7 });
        assert!((0..100).all(|_| should_fire("lia_retrain")));
        reset();
    }

    #[test]
    #[should_panic(expected = "unknown failpoint site")]
    fn unknown_site_is_rejected() {
        configure("no_such_site", FailMode::Nth(1));
    }

    #[test]
    fn sites_are_distinct_and_independent() {
        let _g = locked();
        reset();
        configure("apply_run", FailMode::Nth(1));
        assert!(!should_fire("hitree_vertical"));
        assert!(should_fire("apply_run"));
        reset();
    }
}
