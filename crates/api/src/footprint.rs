//! Memory-footprint accounting (paper Table 3).
//!
//! Rather than sampling RSS — noisy and allocator-dependent — every data
//! structure in the workspace reports the bytes it has allocated, split into
//! payload and index/metadata so the paper's index-overhead ratio (`I/L` in
//! Table 3) can be reproduced exactly.

/// Byte accounting for one data structure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Bytes holding edge payload (including reserved gaps in gapped arrays).
    pub payload_bytes: usize,
    /// Bytes holding indexes: RIA index arrays, learned-model parameters,
    /// tree internal nodes, offset arrays.
    pub index_bytes: usize,
}

impl Footprint {
    /// Creates a footprint from payload and index byte counts.
    pub const fn new(payload_bytes: usize, index_bytes: usize) -> Self {
        Footprint {
            payload_bytes,
            index_bytes,
        }
    }

    /// Total bytes.
    pub const fn total(self) -> usize {
        self.payload_bytes + self.index_bytes
    }

    /// Fraction of the total taken by indexes (0.0 when empty).
    pub fn index_ratio(self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.index_bytes as f64 / self.total() as f64
        }
    }

    /// Component-wise sum.
    pub const fn add(self, other: Footprint) -> Footprint {
        Footprint {
            payload_bytes: self.payload_bytes + other.payload_bytes,
            index_bytes: self.index_bytes + other.index_bytes,
        }
    }
}

impl core::ops::Add for Footprint {
    type Output = Footprint;
    fn add(self, rhs: Footprint) -> Footprint {
        Footprint::add(self, rhs)
    }
}

impl core::ops::AddAssign for Footprint {
    fn add_assign(&mut self, rhs: Footprint) {
        *self = self.add(rhs);
    }
}

impl core::iter::Sum for Footprint {
    fn sum<I: Iterator<Item = Footprint>>(iter: I) -> Footprint {
        iter.fold(Footprint::default(), Footprint::add)
    }
}

/// Structures that can report their allocated bytes.
pub trait MemoryFootprint {
    /// Reports allocated bytes, split into payload and index/metadata.
    fn footprint(&self) -> Footprint;
}

/// `(live, peak)` process heap bytes from the counting allocator, or `None`
/// when the `count-alloc` feature is off. Self-reported footprints above
/// measure what structures *claim* to hold; these gauges measure what the
/// process actually allocated, so the gap between them is unaccounted
/// overhead (allocator slack, harness buffers, thread stacks' heap use).
pub fn heap_gauges() -> Option<(u64, u64)> {
    crate::metrics::heap_gauges()
}

/// Human-readable `live/peak MB` summary of the process heap gauges, or
/// `"N/A (build with --features count-alloc)"` when the counting allocator
/// is compiled out. Table 3 prints this alongside the payload/index splits.
pub fn heap_summary() -> String {
    match heap_gauges() {
        Some((live, peak)) => format!(
            "{:.1} MB live / {:.1} MB peak",
            live as f64 / (1024.0 * 1024.0),
            peak as f64 / (1024.0 * 1024.0)
        ),
        None => "N/A (build with --features count-alloc)".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_of_empty_is_zero() {
        assert_eq!(Footprint::default().index_ratio(), 0.0);
    }

    #[test]
    fn add_and_sum() {
        let a = Footprint::new(100, 10);
        let b = Footprint::new(50, 40);
        assert_eq!((a + b).total(), 200);
        let s: Footprint = [a, b].into_iter().sum();
        assert_eq!(s, Footprint::new(150, 50));
    }

    #[test]
    fn index_ratio() {
        let f = Footprint::new(90, 10);
        assert!((f.index_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn heap_summary_matches_feature_state() {
        let s = heap_summary();
        match heap_gauges() {
            Some(_) => assert!(s.contains("MB live"), "got: {s}"),
            None => assert!(s.starts_with("N/A"), "got: {s}"),
        }
    }
}
