//! Unified metrics registry, time-series sampling, and Prometheus export.
//!
//! The observability pieces grown so far — [`StructStats`] counters, the
//! four [`LatencyStats`] histograms, the persist-layer counters recorded
//! into `StructStats` (`wal_frames_appended`, `checkpoint_bytes`), and the
//! `epoch_reclaim_backlog` gauge — are all read **once, at report time**.
//! A 60-second `repro mixed` run therefore collapses writer stalls, CoW
//! bursts, and reclamation backlog spikes into single end-of-run numbers.
//!
//! This module adds the *over time* view:
//!
//! - [`MetricsRegistry`] adapts every existing source behind one
//!   named-metric interface: counters (monotone), gauges (point-in-time:
//!   `ria_max_ripple_span`, `ria_bound`, `checkpoint_bytes`,
//!   `epoch_reclaim_backlog`, see [`GAUGE_FIELDS`]), and histograms. A
//!   [`MetricsRegistry::sample`] is a deterministic, pinned-order snapshot.
//! - A JSONL **time-series sink** ([`stream_to_file`]) mirrors the
//!   [`crate::trace::stream_to_file`] pattern: a process-global buffered
//!   sink behind a `Mutex`, a relaxed [`AtomicBool`] fast-path flag, and an
//!   idempotent [`finish_stream`]. Each sample is one fully-formed line
//!   written with a single `write_all` and flushed immediately, so a
//!   sampler killed mid-run can never leave a torn line — the file is
//!   always a valid JSONL prefix.
//! - [`Sampler`] snapshots a registry on demand (deterministic tick counts
//!   under `repro`, where the harness ticks once per writer round);
//!   [`SamplerThread`] does the same on a wall-clock interval from a
//!   background thread. Both evaluate the `metrics_sample` failpoint at
//!   the top of every tick, before any byte is written.
//! - [`RegistrySample::render_prometheus`] renders Prometheus text
//!   exposition (counters as `*_total`, log2 histogram buckets as
//!   cumulative `le` buckets), and [`parse_prometheus`] round-trips it —
//!   the future server crate gets `/metrics` for free.
//! - Under the `count-alloc` feature a counting [`std::alloc::System`]
//!   wrapper is installed as `#[global_allocator]`, contributing
//!   process-wide `heap_bytes_live` / `heap_bytes_peak` gauges (see
//!   [`heap_gauges`]); without the feature those gauges are absent and
//!   [`crate::footprint::heap_summary`] reports `N/A`.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::counters::StructStats;
use crate::fail_point;
use crate::histogram::{bucket_index, bucket_upper_bound, HistogramSnapshot, LatencyStats};

/// Schema tag written as the first JSONL line by [`write_header`].
pub const METRICS_SCHEMA: &str = "lsgraph-metrics-v1";

/// The [`StructStats`] fields that are **gauges** (point-in-time values),
/// not monotone counters. Everything else in
/// [`StructSnapshot::fields`](crate::StructSnapshot::fields) only ever
/// grows, which is what the `repro check --metrics` monotonicity gate
/// asserts sample over sample.
pub const GAUGE_FIELDS: [&str; 7] = [
    "ria_max_ripple_span",
    "ria_bound",
    "checkpoint_bytes",
    "epoch_reclaim_backlog",
    "wal_live_bytes",
    "checkpoint_dirty_vertices",
    "subscriptions_active",
];

/// Whether a `StructStats` field is a gauge (see [`GAUGE_FIELDS`]).
pub fn is_gauge_field(name: &str) -> bool {
    GAUGE_FIELDS.contains(&name)
}

// ---------------------------------------------------------------------------
// Counting global allocator (feature `count-alloc`)
// ---------------------------------------------------------------------------

#[cfg(feature = "count-alloc")]
mod count_alloc {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    pub static LIVE: AtomicU64 = AtomicU64::new(0);
    pub static PEAK: AtomicU64 = AtomicU64::new(0);

    #[inline]
    fn add(n: u64) {
        let live = LIVE.fetch_add(n, Ordering::Relaxed).wrapping_add(n);
        PEAK.fetch_max(live, Ordering::Relaxed);
    }

    /// [`System`] wrapper counting live and peak heap bytes. Counts layout
    /// sizes, not allocator-internal overhead — a deterministic lower bound
    /// that matches what `Footprint` self-reporting measures against.
    pub struct CountingAlloc;

    // SAFETY: defers every allocation to `System`; the atomics only observe.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                add(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                add(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                LIVE.fetch_sub(layout.size() as u64, Ordering::Relaxed);
                add(new_size as u64);
            }
            p
        }
    }

    #[global_allocator]
    static COUNTING_ALLOC: CountingAlloc = CountingAlloc;
}

/// Live heap bytes from the counting allocator, or `None` when the
/// `count-alloc` feature is off.
pub fn heap_bytes_live() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(count_alloc::LIVE.load(Ordering::Relaxed))
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// Peak heap bytes from the counting allocator, or `None` when the
/// `count-alloc` feature is off. Monotone non-decreasing over the process
/// lifetime.
pub fn heap_bytes_peak() -> Option<u64> {
    #[cfg(feature = "count-alloc")]
    {
        Some(count_alloc::PEAK.load(Ordering::Relaxed))
    }
    #[cfg(not(feature = "count-alloc"))]
    {
        None
    }
}

/// `(live, peak)` heap bytes, or `None` when `count-alloc` is off.
pub fn heap_gauges() -> Option<(u64, u64)> {
    Some((heap_bytes_live()?, heap_bytes_peak()?))
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// A unified, named view over every metrics source in the process.
///
/// Sources are registered with a `prefix`; every metric they expose is
/// named `{prefix}_{field}`. Registration order is sampling order, so a
/// registry's [`sample`](MetricsRegistry::sample) has pinned field order —
/// the property the Prometheus golden test and the JSONL schema rely on.
#[derive(Default)]
pub struct MetricsRegistry {
    structs: Vec<(String, Arc<StructStats>)>,
    latencies: Vec<(String, Arc<LatencyStats>)>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Registers a [`StructStats`] source; its 42 fields become
    /// `{prefix}_{field}` counters and gauges (see [`GAUGE_FIELDS`]).
    /// The persist-layer counters (`wal_frames_appended`,
    /// `checkpoint_bytes`, recovery counters) ride along because the
    /// durability layer records into the same `StructStats` sink.
    pub fn register_struct_stats(&mut self, prefix: impl Into<String>, stats: Arc<StructStats>) {
        self.structs.push((prefix.into(), stats));
    }

    /// Registers a [`LatencyStats`] source; its four histograms become
    /// `{prefix}_batch_apply` .. `{prefix}_reader`.
    pub fn register_latency_stats(
        &mut self,
        prefix: impl Into<String>,
        latency: Arc<LatencyStats>,
    ) {
        self.latencies.push((prefix.into(), latency));
    }

    /// Snapshots every registered source into a pinned-order sample.
    /// Cheap (relaxed atomic loads + shard merges) and read-only: sampling
    /// never perturbs any counter.
    pub fn sample(&self) -> RegistrySample {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        for (prefix, stats) in &self.structs {
            for (name, v) in stats.snapshot().fields() {
                let full = format!("{prefix}_{name}");
                if is_gauge_field(name) {
                    gauges.push((full, v));
                } else {
                    counters.push((full, v));
                }
            }
        }
        if let Some((live, peak)) = heap_gauges() {
            gauges.push(("process_heap_bytes_live".to_string(), live));
            gauges.push(("process_heap_bytes_peak".to_string(), peak));
        }
        let mut histograms = Vec::new();
        for (prefix, latency) in &self.latencies {
            let snap = latency.snapshot();
            for (name, h) in snap.fields() {
                histograms.push((format!("{prefix}_{name}"), *h));
            }
        }
        RegistrySample {
            counters,
            gauges,
            histograms,
        }
    }

    /// Renders the current state as Prometheus text exposition (see
    /// [`RegistrySample::render_prometheus`]).
    pub fn render_prometheus(&self) -> String {
        self.sample().render_prometheus()
    }
}

/// One pinned-order snapshot of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RegistrySample {
    /// Monotone counters as `(name, value)`, registration/schema order.
    pub counters: Vec<(String, u64)>,
    /// Point-in-time gauges as `(name, value)`, registration/schema order.
    pub gauges: Vec<(String, u64)>,
    /// Latency histograms as `(name, merged snapshot)`.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySample {
    /// Renders the sample in Prometheus text exposition format:
    ///
    /// - counters as `# TYPE {name}_total counter` + `{name}_total v`
    /// - gauges as `# TYPE {name} gauge` + `{name} v`
    /// - histograms as `# TYPE {name}_ns histogram` with **cumulative**
    ///   `le`-labelled buckets (one line per non-empty log2 bucket, upper
    ///   bound `2^b - 1`, plus the mandatory `+Inf`), `_sum`, `_count`, and
    ///   a non-standard `{name}_ns_max` gauge so the exact tracked maximum
    ///   survives the round trip ([`parse_prometheus`] reattaches it).
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("# TYPE {name}_total counter\n{name}_total {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name}_ns histogram\n"));
            let mut cum = 0u64;
            for (b, c) in h.nonzero_buckets() {
                cum += c;
                out.push_str(&format!(
                    "{name}_ns_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_upper_bound(b)
                ));
            }
            out.push_str(&format!("{name}_ns_bucket{{le=\"+Inf\"}} {cum}\n"));
            out.push_str(&format!("{name}_ns_sum {}\n", h.sum));
            out.push_str(&format!("{name}_ns_count {}\n", h.count()));
            out.push_str(&format!(
                "# TYPE {name}_ns_max gauge\n{name}_ns_max {}\n",
                h.max
            ));
        }
        out
    }
}

/// Parses text produced by [`RegistrySample::render_prometheus`] back into
/// a [`RegistrySample`] — the round-trip half of the exposition golden
/// test, and a free correctness check for any future `/metrics` endpoint.
pub fn parse_prometheus(text: &str) -> Result<RegistrySample, String> {
    // (name, type) in declaration order; plain samples; histogram buckets.
    let mut types: Vec<(String, String)> = Vec::new();
    let mut values: Vec<(String, u64)> = Vec::new();
    let mut buckets: Vec<(String, String, u64)> = Vec::new(); // (hist, le, cum)
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().ok_or("TYPE line missing name")?;
            let ty = it.next().ok_or("TYPE line missing type")?;
            types.push((name.to_string(), ty.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (lhs, rhs) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        let value: u64 = rhs
            .parse()
            .map_err(|_| format!("non-integer value in: {line}"))?;
        if let Some((name, labels)) = lhs.split_once('{') {
            let le = labels
                .strip_prefix("le=\"")
                .and_then(|s| s.strip_suffix("\"}"))
                .ok_or_else(|| format!("unsupported labels in: {line}"))?;
            let hist = name
                .strip_suffix("_bucket")
                .ok_or_else(|| format!("labelled non-bucket sample: {line}"))?;
            buckets.push((hist.to_string(), le.to_string(), value));
        } else {
            values.push((lhs.to_string(), value));
        }
    }
    let value_of = |name: &str| -> Result<u64, String> {
        values
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
            .ok_or_else(|| format!("missing sample: {name}"))
    };
    let hist_names: Vec<&str> = types
        .iter()
        .filter(|(_, t)| t == "histogram")
        .map(|(n, _)| n.as_str())
        .collect();
    let mut out = RegistrySample::default();
    for (name, ty) in &types {
        match ty.as_str() {
            "counter" => {
                let base = name
                    .strip_suffix("_total")
                    .ok_or_else(|| format!("counter without _total suffix: {name}"))?;
                out.counters.push((base.to_string(), value_of(name)?));
            }
            "gauge" => {
                // `{hist}_max` gauges belong to their histogram, not the
                // flat gauge list.
                if hist_names.iter().any(|h| name == &format!("{h}_max")) {
                    continue;
                }
                out.gauges.push((name.clone(), value_of(name)?));
            }
            "histogram" => {
                let mut pairs = Vec::new();
                let mut prev_cum = 0u64;
                let mut inf_cum = 0u64;
                for (_, le, cum) in buckets.iter().filter(|(h, _, _)| h == name) {
                    if le == "+Inf" {
                        inf_cum = *cum;
                        continue;
                    }
                    let bound: u64 = le
                        .parse()
                        .map_err(|_| format!("bad le bound {le} for {name}"))?;
                    let b = if bound == 0 { 0 } else { bucket_index(bound) };
                    pairs.push((b, cum - prev_cum));
                    prev_cum = *cum;
                }
                let sum = value_of(&format!("{name}_sum"))?;
                let count = value_of(&format!("{name}_count"))?;
                let max = value_of(&format!("{name}_max"))?;
                let snap = HistogramSnapshot::from_parts(pairs, sum, max)?;
                if snap.count() != count || inf_cum != count {
                    return Err(format!(
                        "histogram {name}: bucket total {} / +Inf {inf_cum} != count {count}",
                        snap.count()
                    ));
                }
                let base = name
                    .strip_suffix("_ns")
                    .ok_or_else(|| format!("histogram without _ns suffix: {name}"))?;
                out.histograms.push((base.to_string(), snap));
            }
            other => return Err(format!("unknown metric type: {other}")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// JSONL time-series sink (the trace::stream_to_file pattern)
// ---------------------------------------------------------------------------

struct MetricsSink {
    w: std::io::BufWriter<std::fs::File>,
    /// Sample lines written so far (the header line is not counted).
    samples: u64,
}

static SINK: Mutex<Option<MetricsSink>> = Mutex::new(None);

/// Fast-path flag mirroring `SINK.is_some()`, so harness tick sites only
/// take the sink lock when a metrics stream is actually active.
static STREAMING: AtomicBool = AtomicBool::new(false);

/// Opens `path` as the process-global metrics JSONL sink. Subsequent
/// [`Sampler::tick`] calls append one line each. Replaces any previously
/// active stream; call [`finish_stream`] first if its count matters.
pub fn stream_to_file(path: &Path) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let w = std::io::BufWriter::new(f);
    let mut guard = SINK.lock().unwrap_or_else(|p| p.into_inner());
    *guard = Some(MetricsSink { w, samples: 0 });
    STREAMING.store(true, Ordering::Relaxed);
    Ok(())
}

/// Whether a metrics JSONL sink is currently installed.
pub fn is_streaming() -> bool {
    STREAMING.load(Ordering::Relaxed)
}

/// Writes the self-describing header line
/// `{"schema":"lsgraph-metrics-v1","experiment":...,"samples_expected":N}`
/// so `repro check --metrics` can validate the file standalone. No-op
/// (returns `Ok(false)`) when no sink is active.
pub fn write_header(experiment: &str, samples_expected: u64) -> std::io::Result<bool> {
    let mut guard = SINK.lock().unwrap_or_else(|p| p.into_inner());
    let Some(sink) = guard.as_mut() else {
        return Ok(false);
    };
    let line = format!(
        "{{\"schema\":\"{METRICS_SCHEMA}\",\"experiment\":\"{experiment}\",\
         \"samples_expected\":{samples_expected}}}\n"
    );
    sink.w.write_all(line.as_bytes())?;
    sink.w.flush()?;
    Ok(true)
}

/// Closes the active stream, flushing buffered bytes, and returns the
/// number of sample lines written. `Ok(None)` when no stream was active —
/// idempotent, so a drop guard and an explicit call can coexist. JSONL
/// needs no footer: the file is already complete (every line was flushed
/// as it was written).
pub fn finish_stream() -> std::io::Result<Option<u64>> {
    STREAMING.store(false, Ordering::Relaxed);
    let sink = SINK.lock().unwrap_or_else(|p| p.into_inner()).take();
    let Some(mut sink) = sink else {
        return Ok(None);
    };
    sink.w.flush()?;
    Ok(Some(sink.samples))
}

/// Appends one fully-formed sample line. A single `write_all` + flush per
/// line: a panic before this call leaves the file untouched; there is no
/// code path that can write half a line.
fn write_sample_line(line: &str) -> std::io::Result<bool> {
    let mut guard = SINK.lock().unwrap_or_else(|p| p.into_inner());
    let Some(sink) = guard.as_mut() else {
        return Ok(false);
    };
    sink.w.write_all(line.as_bytes())?;
    sink.w.flush()?;
    sink.samples += 1;
    Ok(true)
}

/// Formats one JSONL sample line (newline-terminated).
fn sample_json(
    cell: &str,
    tick: u64,
    elapsed_ns: u64,
    extras: &[(&str, f64)],
    s: &RegistrySample,
) -> String {
    let mut out = String::with_capacity(2048);
    out.push_str(&format!(
        "{{\"cell\":\"{cell}\",\"tick\":{tick},\"elapsed_ns\":{elapsed_ns}"
    ));
    for (k, v) in extras {
        // f64 Display never emits inf/nan-unsafe text for finite values;
        // callers clamp denominators so values stay finite.
        out.push_str(&format!(",\"{k}\":{v}"));
    }
    out.push_str(",\"counters\":{");
    for (i, (name, v)) in s.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in s.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\"{name}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.count(),
            h.sum,
            h.max,
            h.p50(),
            h.p90(),
            h.p99()
        ));
    }
    out.push_str("}}\n");
    out
}

// ---------------------------------------------------------------------------
// Samplers
// ---------------------------------------------------------------------------

/// Manually-ticked sampler: the harness calls [`Sampler::tick`] at
/// deterministic points (e.g. once per writer round in `repro mixed`), so
/// the sample count is an exact function of the workload, not of wall
/// clock. Each tick snapshots the registry and appends one JSONL line to
/// the global sink.
pub struct Sampler {
    registry: Arc<MetricsRegistry>,
    cell: String,
    tick: u64,
    start: Instant,
}

impl Sampler {
    /// Creates a sampler labelling its lines with `cell`.
    pub fn new(registry: Arc<MetricsRegistry>, cell: impl Into<String>) -> Self {
        Sampler {
            registry,
            cell: cell.into(),
            tick: 0,
            start: Instant::now(),
        }
    }

    /// Ticks performed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    /// Takes one sample and appends it to the sink, with caller-supplied
    /// extra fields (e.g. per-round writer eps). Returns `Ok(false)`
    /// without sampling when no sink is streaming. The `metrics_sample`
    /// failpoint is evaluated before the registry is read or any byte
    /// written, so an injected kill perturbs neither engine counters nor
    /// the JSONL stream.
    pub fn tick(&mut self, extras: &[(&str, f64)]) -> std::io::Result<bool> {
        if !is_streaming() {
            return Ok(false);
        }
        fail_point!("metrics_sample");
        let sample = self.registry.sample();
        let line = sample_json(
            &self.cell,
            self.tick,
            self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            extras,
            &sample,
        );
        let written = write_sample_line(&line)?;
        if written {
            self.tick += 1;
        }
        Ok(written)
    }
}

/// Background wall-clock sampler: spawns a thread that ticks a [`Sampler`]
/// every `interval` until stopped. A tick that panics (e.g. the
/// `metrics_sample` failpoint firing) kills the sampler thread — sampling
/// stops, but the engine and the already-written JSONL prefix are
/// untouched; the fault suite proves this.
pub struct SamplerThread {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<(u64, u64)>,
}

impl SamplerThread {
    /// Spawns the sampling thread.
    pub fn spawn(
        registry: Arc<MetricsRegistry>,
        cell: impl Into<String>,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let cell = cell.into();
        let handle = std::thread::spawn(move || {
            let mut sampler = Sampler::new(registry, cell);
            let mut panics = 0u64;
            while !stop2.load(Ordering::Relaxed) {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    sampler.tick(&[]).ok();
                }));
                if r.is_err() {
                    // A killed tick ends sampling; it must not tear the
                    // stream (tick writes whole lines or nothing).
                    panics += 1;
                    break;
                }
                std::thread::sleep(interval);
            }
            (sampler.ticks(), panics)
        });
        SamplerThread { stop, handle }
    }

    /// Stops the thread and returns `(ticks_written, panicked_ticks)`.
    pub fn stop(self) -> (u64, u64) {
        self.stop.store(true, Ordering::Relaxed);
        self.handle.join().unwrap_or((0, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::StructSnapshot;

    /// The sink is process-global; serialize the tests that touch it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "lsgraph_metrics_{name}_{}.jsonl",
            std::process::id()
        ))
    }

    fn small_registry() -> (Arc<MetricsRegistry>, Arc<StructStats>, Arc<LatencyStats>) {
        let stats = Arc::new(StructStats::new());
        let latency = Arc::new(LatencyStats::new());
        let mut r = MetricsRegistry::new();
        r.register_struct_stats("lsgraph", Arc::clone(&stats));
        r.register_latency_stats("lsgraph", Arc::clone(&latency));
        (Arc::new(r), stats, latency)
    }

    #[test]
    fn sample_classifies_counters_vs_gauges_in_schema_order() {
        let (r, stats, _) = small_registry();
        stats.record_vb_inline_insert(3);
        stats.record_ria_ripple(2, 5, 6);
        stats.record_epoch_backlog(4);
        let s = r.sample();
        // 52 struct fields minus 7 gauges; heap gauges only under count-alloc.
        assert_eq!(s.counters.len(), 45);
        let base_gauges = GAUGE_FIELDS.len() + if heap_gauges().is_some() { 2 } else { 0 };
        assert_eq!(s.gauges.len(), base_gauges);
        assert_eq!(s.histograms.len(), 4);
        // Pinned order: counters follow StructSnapshot::fields order.
        assert_eq!(s.counters[0].0, "lsgraph_vb_inline_hits");
        assert_eq!(s.counters[0].1, 1);
        let expected_counters: Vec<String> = StructSnapshot::default()
            .fields()
            .iter()
            .filter(|(n, _)| !is_gauge_field(n))
            .map(|(n, _)| format!("lsgraph_{n}"))
            .collect();
        let got: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            got,
            expected_counters
                .iter()
                .map(String::as_str)
                .collect::<Vec<_>>()
        );
        assert_eq!(s.gauges[0], ("lsgraph_ria_max_ripple_span".to_string(), 2));
        assert_eq!(s.gauges[1], ("lsgraph_ria_bound".to_string(), 6));
        assert_eq!(
            s.gauges[5],
            ("lsgraph_epoch_reclaim_backlog".to_string(), 4)
        );
        assert_eq!(s.histograms[0].0, "lsgraph_batch_apply");
        assert_eq!(s.histograms[3].0, "lsgraph_reader");
    }

    #[test]
    fn prometheus_round_trips_the_registry() {
        let (r, stats, latency) = small_registry();
        stats.record_vb_inline_insert(7);
        stats.record_ria_ripple(3, 9, 6);
        stats.record_checkpoint_bytes(12345);
        latency.batch_apply.record(100);
        latency.batch_apply.record(10_000);
        latency.reader.record(0);
        let sample = r.sample();
        let text = sample.render_prometheus();
        let back = parse_prometheus(&text).expect("parse rendered exposition");
        assert_eq!(back, sample, "render → parse must round-trip exactly");
    }

    /// Golden test: exact exposition text for a tiny hand-built sample,
    /// pinning name mangling, TYPE lines, bucket bounds, and field order.
    #[test]
    fn prometheus_exposition_golden() {
        let h = crate::histogram::LatencyHistogram::new();
        h.record(100); // bucket 7, le = 127
        h.record(10_000); // bucket 14, le = 16383
        let sample = RegistrySample {
            counters: vec![("lsgraph_vb_inline_hits".to_string(), 2)],
            gauges: vec![("lsgraph_epoch_reclaim_backlog".to_string(), 0)],
            histograms: vec![("lsgraph_batch_apply".to_string(), h.snapshot())],
        };
        let expected = "\
# TYPE lsgraph_vb_inline_hits_total counter
lsgraph_vb_inline_hits_total 2
# TYPE lsgraph_epoch_reclaim_backlog gauge
lsgraph_epoch_reclaim_backlog 0
# TYPE lsgraph_batch_apply_ns histogram
lsgraph_batch_apply_ns_bucket{le=\"127\"} 1
lsgraph_batch_apply_ns_bucket{le=\"16383\"} 2
lsgraph_batch_apply_ns_bucket{le=\"+Inf\"} 2
lsgraph_batch_apply_ns_sum 10100
lsgraph_batch_apply_ns_count 2
# TYPE lsgraph_batch_apply_ns_max gauge
lsgraph_batch_apply_ns_max 10000
";
        assert_eq!(sample.render_prometheus(), expected);
        assert_eq!(parse_prometheus(expected).unwrap(), sample);
    }

    #[test]
    fn histogram_shard_merges_are_visible_from_the_sampler_thread() {
        // 8 recording threads, each recording a known count; the sampler
        // (a 9th thread) must see the full merged multiset.
        let (r, _, latency) = small_registry();
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let latency = &latency;
                s.spawn(move || {
                    for i in 0..50 {
                        latency.reader.record(t * 1_000 + i);
                    }
                });
            }
        });
        let r2 = Arc::clone(&r);
        let sample = std::thread::spawn(move || r2.sample()).join().unwrap();
        let reader = &sample
            .histograms
            .iter()
            .find(|(n, _)| n == "lsgraph_reader")
            .expect("reader histogram")
            .1;
        assert_eq!(reader.count(), 400);
    }

    #[test]
    fn jsonl_sink_writes_header_and_whole_lines() {
        let _g = locked();
        let path = tmp("sink");
        stream_to_file(&path).unwrap();
        assert!(is_streaming());
        assert!(write_header("mixed", 3).unwrap());
        let (r, stats, _) = small_registry();
        let mut sampler = Sampler::new(r, "OR/bs=16");
        for i in 0..3u64 {
            stats.record_vb_spill_insert();
            assert!(sampler.tick(&[("writer_eps", 1.5 + i as f64)]).unwrap());
        }
        assert_eq!(finish_stream().unwrap(), Some(3));
        assert!(!is_streaming());
        assert_eq!(finish_stream().unwrap(), None, "finish is idempotent");

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"schema\":\"lsgraph-metrics-v1\""));
        assert!(lines[0].contains("\"samples_expected\":3"));
        for (i, line) in lines[1..].iter().enumerate() {
            assert!(line.starts_with("{\"cell\":\"OR/bs=16\""), "line: {line}");
            assert!(line.contains(&format!("\"tick\":{i}")));
            assert!(line.contains("\"writer_eps\":"));
            assert!(line.contains(&format!("\"lsgraph_vb_spill_inserts\":{}", i + 1)));
            assert!(line.ends_with("}}"), "line must be complete: {line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tick_without_sink_is_a_cheap_no_op() {
        let _g = locked();
        assert_eq!(finish_stream().unwrap(), None);
        let (r, _, _) = small_registry();
        let mut sampler = Sampler::new(r, "none");
        assert!(!sampler.tick(&[]).unwrap());
        assert_eq!(sampler.ticks(), 0);
    }

    #[test]
    fn sampler_thread_ticks_on_interval_and_stops() {
        let _g = locked();
        let path = tmp("thread");
        stream_to_file(&path).unwrap();
        let (r, _, _) = small_registry();
        let t = SamplerThread::spawn(r, "bg", Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(25));
        let (ticks, panics) = t.stop();
        assert!(ticks >= 1, "background sampler never ticked");
        assert_eq!(panics, 0);
        let written = finish_stream().unwrap().expect("stream active");
        assert_eq!(written, ticks);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count() as u64, ticks);
        std::fs::remove_file(&path).ok();
    }

    #[cfg(feature = "count-alloc")]
    #[test]
    fn allocator_gauges_track_live_and_peak_monotonically() {
        let (live0, peak0) = heap_gauges().expect("count-alloc on");
        assert!(peak0 >= live0);
        let buf = vec![0u8; 1 << 20];
        let (live1, peak1) = heap_gauges().unwrap();
        assert!(live1 >= live0 + (1 << 20), "live must grow with the Vec");
        assert!(peak1 >= live1, "peak bounds live");
        assert!(peak1 >= peak0, "peak is monotone");
        drop(buf);
        let (live2, peak2) = heap_gauges().unwrap();
        assert!(live2 < live1, "live must shrink after drop");
        assert!(peak2 >= peak1, "peak never shrinks");
        // And the registry surfaces them as process gauges.
        let (r, _, _) = small_registry();
        let s = r.sample();
        assert!(s.gauges.iter().any(|(n, _)| n == "process_heap_bytes_live"));
        assert!(s.gauges.iter().any(|(n, _)| n == "process_heap_bytes_peak"));
    }

    #[cfg(not(feature = "count-alloc"))]
    #[test]
    fn allocator_gauges_absent_without_the_feature() {
        assert_eq!(heap_gauges(), None);
        let (r, _, _) = small_registry();
        assert!(r
            .sample()
            .gauges
            .iter()
            .all(|(n, _)| !n.starts_with("process_heap")));
    }
}
