//! Edge and vertex-id types shared across the workspace.

/// Vertex identifier.
///
/// 32 bits cover every dataset in the paper's Table 1 except Friendster's
/// 124M vertices, which also fit; we keep ids compact so that a cache line
/// holds 16 of them, matching the paper's block sizing.
pub type VertexId = u32;

/// A directed edge `(src, dst)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Edge {
    /// Source vertex.
    pub src: VertexId,
    /// Destination vertex.
    pub dst: VertexId,
}

impl Edge {
    /// Creates a new directed edge.
    #[inline]
    pub const fn new(src: VertexId, dst: VertexId) -> Self {
        Edge { src, dst }
    }

    /// Returns the mirrored edge `(dst, src)`.
    #[inline]
    pub const fn reversed(self) -> Self {
        Edge {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Returns whether this edge is a self loop.
    #[inline]
    pub const fn is_self_loop(self) -> bool {
        self.src == self.dst
    }

    /// Packs the edge into a single `u64` key ordered by `(src, dst)`.
    ///
    /// Used by engines (PMA/Terrace) that keep the whole edge set in one
    /// ordered structure.
    #[inline]
    pub const fn key(self) -> u64 {
        ((self.src as u64) << 32) | self.dst as u64
    }

    /// Inverse of [`Edge::key`].
    #[inline]
    pub const fn from_key(key: u64) -> Self {
        Edge {
            src: (key >> 32) as VertexId,
            dst: key as u32,
        }
    }
}

impl From<(VertexId, VertexId)> for Edge {
    #[inline]
    fn from((src, dst): (VertexId, VertexId)) -> Self {
        Edge::new(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip() {
        let e = Edge::new(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(Edge::from_key(e.key()), e);
    }

    #[test]
    fn key_order_matches_lexicographic_order() {
        let a = Edge::new(1, 500);
        let b = Edge::new(2, 0);
        let c = Edge::new(2, 1);
        assert!(a.key() < b.key());
        assert!(b.key() < c.key());
        assert!(a < b && b < c);
    }

    #[test]
    fn reversed_and_self_loop() {
        assert_eq!(Edge::new(3, 7).reversed(), Edge::new(7, 3));
        assert!(Edge::new(5, 5).is_self_loop());
        assert!(!Edge::new(5, 6).is_self_loop());
    }
}
