//! Aspen baseline (Dhulipala et al., PLDI'19): low-latency graph streaming
//! with purely-functional *C-trees*.
//!
//! A C-tree stores an ordered set by hash-selecting a subset of *head*
//! elements (expected one in [`CHUNK_FACTOR`]); heads live in a functional
//! balanced search tree (here a treap with hash-derived priorities, so the
//! shape is deterministic), and each head carries a sorted *chunk* array of
//! the following non-head elements. Elements smaller than every head sit in
//! a shared prefix chunk.
//!
//! Updates are path-copying, so snapshots are O(1) per vertex and updates
//! never block readers. The cost — and the reason the paper's analytics
//! comparison favours LSGraph — is pointer-chasing during traversal.
//!
//! Chunks are difference-encoded ([`DeltaChunk`]), as in the original: that
//! is where Aspen's memory advantage comes from, paid for with sequential
//! decode on every traversal.
//!
//! **Substitution note (DESIGN.md):** real Aspen also keeps the *vertex*
//! level in a functional tree; we keep it as a flat `Vec` of cheaply
//! clonable edge sets (snapshots are O(V) pointer copies), which only
//! *helps* this baseline, so LSGraph's measured edge over it is
//! conservative.

mod varint;

pub use varint::DeltaChunk;

use std::sync::Arc;

use lsgraph_api::batch::{max_vertex_id, runs_by_src, sorted_dedup_keys};
use lsgraph_api::{
    CounterSnapshot, DynamicGraph, Edge, Footprint, Graph, MemoryFootprint, OpCounters, VertexId,
};
use rayon::prelude::*;

/// Expected chunk size: one in this many elements is a head.
pub const CHUNK_FACTOR: u64 = 32;

/// Deterministic element hash (splitmix64 finalizer).
#[inline]
fn hash(x: u32) -> u64 {
    let mut z = x as u64 ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether `x` is a head element.
#[inline]
fn is_head(x: u32) -> bool {
    hash(x).is_multiple_of(CHUNK_FACTOR)
}

/// Treap priority for head `x` (distinct from the head-selection hash).
#[inline]
fn priority(x: u32) -> u64 {
    hash(x ^ 0xA5A5_5A5A)
}

/// One C-tree node: a head element, its trailing chunk, and treap links.
#[derive(Debug)]
struct CNode {
    head: u32,
    chunk: Arc<DeltaChunk>,
    prio: u64,
    left: Option<Arc<CNode>>,
    right: Option<Arc<CNode>>,
}

type Link = Option<Arc<CNode>>;

fn node(head: u32, chunk: Arc<DeltaChunk>, prio: u64, left: Link, right: Link) -> Arc<CNode> {
    Arc::new(CNode {
        head,
        chunk,
        prio,
        left,
        right,
    })
}

/// Splits by head key: `(heads < key, heads > key)`; `key` must be absent.
fn split(t: &Link, key: u32) -> (Link, Link) {
    match t {
        None => (None, None),
        Some(n) => {
            debug_assert_ne!(n.head, key);
            if key < n.head {
                let (l, r) = split(&n.left, key);
                (
                    l,
                    Some(node(n.head, n.chunk.clone(), n.prio, r, n.right.clone())),
                )
            } else {
                let (l, r) = split(&n.right, key);
                (
                    Some(node(n.head, n.chunk.clone(), n.prio, n.left.clone(), l)),
                    r,
                )
            }
        }
    }
}

/// Joins two treaps where every head in `l` precedes every head in `r`.
fn join(l: &Link, r: &Link) -> Link {
    match (l, r) {
        (None, _) => r.clone(),
        (_, None) => l.clone(),
        (Some(a), Some(b)) => {
            if a.prio >= b.prio {
                Some(node(
                    a.head,
                    a.chunk.clone(),
                    a.prio,
                    a.left.clone(),
                    join(&a.right, r),
                ))
            } else {
                Some(node(
                    b.head,
                    b.chunk.clone(),
                    b.prio,
                    join(l, &b.left),
                    b.right.clone(),
                ))
            }
        }
    }
}

/// Inserts a fresh head node (key must be absent).
fn insert_head(t: &Link, head: u32, chunk: Arc<DeltaChunk>) -> Link {
    let prio = priority(head);
    match t {
        None => Some(node(head, chunk, prio, None, None)),
        Some(n) => {
            if prio > n.prio {
                let (l, r) = split(t, head);
                Some(node(head, chunk, prio, l, r))
            } else if head < n.head {
                Some(node(
                    n.head,
                    n.chunk.clone(),
                    n.prio,
                    insert_head(&n.left, head, chunk),
                    n.right.clone(),
                ))
            } else {
                Some(node(
                    n.head,
                    n.chunk.clone(),
                    n.prio,
                    n.left.clone(),
                    insert_head(&n.right, head, chunk),
                ))
            }
        }
    }
}

/// Removes head `key`, returning the new tree (key must be present).
fn delete_head(t: &Link, key: u32) -> Link {
    let n = t.as_ref().expect("delete_head: key must be present");
    if key < n.head {
        Some(node(
            n.head,
            n.chunk.clone(),
            n.prio,
            delete_head(&n.left, key),
            n.right.clone(),
        ))
    } else if key > n.head {
        Some(node(
            n.head,
            n.chunk.clone(),
            n.prio,
            n.left.clone(),
            delete_head(&n.right, key),
        ))
    } else {
        join(&n.left, &n.right)
    }
}

/// Node with the greatest head `<= x`.
fn find_pred(t: &Link, x: u32) -> Option<&CNode> {
    find_pred_steps(t, x).0
}

/// Like [`find_pred`], also returning the number of treap nodes visited
/// (the pointer-chasing cost the paper charges Aspen for).
fn find_pred_steps(t: &Link, x: u32) -> (Option<&CNode>, u64) {
    let mut cur = t;
    let mut best: Option<&CNode> = None;
    let mut steps = 0;
    while let Some(n) = cur {
        steps += 1;
        if n.head <= x {
            best = Some(n);
            cur = &n.right;
        } else {
            cur = &n.left;
        }
    }
    (best, steps)
}

/// Path-copies to head `key` and replaces its chunk (key must be present).
fn with_chunk(t: &Link, key: u32, chunk: Arc<DeltaChunk>) -> Link {
    let n = t.as_ref().expect("with_chunk: key must be present");
    if key < n.head {
        Some(node(
            n.head,
            n.chunk.clone(),
            n.prio,
            with_chunk(&n.left, key, chunk),
            n.right.clone(),
        ))
    } else if key > n.head {
        Some(node(
            n.head,
            n.chunk.clone(),
            n.prio,
            n.left.clone(),
            with_chunk(&n.right, key, chunk),
        ))
    } else {
        Some(node(n.head, chunk, n.prio, n.left.clone(), n.right.clone()))
    }
}

fn for_each_node(t: &Link, f: &mut dyn FnMut(u32) -> bool) -> bool {
    if let Some(n) = t {
        if !for_each_node(&n.left, f) {
            return false;
        }
        if !f(n.head) {
            return false;
        }
        if !n.chunk.for_each_while(f) {
            return false;
        }
        for_each_node(&n.right, f)
    } else {
        true
    }
}

fn footprint_node(t: &Link) -> Footprint {
    match t {
        None => Footprint::default(),
        Some(n) => {
            Footprint::new(
                core::mem::size_of::<u32>() + n.chunk.byte_len(),
                core::mem::size_of::<CNode>() - core::mem::size_of::<u32>(),
            ) + footprint_node(&n.left)
                + footprint_node(&n.right)
        }
    }
}

/// A purely-functional ordered `u32` set (one vertex's edges).
#[derive(Clone, Debug, Default)]
pub struct CTreeSet {
    prefix: Arc<DeltaChunk>,
    root: Link,
    len: usize,
}

impl CTreeSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CTreeSet {
            prefix: Arc::new(DeltaChunk::default()),
            root: None,
            len: 0,
        }
    }

    /// Builds from a sorted duplicate-free slice.
    pub fn from_sorted(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let first_head = sorted.iter().position(|&x| is_head(x));
        let Some(fh) = first_head else {
            return CTreeSet {
                prefix: Arc::new(DeltaChunk::encode(sorted)),
                root: None,
                len: sorted.len(),
            };
        };
        let prefix = Arc::new(DeltaChunk::encode(&sorted[..fh]));
        let mut root: Link = None;
        let mut i = fh;
        while i < sorted.len() {
            let head = sorted[i];
            let mut j = i + 1;
            while j < sorted.len() && !is_head(sorted[j]) {
                j += 1;
            }
            root = insert_head(&root, head, Arc::new(DeltaChunk::encode(&sorted[i + 1..j])));
            i = j;
        }
        CTreeSet {
            prefix,
            root,
            len: sorted.len(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns whether `x` is present.
    pub fn contains(&self, x: u32) -> bool {
        match find_pred(&self.root, x) {
            None => self.prefix.contains(x),
            Some(n) => n.head == x || n.chunk.contains(x),
        }
    }

    /// Returns a new set with `x` inserted, or `None` if already present.
    pub fn inserted(&self, x: u32) -> Option<CTreeSet> {
        self.inserted_with(x, &OpCounters::new())
    }

    /// Like [`CTreeSet::inserted`], recording treap descent steps and
    /// chunk re-encode element counts into `c`.
    pub fn inserted_with(&self, x: u32, c: &OpCounters) -> Option<CTreeSet> {
        if self.contains(x) {
            return None;
        }
        let mut out = self.clone();
        out.len += 1;
        if is_head(x) {
            // Elements after x in the covering chunk move into x's chunk.
            let (pred, steps) = find_pred_steps(&self.root, x);
            c.add_search(steps);
            match pred {
                None => {
                    let pre = self.prefix.decode();
                    let cut = pre.partition_point(|&y| y < x);
                    c.add_moves(pre.len() as u64);
                    out.prefix = Arc::new(DeltaChunk::encode(&pre[..cut]));
                    out.root =
                        insert_head(&self.root, x, Arc::new(DeltaChunk::encode(&pre[cut..])));
                }
                Some(p) => {
                    let chunk = p.chunk.decode();
                    let cut = chunk.partition_point(|&y| y < x);
                    c.add_moves(chunk.len() as u64);
                    let kept = Arc::new(DeltaChunk::encode(&chunk[..cut]));
                    let pruned = with_chunk(&self.root, p.head, kept);
                    out.root = insert_head(&pruned, x, Arc::new(DeltaChunk::encode(&chunk[cut..])));
                }
            }
        } else {
            let (pred, steps) = find_pred_steps(&self.root, x);
            c.add_search(steps);
            match pred {
                None => {
                    let mut pre = self.prefix.decode();
                    let i = pre.partition_point(|&y| y < x);
                    pre.insert(i, x);
                    c.add_moves(pre.len() as u64);
                    out.prefix = Arc::new(DeltaChunk::encode(&pre));
                }
                Some(p) => {
                    let mut chunk = p.chunk.decode();
                    let i = chunk.partition_point(|&y| y < x);
                    chunk.insert(i, x);
                    c.add_moves(chunk.len() as u64);
                    out.root = with_chunk(&self.root, p.head, Arc::new(DeltaChunk::encode(&chunk)));
                }
            }
        }
        Some(out)
    }

    /// Returns a new set with `x` removed, or `None` if absent.
    pub fn deleted(&self, x: u32) -> Option<CTreeSet> {
        self.deleted_with(x, &OpCounters::new())
    }

    /// Like [`CTreeSet::deleted`], recording treap descent steps and chunk
    /// re-encode element counts into `c`.
    pub fn deleted_with(&self, x: u32, c: &OpCounters) -> Option<CTreeSet> {
        let mut out = self.clone();
        let (pred, steps) = find_pred_steps(&self.root, x);
        c.add_search(steps);
        match pred {
            None => {
                let mut pre = self.prefix.decode();
                let i = pre.binary_search(&x).ok()?;
                pre.remove(i);
                c.add_moves(pre.len() as u64);
                out.prefix = Arc::new(DeltaChunk::encode(&pre));
            }
            Some(p) if p.head == x => {
                // The head's chunk merges into the predecessor's chunk (or
                // the prefix when x was the first head).
                let orphan = p.chunk.decode();
                let removed = delete_head(&self.root, x);
                let (pred2, steps2) = find_pred_steps(&removed, x);
                c.add_search(steps2);
                match pred2 {
                    None => {
                        let mut pre = self.prefix.decode();
                        pre.extend_from_slice(&orphan);
                        c.add_moves(pre.len() as u64);
                        out.prefix = Arc::new(DeltaChunk::encode(&pre));
                        out.root = removed;
                    }
                    Some(q) => {
                        let mut chunk = q.chunk.decode();
                        chunk.extend_from_slice(&orphan);
                        c.add_moves(chunk.len() as u64);
                        out.root =
                            with_chunk(&removed, q.head, Arc::new(DeltaChunk::encode(&chunk)));
                    }
                }
            }
            Some(p) => {
                let mut chunk = p.chunk.decode();
                let i = chunk.binary_search(&x).ok()?;
                chunk.remove(i);
                c.add_moves(chunk.len() as u64);
                out.root = with_chunk(&self.root, p.head, Arc::new(DeltaChunk::encode(&chunk)));
            }
        }
        out.len -= 1;
        Some(out)
    }

    /// Returns a new set containing the union with a sorted duplicate-free
    /// slice, plus the number of genuinely new elements — Aspen's bulk
    /// `multi_insert`, used when a batch touches a large fraction of the
    /// set (rebuilding beats per-element path copying there).
    pub fn merged_with_sorted(&self, items: &[u32]) -> (CTreeSet, usize) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        let cur = self.to_vec();
        let mut merged = Vec::with_capacity(cur.len() + items.len());
        let mut added = 0;
        let (mut i, mut j) = (0, 0);
        while i < cur.len() || j < items.len() {
            if j >= items.len() || (i < cur.len() && cur[i] < items[j]) {
                merged.push(cur[i]);
                i += 1;
            } else if i >= cur.len() || items[j] < cur[i] {
                merged.push(items[j]);
                j += 1;
                added += 1;
            } else {
                merged.push(cur[i]);
                i += 1;
                j += 1;
            }
        }
        (CTreeSet::from_sorted(&merged), added)
    }

    /// Returns a new set without the elements of a sorted duplicate-free
    /// slice, plus the number actually removed (bulk `multi_delete`).
    pub fn minus_sorted(&self, items: &[u32]) -> (CTreeSet, usize) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        let cur = self.to_vec();
        let mut kept = Vec::with_capacity(cur.len());
        let mut j = 0;
        for &x in &cur {
            while j < items.len() && items[j] < x {
                j += 1;
            }
            if j < items.len() && items[j] == x {
                j += 1;
            } else {
                kept.push(x);
            }
        }
        let removed = cur.len() - kept.len();
        (CTreeSet::from_sorted(&kept), removed)
    }

    /// Applies `f` to every element in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        self.for_each_while(&mut |x| {
            f(x);
            true
        });
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        if !self.prefix.for_each_while(f) {
            return false;
        }
        for_each_node(&self.root, f)
    }

    /// Collects all elements into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len);
        self.for_each(&mut |x| v.push(x));
        v
    }

    /// Verifies ordering, head selection, and length accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        let v = self.to_vec();
        assert_eq!(v.len(), self.len, "len mismatch");
        assert!(v.windows(2).all(|w| w[0] < w[1]), "not sorted/dedup");
        self.prefix.for_each_while(&mut |x| {
            assert!(!is_head(x), "head element in prefix");
            true
        });
        fn walk(t: &Link, lo: Option<u32>, hi: Option<u32>, max_prio: u64) {
            if let Some(n) = t {
                assert!(is_head(n.head), "non-head as node head");
                assert!(n.prio <= max_prio, "heap order violated");
                assert!(lo.is_none_or(|l| n.head > l));
                assert!(hi.is_none_or(|h| n.head < h));
                n.chunk.for_each_while(&mut |x| {
                    assert!(!is_head(x), "head stored in chunk");
                    assert!(x > n.head);
                    assert!(hi.is_none_or(|h| x < h), "chunk leaks past next head");
                    true
                });
                walk(&n.left, lo, Some(n.head), n.prio);
                walk(&n.right, Some(n.head), hi, n.prio);
            }
        }
        walk(&self.root, None, None, u64::MAX);
    }
}

impl MemoryFootprint for CTreeSet {
    fn footprint(&self) -> Footprint {
        Footprint::new(self.prefix.byte_len(), 0) + footprint_node(&self.root)
    }
}

/// The Aspen streaming-graph baseline: one functional C-tree per vertex.
pub struct AspenGraph {
    vertices: Vec<CTreeSet>,
    num_edges: usize,
    counters: OpCounters,
}

impl AspenGraph {
    /// Creates an empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        AspenGraph {
            vertices: vec![CTreeSet::new(); n],
            num_edges: 0,
            counters: OpCounters::new(),
        }
    }

    /// Snapshot of the update-path operation counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Resets the operation counters to zero.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Bulk-loads from an edge list in parallel.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let keys = sorted_dedup_keys(edges);
        let n = n.max(max_vertex_id(edges).map_or(0, |m| m as usize + 1));
        let mut vertices = vec![CTreeSet::new(); n];
        let runs = runs_by_src(&keys);
        let built: Vec<(u32, CTreeSet)> = runs
            .par_iter()
            .map(|run| {
                let ns: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                (run.src, CTreeSet::from_sorted(&ns))
            })
            .collect();
        for (src, set) in built {
            vertices[src as usize] = set;
        }
        AspenGraph {
            vertices,
            num_edges: keys.len(),
            counters: OpCounters::new(),
        }
    }

    /// O(V) snapshot sharing all edge structure (functional trees).
    pub fn snapshot(&self) -> AspenGraph {
        AspenGraph {
            vertices: self.vertices.clone(),
            num_edges: self.num_edges,
            counters: OpCounters::new(),
        }
    }

    /// Verifies every vertex's C-tree invariants and edge accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        let mut total = 0;
        for set in &self.vertices {
            set.check_invariants();
            total += set.len();
        }
        assert_eq!(total, self.num_edges);
    }

    fn grow_to(&mut self, max_id: u32) {
        if max_id as usize >= self.vertices.len() {
            self.vertices.resize(max_id as usize + 1, CTreeSet::new());
        }
    }
}

impl Graph for AspenGraph {
    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.vertices[v as usize].for_each(f);
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.vertices[v as usize].for_each_while(f)
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.vertices[v as usize].contains(u)
    }
}

impl DynamicGraph for AspenGraph {
    fn insert_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let keys = sorted_dedup_keys(batch);
        if let Some(max_id) = max_vertex_id(batch) {
            self.grow_to(max_id);
        }
        let runs = runs_by_src(&keys);
        let vertices = &self.vertices;
        let counters = &self.counters;
        // Functional updates: build new per-vertex sets in parallel, then
        // swap them in.
        let built: Vec<(u32, CTreeSet, usize)> = runs
            .par_iter()
            .map(|run| {
                let set = &vertices[run.src as usize];
                let items: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                // Bulk union when the run is a sizeable fraction of the set;
                // per-element path copying for point updates.
                if items.len() * 4 >= set.len().max(8) {
                    let (next, added) = set.merged_with_sorted(&items);
                    counters.add_rebuild();
                    counters.add_search(items.len() as u64);
                    counters.add_moves(next.len() as u64);
                    (run.src, next, added)
                } else {
                    let mut set = set.clone();
                    let mut added = 0;
                    for u in items {
                        if let Some(next) = set.inserted_with(u, counters) {
                            set = next;
                            added += 1;
                        }
                    }
                    (run.src, set, added)
                }
            })
            .collect();
        let mut total = 0;
        for (src, set, added) in built {
            self.vertices[src as usize] = set;
            total += added;
        }
        self.num_edges += total;
        total
    }

    fn delete_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let keys = sorted_dedup_keys(batch);
        let n = self.vertices.len() as u64;
        let keys: Vec<u64> = keys.into_iter().filter(|&k| (k >> 32) < n).collect();
        let runs = runs_by_src(&keys);
        let vertices = &self.vertices;
        let counters = &self.counters;
        let built: Vec<(u32, CTreeSet, usize)> = runs
            .par_iter()
            .map(|run| {
                let set = &vertices[run.src as usize];
                let items: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                if items.len() * 4 >= set.len().max(8) {
                    let (next, removed) = set.minus_sorted(&items);
                    counters.add_rebuild();
                    counters.add_search(items.len() as u64);
                    counters.add_moves(next.len() as u64);
                    (run.src, next, removed)
                } else {
                    let mut set = set.clone();
                    let mut removed = 0;
                    for u in items {
                        if let Some(next) = set.deleted_with(u, counters) {
                            set = next;
                            removed += 1;
                        }
                    }
                    (run.src, set, removed)
                }
            })
            .collect();
        let mut total = 0;
        for (src, set, removed) in built {
            self.vertices[src as usize] = set;
            total += removed;
        }
        self.num_edges -= total;
        total
    }

    fn op_counters(&self) -> Option<CounterSnapshot> {
        Some(self.counters.snapshot())
    }

    fn reset_instrumentation(&mut self) {
        self.counters.reset();
    }
}

impl MemoryFootprint for AspenGraph {
    fn footprint(&self) -> Footprint {
        self.vertices
            .par_iter()
            .map(|s| s.footprint())
            .reduce(Footprint::default, Footprint::add)
            + Footprint::new(0, self.vertices.len() * core::mem::size_of::<CTreeSet>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn ctree_roundtrip() {
        for n in [0usize, 1, 5, 100, 5_000] {
            let v: Vec<u32> = (0..n as u32).map(|i| i * 3 + 1).collect();
            let s = CTreeSet::from_sorted(&v);
            s.check_invariants();
            assert_eq!(s.to_vec(), v, "n = {n}");
        }
    }

    #[test]
    fn ctree_insert_delete_differential() {
        let mut rng = SmallRng::seed_from_u64(31);
        let mut s = CTreeSet::new();
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..15_000 {
            let x = rng.gen_range(0..3_000u32);
            if rng.gen_bool(0.6) {
                let ours = s.inserted(x);
                assert_eq!(ours.is_some(), oracle.insert(x), "insert {x}");
                if let Some(next) = ours {
                    s = next;
                }
            } else {
                let ours = s.deleted(x);
                assert_eq!(ours.is_some(), oracle.remove(&x), "delete {x}");
                if let Some(next) = ours {
                    s = next;
                }
            }
        }
        s.check_invariants();
        assert_eq!(s.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn bulk_merge_matches_elementwise() {
        let base: Vec<u32> = (0..2_000).map(|i| i * 3).collect();
        let s = CTreeSet::from_sorted(&base);
        let items: Vec<u32> = (0..1_500).map(|i| i * 4).collect();
        let (bulk, added) = s.merged_with_sorted(&items);
        let mut slow = s.clone();
        let mut slow_added = 0;
        for &x in &items {
            if let Some(next) = slow.inserted(x) {
                slow = next;
                slow_added += 1;
            }
        }
        assert_eq!(added, slow_added);
        assert_eq!(bulk.to_vec(), slow.to_vec());
        bulk.check_invariants();
    }

    #[test]
    fn bulk_minus_matches_elementwise() {
        let base: Vec<u32> = (0..2_000).collect();
        let s = CTreeSet::from_sorted(&base);
        let items: Vec<u32> = (0..3_000).step_by(2).collect();
        let (bulk, removed) = s.minus_sorted(&items);
        assert_eq!(removed, 1_000);
        assert_eq!(bulk.to_vec(), (1..2_000).step_by(2).collect::<Vec<_>>());
        bulk.check_invariants();
    }

    #[test]
    fn persistence_old_versions_unchanged() {
        let s0 = CTreeSet::from_sorted(&(0..1_000).collect::<Vec<_>>());
        let v0 = s0.to_vec();
        let s1 = s0.inserted(5_000).expect("new element");
        let s2 = s1.deleted(500).expect("present");
        assert_eq!(s0.to_vec(), v0, "original mutated");
        assert!(s1.contains(5_000) && s1.contains(500));
        assert!(!s2.contains(500));
        s1.check_invariants();
        s2.check_invariants();
    }

    #[test]
    fn graph_batches() {
        let mut g = AspenGraph::new(4);
        let batch: Vec<Edge> = vec![Edge::new(0, 1), Edge::new(0, 2), Edge::new(3, 0)];
        assert_eq!(g.insert_batch(&batch), 3);
        assert_eq!(g.neighbors(0), vec![1, 2]);
        assert_eq!(g.delete_batch(&[Edge::new(0, 2), Edge::new(0, 9)]), 1);
        assert_eq!(g.neighbors(0), vec![1]);
        g.check_invariants();
    }

    #[test]
    fn snapshot_isolated_from_updates() {
        let mut g = AspenGraph::from_edges(3, &[Edge::new(0, 1), Edge::new(1, 2)]);
        let snap = g.snapshot();
        g.insert_batch(&[Edge::new(0, 2)]);
        assert_eq!(snap.neighbors(0), vec![1]);
        assert_eq!(g.neighbors(0), vec![1, 2]);
    }

    #[test]
    fn bulk_equals_incremental() {
        let mut rng = SmallRng::seed_from_u64(14);
        let es: Vec<Edge> = (0..20_000)
            .map(|_| Edge::new(rng.gen_range(0..30), rng.gen_range(0..3_000)))
            .collect();
        let bulk = AspenGraph::from_edges(3_000, &es);
        let mut inc = AspenGraph::new(3_000);
        for chunk in es.chunks(777) {
            inc.insert_batch(chunk);
        }
        assert_eq!(bulk.num_edges(), inc.num_edges());
        for v in 0..30u32 {
            assert_eq!(bulk.neighbors(v), inc.neighbors(v), "vertex {v}");
        }
        bulk.check_invariants();
        inc.check_invariants();
    }

    #[test]
    fn insert_then_delete_restores() {
        let mut rng = SmallRng::seed_from_u64(6);
        let base: Vec<Edge> = (0..5_000)
            .map(|_| Edge::new(rng.gen_range(0..50), rng.gen_range(0..1_000)))
            .collect();
        let mut g = AspenGraph::from_edges(1_000, &base);
        let before: Vec<Vec<u32>> = (0..50).map(|v| g.neighbors(v)).collect();
        let batch: Vec<Edge> = (0..2_000)
            .map(|_| Edge::new(rng.gen_range(0..50), rng.gen_range(1_000..4_000)))
            .collect();
        let a = g.insert_batch(&batch);
        let r = g.delete_batch(&batch);
        assert_eq!(a, r);
        for v in 0..50u32 {
            assert_eq!(g.neighbors(v), before[v as usize]);
        }
        g.check_invariants();
    }
}
