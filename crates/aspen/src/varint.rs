//! Difference encoding for C-tree chunks (Aspen §4 "compressed trees").
//!
//! A sorted chunk is stored as its first value followed by varint-encoded
//! gaps to successors. Byte-granular LEB128 keeps hot chunks small (a gap
//! under 128 costs one byte), which is where Aspen's memory advantage over
//! uncompressed engines comes from — paid for by sequential decode on every
//! traversal, which is part of its analytics gap.

/// A compressed sorted sequence of `u32` values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaChunk {
    bytes: Vec<u8>,
    len: u32,
}

/// Appends `v` as LEB128.
#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let b = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads a LEB128 value starting at `*i`, advancing it.
#[inline]
fn read_varint(bytes: &[u8], i: &mut usize) -> u32 {
    let mut v = 0u32;
    let mut shift = 0;
    loop {
        let b = bytes[*i];
        *i += 1;
        v |= ((b & 0x7F) as u32) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

impl DeltaChunk {
    /// Encodes a sorted duplicate-free slice.
    pub fn encode(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        let mut bytes = Vec::with_capacity(sorted.len() + 4);
        let mut prev = 0u32;
        for (i, &x) in sorted.iter().enumerate() {
            if i == 0 {
                push_varint(&mut bytes, x);
            } else {
                // Gaps are at least 1; store gap-1 to shave a byte off runs.
                push_varint(&mut bytes, x - prev - 1);
            }
            prev = x;
        }
        DeltaChunk {
            bytes,
            len: sorted.len() as u32,
        }
    }

    /// Number of encoded values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the chunk is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Encoded size in bytes.
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// Decodes into a sorted vector.
    pub fn decode(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each_while(&mut |x| {
            out.push(x);
            true
        });
        out
    }

    /// Applies `f` in ascending order until it returns `false`; returns
    /// whether the scan completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        let mut i = 0;
        let mut prev = 0u32;
        for k in 0..self.len {
            let raw = read_varint(&self.bytes, &mut i);
            let x = if k == 0 { raw } else { prev + raw + 1 };
            if !f(x) {
                return false;
            }
            prev = x;
        }
        true
    }

    /// Membership by sequential decode — compressed chunks cannot be
    /// random-accessed, which is exactly Aspen's trade.
    pub fn contains(&self, key: u32) -> bool {
        let mut found = false;
        self.for_each_while(&mut |x| {
            if x == key {
                found = true;
            }
            x < key
        });
        found
    }

    /// First (smallest) value.
    pub fn first(&self) -> Option<u32> {
        let mut v = None;
        self.for_each_while(&mut |x| {
            v = Some(x);
            false
        });
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_shapes() {
        for v in [
            vec![],
            vec![0u32],
            vec![u32::MAX],
            vec![0, 1, 2, 3],
            vec![5, 100, 1_000_000, u32::MAX - 1, u32::MAX],
            (0..1_000).map(|i| i * 3).collect::<Vec<u32>>(),
        ] {
            let c = DeltaChunk::encode(&v);
            assert_eq!(c.decode(), v);
            assert_eq!(c.len(), v.len());
        }
    }

    #[test]
    fn dense_runs_compress_to_one_byte_per_element() {
        let v: Vec<u32> = (1_000_000..1_001_000).collect();
        let c = DeltaChunk::encode(&v);
        // First value takes ~3 bytes; every consecutive gap encodes as 0.
        assert!(c.byte_len() < v.len() + 8, "bytes {}", c.byte_len());
        assert!(c.byte_len() * 3 < v.len() * 4, "no compression win");
    }

    #[test]
    fn contains_matches_decode() {
        let v: Vec<u32> = (0..500).map(|i| i * 7 + 3).collect();
        let c = DeltaChunk::encode(&v);
        for k in 0..4_000u32 {
            assert_eq!(c.contains(k), v.binary_search(&k).is_ok(), "key {k}");
        }
    }

    #[test]
    fn early_exit_iteration() {
        let c = DeltaChunk::encode(&[1, 2, 3, 4, 5]);
        let mut seen = 0;
        assert!(!c.for_each_while(&mut |_| {
            seen += 1;
            seen < 3
        }));
        assert_eq!(seen, 3);
        assert_eq!(c.first(), Some(1));
        assert_eq!(DeltaChunk::default().first(), None);
    }

    #[test]
    fn varint_boundaries() {
        let v = vec![127u32, 128, 16_383, 16_384, 2_097_151, 2_097_152];
        let c = DeltaChunk::encode(&v);
        assert_eq!(c.decode(), v);
    }
}
