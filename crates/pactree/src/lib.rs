//! PaC-tree baseline (Dhulipala et al., PLDI'22): purely-functional
//! *parallel compressed* trees where arrays live **only at the leaves**.
//!
//! Unlike Aspen's C-trees (arrays attached to every tree node, hash-selected
//! chunk boundaries), a PaC-tree is a binary search tree whose leaves hold
//! sorted blocks of `B..2B` keys and whose internal nodes hold only a
//! separator and child pointers. Updates path-copy; oversized leaves split;
//! a weight-balance violation rebuilds the offending subtree (scapegoat
//! style), which keeps the tree balanced deterministically without
//! rotations — a natural fit for persistent nodes.
//!
//! **Substitution note (DESIGN.md):** the original compresses leaf blocks
//! (difference encoding); we store them raw, which only improves this
//! baseline's traversal locality, making LSGraph's measured analytics edge
//! conservative.

use std::sync::Arc;

use lsgraph_api::batch::{max_vertex_id, runs_by_src, sorted_dedup_keys};
use lsgraph_api::{
    CounterSnapshot, DynamicGraph, Edge, Footprint, Graph, MemoryFootprint, OpCounters, VertexId,
};
use rayon::prelude::*;

/// Target minimum leaf size; leaves hold at most `2 * LEAF_B` keys.
pub const LEAF_B: usize = 32;

/// Weight-balance factor: a subtree rebuilds when one side holds more than
/// `WB_NUM/WB_DEN` of its keys.
const WB_NUM: usize = 3;
const WB_DEN: usize = 4;

#[derive(Debug)]
enum PNode {
    Leaf(Arc<Vec<u32>>),
    Internal {
        /// Smallest key in the right subtree.
        sep: u32,
        size: usize,
        left: Arc<PNode>,
        right: Arc<PNode>,
    },
}

impl PNode {
    fn size(&self) -> usize {
        match self {
            PNode::Leaf(v) => v.len(),
            PNode::Internal { size, .. } => *size,
        }
    }
}

fn internal(left: Arc<PNode>, right: Arc<PNode>, sep: u32) -> Arc<PNode> {
    let size = left.size() + right.size();
    Arc::new(PNode::Internal {
        sep,
        size,
        left,
        right,
    })
}

/// Builds a balanced subtree over a sorted slice.
fn build(sorted: &[u32]) -> Arc<PNode> {
    if sorted.len() <= 2 * LEAF_B {
        return Arc::new(PNode::Leaf(Arc::new(sorted.to_vec())));
    }
    // Split on a leaf-aligned midpoint so leaves stay in `B..2B`.
    let leaves = sorted.len().div_ceil(2 * LEAF_B).max(2);
    let mid = (leaves / 2) * sorted.len() / leaves;
    let mid = mid.clamp(LEAF_B, sorted.len() - LEAF_B);
    let l = build(&sorted[..mid]);
    let r = build(&sorted[mid..]);
    internal(l, r, sorted[mid])
}

fn collect(t: &PNode, out: &mut Vec<u32>) {
    match t {
        PNode::Leaf(v) => out.extend_from_slice(v),
        PNode::Internal { left, right, .. } => {
            collect(left, out);
            collect(right, out);
        }
    }
}

fn contains(t: &PNode, x: u32) -> bool {
    match t {
        PNode::Leaf(v) => v.binary_search(&x).is_ok(),
        PNode::Internal {
            sep, left, right, ..
        } => {
            if x < *sep {
                contains(left, x)
            } else {
                contains(right, x)
            }
        }
    }
}

/// Persistent insert; returns `None` when `x` is already present.
/// Records descent steps, leaf path-copy moves, and scapegoat rebuilds
/// into `c`.
fn insert(t: &Arc<PNode>, x: u32, c: &OpCounters) -> Option<Arc<PNode>> {
    c.add_search(1);
    match t.as_ref() {
        PNode::Leaf(v) => {
            let i = match v.binary_search(&x) {
                Ok(_) => return None,
                Err(i) => i,
            };
            let mut nv = Vec::with_capacity(v.len() + 1);
            nv.extend_from_slice(&v[..i]);
            nv.push(x);
            nv.extend_from_slice(&v[i..]);
            // Path copying rewrites the whole leaf.
            c.add_moves(nv.len() as u64);
            if nv.len() > 2 * LEAF_B {
                let right: Vec<u32> = nv.split_off(nv.len() / 2);
                let sep = right[0];
                Some(internal(
                    Arc::new(PNode::Leaf(Arc::new(nv))),
                    Arc::new(PNode::Leaf(Arc::new(right))),
                    sep,
                ))
            } else {
                Some(Arc::new(PNode::Leaf(Arc::new(nv))))
            }
        }
        PNode::Internal {
            sep, left, right, ..
        } => {
            let (nl, nr) = if x < *sep {
                (insert(left, x, c)?, right.clone())
            } else {
                (left.clone(), insert(right, x, c)?)
            };
            Some(rebalance(nl, nr, *sep, c))
        }
    }
}

/// Persistent delete; returns `None` when `x` is absent.
fn delete(t: &Arc<PNode>, x: u32, c: &OpCounters) -> Option<Arc<PNode>> {
    c.add_search(1);
    match t.as_ref() {
        PNode::Leaf(v) => {
            let i = v.binary_search(&x).ok()?;
            let mut nv = (**v).clone();
            nv.remove(i);
            c.add_moves(nv.len() as u64);
            Some(Arc::new(PNode::Leaf(Arc::new(nv))))
        }
        PNode::Internal {
            sep, left, right, ..
        } => {
            let (nl, nr) = if x < *sep {
                (delete(left, x, c)?, right.clone())
            } else {
                (left.clone(), delete(right, x, c)?)
            };
            // Merge away underfull sides so the tree never keeps hollow
            // spines.
            if nl.size() + nr.size() <= 2 * LEAF_B {
                let mut all = Vec::with_capacity(nl.size() + nr.size());
                collect(&nl, &mut all);
                collect(&nr, &mut all);
                c.add_moves(all.len() as u64);
                return Some(Arc::new(PNode::Leaf(Arc::new(all))));
            }
            Some(rebalance(nl, nr, *sep, c))
        }
    }
}

/// Scapegoat rebalance: rebuild this subtree when one side dominates.
fn rebalance(left: Arc<PNode>, right: Arc<PNode>, sep: u32, c: &OpCounters) -> Arc<PNode> {
    let (ls, rs) = (left.size(), right.size());
    let total = ls + rs;
    if total > 2 * LEAF_B && (ls * WB_DEN > total * WB_NUM || rs * WB_DEN > total * WB_NUM) {
        let mut all = Vec::with_capacity(total);
        collect(&left, &mut all);
        collect(&right, &mut all);
        c.add_rebuild();
        c.add_moves(total as u64);
        build(&all)
    } else {
        internal(left, right, sep)
    }
}

fn for_each_node(t: &PNode, f: &mut dyn FnMut(u32) -> bool) -> bool {
    match t {
        PNode::Leaf(v) => {
            for &x in v.iter() {
                if !f(x) {
                    return false;
                }
            }
            true
        }
        PNode::Internal { left, right, .. } => for_each_node(left, f) && for_each_node(right, f),
    }
}

fn footprint_node(t: &PNode) -> Footprint {
    match t {
        PNode::Leaf(v) => Footprint::new(v.len() * core::mem::size_of::<u32>(), 0),
        PNode::Internal { left, right, .. } => {
            Footprint::new(0, core::mem::size_of::<PNode>())
                + footprint_node(left)
                + footprint_node(right)
        }
    }
}

/// A purely-functional ordered `u32` set with arrays only at leaves.
#[derive(Clone, Debug)]
pub struct PacSet {
    root: Arc<PNode>,
}

impl PacSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        PacSet {
            root: Arc::new(PNode::Leaf(Arc::new(Vec::new()))),
        }
    }

    /// Builds from a sorted duplicate-free slice.
    pub fn from_sorted(sorted: &[u32]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] < w[1]));
        PacSet {
            root: build(sorted),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.root.size()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns whether `x` is present.
    pub fn contains(&self, x: u32) -> bool {
        contains(&self.root, x)
    }

    /// Returns a new set with `x` inserted, or `None` if already present.
    pub fn inserted(&self, x: u32) -> Option<PacSet> {
        self.inserted_with(x, &OpCounters::new())
    }

    /// Like [`PacSet::inserted`], recording operation costs into `c`.
    pub fn inserted_with(&self, x: u32, c: &OpCounters) -> Option<PacSet> {
        insert(&self.root, x, c).map(|root| PacSet { root })
    }

    /// Returns a new set with `x` removed, or `None` if absent.
    pub fn deleted(&self, x: u32) -> Option<PacSet> {
        self.deleted_with(x, &OpCounters::new())
    }

    /// Like [`PacSet::deleted`], recording operation costs into `c`.
    pub fn deleted_with(&self, x: u32, c: &OpCounters) -> Option<PacSet> {
        delete(&self.root, x, c).map(|root| PacSet { root })
    }

    /// Returns a new set containing the union with a sorted duplicate-free
    /// slice, plus the count of genuinely new elements — the join-based bulk
    /// update PaC-trees are designed around.
    pub fn merged_with_sorted(&self, items: &[u32]) -> (PacSet, usize) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        let cur = self.to_vec();
        let mut merged = Vec::with_capacity(cur.len() + items.len());
        let mut added = 0;
        let (mut i, mut j) = (0, 0);
        while i < cur.len() || j < items.len() {
            if j >= items.len() || (i < cur.len() && cur[i] < items[j]) {
                merged.push(cur[i]);
                i += 1;
            } else if i >= cur.len() || items[j] < cur[i] {
                merged.push(items[j]);
                j += 1;
                added += 1;
            } else {
                merged.push(cur[i]);
                i += 1;
                j += 1;
            }
        }
        (PacSet::from_sorted(&merged), added)
    }

    /// Returns a new set without the elements of a sorted duplicate-free
    /// slice, plus the number actually removed (bulk difference).
    pub fn minus_sorted(&self, items: &[u32]) -> (PacSet, usize) {
        debug_assert!(items.windows(2).all(|w| w[0] < w[1]));
        let cur = self.to_vec();
        let mut kept = Vec::with_capacity(cur.len());
        let mut j = 0;
        for &x in &cur {
            while j < items.len() && items[j] < x {
                j += 1;
            }
            if j < items.len() && items[j] == x {
                j += 1;
            } else {
                kept.push(x);
            }
        }
        let removed = cur.len() - kept.len();
        (PacSet::from_sorted(&kept), removed)
    }

    /// Applies `f` to every element in ascending order.
    pub fn for_each(&self, f: &mut dyn FnMut(u32)) {
        for_each_node(&self.root, &mut |x| {
            f(x);
            true
        });
    }

    /// Applies `f` until it returns `false`; returns whether the scan
    /// completed.
    pub fn for_each_while(&self, f: &mut dyn FnMut(u32) -> bool) -> bool {
        for_each_node(&self.root, f)
    }

    /// Collects all elements into a sorted vector.
    pub fn to_vec(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(self.len());
        collect(&self.root, &mut v);
        v
    }

    /// Verifies ordering, separator ranges, size accounting, and leaf caps.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        fn walk(t: &PNode, lo: Option<u32>, hi: Option<u32>) -> usize {
            match t {
                PNode::Leaf(v) => {
                    assert!(v.windows(2).all(|w| w[0] < w[1]), "leaf unsorted");
                    assert!(v.len() <= 2 * LEAF_B, "leaf too large: {}", v.len());
                    for &x in v.iter() {
                        assert!(lo.is_none_or(|l| x >= l));
                        assert!(hi.is_none_or(|h| x < h));
                    }
                    v.len()
                }
                PNode::Internal {
                    sep,
                    size,
                    left,
                    right,
                } => {
                    assert!(left.size() > 0 && right.size() > 0, "hollow internal node");
                    let ls = walk(left, lo, Some(*sep));
                    let rs = walk(right, Some(*sep), hi);
                    assert_eq!(ls + rs, *size, "size accounting");
                    ls + rs
                }
            }
        }
        let n = walk(&self.root, None, None);
        assert_eq!(n, self.len());
    }
}

impl Default for PacSet {
    fn default() -> Self {
        PacSet::new()
    }
}

impl MemoryFootprint for PacSet {
    fn footprint(&self) -> Footprint {
        footprint_node(&self.root)
    }
}

/// The PaC-tree streaming-graph baseline: one functional set per vertex.
pub struct PacGraph {
    vertices: Vec<PacSet>,
    num_edges: usize,
    counters: OpCounters,
}

impl PacGraph {
    /// Creates an empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        PacGraph {
            vertices: vec![PacSet::new(); n],
            num_edges: 0,
            counters: OpCounters::new(),
        }
    }

    /// Snapshot of the update-path operation counters.
    pub fn counters(&self) -> CounterSnapshot {
        self.counters.snapshot()
    }

    /// Resets the operation counters to zero.
    pub fn reset_counters(&mut self) {
        self.counters.reset();
    }

    /// Bulk-loads from an edge list in parallel.
    pub fn from_edges(n: usize, edges: &[Edge]) -> Self {
        let keys = sorted_dedup_keys(edges);
        let n = n.max(max_vertex_id(edges).map_or(0, |m| m as usize + 1));
        let mut vertices = vec![PacSet::new(); n];
        let built: Vec<(u32, PacSet)> = runs_by_src(&keys)
            .par_iter()
            .map(|run| {
                let ns: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                (run.src, PacSet::from_sorted(&ns))
            })
            .collect();
        for (src, set) in built {
            vertices[src as usize] = set;
        }
        PacGraph {
            vertices,
            num_edges: keys.len(),
            counters: OpCounters::new(),
        }
    }

    /// O(V) snapshot sharing all edge structure.
    pub fn snapshot(&self) -> PacGraph {
        PacGraph {
            vertices: self.vertices.clone(),
            num_edges: self.num_edges,
            counters: OpCounters::new(),
        }
    }

    /// Verifies every vertex set and edge accounting.
    ///
    /// # Panics
    ///
    /// Panics on the first violated invariant.
    pub fn check_invariants(&self) {
        let mut total = 0;
        for set in &self.vertices {
            set.check_invariants();
            total += set.len();
        }
        assert_eq!(total, self.num_edges);
    }

    fn grow_to(&mut self, max_id: u32) {
        if max_id as usize >= self.vertices.len() {
            self.vertices.resize(max_id as usize + 1, PacSet::new());
        }
    }
}

impl Graph for PacGraph {
    fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    fn num_edges(&self) -> usize {
        self.num_edges
    }

    fn degree(&self, v: VertexId) -> usize {
        self.vertices[v as usize].len()
    }

    fn for_each_neighbor(&self, v: VertexId, f: &mut dyn FnMut(VertexId)) {
        self.vertices[v as usize].for_each(f);
    }

    fn for_each_neighbor_while(&self, v: VertexId, f: &mut dyn FnMut(VertexId) -> bool) -> bool {
        self.vertices[v as usize].for_each_while(f)
    }

    fn has_edge(&self, v: VertexId, u: VertexId) -> bool {
        self.vertices[v as usize].contains(u)
    }
}

impl DynamicGraph for PacGraph {
    fn insert_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let keys = sorted_dedup_keys(batch);
        if let Some(max_id) = max_vertex_id(batch) {
            self.grow_to(max_id);
        }
        let runs = runs_by_src(&keys);
        let vertices = &self.vertices;
        let counters = &self.counters;
        let built: Vec<(u32, PacSet, usize)> = runs
            .par_iter()
            .map(|run| {
                let set = &vertices[run.src as usize];
                let items: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                if items.len() * 4 >= set.len().max(8) {
                    let (next, added) = set.merged_with_sorted(&items);
                    counters.add_rebuild();
                    counters.add_search(items.len() as u64);
                    counters.add_moves(next.len() as u64);
                    (run.src, next, added)
                } else {
                    let mut set = set.clone();
                    let mut added = 0;
                    for u in items {
                        if let Some(next) = set.inserted_with(u, counters) {
                            set = next;
                            added += 1;
                        }
                    }
                    (run.src, set, added)
                }
            })
            .collect();
        let mut total = 0;
        for (src, set, added) in built {
            self.vertices[src as usize] = set;
            total += added;
        }
        self.num_edges += total;
        total
    }

    fn delete_batch(&mut self, batch: &[Edge]) -> usize {
        if batch.is_empty() {
            return 0;
        }
        let keys = sorted_dedup_keys(batch);
        let n = self.vertices.len() as u64;
        let keys: Vec<u64> = keys.into_iter().filter(|&k| (k >> 32) < n).collect();
        let runs = runs_by_src(&keys);
        let vertices = &self.vertices;
        let counters = &self.counters;
        let built: Vec<(u32, PacSet, usize)> = runs
            .par_iter()
            .map(|run| {
                let set = &vertices[run.src as usize];
                let items: Vec<u32> = keys[run.start..run.end].iter().map(|&k| k as u32).collect();
                if items.len() * 4 >= set.len().max(8) {
                    let (next, removed) = set.minus_sorted(&items);
                    counters.add_rebuild();
                    counters.add_search(items.len() as u64);
                    counters.add_moves(next.len() as u64);
                    (run.src, next, removed)
                } else {
                    let mut set = set.clone();
                    let mut removed = 0;
                    for u in items {
                        if let Some(next) = set.deleted_with(u, counters) {
                            set = next;
                            removed += 1;
                        }
                    }
                    (run.src, set, removed)
                }
            })
            .collect();
        let mut total = 0;
        for (src, set, removed) in built {
            self.vertices[src as usize] = set;
            total += removed;
        }
        self.num_edges -= total;
        total
    }

    fn op_counters(&self) -> Option<CounterSnapshot> {
        Some(self.counters.snapshot())
    }

    fn reset_instrumentation(&mut self) {
        self.counters.reset();
    }
}

impl MemoryFootprint for PacGraph {
    fn footprint(&self) -> Footprint {
        self.vertices
            .par_iter()
            .map(|s| s.footprint())
            .reduce(Footprint::default, Footprint::add)
            + Footprint::new(0, self.vertices.len() * core::mem::size_of::<PacSet>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    #[test]
    fn build_roundtrip_various_sizes() {
        for n in [0usize, 1, LEAF_B, 2 * LEAF_B, 2 * LEAF_B + 1, 1_000, 50_000] {
            let v: Vec<u32> = (0..n as u32).map(|i| i * 2).collect();
            let s = PacSet::from_sorted(&v);
            s.check_invariants();
            assert_eq!(s.to_vec(), v, "n = {n}");
        }
    }

    #[test]
    fn differential_vs_btreeset() {
        let mut rng = SmallRng::seed_from_u64(23);
        let mut s = PacSet::new();
        let mut oracle = std::collections::BTreeSet::new();
        for _ in 0..20_000 {
            let x = rng.gen_range(0..4_000u32);
            if rng.gen_bool(0.6) {
                let next = s.inserted(x);
                assert_eq!(next.is_some(), oracle.insert(x));
                if let Some(n) = next {
                    s = n;
                }
            } else {
                let next = s.deleted(x);
                assert_eq!(next.is_some(), oracle.remove(&x));
                if let Some(n) = next {
                    s = n;
                }
            }
        }
        s.check_invariants();
        assert_eq!(s.to_vec(), oracle.into_iter().collect::<Vec<_>>());
    }

    #[test]
    fn bulk_merge_and_minus() {
        let s = PacSet::from_sorted(&(0..5_000).map(|i| i * 2).collect::<Vec<_>>());
        let odds: Vec<u32> = (0..5_000).map(|i| i * 2 + 1).collect();
        let (merged, added) = s.merged_with_sorted(&odds);
        assert_eq!(added, 5_000);
        assert_eq!(merged.to_vec(), (0..10_000).collect::<Vec<_>>());
        merged.check_invariants();
        let (back, removed) = merged.minus_sorted(&odds);
        assert_eq!(removed, 5_000);
        assert_eq!(back.to_vec(), s.to_vec());
        back.check_invariants();
        // Re-merging existing elements adds nothing.
        let (same, zero) = back.merged_with_sorted(&[0, 2, 4]);
        assert_eq!(zero, 0);
        assert_eq!(same.len(), back.len());
    }

    #[test]
    fn persistence() {
        let s0 = PacSet::from_sorted(&(0..10_000).collect::<Vec<_>>());
        let s1 = s0.inserted(50_000).expect("new");
        let s2 = s1.deleted(1234).expect("present");
        assert_eq!(s0.len(), 10_000);
        assert!(s0.contains(1234));
        assert!(!s2.contains(1234));
        assert!(s2.contains(50_000));
        s2.check_invariants();
    }

    #[test]
    fn ascending_inserts_stay_balanced() {
        let mut s = PacSet::new();
        for x in 0..50_000u32 {
            s = s.inserted(x).expect("unique");
        }
        s.check_invariants();
        // Depth must be logarithmic, not linear: walk the left spine.
        fn depth(t: &PNode) -> usize {
            match t {
                PNode::Leaf(_) => 1,
                PNode::Internal { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        let d = depth(&s.root);
        assert!(d < 24, "depth {d} too large for 50k elements");
    }

    #[test]
    fn graph_update_and_restore() {
        let mut rng = SmallRng::seed_from_u64(51);
        let base: Vec<Edge> = (0..10_000)
            .map(|_| Edge::new(rng.gen_range(0..60), rng.gen_range(0..2_000)))
            .collect();
        let mut g = PacGraph::from_edges(2_000, &base);
        let before: Vec<Vec<u32>> = (0..60).map(|v| g.neighbors(v)).collect();
        let batch: Vec<Edge> = (0..3_000)
            .map(|_| Edge::new(rng.gen_range(0..60), rng.gen_range(2_000..8_000)))
            .collect();
        let a = g.insert_batch(&batch);
        let r = g.delete_batch(&batch);
        assert_eq!(a, r);
        for v in 0..60u32 {
            assert_eq!(g.neighbors(v), before[v as usize]);
        }
        g.check_invariants();
    }

    #[test]
    fn snapshot_isolation() {
        let mut g = PacGraph::from_edges(2, &[Edge::new(0, 1)]);
        let snap = g.snapshot();
        g.insert_batch(&[Edge::new(0, 5)]);
        assert_eq!(snap.neighbors(0), vec![1]);
        assert_eq!(g.neighbors(0), vec![1, 5]);
    }
}
