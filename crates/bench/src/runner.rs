//! Engine construction, scaling knobs, and timing utilities.

use std::time::{Duration, Instant};

use lsgraph_api::Edge;
use lsgraph_aspen::AspenGraph;
use lsgraph_core::{Config, LsGraph};
use lsgraph_pactree::PacGraph;
use lsgraph_pma::PmaGraph;
use lsgraph_terrace::TerraceGraph;

use crate::Engine;

/// The four systems of the paper's headline comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// This paper's engine.
    LsGraph,
    /// Terrace (SIGMOD'21).
    Terrace,
    /// Aspen (PLDI'19).
    Aspen,
    /// PaC-tree (PLDI'22).
    PacTree,
    /// PCSR-style whole-graph PMA (the §2 motivation baseline, not part of
    /// the paper's headline four).
    Pcsr,
}

impl EngineKind {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::LsGraph => "LSGraph",
            EngineKind::Terrace => "Terrace",
            EngineKind::Aspen => "Aspen",
            EngineKind::PacTree => "PaC-tree",
            EngineKind::Pcsr => "PCSR",
        }
    }
}

/// All engines in the paper's presentation order.
pub fn engines() -> [EngineKind; 4] {
    [
        EngineKind::Terrace,
        EngineKind::Aspen,
        EngineKind::PacTree,
        EngineKind::LsGraph,
    ]
}

/// Builds an engine of `kind` bulk-loaded with `edges` over `n` vertices.
pub fn build_engine(kind: EngineKind, n: usize, edges: &[Edge]) -> Box<dyn Engine> {
    match kind {
        EngineKind::LsGraph => Box::new(LsGraph::from_edges(n, edges, Config::default())),
        EngineKind::Terrace => Box::new(TerraceGraph::from_edges(n, edges)),
        EngineKind::Aspen => Box::new(AspenGraph::from_edges(n, edges)),
        EngineKind::PacTree => Box::new(PacGraph::from_edges(n, edges)),
        EngineKind::Pcsr => Box::new(PmaGraph::from_edges(n, edges)),
    }
}

/// LSGraph tier thresholds scaled down with a dataset's shift.
///
/// The harness shrinks each dataset's vertex count (and with it the head
/// degrees) by `2^shift` relative to the real graph, so the medium-tier
/// ceiling `M` shrinks by the same factor. The floor of 128 (= 8 blocks)
/// keeps the RIA tier multi-block; at `shift == 0` this is exactly the
/// paper's `M = 4096`, so full-scale runs are unaffected.
pub fn scaled_config(shift: u32) -> Config {
    let m = (Config::default().m >> shift.min(16)).clamp(128, 4096);
    Config::default().with_m(m)
}

/// Like [`build_engine`], but LSGraph's tier thresholds track the dataset
/// shift (see [`scaled_config`]) so the HITree tier is exercised even on
/// laptop-scale stand-ins. Other engines have no such knob and build
/// identically.
pub fn build_engine_scaled(
    kind: EngineKind,
    n: usize,
    edges: &[Edge],
    shift: u32,
) -> Box<dyn Engine> {
    match kind {
        EngineKind::LsGraph => Box::new(LsGraph::from_edges(n, edges, scaled_config(shift))),
        other => build_engine(other, n, edges),
    }
}

/// Experiment sizing, controlled by `REPRO_SCALE` / `REPRO_TRIALS` /
/// `REPRO_BASE`.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// log2 of the base-graph vertex count before `shift` is applied.
    pub base: u32,
    /// Extra powers of two applied to vertex counts and batch sizes.
    pub shift: u32,
    /// Trials averaged per measurement (paper: 5).
    pub trials: usize,
}

impl Scale {
    /// Reads `REPRO_SCALE`, `REPRO_TRIALS`, and `REPRO_BASE` from the
    /// environment.
    pub fn from_env() -> Self {
        let get = |k: &str, d: usize| {
            std::env::var(k)
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(d)
        };
        Scale {
            base: get("REPRO_BASE", 15) as u32,
            shift: get("REPRO_SCALE", 0) as u32,
            trials: get("REPRO_TRIALS", 3),
        }
    }

    /// A tiny configuration for smoke tests.
    pub fn tiny() -> Self {
        Scale {
            base: 10,
            shift: 0,
            trials: 1,
        }
    }

    /// log2 of the default base-graph vertex count at this scale.
    pub fn graph_scale(&self) -> u32 {
        self.base + self.shift
    }

    /// Base-graph edge count at this scale.
    pub fn base_edges(&self) -> usize {
        1usize << (self.graph_scale() + 4)
    }

    /// Batch sizes for the Fig. 12-style sweeps (the paper sweeps
    /// 10^4..10^8; we sweep the same number of magnitudes scaled down).
    pub fn batch_sizes(&self) -> Vec<usize> {
        let top = 1usize << (self.graph_scale() + 1);
        (0..5).map(|i| (top >> (2 * (4 - i))).max(16)).collect()
    }
}

/// Runs `f` and returns its result with the elapsed wall-clock time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Mean duration of `trials` runs of `f` (result of last run returned).
pub fn time_avg(trials: usize, mut f: impl FnMut()) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..trials.max(1) {
        let start = Instant::now();
        f();
        total += start.elapsed();
    }
    total / trials.max(1) as u32
}

/// Formats edges-per-second throughput.
pub fn fmt_tput(edges: usize, d: Duration) -> String {
    let eps = edges as f64 / d.as_secs_f64().max(1e-12);
    if eps >= 1e9 {
        format!("{:.2}G", eps / 1e9)
    } else if eps >= 1e6 {
        format!("{:.2}M", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.2}K", eps / 1e3)
    } else {
        format!("{eps:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_engines() {
        let edges = [Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 0)];
        for kind in engines() {
            let mut g = build_engine(kind, 3, &edges);
            assert_eq!(g.num_edges(), 3, "{}", kind.name());
            assert_eq!(g.neighbors(0), vec![1], "{}", kind.name());
            g.insert_batch(&[Edge::new(0, 2)]);
            assert_eq!(g.neighbors(0), vec![1, 2], "{}", kind.name());
        }
    }

    #[test]
    fn scale_batches_are_increasing() {
        let s = Scale {
            base: 15,
            shift: 0,
            trials: 1,
        };
        let b = s.batch_sizes();
        assert_eq!(b.len(), 5);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*b.last().unwrap(), 1 << 16);
    }

    #[test]
    fn tput_formatting() {
        assert_eq!(fmt_tput(2_000_000, Duration::from_secs(1)), "2.00M");
        assert_eq!(fmt_tput(1_500, Duration::from_secs(1)), "1.50K");
    }
}
