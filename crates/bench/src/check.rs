//! Structural-counter regression gate (`repro check --baseline ...`).
//!
//! LSGraph's structural counters are **deterministic** for a fixed seed and
//! scale: batches partition into disjoint per-source runs, so every ripple,
//! rebuild, retrain, and upgrade happens exactly once regardless of thread
//! interleaving. That makes a committed `BENCH_<exp>.json` usable as a
//! regression baseline: re-run the experiment at the baseline's scale and
//! compare counters cell by cell.
//!
//! Two families of rules:
//!
//! - **Invariants** ([`INVARIANT_COUNTERS`]): counters that the paper's
//!   design proves stay at zero — a ripple exceeding the
//!   `log2(num_blocks)+1` bound, a vertical LIA move without a preceding
//!   block overflow. Any nonzero value in the *current* run fails,
//!   regardless of the baseline (a baseline that already carries a nonzero
//!   invariant is itself reported).
//! - **Gated counters** ([`GATED_COUNTERS`]): structural-movement volumes
//!   (rebuilds, retrains, ripples, upgrades) that are legal but expensive.
//!   The current value may not exceed
//!   `baseline + max(abs_slack, baseline * rel_tolerance)` — slack absorbs
//!   intended small drifts (a constant tweak) while catching order-of-
//!   magnitude regressions (a broken α-expansion that rebuilds per insert).
//!
//! - **Latency counts** ([`LATENCY_HISTOGRAMS`]): the histogram *counts*
//!   (how many batch applies, per-source group applies, and kernel
//!   invocations were recorded) are as deterministic as the structural
//!   counters — one record per event, events fixed by seed and scale — so
//!   they are gated by **exact equality**. The bucketed values themselves
//!   are wall-clock and never compared. A cell whose baseline carries
//!   histograms but whose current run records none fails (silent loss of
//!   latency coverage).
//!
//! Cells are matched by `(engine, dataset, batch_size)`; a baseline cell
//! missing from the current run is an error (losing coverage silently would
//! defeat the gate).

use crate::report::{parse_json, BenchReport, Json};
use lsgraph_api::LatencySnapshot;

/// Counters that must be **zero** in a correct build (see module docs).
///
/// Besides the paper-proved structural invariants, the fault-handling
/// counters (`apply_run_panics` and friends) belong here: a benchmark run
/// with failpoints disabled must never quarantine a vertex, so any nonzero
/// value means a *real* panic escaped into the batch pipeline.
pub const INVARIANT_COUNTERS: [&str; 9] = [
    "ria_bound_exceeded",
    "lia_vertical_premature",
    "apply_run_panics",
    "vertices_quarantined",
    "vertices_repaired",
    // A benchmark run writes and recovers its own WAL under controlled
    // shutdowns; discarding frames means the harness tore its own log.
    "recovery_frames_discarded",
    // Likewise for checkpoint images: every image a benchmark run writes is
    // fsynced before the shutdown, so a discarded (corrupt or orphaned)
    // image means the checkpoint writer or retention GC broke its own chain.
    "recovery_images_discarded",
    // Every experiment drops its snapshots and reclaims before sampling
    // stats, so a lingering backlog means retired block versions leaked.
    "epoch_reclaim_backlog",
    // Standing-query delivery runs with failpoints disabled in benchmarks,
    // so any quarantined subscription means a maintainer genuinely
    // panicked while absorbing a batch.
    "subscription_panics",
];

/// Counters gated against the baseline with tolerance (see module docs).
pub const GATED_COUNTERS: [&str; 21] = [
    "ria_rebuilds",
    "ria_ripples",
    "lia_model_retrains",
    "tier_upgrades",
    "hitree_node_upgrades",
    "wal_frames_appended",
    "wal_segments_rotated",
    "wal_segments_deleted",
    "delta_checkpoints_written",
    "recovery_frames_replayed",
    "snapshots_taken",
    "snapshots_retired",
    "cow_block_copies",
    "deltas_delivered",
    "delta_entries_emitted",
    // Search/compression layer (schema v8): probe and decode volumes are
    // deterministic per seed, but legal to drift slightly when constants
    // (chunk size, probe counts) are tuned — gate, don't pin.
    "search_scalar_probes",
    "search_block_probes",
    "compressed_chunks_decoded",
    "compressed_bytes_saved",
    "spill_compressions",
    "spill_thaws",
];

/// Latency histograms whose counts are gated by exact equality.
pub const LATENCY_HISTOGRAMS: [&str; 4] = ["batch_apply", "group_apply", "kernel", "reader"];

fn histogram_count(lat: &LatencySnapshot, name: &str) -> u64 {
    lat.fields()
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, h)| h.count())
        .unwrap_or(0)
}

/// Tolerances for the gated comparison.
#[derive(Clone, Copy, Debug)]
pub struct CheckOptions {
    /// Allowed relative growth over the baseline value (0.10 = +10%).
    pub rel_tolerance: f64,
    /// Absolute slack floor, so near-zero baselines aren't over-strict.
    pub abs_slack: u64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            rel_tolerance: 0.10,
            abs_slack: 8,
        }
    }
}

/// One violated rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Engine display name of the offending cell.
    pub engine: String,
    /// Dataset of the offending cell.
    pub dataset: String,
    /// Batch size of the offending cell.
    pub batch_size: usize,
    /// Counter name (empty for [`ViolationKind::MissingCell`]).
    pub counter: String,
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Baseline value (0 for missing-cell violations).
    pub baseline: u64,
    /// Current value (0 for missing-cell violations).
    pub current: u64,
    /// Largest current value the rule would have accepted.
    pub allowed: u64,
}

/// The rule a [`Violation`] broke.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// An invariant counter is nonzero in the current run.
    Invariant,
    /// A gated counter grew past the baseline plus tolerance.
    Regression,
    /// The current run has no cell matching a baseline cell.
    MissingCell,
    /// A latency histogram's count differs from the baseline's (counts are
    /// deterministic; equality is exact).
    LatencyCount,
}

impl ViolationKind {
    fn name(self) -> &'static str {
        match self {
            ViolationKind::Invariant => "invariant",
            ViolationKind::Regression => "regression",
            ViolationKind::MissingCell => "missing_cell",
            ViolationKind::LatencyCount => "latency_count",
        }
    }
}

impl Violation {
    /// One-line human rendering.
    pub fn human(&self) -> String {
        match self.kind {
            ViolationKind::MissingCell => format!(
                "[missing_cell] {}/{}/bs={}: baseline cell absent from current run",
                self.engine, self.dataset, self.batch_size
            ),
            ViolationKind::Invariant => format!(
                "[invariant] {}/{}/bs={}: {} = {} (must be 0)",
                self.engine, self.dataset, self.batch_size, self.counter, self.current
            ),
            ViolationKind::Regression => format!(
                "[regression] {}/{}/bs={}: {} = {} exceeds baseline {} + tolerance (allowed {})",
                self.engine,
                self.dataset,
                self.batch_size,
                self.counter,
                self.current,
                self.baseline,
                self.allowed
            ),
            ViolationKind::LatencyCount => format!(
                "[latency_count] {}/{}/bs={}: {} count = {} differs from baseline {} \
                 (counts are deterministic; must match exactly)",
                self.engine,
                self.dataset,
                self.batch_size,
                self.counter,
                self.current,
                self.baseline
            ),
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"kind\": \"{}\", \"engine\": \"{}\", \"dataset\": \"{}\", \"batch_size\": {}, \
             \"counter\": \"{}\", \"baseline\": {}, \"current\": {}, \"allowed\": {}}}",
            self.kind.name(),
            self.engine,
            self.dataset,
            self.batch_size,
            self.counter,
            self.baseline,
            self.current,
            self.allowed
        )
    }
}

/// Renders the verdict as a small JSON document (machine half of the
/// `repro check` output).
pub fn violations_json(experiment: &str, violations: &[Violation]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"experiment\": \"{experiment}\",\n"));
    out.push_str(&format!(
        "  \"ok\": {},\n",
        if violations.is_empty() {
            "true"
        } else {
            "false"
        }
    ));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(&v.json());
    }
    if !violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

fn field(fields: &[(&'static str, u64)], name: &str) -> u64 {
    fields
        .iter()
        .find(|(n, _)| *n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

/// Compares a fresh run against a baseline report. Pure function of the two
/// documents (no I/O), so perturbation tests can drive it directly.
pub fn compare(
    baseline: &BenchReport,
    current: &BenchReport,
    opts: CheckOptions,
) -> Vec<Violation> {
    let mut out = Vec::new();
    for b in &baseline.engines {
        let Some(c) = current.engines.iter().find(|c| {
            c.engine == b.engine && c.dataset == b.dataset && c.batch_size == b.batch_size
        }) else {
            out.push(Violation {
                engine: b.engine.clone(),
                dataset: b.dataset.clone(),
                batch_size: b.batch_size,
                counter: String::new(),
                kind: ViolationKind::MissingCell,
                baseline: 0,
                current: 0,
                allowed: 0,
            });
            continue;
        };
        // Latency-histogram counts: exact equality wherever the baseline
        // recorded histograms (a current run without them counts as 0 and
        // fails — silently losing latency coverage defeats the gate).
        if let Some(blat) = &b.latency {
            for name in LATENCY_HISTOGRAMS {
                let base = histogram_count(blat, name);
                let cur = c.latency.as_ref().map_or(0, |l| histogram_count(l, name));
                if cur != base {
                    out.push(Violation {
                        engine: b.engine.clone(),
                        dataset: b.dataset.clone(),
                        batch_size: b.batch_size,
                        counter: format!("latency.{name}"),
                        kind: ViolationKind::LatencyCount,
                        baseline: base,
                        current: cur,
                        allowed: base,
                    });
                }
            }
        }
        // Only cells with structural counters participate (baselines from
        // PMA-family engines carry OpCounters, which are workload-shaped
        // rather than invariant-bearing).
        let (Some(bs), Some(cs)) = (b.struct_stats, c.struct_stats) else {
            continue;
        };
        let bf = bs.fields();
        let cf = cs.fields();
        for name in INVARIANT_COUNTERS {
            let cur = field(&cf, name);
            if cur != 0 {
                out.push(Violation {
                    engine: b.engine.clone(),
                    dataset: b.dataset.clone(),
                    batch_size: b.batch_size,
                    counter: name.to_string(),
                    kind: ViolationKind::Invariant,
                    baseline: field(&bf, name),
                    current: cur,
                    allowed: 0,
                });
            }
        }
        for name in GATED_COUNTERS {
            let base = field(&bf, name);
            let cur = field(&cf, name);
            let slack = ((base as f64 * opts.rel_tolerance).ceil() as u64).max(opts.abs_slack);
            let allowed = base.saturating_add(slack);
            if cur > allowed {
                out.push(Violation {
                    engine: b.engine.clone(),
                    dataset: b.dataset.clone(),
                    batch_size: b.batch_size,
                    counter: name.to_string(),
                    kind: ViolationKind::Regression,
                    baseline: base,
                    current: cur,
                    allowed,
                });
            }
        }
    }
    out
}

fn jget<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn juint(j: &Json) -> Option<u64> {
    match j {
        Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 => Some(*x as u64),
        _ => None,
    }
}

/// Per-cell running state while walking a metrics JSONL stream.
struct CellState {
    cell: String,
    next_tick: u64,
    last_counters: Vec<(String, u64)>,
    last_gauges: Vec<(String, u64)>,
}

/// Validates a metrics JSONL time-series (`repro <exp> --metrics out.jsonl`)
/// against the properties the sampler guarantees:
///
/// - the header line carries the `lsgraph-metrics-v1` schema tag and a
///   `samples_expected` count that the file must hit **exactly** (the
///   sampler ticks once per writer round plus once at quiescence — a
///   deterministic function of the workload);
/// - per cell, ticks are contiguous from 0 (no dropped or duplicated
///   samples);
/// - every counter is monotone non-decreasing sample over sample (counters
///   only ever accumulate; a decrease means torn sampling or a reset
///   mid-run);
/// - the final sample of every cell reads `epoch_reclaim_backlog` = 0 (the
///   quiescence tick happens after drop-all + reclaim).
///
/// Returns human-readable violations; empty means the stream is clean.
pub fn check_metrics(text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let Some((_, header_line)) = lines.next() else {
        return vec!["metrics stream is empty (no header line)".to_string()];
    };
    let header = match parse_json(header_line) {
        Ok(Json::Obj(m)) => m,
        Ok(other) => return vec![format!("metrics header is not an object: {other:?}")],
        Err(e) => return vec![format!("metrics header is not valid JSON: {e}")],
    };
    match jget(&header, "schema") {
        Some(Json::Str(s)) if s == lsgraph_api::metrics::METRICS_SCHEMA => {}
        other => errs.push(format!(
            "metrics header schema must be \"{}\", got {other:?}",
            lsgraph_api::metrics::METRICS_SCHEMA
        )),
    }
    if !matches!(jget(&header, "experiment"), Some(Json::Str(_))) {
        errs.push("metrics header is missing the experiment name".to_string());
    }
    let expected = jget(&header, "samples_expected").and_then(juint);
    if expected.is_none() {
        errs.push("metrics header is missing samples_expected".to_string());
    }

    let mut cells: Vec<CellState> = Vec::new();
    let mut samples = 0u64;
    for (i, line) in lines {
        let lineno = i + 1;
        let obj = match parse_json(line) {
            Ok(Json::Obj(m)) => m,
            Ok(other) => {
                errs.push(format!("line {lineno}: sample is not an object: {other:?}"));
                continue;
            }
            Err(e) => {
                errs.push(format!("line {lineno}: invalid JSON: {e}"));
                continue;
            }
        };
        samples += 1;
        let Some(Json::Str(cell)) = jget(&obj, "cell") else {
            errs.push(format!("line {lineno}: sample has no cell label"));
            continue;
        };
        let Some(tick) = jget(&obj, "tick").and_then(juint) else {
            errs.push(format!("line {lineno}: sample has no integer tick"));
            continue;
        };
        let counters = match jget(&obj, "counters") {
            Some(Json::Obj(m)) => m
                .iter()
                .filter_map(|(k, v)| juint(v).map(|n| (k.clone(), n)))
                .collect::<Vec<_>>(),
            _ => {
                errs.push(format!("line {lineno}: sample has no counters object"));
                continue;
            }
        };
        let gauges = match jget(&obj, "gauges") {
            Some(Json::Obj(m)) => m
                .iter()
                .filter_map(|(k, v)| juint(v).map(|n| (k.clone(), n)))
                .collect::<Vec<_>>(),
            _ => {
                errs.push(format!("line {lineno}: sample has no gauges object"));
                continue;
            }
        };
        let state = match cells.iter_mut().find(|c| &c.cell == cell) {
            Some(s) => s,
            None => {
                cells.push(CellState {
                    cell: cell.clone(),
                    next_tick: 0,
                    last_counters: Vec::new(),
                    last_gauges: Vec::new(),
                });
                cells.last_mut().expect("just pushed")
            }
        };
        if tick != state.next_tick {
            errs.push(format!(
                "line {lineno}: cell {cell} tick {tick} is not contiguous (expected {})",
                state.next_tick
            ));
        }
        state.next_tick = tick + 1;
        for (name, prev) in &state.last_counters {
            match counters.iter().find(|(n, _)| n == name) {
                Some((_, cur)) if cur >= prev => {}
                Some((_, cur)) => errs.push(format!(
                    "line {lineno}: cell {cell} counter {name} decreased {prev} -> {cur} \
                     (counters must be monotone non-decreasing)"
                )),
                None => errs.push(format!(
                    "line {lineno}: cell {cell} counter {name} disappeared mid-stream"
                )),
            }
        }
        state.last_counters = counters;
        state.last_gauges = gauges;
    }

    if cells.is_empty() {
        errs.push("metrics stream has a header but no samples".to_string());
    }
    for state in &cells {
        let backlog = state
            .last_gauges
            .iter()
            .find(|(n, _)| n.ends_with("epoch_reclaim_backlog"));
        match backlog {
            Some((name, v)) if *v != 0 => errs.push(format!(
                "cell {}: final sample has {name} = {v} (must drain to 0 by quiescence)",
                state.cell
            )),
            Some(_) => {}
            None => errs.push(format!(
                "cell {}: final sample has no epoch_reclaim_backlog gauge",
                state.cell
            )),
        }
    }
    if let Some(expected) = expected {
        if samples != expected {
            errs.push(format!(
                "metrics stream has {samples} samples but the header promised exactly {expected}"
            ));
        }
    }
    errs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{EngineReport, SCHEMA_VERSION};
    use lsgraph_api::StructSnapshot;

    fn cell(engine: &str, ss: Option<StructSnapshot>) -> EngineReport {
        EngineReport {
            engine: engine.to_string(),
            dataset: "OR".to_string(),
            batch_size: 10,
            insert_eps: 1.0,
            delete_eps: 1.0,
            insert_nanos: 1,
            delete_nanos: 1,
            counters: None,
            struct_stats: ss,
            footprint: None,
            latency: None,
            kernels: Vec::new(),
            durability: None,
            mixed: None,
            standing: None,
            search: None,
        }
    }

    /// A latency snapshot with `n` batch applies (one 100ns sample each)
    /// and nothing else.
    fn lat(n: u64) -> lsgraph_api::LatencySnapshot {
        let h = lsgraph_api::LatencyHistogram::new();
        for _ in 0..n {
            h.record(100);
        }
        lsgraph_api::LatencySnapshot {
            batch_apply: h.snapshot(),
            group_apply: lsgraph_api::HistogramSnapshot::default(),
            kernel: lsgraph_api::HistogramSnapshot::default(),
            reader: lsgraph_api::HistogramSnapshot::default(),
        }
    }

    fn report(engines: Vec<EngineReport>) -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            experiment: "small".to_string(),
            base: 10,
            shift: 0,
            trials: 1,
            engines,
        }
    }

    fn stats(rebuilds: u64) -> StructSnapshot {
        StructSnapshot {
            ria_rebuilds: rebuilds,
            ria_ripples: 100,
            ..StructSnapshot::default()
        }
    }

    #[test]
    fn identical_runs_pass() {
        let b = report(vec![cell("LSGraph", Some(stats(10)))]);
        assert!(compare(&b, &b.clone(), CheckOptions::default()).is_empty());
    }

    #[test]
    fn small_drift_within_tolerance_passes() {
        let b = report(vec![cell("LSGraph", Some(stats(100)))]);
        // +10 rebuilds on a baseline of 100 = exactly the 10% tolerance.
        let c = report(vec![cell("LSGraph", Some(stats(110)))]);
        assert!(compare(&b, &c, CheckOptions::default()).is_empty());
    }

    #[test]
    fn perturbed_gated_counter_fails() {
        let b = report(vec![cell("LSGraph", Some(stats(10)))]);
        let c = report(vec![cell("LSGraph", Some(stats(100)))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Regression);
        assert_eq!(v[0].counter, "ria_rebuilds");
        assert_eq!(v[0].baseline, 10);
        assert_eq!(v[0].current, 100);
        assert_eq!(v[0].allowed, 18); // 10 + max(ceil(1), 8)
    }

    #[test]
    fn nonzero_invariant_fails_even_if_baseline_had_it() {
        let bad = StructSnapshot {
            ria_bound_exceeded: 1,
            ..StructSnapshot::default()
        };
        let b = report(vec![cell("LSGraph", Some(bad))]);
        let c = report(vec![cell("LSGraph", Some(bad))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Invariant);
        assert_eq!(v[0].counter, "ria_bound_exceeded");
    }

    #[test]
    fn nonzero_fault_counter_fails() {
        let b = report(vec![cell("LSGraph", Some(StructSnapshot::default()))]);
        let faulted = StructSnapshot {
            apply_run_panics: 2,
            vertices_quarantined: 2,
            ..StructSnapshot::default()
        };
        let c = report(vec![cell("LSGraph", Some(faulted))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.kind == ViolationKind::Invariant));
        assert!(v.iter().any(|x| x.counter == "apply_run_panics"));
        assert!(v.iter().any(|x| x.counter == "vertices_quarantined"));
    }

    #[test]
    fn missing_cell_fails() {
        let b = report(vec![cell("LSGraph", Some(stats(1))), cell("Terrace", None)]);
        let c = report(vec![cell("LSGraph", Some(stats(1)))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::MissingCell);
        assert_eq!(v[0].engine, "Terrace");
    }

    #[test]
    fn equal_latency_counts_pass() {
        let mut a = cell("LSGraph", Some(stats(10)));
        a.latency = Some(lat(7));
        let b = report(vec![a.clone()]);
        let c = report(vec![a]);
        assert!(compare(&b, &c, CheckOptions::default()).is_empty());
    }

    #[test]
    fn drifted_latency_count_fails_exactly() {
        let mut base = cell("LSGraph", Some(stats(10)));
        base.latency = Some(lat(7));
        let mut cur = cell("LSGraph", Some(stats(10)));
        // One extra batch apply: within any throughput tolerance, but the
        // count gate is exact.
        cur.latency = Some(lat(8));
        let v = compare(
            &report(vec![base]),
            &report(vec![cur]),
            CheckOptions::default(),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::LatencyCount);
        assert_eq!(v[0].counter, "latency.batch_apply");
        assert_eq!((v[0].baseline, v[0].current), (7, 8));
        assert!(v[0].human().contains("latency_count"));
    }

    #[test]
    fn losing_latency_coverage_fails() {
        let mut base = cell("LSGraph", Some(stats(10)));
        base.latency = Some(lat(3));
        let cur = cell("LSGraph", Some(stats(10)));
        let v = compare(
            &report(vec![base]),
            &report(vec![cur]),
            CheckOptions::default(),
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::LatencyCount);
        assert_eq!(v[0].current, 0);
    }

    #[test]
    fn torn_wal_counter_is_an_invariant() {
        let b = report(vec![cell("LSGraph", Some(StructSnapshot::default()))]);
        let torn = StructSnapshot {
            recovery_frames_discarded: 1,
            ..StructSnapshot::default()
        };
        let c = report(vec![cell("LSGraph", Some(torn))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Invariant);
        assert_eq!(v[0].counter, "recovery_frames_discarded");
    }

    #[test]
    fn discarded_image_counter_is_an_invariant() {
        let b = report(vec![cell("LSGraph", Some(StructSnapshot::default()))]);
        let broken = StructSnapshot {
            recovery_images_discarded: 1,
            ..StructSnapshot::default()
        };
        let c = report(vec![cell("LSGraph", Some(broken))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Invariant);
        assert_eq!(v[0].counter, "recovery_images_discarded");
    }

    #[test]
    fn rotation_and_delta_volumes_are_gated() {
        let base = StructSnapshot {
            wal_segments_rotated: 40,
            wal_segments_deleted: 30,
            delta_checkpoints_written: 10,
            ..StructSnapshot::default()
        };
        let blown = StructSnapshot {
            wal_segments_rotated: 400,
            wal_segments_deleted: 300,
            delta_checkpoints_written: 100,
            ..StructSnapshot::default()
        };
        let b = report(vec![cell("LSGraph+WAL/rotating", Some(base))]);
        let c = report(vec![cell("LSGraph+WAL/rotating", Some(blown))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| x.kind == ViolationKind::Regression));
        for name in [
            "wal_segments_rotated",
            "wal_segments_deleted",
            "delta_checkpoints_written",
        ] {
            assert!(v.iter().any(|x| x.counter == name), "missing {name}");
        }
    }

    #[test]
    fn wal_frame_volume_is_gated() {
        let base = StructSnapshot {
            wal_frames_appended: 100,
            ..StructSnapshot::default()
        };
        let blown = StructSnapshot {
            wal_frames_appended: 200,
            ..StructSnapshot::default()
        };
        let b = report(vec![cell("LSGraph", Some(base))]);
        let c = report(vec![cell("LSGraph", Some(blown))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Regression);
        assert_eq!(v[0].counter, "wal_frames_appended");
    }

    #[test]
    fn lingering_epoch_backlog_is_an_invariant() {
        let b = report(vec![cell("LSGraph", Some(StructSnapshot::default()))]);
        let leaked = StructSnapshot {
            epoch_reclaim_backlog: 3,
            ..StructSnapshot::default()
        };
        let c = report(vec![cell("LSGraph", Some(leaked))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Invariant);
        assert_eq!(v[0].counter, "epoch_reclaim_backlog");
    }

    #[test]
    fn snapshot_volume_is_gated() {
        let base = StructSnapshot {
            snapshots_taken: 32,
            snapshots_retired: 32,
            cow_block_copies: 1_000,
            ..StructSnapshot::default()
        };
        let blown = StructSnapshot {
            cow_block_copies: 10_000,
            ..base
        };
        let b = report(vec![cell("LSGraph", Some(base))]);
        let c = report(vec![cell("LSGraph", Some(blown))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Regression);
        assert_eq!(v[0].counter, "cow_block_copies");
    }

    #[test]
    fn subscription_panic_is_an_invariant() {
        let b = report(vec![cell("LSGraph", Some(StructSnapshot::default()))]);
        let panicked = StructSnapshot {
            subscription_panics: 1,
            ..StructSnapshot::default()
        };
        let c = report(vec![cell("LSGraph", Some(panicked))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].kind, ViolationKind::Invariant);
        assert_eq!(v[0].counter, "subscription_panics");
    }

    #[test]
    fn delta_volumes_are_gated() {
        let base = StructSnapshot {
            deltas_delivered: 100,
            delta_entries_emitted: 2_000,
            ..StructSnapshot::default()
        };
        let blown = StructSnapshot {
            deltas_delivered: 1_000,
            delta_entries_emitted: 20_000,
            ..StructSnapshot::default()
        };
        let b = report(vec![cell("LSGraph", Some(base))]);
        let c = report(vec![cell("LSGraph", Some(blown))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 2);
        assert!(v.iter().all(|x| x.kind == ViolationKind::Regression));
        assert!(v.iter().any(|x| x.counter == "deltas_delivered"));
        assert!(v.iter().any(|x| x.counter == "delta_entries_emitted"));
    }

    #[test]
    fn search_and_compression_volumes_are_gated() {
        let base = StructSnapshot {
            search_scalar_probes: 120_000,
            search_block_probes: 120_000,
            compressed_chunks_decoded: 30_000,
            compressed_bytes_saved: 200_000,
            spill_compressions: 9,
            spill_thaws: 2,
            ..StructSnapshot::default()
        };
        let blown = StructSnapshot {
            search_scalar_probes: 1_200_000,
            search_block_probes: 1_200_000,
            compressed_chunks_decoded: 300_000,
            compressed_bytes_saved: 2_000_000,
            spill_compressions: 90,
            spill_thaws: 40,
            ..StructSnapshot::default()
        };
        let b = report(vec![cell("LSGraph+Search", Some(base))]);
        let c = report(vec![cell("LSGraph+Search", Some(blown))]);
        let v = compare(&b, &c, CheckOptions::default());
        assert_eq!(v.len(), 6, "{v:?}");
        assert!(v.iter().all(|x| x.kind == ViolationKind::Regression));
        for name in [
            "search_scalar_probes",
            "search_block_probes",
            "compressed_chunks_decoded",
            "compressed_bytes_saved",
            "spill_compressions",
            "spill_thaws",
        ] {
            assert!(v.iter().any(|x| x.counter == name), "missing {name}");
        }
    }

    #[test]
    fn cells_without_struct_stats_are_skipped() {
        let b = report(vec![cell("Aspen", None)]);
        let c = report(vec![cell("Aspen", None)]);
        assert!(compare(&b, &c, CheckOptions::default()).is_empty());
    }

    /// Builds one metrics sample line by hand (the sampler's wire format).
    fn sample_line(cell: &str, tick: u64, ripples: u64, backlog: u64) -> String {
        format!(
            "{{\"cell\":\"{cell}\",\"tick\":{tick},\"elapsed_ns\":12345,\"writer_eps\":1.5,\
             \"counters\":{{\"lsgraph_ria_ripples\":{ripples}}},\
             \"gauges\":{{\"lsgraph_epoch_reclaim_backlog\":{backlog}}},\"histograms\":{{}}}}"
        )
    }

    fn metrics_doc(samples: &[String]) -> String {
        let mut doc = format!(
            "{{\"schema\":\"lsgraph-metrics-v1\",\"experiment\":\"mixed\",\
             \"samples_expected\":{}}}\n",
            samples.len()
        );
        for s in samples {
            doc.push_str(s);
            doc.push('\n');
        }
        doc
    }

    #[test]
    fn clean_metrics_stream_passes() {
        let doc = metrics_doc(&[
            sample_line("OR/bs=16", 0, 5, 2),
            sample_line("OR/bs=16", 1, 9, 1),
            sample_line("OR/bs=32", 0, 3, 4),
            sample_line("OR/bs=16", 2, 9, 0),
            sample_line("OR/bs=32", 1, 3, 0),
        ]);
        assert_eq!(check_metrics(&doc), Vec::<String>::new());
    }

    #[test]
    fn decreasing_counter_fails_monotonicity() {
        let doc = metrics_doc(&[
            sample_line("OR/bs=16", 0, 9, 0),
            sample_line("OR/bs=16", 1, 5, 0),
        ]);
        let errs = check_metrics(&doc);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("decreased 9 -> 5"), "{errs:?}");
    }

    #[test]
    fn lingering_final_backlog_fails() {
        let doc = metrics_doc(&[
            sample_line("OR/bs=16", 0, 1, 3),
            sample_line("OR/bs=16", 1, 2, 3),
        ]);
        let errs = check_metrics(&doc);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("must drain to 0"), "{errs:?}");
    }

    #[test]
    fn sample_count_must_match_header_exactly() {
        let mut doc = metrics_doc(&[sample_line("OR/bs=16", 0, 1, 0)]);
        // Promise two samples, deliver one.
        doc = doc.replace("\"samples_expected\":1", "\"samples_expected\":2");
        let errs = check_metrics(&doc);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("promised exactly 2"), "{errs:?}");
    }

    #[test]
    fn non_contiguous_ticks_fail() {
        let doc = metrics_doc(&[
            sample_line("OR/bs=16", 0, 1, 0),
            sample_line("OR/bs=16", 2, 2, 0),
        ]);
        let errs = check_metrics(&doc);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("not contiguous"), "{errs:?}");
    }

    #[test]
    fn wrong_schema_and_empty_stream_fail() {
        assert!(!check_metrics("").is_empty());
        let bad = "{\"schema\":\"something-else\",\"experiment\":\"mixed\",\
                   \"samples_expected\":0}\n";
        let errs = check_metrics(bad);
        assert!(errs.iter().any(|e| e.contains("schema")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("no samples")), "{errs:?}");
    }

    #[test]
    fn json_output_is_parseable_and_flags_ok() {
        let b = report(vec![cell("LSGraph", Some(stats(10)))]);
        let c = report(vec![cell("LSGraph", Some(stats(100)))]);
        let v = compare(&b, &c, CheckOptions::default());
        let doc = violations_json("small", &v);
        let parsed = crate::report::parse_json(&doc).expect("valid JSON");
        let s = format!("{parsed:?}");
        assert!(s.contains("ria_rebuilds"));
        assert!(doc.contains("\"ok\": false"));
        let clean = violations_json("small", &[]);
        assert!(clean.contains("\"ok\": true"));
        crate::report::parse_json(&clean).expect("valid JSON");
    }
}
