//! Machine-readable benchmark reports (`BENCH_<experiment>.json`).
//!
//! The schema is pinned by [`CounterSnapshot::fields`] and
//! [`StructSnapshot::fields`]: the writer emits exactly those names in
//! exactly that order, so downstream trajectory tooling can diff reports
//! across commits. Count fields are deterministic for a fixed RMAT seed
//! (batch application partitions work into disjoint per-source runs);
//! `*_nanos` fields and throughput are wall-clock and vary run to run.
//!
//! No serde in the dependency tree, so serialization is hand-rolled: a
//! writer with a fixed field order plus a small recursive-descent JSON
//! parser for round-tripping in tests and external tooling.

use lsgraph_api::{CounterSnapshot, HistogramSnapshot, LatencySnapshot, StructSnapshot};

/// Report schema version; bump when renaming or removing fields.
///
/// v2 adds per-engine `footprint` (payload/index split + space
/// amplification), `latency` (log2-bucketed histograms with derived
/// p50/p90/p99), and `kernels` (per-kernel wall time). All three are
/// *additive*: [`BenchReport::from_json`] still accepts v1 documents, where
/// they parse as `None`/empty.
///
/// v3 adds the fault-handling structural counters (`apply_run_panics`,
/// `vertices_quarantined`, `vertices_repaired`) to `struct_stats`. Also
/// additive: older documents parse with those counters at zero.
///
/// v4 adds the durability layer: the WAL/checkpoint/recovery counters
/// (`wal_frames_appended`, `checkpoint_bytes`, `recovery_frames_replayed`,
/// `recovery_frames_discarded`) to `struct_stats`, and a per-engine
/// `durability` object (WAL append throughput, checkpoint size/time,
/// recovery replay rate) emitted by the `durability` experiment. Additive:
/// v1–v3 documents parse with the counters at zero and `durability` as
/// `None`.
///
/// v5 adds the snapshot read layer: the snapshot/epoch structural counters
/// (`snapshots_taken`, `snapshots_retired`, `cow_block_copies`,
/// `epoch_reclaim_backlog`) to `struct_stats`, a `reader` histogram
/// (per-read-op latency on snapshots under write load) to `latency`, and a
/// per-engine `mixed` object (concurrent reader/writer throughput) emitted
/// by the `mixed` experiment. Additive: v1–v4 documents parse with the
/// counters at zero, `reader` empty, and `mixed` as `None`.
///
/// v6 adds durability-at-scale: WAL segment rotation and retention GC
/// counters (`wal_segments_rotated`, `wal_segments_deleted`,
/// `delta_checkpoints_written`) plus the `checkpoint_dirty_vertices` and
/// `wal_live_bytes` gauges to the `durability` object, mirroring the new
/// `struct_stats` counters of the same names. Additive: v1–v5 documents
/// parse with the new `durability` fields at zero.
///
/// v7 adds the standing-query subscription layer: the subscription counters
/// (`subscriptions_active`, `deltas_delivered`, `delta_entries_emitted`,
/// `subscription_panics`) to `struct_stats`, and a per-engine `standing`
/// object (delta-delivery vs full-recomputation cost) emitted by the
/// `standing` experiment. Additive: v1–v6 documents parse with the counters
/// at zero and `standing` as `None`.
///
/// v8 adds the search/compression layer: the probe and compressed-tier
/// counters (`search_scalar_probes`, `search_block_probes`,
/// `compressed_chunks_decoded`, `compressed_bytes_saved`,
/// `spill_compressions`, `spill_thaws`) to `struct_stats`, and a per-engine
/// `search` object (scalar vs block-probe microbench plus compressed-tier
/// decode cost) emitted by the `search` experiment. Additive: v1–v7
/// documents parse with the counters at zero and `search` as `None`.
pub const SCHEMA_VERSION: u32 = 8;

/// Memory footprint of one engine after the measured updates (schema v2).
#[derive(Clone, Debug, PartialEq)]
pub struct FootprintReport {
    /// Bytes holding edge payload (adjacency data, including gaps).
    pub payload_bytes: u64,
    /// Bytes holding index structures (RIA index arrays, LIA models, ...).
    pub index_bytes: u64,
    /// Measured space amplification: payload bytes per 4-byte edge slot,
    /// i.e. `payload_bytes / (4 * num_edges)` (0 when the graph is empty).
    pub space_amp_measured: f64,
    /// The configured amplification bound α, when the engine has one
    /// (LSGraph's RIA gap factor); 0 means "not applicable".
    pub space_amp_alpha: f64,
}

/// Durability measurements for one engine cell (schema v4; only the
/// `durability` experiment populates it).
#[derive(Clone, Debug, PartialEq)]
pub struct DurabilityReport {
    /// Frames appended to the WAL during the cell (measured rounds plus
    /// the post-checkpoint tail the recovery replays).
    pub wal_frames: u64,
    /// WAL bytes written during the cell.
    pub wal_bytes: u64,
    /// Logged-update throughput: edges per second through WAL append +
    /// group commit + the in-memory apply.
    pub wal_append_eps: f64,
    /// Size of the checkpoint image written at the end of the cell.
    pub checkpoint_bytes: u64,
    /// Wall time of that checkpoint (includes the covering WAL sync).
    pub checkpoint_nanos: u64,
    /// Wall time of the recovery that reopened the store.
    pub recovery_nanos: u64,
    /// WAL frames replayed by that recovery.
    pub replay_frames: u64,
    /// Replay throughput: edges per second through the recovery path.
    pub replay_eps: f64,
    /// WAL segments sealed and rotated during the cell (schema v6).
    pub wal_segments_rotated: u64,
    /// WAL segments deleted by retention GC during the cell (schema v6).
    pub wal_segments_deleted: u64,
    /// Delta (dirty-vertex-only) checkpoint images written (schema v6).
    pub delta_checkpoints_written: u64,
    /// Dirty vertices captured by the last checkpoint of the cell
    /// (schema v6 gauge).
    pub checkpoint_dirty_vertices: u64,
    /// Live on-disk WAL bytes across all segments at the end of the cell
    /// (schema v6 gauge; bounded when rotation + retention are active).
    pub wal_live_bytes: u64,
}

/// Concurrent reader/writer measurements for one engine cell (schema v5;
/// only the `mixed` experiment populates it). Reader latency percentiles
/// ride the `reader` histogram in the engine's `latency` object.
#[derive(Clone, Debug, PartialEq)]
pub struct MixedReport {
    /// Update batches the writer applied during the measured window.
    pub writer_batches: u64,
    /// Edges in those batches (insert + delete).
    pub writer_edges: u64,
    /// Writer throughput while readers ran: edges per second.
    pub writer_eps: f64,
    /// Concurrent reader threads.
    pub reader_threads: u64,
    /// Total read operations completed across all readers (fixed per
    /// thread, so this count is deterministic and gateable).
    pub reader_ops: u64,
    /// Aggregate reader throughput: operations per second.
    pub reader_ops_per_sec: f64,
    /// Snapshots flipped during the window (one per writer batch).
    pub snapshots_taken: u64,
    /// Blocks copied on write because a snapshot still shared them.
    pub cow_block_copies: u64,
    /// Epoch-reclamation backlog after the last snapshot dropped — 0 by
    /// the quiescence invariant, gated by `repro check`.
    pub final_backlog: u64,
}

/// Standing-query measurements for one engine cell (schema v7; only the
/// `standing` experiment populates it). Compares incremental per-batch
/// delta delivery against re-running the full kernels after every batch.
#[derive(Clone, Debug, PartialEq)]
pub struct StandingReport {
    /// Standing queries registered for the cell.
    pub subscriptions: u64,
    /// Update batches committed while the subscriptions were live.
    pub batches: u64,
    /// Result deltas delivered (one per live subscription per batch, plus
    /// registration bootstraps; deterministic and gateable).
    pub deltas_delivered: u64,
    /// Total added/removed/changed entries across those deltas
    /// (deterministic and gateable).
    pub delta_entries: u64,
    /// Wall time spent delivering deltas incrementally (the worker's
    /// drain time across all batches).
    pub delivery_nanos: u64,
    /// Wall time re-running every subscription's from-scratch oracle after
    /// every batch — what the subscriptions replace.
    pub recompute_nanos: u64,
    /// `recompute_nanos / delivery_nanos` (0 when delivery took no
    /// measurable time).
    pub speedup: f64,
    /// Delivery panics — 0 by the quarantine invariant, gated by
    /// `repro check`.
    pub subscription_panics: u64,
    /// Epoch-reclamation backlog after the hub quiesced and reclaim ran —
    /// 0 by the quiescence invariant, gated by `repro check`.
    pub final_backlog: u64,
}

/// Intra-block search and compressed-tier measurements for one engine cell
/// (schema v8; only the `search` experiment populates it). Probes are run
/// over identical sorted blocks with both the scalar baseline
/// (`partition_point`-style binary search) and the branch-free block
/// search, so the nanos columns are directly comparable.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchReport {
    /// Membership probes issued per block size (same for scalar and block).
    pub probes_per_size: u64,
    /// Scalar probe wall time over the small (inline-sized, 16) blocks.
    pub scalar_small_nanos: u64,
    /// Block-search probe wall time over the small blocks.
    pub block_small_nanos: u64,
    /// Scalar probe wall time over the medium (RIA-block-sized, 256) blocks.
    pub scalar_medium_nanos: u64,
    /// Block-search probe wall time over the medium blocks.
    pub block_medium_nanos: u64,
    /// Scalar probe wall time over the large (spill-sized, 4096) blocks.
    pub scalar_large_nanos: u64,
    /// Block-search probe wall time over the large blocks.
    pub block_large_nanos: u64,
    /// Membership probes issued against the compressed cold tier.
    pub decode_probes: u64,
    /// Wall time of those compressed-tier probes (skip-pointer search plus
    /// at most one chunk decode each).
    pub decode_nanos: u64,
    /// Bytes the compressed tier stores for the probed adjacency sets.
    pub compressed_bytes: u64,
    /// Bytes the same sets occupy as raw `u32` arrays.
    pub raw_bytes: u64,
}

/// Wall time of one analytics kernel on one engine (schema v2).
#[derive(Clone, Debug, PartialEq)]
pub struct KernelTime {
    /// Kernel name (`bfs`, `bc`, ...).
    pub name: String,
    /// Total wall-clock nanoseconds across the experiment's runs.
    pub wall_nanos: u64,
}

/// One engine × dataset × batch-size measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct EngineReport {
    /// Engine display name (`EngineKind::name`).
    pub engine: String,
    /// Dataset profile name.
    pub dataset: String,
    /// Edges per update batch.
    pub batch_size: usize,
    /// Insert throughput, edges per second.
    pub insert_eps: f64,
    /// Delete throughput, edges per second.
    pub delete_eps: f64,
    /// Wall-clock insert time across all trials, nanoseconds.
    pub insert_nanos: u64,
    /// Wall-clock delete time across all trials, nanoseconds.
    pub delete_nanos: u64,
    /// Update-path operation counters (None when the engine records none).
    pub counters: Option<CounterSnapshot>,
    /// Structural counters (LSGraph only).
    pub struct_stats: Option<StructSnapshot>,
    /// Memory footprint split + space amplification (schema v2; None in v1
    /// documents).
    pub footprint: Option<FootprintReport>,
    /// Latency histograms (schema v2; engines without histograms — and all
    /// v1 documents — have None).
    pub latency: Option<LatencySnapshot>,
    /// Per-kernel wall times (schema v2; empty for update-only experiments
    /// and v1 documents).
    pub kernels: Vec<KernelTime>,
    /// WAL/checkpoint/recovery measurements (schema v4; None everywhere
    /// except the `durability` experiment and in v1–v3 documents).
    pub durability: Option<DurabilityReport>,
    /// Concurrent reader/writer measurements (schema v5; None everywhere
    /// except the `mixed` experiment and in v1–v4 documents).
    pub mixed: Option<MixedReport>,
    /// Standing-query measurements (schema v7; None everywhere except the
    /// `standing` experiment and in v1–v6 documents).
    pub standing: Option<StandingReport>,
    /// Intra-block search microbench (schema v8; None everywhere except the
    /// `search` experiment and in v1–v7 documents).
    pub search: Option<SearchReport>,
}

/// A full experiment report.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Schema version ([`SCHEMA_VERSION`] at write time).
    pub schema_version: u32,
    /// Experiment id (`fig12`, `small`, ...).
    pub experiment: String,
    /// log2 of the base-graph vertex count.
    pub base: u32,
    /// Extra powers of two applied to sizes.
    pub shift: u32,
    /// Trials per measurement.
    pub trials: usize,
    /// One entry per engine × dataset × batch size.
    pub engines: Vec<EngineReport>,
}

impl BenchReport {
    /// File name the report is written to (`BENCH_<experiment>.json`).
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.experiment)
    }

    /// Serializes with the pinned field order.
    pub fn to_json(&self) -> String {
        let mut w = Writer::new();
        w.open('{');
        w.field("schema_version");
        w.raw(&self.schema_version.to_string());
        w.field("experiment");
        w.string(&self.experiment);
        w.field("base");
        w.raw(&self.base.to_string());
        w.field("shift");
        w.raw(&self.shift.to_string());
        w.field("trials");
        w.raw(&self.trials.to_string());
        w.field("engines");
        w.open('[');
        for e in &self.engines {
            w.item();
            w.open('{');
            w.field("engine");
            w.string(&e.engine);
            w.field("dataset");
            w.string(&e.dataset);
            w.field("batch_size");
            w.raw(&e.batch_size.to_string());
            w.field("insert_eps");
            w.raw(&fmt_f64(e.insert_eps));
            w.field("delete_eps");
            w.raw(&fmt_f64(e.delete_eps));
            w.field("insert_nanos");
            w.raw(&e.insert_nanos.to_string());
            w.field("delete_nanos");
            w.raw(&e.delete_nanos.to_string());
            w.field("counters");
            match e.counters {
                None => w.raw("null"),
                Some(c) => {
                    w.open('{');
                    for (name, v) in c.fields() {
                        w.field(name);
                        w.raw(&v.to_string());
                    }
                    w.close('}');
                }
            }
            w.field("struct_stats");
            match e.struct_stats {
                None => w.raw("null"),
                Some(s) => {
                    w.open('{');
                    for (name, v) in s.fields() {
                        w.field(name);
                        w.raw(&v.to_string());
                    }
                    w.close('}');
                }
            }
            w.field("footprint");
            match &e.footprint {
                None => w.raw("null"),
                Some(fp) => {
                    w.open('{');
                    w.field("payload_bytes");
                    w.raw(&fp.payload_bytes.to_string());
                    w.field("index_bytes");
                    w.raw(&fp.index_bytes.to_string());
                    w.field("space_amp_measured");
                    w.raw(&fmt_f64(fp.space_amp_measured));
                    w.field("space_amp_alpha");
                    w.raw(&fmt_f64(fp.space_amp_alpha));
                    w.close('}');
                }
            }
            w.field("latency");
            match &e.latency {
                None => w.raw("null"),
                Some(lat) => {
                    w.open('{');
                    for (name, h) in lat.fields() {
                        w.field(name);
                        write_histogram(&mut w, h);
                    }
                    w.close('}');
                }
            }
            w.field("kernels");
            w.open('[');
            for k in &e.kernels {
                w.item();
                w.open('{');
                w.field("name");
                w.string(&k.name);
                w.field("wall_nanos");
                w.raw(&k.wall_nanos.to_string());
                w.close('}');
            }
            w.close(']');
            w.field("durability");
            match &e.durability {
                None => w.raw("null"),
                Some(d) => {
                    w.open('{');
                    w.field("wal_frames");
                    w.raw(&d.wal_frames.to_string());
                    w.field("wal_bytes");
                    w.raw(&d.wal_bytes.to_string());
                    w.field("wal_append_eps");
                    w.raw(&fmt_f64(d.wal_append_eps));
                    w.field("checkpoint_bytes");
                    w.raw(&d.checkpoint_bytes.to_string());
                    w.field("checkpoint_nanos");
                    w.raw(&d.checkpoint_nanos.to_string());
                    w.field("recovery_nanos");
                    w.raw(&d.recovery_nanos.to_string());
                    w.field("replay_frames");
                    w.raw(&d.replay_frames.to_string());
                    w.field("replay_eps");
                    w.raw(&fmt_f64(d.replay_eps));
                    w.field("wal_segments_rotated");
                    w.raw(&d.wal_segments_rotated.to_string());
                    w.field("wal_segments_deleted");
                    w.raw(&d.wal_segments_deleted.to_string());
                    w.field("delta_checkpoints_written");
                    w.raw(&d.delta_checkpoints_written.to_string());
                    w.field("checkpoint_dirty_vertices");
                    w.raw(&d.checkpoint_dirty_vertices.to_string());
                    w.field("wal_live_bytes");
                    w.raw(&d.wal_live_bytes.to_string());
                    w.close('}');
                }
            }
            w.field("mixed");
            match &e.mixed {
                None => w.raw("null"),
                Some(m) => {
                    w.open('{');
                    w.field("writer_batches");
                    w.raw(&m.writer_batches.to_string());
                    w.field("writer_edges");
                    w.raw(&m.writer_edges.to_string());
                    w.field("writer_eps");
                    w.raw(&fmt_f64(m.writer_eps));
                    w.field("reader_threads");
                    w.raw(&m.reader_threads.to_string());
                    w.field("reader_ops");
                    w.raw(&m.reader_ops.to_string());
                    w.field("reader_ops_per_sec");
                    w.raw(&fmt_f64(m.reader_ops_per_sec));
                    w.field("snapshots_taken");
                    w.raw(&m.snapshots_taken.to_string());
                    w.field("cow_block_copies");
                    w.raw(&m.cow_block_copies.to_string());
                    w.field("final_backlog");
                    w.raw(&m.final_backlog.to_string());
                    w.close('}');
                }
            }
            w.field("standing");
            match &e.standing {
                None => w.raw("null"),
                Some(s) => {
                    w.open('{');
                    w.field("subscriptions");
                    w.raw(&s.subscriptions.to_string());
                    w.field("batches");
                    w.raw(&s.batches.to_string());
                    w.field("deltas_delivered");
                    w.raw(&s.deltas_delivered.to_string());
                    w.field("delta_entries");
                    w.raw(&s.delta_entries.to_string());
                    w.field("delivery_nanos");
                    w.raw(&s.delivery_nanos.to_string());
                    w.field("recompute_nanos");
                    w.raw(&s.recompute_nanos.to_string());
                    w.field("speedup");
                    w.raw(&fmt_f64(s.speedup));
                    w.field("subscription_panics");
                    w.raw(&s.subscription_panics.to_string());
                    w.field("final_backlog");
                    w.raw(&s.final_backlog.to_string());
                    w.close('}');
                }
            }
            w.field("search");
            match &e.search {
                None => w.raw("null"),
                Some(s) => {
                    w.open('{');
                    w.field("probes_per_size");
                    w.raw(&s.probes_per_size.to_string());
                    w.field("scalar_small_nanos");
                    w.raw(&s.scalar_small_nanos.to_string());
                    w.field("block_small_nanos");
                    w.raw(&s.block_small_nanos.to_string());
                    w.field("scalar_medium_nanos");
                    w.raw(&s.scalar_medium_nanos.to_string());
                    w.field("block_medium_nanos");
                    w.raw(&s.block_medium_nanos.to_string());
                    w.field("scalar_large_nanos");
                    w.raw(&s.scalar_large_nanos.to_string());
                    w.field("block_large_nanos");
                    w.raw(&s.block_large_nanos.to_string());
                    w.field("decode_probes");
                    w.raw(&s.decode_probes.to_string());
                    w.field("decode_nanos");
                    w.raw(&s.decode_nanos.to_string());
                    w.field("compressed_bytes");
                    w.raw(&s.compressed_bytes.to_string());
                    w.field("raw_bytes");
                    w.raw(&s.raw_bytes.to_string());
                    w.close('}');
                }
            }
            w.close('}');
        }
        w.close(']');
        w.close('}');
        w.finish()
    }

    /// Parses a report previously produced by [`BenchReport::to_json`].
    pub fn from_json(text: &str) -> Result<BenchReport, String> {
        let v = parse_json(text)?;
        let top = v.as_object("top level")?;
        let engines = get(top, "engines")?
            .as_array("engines")?
            .iter()
            .map(|e| {
                let o = e.as_object("engine entry")?;
                Ok(EngineReport {
                    engine: get(o, "engine")?.as_str("engine")?.to_string(),
                    dataset: get(o, "dataset")?.as_str("dataset")?.to_string(),
                    batch_size: get(o, "batch_size")?.as_u64("batch_size")? as usize,
                    insert_eps: get(o, "insert_eps")?.as_f64("insert_eps")?,
                    delete_eps: get(o, "delete_eps")?.as_f64("delete_eps")?,
                    insert_nanos: get(o, "insert_nanos")?.as_u64("insert_nanos")?,
                    delete_nanos: get(o, "delete_nanos")?.as_u64("delete_nanos")?,
                    counters: match get(o, "counters")? {
                        Json::Null => None,
                        c => Some(CounterSnapshot::from_fields(u64_pairs(
                            c.as_object("counters")?,
                        )?)?),
                    },
                    struct_stats: match get(o, "struct_stats")? {
                        Json::Null => None,
                        s => Some(StructSnapshot::from_fields(u64_pairs(
                            s.as_object("struct_stats")?,
                        )?)?),
                    },
                    // v2 fields: absent in v1 documents.
                    footprint: match get_opt(o, "footprint") {
                        None | Some(Json::Null) => None,
                        Some(fp) => {
                            let fo = fp.as_object("footprint")?;
                            Some(FootprintReport {
                                payload_bytes: get(fo, "payload_bytes")?.as_u64("payload_bytes")?,
                                index_bytes: get(fo, "index_bytes")?.as_u64("index_bytes")?,
                                space_amp_measured: get(fo, "space_amp_measured")?
                                    .as_f64("space_amp_measured")?,
                                space_amp_alpha: get(fo, "space_amp_alpha")?
                                    .as_f64("space_amp_alpha")?,
                            })
                        }
                    },
                    latency: match get_opt(o, "latency") {
                        None | Some(Json::Null) => None,
                        Some(lat) => {
                            let lo = lat.as_object("latency")?;
                            Some(LatencySnapshot {
                                batch_apply: parse_histogram(get(lo, "batch_apply")?)?,
                                group_apply: parse_histogram(get(lo, "group_apply")?)?,
                                kernel: parse_histogram(get(lo, "kernel")?)?,
                                // v5 histogram: absent in v1–v4 documents.
                                reader: match get_opt(lo, "reader") {
                                    None | Some(Json::Null) => HistogramSnapshot::default(),
                                    Some(h) => parse_histogram(h)?,
                                },
                            })
                        }
                    },
                    kernels: match get_opt(o, "kernels") {
                        None | Some(Json::Null) => Vec::new(),
                        Some(ks) => ks
                            .as_array("kernels")?
                            .iter()
                            .map(|k| {
                                let ko = k.as_object("kernel entry")?;
                                Ok(KernelTime {
                                    name: get(ko, "name")?.as_str("name")?.to_string(),
                                    wall_nanos: get(ko, "wall_nanos")?.as_u64("wall_nanos")?,
                                })
                            })
                            .collect::<Result<Vec<_>, String>>()?,
                    },
                    // v4 field: absent in v1–v3 documents.
                    durability: match get_opt(o, "durability") {
                        None | Some(Json::Null) => None,
                        Some(d) => {
                            let dd = d.as_object("durability")?;
                            Some(DurabilityReport {
                                wal_frames: get(dd, "wal_frames")?.as_u64("wal_frames")?,
                                wal_bytes: get(dd, "wal_bytes")?.as_u64("wal_bytes")?,
                                wal_append_eps: get(dd, "wal_append_eps")?
                                    .as_f64("wal_append_eps")?,
                                checkpoint_bytes: get(dd, "checkpoint_bytes")?
                                    .as_u64("checkpoint_bytes")?,
                                checkpoint_nanos: get(dd, "checkpoint_nanos")?
                                    .as_u64("checkpoint_nanos")?,
                                recovery_nanos: get(dd, "recovery_nanos")?
                                    .as_u64("recovery_nanos")?,
                                replay_frames: get(dd, "replay_frames")?.as_u64("replay_frames")?,
                                replay_eps: get(dd, "replay_eps")?.as_f64("replay_eps")?,
                                // v6 fields: absent (zero) in v4–v5 documents.
                                wal_segments_rotated: u64_or_zero(dd, "wal_segments_rotated")?,
                                wal_segments_deleted: u64_or_zero(dd, "wal_segments_deleted")?,
                                delta_checkpoints_written: u64_or_zero(
                                    dd,
                                    "delta_checkpoints_written",
                                )?,
                                checkpoint_dirty_vertices: u64_or_zero(
                                    dd,
                                    "checkpoint_dirty_vertices",
                                )?,
                                wal_live_bytes: u64_or_zero(dd, "wal_live_bytes")?,
                            })
                        }
                    },
                    // v5 field: absent in v1–v4 documents.
                    mixed: match get_opt(o, "mixed") {
                        None | Some(Json::Null) => None,
                        Some(m) => {
                            let mo = m.as_object("mixed")?;
                            Some(MixedReport {
                                writer_batches: get(mo, "writer_batches")?
                                    .as_u64("writer_batches")?,
                                writer_edges: get(mo, "writer_edges")?.as_u64("writer_edges")?,
                                writer_eps: get(mo, "writer_eps")?.as_f64("writer_eps")?,
                                reader_threads: get(mo, "reader_threads")?
                                    .as_u64("reader_threads")?,
                                reader_ops: get(mo, "reader_ops")?.as_u64("reader_ops")?,
                                reader_ops_per_sec: get(mo, "reader_ops_per_sec")?
                                    .as_f64("reader_ops_per_sec")?,
                                snapshots_taken: get(mo, "snapshots_taken")?
                                    .as_u64("snapshots_taken")?,
                                cow_block_copies: get(mo, "cow_block_copies")?
                                    .as_u64("cow_block_copies")?,
                                final_backlog: get(mo, "final_backlog")?.as_u64("final_backlog")?,
                            })
                        }
                    },
                    // v7 field: absent in v1–v6 documents.
                    standing: match get_opt(o, "standing") {
                        None | Some(Json::Null) => None,
                        Some(s) => {
                            let so = s.as_object("standing")?;
                            Some(StandingReport {
                                subscriptions: get(so, "subscriptions")?.as_u64("subscriptions")?,
                                batches: get(so, "batches")?.as_u64("batches")?,
                                deltas_delivered: get(so, "deltas_delivered")?
                                    .as_u64("deltas_delivered")?,
                                delta_entries: get(so, "delta_entries")?.as_u64("delta_entries")?,
                                delivery_nanos: get(so, "delivery_nanos")?
                                    .as_u64("delivery_nanos")?,
                                recompute_nanos: get(so, "recompute_nanos")?
                                    .as_u64("recompute_nanos")?,
                                speedup: get(so, "speedup")?.as_f64("speedup")?,
                                subscription_panics: get(so, "subscription_panics")?
                                    .as_u64("subscription_panics")?,
                                final_backlog: get(so, "final_backlog")?.as_u64("final_backlog")?,
                            })
                        }
                    },
                    // v8 field: absent in v1–v7 documents.
                    search: match get_opt(o, "search") {
                        None | Some(Json::Null) => None,
                        Some(s) => {
                            let so = s.as_object("search")?;
                            Some(SearchReport {
                                probes_per_size: get(so, "probes_per_size")?
                                    .as_u64("probes_per_size")?,
                                scalar_small_nanos: get(so, "scalar_small_nanos")?
                                    .as_u64("scalar_small_nanos")?,
                                block_small_nanos: get(so, "block_small_nanos")?
                                    .as_u64("block_small_nanos")?,
                                scalar_medium_nanos: get(so, "scalar_medium_nanos")?
                                    .as_u64("scalar_medium_nanos")?,
                                block_medium_nanos: get(so, "block_medium_nanos")?
                                    .as_u64("block_medium_nanos")?,
                                scalar_large_nanos: get(so, "scalar_large_nanos")?
                                    .as_u64("scalar_large_nanos")?,
                                block_large_nanos: get(so, "block_large_nanos")?
                                    .as_u64("block_large_nanos")?,
                                decode_probes: get(so, "decode_probes")?.as_u64("decode_probes")?,
                                decode_nanos: get(so, "decode_nanos")?.as_u64("decode_nanos")?,
                                compressed_bytes: get(so, "compressed_bytes")?
                                    .as_u64("compressed_bytes")?,
                                raw_bytes: get(so, "raw_bytes")?.as_u64("raw_bytes")?,
                            })
                        }
                    },
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let schema_version = get(top, "schema_version")?.as_u64("schema_version")? as u32;
        if schema_version > SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {schema_version} (this build reads <= {SCHEMA_VERSION})"
            ));
        }
        Ok(BenchReport {
            schema_version,
            experiment: get(top, "experiment")?.as_str("experiment")?.to_string(),
            base: get(top, "base")?.as_u64("base")? as u32,
            shift: get(top, "shift")?.as_u64("shift")? as u32,
            trials: get(top, "trials")?.as_u64("trials")? as usize,
            engines,
        })
    }

    /// Writes the report to `BENCH_<experiment>.json` in the current
    /// directory, returning the path written.
    pub fn write(&self) -> std::io::Result<String> {
        let name = self.file_name();
        std::fs::write(&name, self.to_json())?;
        Ok(name)
    }
}

/// Writes one histogram: scalar summary (count/sum/max + derived
/// quantiles) followed by the sparse `[bucket_index, count]` pairs that
/// fully reconstruct it.
fn write_histogram(w: &mut Writer, h: &HistogramSnapshot) {
    w.open('{');
    w.field("count");
    w.raw(&h.count().to_string());
    w.field("sum");
    w.raw(&h.sum.to_string());
    w.field("max");
    w.raw(&h.max.to_string());
    w.field("p50");
    w.raw(&h.p50().to_string());
    w.field("p90");
    w.raw(&h.p90().to_string());
    w.field("p99");
    w.raw(&h.p99().to_string());
    w.field("buckets");
    w.open('[');
    for (b, c) in h.nonzero_buckets() {
        w.item();
        w.raw(&format!("[{b}, {c}]"));
    }
    w.close(']');
    w.close('}');
}

/// Parses a histogram written by [`write_histogram`]. The quantile fields
/// are derived values and ignored; the histogram is rebuilt from
/// `buckets`/`sum`/`max`.
fn parse_histogram(v: &Json) -> Result<HistogramSnapshot, String> {
    let o = v.as_object("histogram")?;
    let sum = get(o, "sum")?.as_u64("sum")?;
    let max = get(o, "max")?.as_u64("max")?;
    let pairs = get(o, "buckets")?
        .as_array("buckets")?
        .iter()
        .map(|p| {
            let pair = p.as_array("bucket pair")?;
            match pair {
                [b, c] => Ok((
                    b.as_u64("bucket index")? as usize,
                    c.as_u64("bucket count")?,
                )),
                _ => Err("bucket pair must have exactly two elements".to_string()),
            }
        })
        .collect::<Result<Vec<_>, String>>()?;
    let h = HistogramSnapshot::from_parts(pairs, sum, max)?;
    let count = get(o, "count")?.as_u64("count")?;
    if h.count() != count {
        return Err(format!(
            "histogram count {count} disagrees with bucket total {}",
            h.count()
        ));
    }
    Ok(h)
}

/// f64 via Rust's shortest-round-trip `Display`, with an explicit decimal
/// point so the value parses back as a float everywhere.
fn fmt_f64(x: f64) -> String {
    let s = format!("{x}");
    if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
        s
    } else {
        format!("{s}.0")
    }
}

/// Pretty-printing JSON writer with two-space indentation.
struct Writer {
    out: String,
    depth: usize,
    /// Whether the current container already holds an element.
    populated: Vec<bool>,
}

impl Writer {
    fn new() -> Writer {
        Writer {
            out: String::new(),
            depth: 0,
            populated: Vec::new(),
        }
    }

    fn newline(&mut self) {
        self.out.push('\n');
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    fn separate(&mut self) {
        if let Some(p) = self.populated.last_mut() {
            if *p {
                self.out.push(',');
            }
            *p = true;
        }
        if self.depth > 0 {
            self.newline();
        }
    }

    fn open(&mut self, c: char) {
        self.out.push(c);
        self.depth += 1;
        self.populated.push(false);
    }

    fn close(&mut self, c: char) {
        self.depth -= 1;
        if self.populated.pop() == Some(true) {
            self.newline();
        }
        self.out.push(c);
    }

    /// Starts an object field: separator, key, colon.
    fn field(&mut self, name: &str) {
        self.separate();
        self.out.push('"');
        self.out.push_str(name);
        self.out.push_str("\": ");
    }

    /// Starts an array element.
    fn item(&mut self) {
        self.separate();
    }

    fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn string(&mut self, s: &str) {
        self.out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn finish(mut self) -> String {
        self.out.push('\n');
        self.out
    }
}

/// Minimal JSON value model; objects keep insertion order so tests can
/// assert on schema field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (lossy for integers above 2^53).
    Num(f64),
    /// String
    Str(String),
    /// Array
    Arr(Vec<Json>),
    /// Object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self, what: &str) -> Result<&[(String, Json)], String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(a) => Ok(a),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    fn as_f64(&self, what: &str) -> Result<f64, String> {
        match self {
            Json::Num(x) => Ok(*x),
            other => Err(format!("{what}: expected number, got {other:?}")),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, String> {
        let x = self.as_f64(what)?;
        if x < 0.0 || x.fract() != 0.0 {
            return Err(format!("{what}: expected unsigned integer, got {x}"));
        }
        Ok(x as u64)
    }
}

fn get_opt<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Reads an additive (later-schema) integer field, defaulting to 0 when
/// the document predates it.
fn u64_or_zero(obj: &[(String, Json)], key: &str) -> Result<u64, String> {
    match get_opt(obj, key) {
        None | Some(Json::Null) => Ok(0),
        Some(v) => v.as_u64(key),
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, String> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| format!("missing field: {key}"))
}

fn u64_pairs(obj: &[(String, Json)]) -> Result<Vec<(&str, u64)>, String> {
    obj.iter()
        .map(|(k, v)| Ok((k.as_str(), v.as_u64(k)?)))
        .collect()
}

/// Parses a JSON document (objects, arrays, strings, numbers, booleans,
/// null; `\uXXXX` escapes are not supported — the writer never emits them).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && (b[*pos] as char).is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                expect(b, pos, b':')?;
                out.push((key, parse_value(b, pos)?));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(out));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut out = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            loop {
                out.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(out));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{s}' at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = Vec::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => {
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                out.push(match esc {
                    b'n' => b'\n',
                    b't' => b'\t',
                    b'r' => b'\r',
                    other => other,
                });
            }
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_latency() -> LatencySnapshot {
        let h = lsgraph_api::LatencyHistogram::new();
        for v in [0u64, 90, 90, 3_000, 250_000] {
            h.record(v);
        }
        LatencySnapshot {
            batch_apply: h.snapshot(),
            group_apply: lsgraph_api::HistogramSnapshot::default(),
            kernel: h.snapshot(),
            reader: h.snapshot(),
        }
    }

    fn sample() -> BenchReport {
        BenchReport {
            schema_version: SCHEMA_VERSION,
            experiment: "fig12".to_string(),
            base: 10,
            shift: 0,
            trials: 1,
            engines: vec![
                EngineReport {
                    engine: "LSGraph".to_string(),
                    dataset: "LJ".to_string(),
                    batch_size: 1024,
                    insert_eps: 1.25e6,
                    delete_eps: 3.5e5,
                    insert_nanos: 800_000,
                    delete_nanos: 2_900_000,
                    counters: None,
                    struct_stats: Some(StructSnapshot {
                        ria_ripples: 7,
                        ria_bound: 5,
                        phase_apply_nanos: 123,
                        ..StructSnapshot::default()
                    }),
                    footprint: Some(FootprintReport {
                        payload_bytes: 4096,
                        index_bytes: 128,
                        space_amp_measured: 1.18,
                        space_amp_alpha: 1.2,
                    }),
                    latency: Some(sample_latency()),
                    kernels: vec![
                        KernelTime {
                            name: "bfs".to_string(),
                            wall_nanos: 5_000,
                        },
                        KernelTime {
                            name: "bc".to_string(),
                            wall_nanos: 9_999,
                        },
                    ],
                    durability: Some(DurabilityReport {
                        wal_frames: 12,
                        wal_bytes: 65_536,
                        wal_append_eps: 2.5e6,
                        checkpoint_bytes: 40_960,
                        checkpoint_nanos: 750_000,
                        recovery_nanos: 1_500_000,
                        replay_frames: 6,
                        replay_eps: 1.75e6,
                        wal_segments_rotated: 3,
                        wal_segments_deleted: 2,
                        delta_checkpoints_written: 4,
                        checkpoint_dirty_vertices: 57,
                        wal_live_bytes: 16_384,
                    }),
                    mixed: Some(MixedReport {
                        writer_batches: 32,
                        writer_edges: 32_768,
                        writer_eps: 1.1e6,
                        reader_threads: 4,
                        reader_ops: 1_024,
                        reader_ops_per_sec: 5.0e4,
                        snapshots_taken: 32,
                        cow_block_copies: 4_100,
                        final_backlog: 0,
                    }),
                    standing: Some(StandingReport {
                        subscriptions: 4,
                        batches: 24,
                        deltas_delivered: 100,
                        delta_entries: 512,
                        delivery_nanos: 90_000,
                        recompute_nanos: 2_700_000,
                        speedup: 30.0,
                        subscription_panics: 0,
                        final_backlog: 0,
                    }),
                    search: Some(SearchReport {
                        probes_per_size: 10_000,
                        scalar_small_nanos: 90_000,
                        block_small_nanos: 60_000,
                        scalar_medium_nanos: 200_000,
                        block_medium_nanos: 120_000,
                        scalar_large_nanos: 400_000,
                        block_large_nanos: 220_000,
                        decode_probes: 5_000,
                        decode_nanos: 300_000,
                        compressed_bytes: 9_000,
                        raw_bytes: 32_768,
                    }),
                },
                EngineReport {
                    engine: "Aspen".to_string(),
                    dataset: "LJ".to_string(),
                    batch_size: 1024,
                    insert_eps: 9.0e5,
                    delete_eps: 8.0e5,
                    insert_nanos: 1_100_000,
                    delete_nanos: 1_250_000,
                    counters: Some(CounterSnapshot {
                        search_steps: 42,
                        elements_moved: 99,
                        rebuilds: 3,
                        ..CounterSnapshot::default()
                    }),
                    struct_stats: None,
                    footprint: None,
                    latency: None,
                    kernels: Vec::new(),
                    durability: None,
                    mixed: None,
                    standing: None,
                    search: None,
                },
            ],
        }
    }

    #[test]
    fn round_trip() {
        let r = sample();
        let text = r.to_json();
        let back = BenchReport::from_json(&text).expect("parse");
        assert_eq!(back, r);
    }

    #[test]
    fn schema_field_order_is_pinned() {
        let text = sample().to_json();
        let v = parse_json(&text).expect("parse");
        let top = v.as_object("top").unwrap();
        let top_keys: Vec<&str> = top.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            top_keys,
            [
                "schema_version",
                "experiment",
                "base",
                "shift",
                "trials",
                "engines"
            ]
        );
        let engines = get(top, "engines").unwrap().as_array("engines").unwrap();
        let e0 = engines[0].as_object("e0").unwrap();
        let e0_keys: Vec<&str> = e0.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            e0_keys,
            [
                "engine",
                "dataset",
                "batch_size",
                "insert_eps",
                "delete_eps",
                "insert_nanos",
                "delete_nanos",
                "counters",
                "struct_stats",
                "footprint",
                "latency",
                "kernels",
                "durability",
                "mixed",
                "standing",
                "search"
            ]
        );
        let dur = get(e0, "durability").unwrap().as_object("dur").unwrap();
        let dur_keys: Vec<&str> = dur.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            dur_keys,
            [
                "wal_frames",
                "wal_bytes",
                "wal_append_eps",
                "checkpoint_bytes",
                "checkpoint_nanos",
                "recovery_nanos",
                "replay_frames",
                "replay_eps",
                "wal_segments_rotated",
                "wal_segments_deleted",
                "delta_checkpoints_written",
                "checkpoint_dirty_vertices",
                "wal_live_bytes"
            ]
        );
        let mixed = get(e0, "mixed").unwrap().as_object("mixed").unwrap();
        let mixed_keys: Vec<&str> = mixed.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            mixed_keys,
            [
                "writer_batches",
                "writer_edges",
                "writer_eps",
                "reader_threads",
                "reader_ops",
                "reader_ops_per_sec",
                "snapshots_taken",
                "cow_block_copies",
                "final_backlog"
            ]
        );
        let standing = get(e0, "standing").unwrap().as_object("standing").unwrap();
        let standing_keys: Vec<&str> = standing.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            standing_keys,
            [
                "subscriptions",
                "batches",
                "deltas_delivered",
                "delta_entries",
                "delivery_nanos",
                "recompute_nanos",
                "speedup",
                "subscription_panics",
                "final_backlog"
            ]
        );
        let search = get(e0, "search").unwrap().as_object("search").unwrap();
        let search_keys: Vec<&str> = search.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            search_keys,
            [
                "probes_per_size",
                "scalar_small_nanos",
                "block_small_nanos",
                "scalar_medium_nanos",
                "block_medium_nanos",
                "scalar_large_nanos",
                "block_large_nanos",
                "decode_probes",
                "decode_nanos",
                "compressed_bytes",
                "raw_bytes"
            ]
        );
        let lat = get(e0, "latency").unwrap().as_object("lat").unwrap();
        let lat_keys: Vec<&str> = lat.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(lat_keys, ["batch_apply", "group_apply", "kernel", "reader"]);
        let h = get(lat, "batch_apply").unwrap().as_object("h").unwrap();
        let h_keys: Vec<&str> = h.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            h_keys,
            ["count", "sum", "max", "p50", "p90", "p99", "buckets"]
        );
        // Struct-stats field names come verbatim from StructSnapshot::fields.
        let ss = get(e0, "struct_stats").unwrap().as_object("ss").unwrap();
        let want: Vec<&str> = StructSnapshot::default()
            .fields()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        let got: Vec<&str> = ss.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(got, want);
        // Counter field names come verbatim from CounterSnapshot::fields.
        let e1 = engines[1].as_object("e1").unwrap();
        let c = get(e1, "counters").unwrap().as_object("c").unwrap();
        let want: Vec<&str> = CounterSnapshot::default()
            .fields()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        let got: Vec<&str> = c.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "{\"a\":1}x", "nul"] {
            assert!(parse_json(bad).is_err(), "accepted: {bad:?}");
        }
        assert!(BenchReport::from_json("{\"schema_version\": 1}").is_err());
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 engine entry has no footprint/latency/kernels keys at all.
        let v1 = r#"{
  "schema_version": 1,
  "experiment": "fig12",
  "base": 10,
  "shift": 0,
  "trials": 1,
  "engines": [
    {
      "engine": "Aspen",
      "dataset": "LJ",
      "batch_size": 64,
      "insert_eps": 1.0,
      "delete_eps": 1.0,
      "insert_nanos": 10,
      "delete_nanos": 10,
      "counters": null,
      "struct_stats": null
    }
  ]
}"#;
        let r = BenchReport::from_json(v1).expect("v1 parses");
        assert_eq!(r.schema_version, 1);
        let e = &r.engines[0];
        assert_eq!(e.footprint, None);
        assert_eq!(e.latency, None);
        assert!(e.kernels.is_empty());
        // Re-serializing upgrades the entry to v2 syntax and round-trips.
        let again = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(again.engines, r.engines);
    }

    #[test]
    fn v5_durability_objects_parse_with_new_fields_at_zero() {
        // Simulate a v5 document: version 5 and no rotation/delta fields.
        let doc = sample()
            .to_json()
            .replacen("\"schema_version\": 8", "\"schema_version\": 5", 1);
        // Splice inside the durability object (struct_stats carries fields
        // with the same names; those stay).
        let dur = doc.find("\"durability\"").unwrap();
        let f = dur + doc[dur..].find("\"wal_segments_rotated\"").unwrap();
        let start = doc[..f].rfind(',').unwrap();
        let tail = "\"wal_live_bytes\": 16384";
        let end = dur + doc[dur..].find(tail).unwrap() + tail.len();
        let doc = format!("{}{}", &doc[..start], &doc[end..]);
        let r = BenchReport::from_json(&doc).expect("v5 durability parses");
        let d = r.engines[0].durability.as_ref().unwrap();
        assert_eq!(d.replay_frames, 6, "pre-v6 fields survive");
        assert_eq!(d.wal_segments_rotated, 0);
        assert_eq!(d.wal_segments_deleted, 0);
        assert_eq!(d.delta_checkpoints_written, 0);
        assert_eq!(d.checkpoint_dirty_vertices, 0);
        assert_eq!(d.wal_live_bytes, 0);
    }

    #[test]
    fn future_schema_versions_are_rejected() {
        let doc = sample()
            .to_json()
            .replacen("\"schema_version\": 8", "\"schema_version\": 9", 1);
        let err = BenchReport::from_json(&doc).unwrap_err();
        assert!(err.contains("unsupported schema_version"), "{err}");
    }

    #[test]
    fn corrupt_histograms_are_rejected() {
        // count disagreeing with bucket totals must not parse.
        let doc = sample()
            .to_json()
            .replacen("\"count\": 5", "\"count\": 6", 1);
        assert!(BenchReport::from_json(&doc).is_err());
    }

    #[test]
    fn histogram_survives_round_trip_with_quantiles() {
        let r = sample();
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        let lat = back.engines[0].latency.as_ref().unwrap();
        let orig = r.engines[0].latency.as_ref().unwrap();
        assert_eq!(lat, orig);
        assert_eq!(lat.batch_apply.p50(), orig.batch_apply.p50());
        assert_eq!(lat.batch_apply.p99(), orig.batch_apply.p99());
        assert_eq!(lat.batch_apply.max, 250_000);
    }

    #[test]
    fn floats_survive_round_trip() {
        for x in [0.0f64, 1.0, 1.5e9, 123456.789, 3.0e-7] {
            let s = fmt_f64(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "{s}");
        }
    }
}
