//! Reproduction harness: one subcommand per paper table/figure.
//!
//! ```text
//! cargo run -p lsgraph-bench --release --bin repro -- <experiment> [--json] [--trace out.json] [--metrics out.jsonl]
//! cargo run -p lsgraph-bench --release --bin repro -- check --baseline BENCH_small.json
//! cargo run -p lsgraph-bench --release --bin repro -- check --metrics metrics.jsonl
//! ```
//!
//! Experiments: `fig3 fig4 fig12 small ablation fig13 table2 table3 fig14
//! fig15 fig16 fig17 table4 g500 durability mixed standing search all`. Sizes scale with
//! `REPRO_SCALE` (extra powers of two), `REPRO_BASE` (log2 base vertex
//! count, default 15), and `REPRO_TRIALS` (default 3).
//!
//! With `--json`, experiments that support it (`fig12`, `small`, `fig13`,
//! `durability`, `mixed`, `standing`, `search`) write a schema-stable `BENCH_<experiment>.json`
//! with per-engine throughput, phase timings, instrumentation counters,
//! latency histograms, and footprints instead of printing a table (see
//! EXPERIMENTS.md for the schema).
//!
//! With `--trace <path>`, structural trace spans (sort/group/apply/kernel/
//! ria_rebuild/lia_retrain/tier_upgrade) are **streamed** to `<path>` as
//! they complete — long runs drop zero events to ring overflow — and the
//! chrome://tracing JSON is finalized on exit; open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! With `--metrics <path>`, instrumented experiments (currently `mixed`)
//! stream a sampled metrics time-series to `<path>` as JSONL — one
//! self-describing header line plus one line per sampler tick (engine
//! counters, gauges, latency histogram summaries, per-round writer eps and
//! reader p99). The tick count is deterministic (once per writer round plus
//! a quiescence tick), so the stream itself is checkable.
//!
//! `check --baseline BENCH_<exp>.json` re-runs that experiment at the
//! baseline's recorded scale and exits nonzero if any invariant counter is
//! nonzero or a structural counter regressed past tolerance; see
//! `lsgraph_bench::check`. `check --metrics <path>` validates a recorded
//! metrics stream instead (exact sample count, contiguous ticks, monotone
//! counters, backlog drained by the final sample); the two flags compose.

use lsgraph_api::{metrics, trace};
use lsgraph_bench::{check, experiments};
use lsgraph_bench::{BenchReport, Scale};

fn emit(report: &BenchReport) {
    match report.write() {
        Ok(path) => eprintln!("[repro] wrote {path}"),
        Err(e) => {
            eprintln!("[repro] failed to write {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
}

/// Extracts `--flag value` from `args`, removing both tokens.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("[repro] {flag} requires a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Validates a recorded metrics JSONL stream. Returns the number of
/// violations found (0 = clean).
fn check_metrics_file(path: &str) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[repro] cannot read metrics stream {path}: {e}");
            std::process::exit(2);
        }
    };
    let errs = check::check_metrics(&text);
    for e in &errs {
        eprintln!("[repro] [metrics] {e}");
    }
    if errs.is_empty() {
        eprintln!("[repro] metrics check PASSED: {path} is a clean time-series");
    } else {
        eprintln!(
            "[repro] metrics check FAILED: {} violation(s) in {path}",
            errs.len()
        );
    }
    errs.len()
}

/// Runs the experiment a baseline report records, at the baseline's scale,
/// and compares structural counters. Exits 0 when clean, 1 on violations.
fn run_check(baseline_path: &str, metrics_violations: usize) -> ! {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[repro] cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = match BenchReport::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[repro] cannot parse baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let scale = Scale {
        base: baseline.base,
        shift: baseline.shift,
        trials: baseline.trials,
    };
    eprintln!(
        "[repro] check: re-running '{}' at base=2^{} shift={} trials={}",
        baseline.experiment, scale.base, scale.shift, scale.trials
    );
    let current = match baseline.experiment.as_str() {
        "fig12" => experiments::fig12_report(&scale),
        "small" => experiments::small_batches_report(&scale),
        "fig13" => experiments::fig13_report(&scale),
        "durability" => experiments::durability_report(&scale),
        "mixed" => experiments::mixed_report(&scale),
        "standing" => experiments::standing_report(&scale),
        "search" => experiments::search_report(&scale),
        other => {
            eprintln!("[repro] no check support for experiment '{other}'");
            std::process::exit(2);
        }
    };
    let violations = check::compare(&baseline, &current, check::CheckOptions::default());
    for v in &violations {
        eprintln!("[repro] {}", v.human());
    }
    print!(
        "{}",
        check::violations_json(&baseline.experiment, &violations)
    );
    if violations.is_empty() && metrics_violations == 0 {
        eprintln!(
            "[repro] check PASSED: {} cells match {baseline_path}",
            baseline.engines.len()
        );
        std::process::exit(0);
    }
    eprintln!(
        "[repro] check FAILED: {} violation(s) vs {baseline_path}",
        violations.len() + metrics_violations
    );
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let trace_path = take_value_flag(&mut args, "--trace");
    let metrics_path = take_value_flag(&mut args, "--metrics");
    let baseline = take_value_flag(&mut args, "--baseline");
    if args.first().map(String::as_str) == Some("check") {
        let metrics_violations = metrics_path.as_deref().map(check_metrics_file);
        match (baseline, metrics_violations) {
            (Some(b), mv) => run_check(&b, mv.unwrap_or(0)),
            (None, Some(0)) => std::process::exit(0),
            (None, Some(_)) => std::process::exit(1),
            (None, None) => {
                eprintln!(
                    "usage: repro check --baseline BENCH_<experiment>.json [--metrics out.jsonl]\n       repro check --metrics out.jsonl"
                );
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();
    if args.is_empty() {
        eprintln!(
            "usage: repro <fig3|fig4|fig12|small|ablation|fig13|table2|table3|fig14|fig15|fig16|fig17|table4|g500|durability|mixed|standing|search|all> [--json] [--trace out.json] [--metrics out.jsonl]\n       repro check --baseline BENCH_<experiment>.json [--metrics out.jsonl]"
        );
        std::process::exit(2);
    }
    eprintln!(
        "[repro] base=2^{} shift={} trials={}",
        scale.base, scale.shift, scale.trials
    );
    // Both guards finalize their stream on drop, so a panicking experiment
    // still leaves flushed, parseable trace/metrics files behind.
    let _trace_guard = trace_path.as_ref().map(|path| {
        // Stream spans to disk as they complete: a long run never loses
        // events to ring-buffer overflow.
        let guard = trace::stream_to_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("[repro] cannot open trace file {path}: {e}");
            std::process::exit(1);
        });
        trace::enable();
        guard
    });
    if let Some(path) = &metrics_path {
        // Install the metrics sink before the experiments run; instrumented
        // experiments (currently `mixed`) write the header and tick samples.
        if let Err(e) = metrics::stream_to_file(std::path::Path::new(path)) {
            eprintln!("[repro] cannot open metrics stream {path}: {e}");
            std::process::exit(1);
        }
    }
    for arg in &args {
        if json {
            match arg.as_str() {
                "fig12" | "del" => {
                    emit(&experiments::fig12_report(&scale));
                    continue;
                }
                "small" => {
                    emit(&experiments::small_batches_report(&scale));
                    continue;
                }
                "fig13" => {
                    emit(&experiments::fig13_report(&scale));
                    continue;
                }
                "durability" => {
                    emit(&experiments::durability_report(&scale));
                    continue;
                }
                "mixed" => {
                    emit(&experiments::mixed_report(&scale));
                    continue;
                }
                "standing" => {
                    emit(&experiments::standing_report(&scale));
                    continue;
                }
                "search" => {
                    emit(&experiments::search_report(&scale));
                    continue;
                }
                other => {
                    eprintln!("[repro] no JSON mode for '{other}'; printing the table");
                }
            }
        }
        match arg.as_str() {
            "fig3" => experiments::fig3(&scale),
            "fig4" => experiments::fig4(&scale),
            "fig12" | "del" => experiments::fig12(&scale),
            "small" => experiments::small_batches(&scale),
            "ablation" => experiments::ablation(&scale),
            "fig13" => experiments::fig13(&scale),
            "table2" => experiments::table2(&scale),
            "table3" => experiments::table3(&scale),
            "fig14" => experiments::fig14(&scale),
            "fig15" => experiments::fig15(&scale),
            "fig16" => experiments::fig16(&scale),
            "fig17" => experiments::fig17(&scale),
            "table4" => experiments::table4(&scale),
            "durability" => experiments::durability(&scale),
            "mixed" => experiments::mixed(&scale),
            "standing" => experiments::standing(&scale),
            "search" => experiments::search(&scale),
            "sortledton" => experiments::sortledton(&scale),
            "verify" => experiments::verify(&scale),
            "g500" => experiments::g500(&scale),
            "all" => experiments::all(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = trace_path {
        trace::disable();
        match trace::finish_stream() {
            Ok(Some(events)) => {
                eprintln!("[repro] wrote trace {path} ({events} events, 0 dropped)")
            }
            Ok(None) => eprintln!("[repro] trace stream to {path} was not active"),
            Err(e) => {
                eprintln!("[repro] failed to finalize trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = metrics_path {
        match metrics::finish_stream() {
            Ok(Some(samples)) => {
                eprintln!("[repro] wrote metrics {path} ({samples} samples)")
            }
            Ok(None) => eprintln!("[repro] metrics stream to {path} was not active"),
            Err(e) => {
                eprintln!("[repro] failed to finalize metrics {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
