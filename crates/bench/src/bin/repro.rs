//! Reproduction harness: one subcommand per paper table/figure.
//!
//! ```text
//! cargo run -p lsgraph-bench --release --bin repro -- <experiment>
//! ```
//!
//! Experiments: `fig3 fig4 fig12 small ablation fig13 table2 table3 fig14
//! fig15 fig16 fig17 table4 g500 all`. Sizes scale with `REPRO_SCALE` (extra
//! powers of two), `REPRO_BASE` (log2 base vertex count, default 15), and
//! `REPRO_TRIALS` (default 3).

use lsgraph_bench::experiments;
use lsgraph_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_env();
    if args.is_empty() {
        eprintln!(
            "usage: repro <fig3|fig4|fig12|small|ablation|fig13|table2|table3|fig14|fig15|fig16|fig17|table4|g500|all>"
        );
        std::process::exit(2);
    }
    eprintln!(
        "[repro] base=2^{} shift={} trials={}",
        scale.base, scale.shift, scale.trials
    );
    for arg in &args {
        match arg.as_str() {
            "fig3" => experiments::fig3(&scale),
            "fig4" => experiments::fig4(&scale),
            "fig12" | "del" => experiments::fig12(&scale),
            "small" => experiments::small_batches(&scale),
            "ablation" => experiments::ablation(&scale),
            "fig13" => experiments::fig13(&scale),
            "table2" => experiments::table2(&scale),
            "table3" => experiments::table3(&scale),
            "fig14" => experiments::fig14(&scale),
            "fig15" => experiments::fig15(&scale),
            "fig16" => experiments::fig16(&scale),
            "fig17" => experiments::fig17(&scale),
            "table4" => experiments::table4(&scale),
            "sortledton" => experiments::sortledton(&scale),
            "verify" => experiments::verify(&scale),
            "g500" => experiments::g500(&scale),
            "all" => experiments::all(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}
