//! Reproduction harness: one subcommand per paper table/figure.
//!
//! ```text
//! cargo run -p lsgraph-bench --release --bin repro -- <experiment> [--json]
//! ```
//!
//! Experiments: `fig3 fig4 fig12 small ablation fig13 table2 table3 fig14
//! fig15 fig16 fig17 table4 g500 all`. Sizes scale with `REPRO_SCALE` (extra
//! powers of two), `REPRO_BASE` (log2 base vertex count, default 15), and
//! `REPRO_TRIALS` (default 3).
//!
//! With `--json`, experiments that support it (`fig12`, `small`) write a
//! schema-stable `BENCH_<experiment>.json` with per-engine throughput,
//! phase timings, and instrumentation counter snapshots instead of printing
//! a table (see EXPERIMENTS.md for the schema).

use lsgraph_bench::experiments;
use lsgraph_bench::{BenchReport, Scale};

fn emit(report: &BenchReport) {
    match report.write() {
        Ok(path) => eprintln!("[repro] wrote {path}"),
        Err(e) => {
            eprintln!("[repro] failed to write {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let scale = Scale::from_env();
    if args.is_empty() {
        eprintln!(
            "usage: repro <fig3|fig4|fig12|small|ablation|fig13|table2|table3|fig14|fig15|fig16|fig17|table4|g500|all> [--json]"
        );
        std::process::exit(2);
    }
    eprintln!(
        "[repro] base=2^{} shift={} trials={}",
        scale.base, scale.shift, scale.trials
    );
    for arg in &args {
        if json {
            match arg.as_str() {
                "fig12" | "del" => {
                    emit(&experiments::fig12_report(&scale));
                    continue;
                }
                "small" => {
                    emit(&experiments::small_batches_report(&scale));
                    continue;
                }
                other => {
                    eprintln!("[repro] no JSON mode for '{other}'; printing the table");
                }
            }
        }
        match arg.as_str() {
            "fig3" => experiments::fig3(&scale),
            "fig4" => experiments::fig4(&scale),
            "fig12" | "del" => experiments::fig12(&scale),
            "small" => experiments::small_batches(&scale),
            "ablation" => experiments::ablation(&scale),
            "fig13" => experiments::fig13(&scale),
            "table2" => experiments::table2(&scale),
            "table3" => experiments::table3(&scale),
            "fig14" => experiments::fig14(&scale),
            "fig15" => experiments::fig15(&scale),
            "fig16" => experiments::fig16(&scale),
            "fig17" => experiments::fig17(&scale),
            "table4" => experiments::table4(&scale),
            "sortledton" => experiments::sortledton(&scale),
            "verify" => experiments::verify(&scale),
            "g500" => experiments::g500(&scale),
            "all" => experiments::all(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
}
