//! Reproduction harness: one subcommand per paper table/figure.
//!
//! ```text
//! cargo run -p lsgraph-bench --release --bin repro -- <experiment> [--json] [--trace out.json]
//! cargo run -p lsgraph-bench --release --bin repro -- check --baseline BENCH_small.json
//! ```
//!
//! Experiments: `fig3 fig4 fig12 small ablation fig13 table2 table3 fig14
//! fig15 fig16 fig17 table4 g500 durability mixed all`. Sizes scale with
//! `REPRO_SCALE` (extra powers of two), `REPRO_BASE` (log2 base vertex
//! count, default 15), and `REPRO_TRIALS` (default 3).
//!
//! With `--json`, experiments that support it (`fig12`, `small`, `fig13`,
//! `durability`, `mixed`) write a schema-stable `BENCH_<experiment>.json`
//! with per-engine throughput, phase timings, instrumentation counters,
//! latency histograms, and footprints instead of printing a table (see
//! EXPERIMENTS.md for the schema).
//!
//! With `--trace <path>`, structural trace spans (sort/group/apply/kernel/
//! ria_rebuild/lia_retrain/tier_upgrade) are **streamed** to `<path>` as
//! they complete — long runs drop zero events to ring overflow — and the
//! chrome://tracing JSON is finalized on exit; open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! `check --baseline BENCH_<exp>.json` re-runs that experiment at the
//! baseline's recorded scale and exits nonzero if any invariant counter is
//! nonzero or a structural counter regressed past tolerance; see
//! `lsgraph_bench::check`.

use lsgraph_api::trace;
use lsgraph_bench::{check, experiments};
use lsgraph_bench::{BenchReport, Scale};

fn emit(report: &BenchReport) {
    match report.write() {
        Ok(path) => eprintln!("[repro] wrote {path}"),
        Err(e) => {
            eprintln!("[repro] failed to write {}: {e}", report.file_name());
            std::process::exit(1);
        }
    }
}

/// Extracts `--flag value` from `args`, removing both tokens.
fn take_value_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("[repro] {flag} requires a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

/// Runs the experiment a baseline report records, at the baseline's scale,
/// and compares structural counters. Exits 0 when clean, 1 on violations.
fn run_check(baseline_path: &str) -> ! {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("[repro] cannot read baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline = match BenchReport::from_json(&text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("[repro] cannot parse baseline {baseline_path}: {e}");
            std::process::exit(2);
        }
    };
    let scale = Scale {
        base: baseline.base,
        shift: baseline.shift,
        trials: baseline.trials,
    };
    eprintln!(
        "[repro] check: re-running '{}' at base=2^{} shift={} trials={}",
        baseline.experiment, scale.base, scale.shift, scale.trials
    );
    let current = match baseline.experiment.as_str() {
        "fig12" => experiments::fig12_report(&scale),
        "small" => experiments::small_batches_report(&scale),
        "fig13" => experiments::fig13_report(&scale),
        "durability" => experiments::durability_report(&scale),
        "mixed" => experiments::mixed_report(&scale),
        other => {
            eprintln!("[repro] no check support for experiment '{other}'");
            std::process::exit(2);
        }
    };
    let violations = check::compare(&baseline, &current, check::CheckOptions::default());
    for v in &violations {
        eprintln!("[repro] {}", v.human());
    }
    print!(
        "{}",
        check::violations_json(&baseline.experiment, &violations)
    );
    if violations.is_empty() {
        eprintln!(
            "[repro] check PASSED: {} cells match {baseline_path}",
            baseline.engines.len()
        );
        std::process::exit(0);
    }
    eprintln!(
        "[repro] check FAILED: {} violation(s) vs {baseline_path}",
        violations.len()
    );
    std::process::exit(1);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    let trace_path = take_value_flag(&mut args, "--trace");
    let baseline = take_value_flag(&mut args, "--baseline");
    if args.first().map(String::as_str) == Some("check") {
        let Some(b) = baseline else {
            eprintln!("usage: repro check --baseline BENCH_<experiment>.json");
            std::process::exit(2);
        };
        run_check(&b);
    }
    let scale = Scale::from_env();
    if args.is_empty() {
        eprintln!(
            "usage: repro <fig3|fig4|fig12|small|ablation|fig13|table2|table3|fig14|fig15|fig16|fig17|table4|g500|durability|mixed|all> [--json] [--trace out.json]\n       repro check --baseline BENCH_<experiment>.json"
        );
        std::process::exit(2);
    }
    eprintln!(
        "[repro] base=2^{} shift={} trials={}",
        scale.base, scale.shift, scale.trials
    );
    if let Some(path) = &trace_path {
        // Stream spans to disk as they complete: a long run never loses
        // events to ring-buffer overflow.
        if let Err(e) = trace::stream_to_file(std::path::Path::new(path)) {
            eprintln!("[repro] cannot open trace file {path}: {e}");
            std::process::exit(1);
        }
        trace::enable();
    }
    for arg in &args {
        if json {
            match arg.as_str() {
                "fig12" | "del" => {
                    emit(&experiments::fig12_report(&scale));
                    continue;
                }
                "small" => {
                    emit(&experiments::small_batches_report(&scale));
                    continue;
                }
                "fig13" => {
                    emit(&experiments::fig13_report(&scale));
                    continue;
                }
                "durability" => {
                    emit(&experiments::durability_report(&scale));
                    continue;
                }
                "mixed" => {
                    emit(&experiments::mixed_report(&scale));
                    continue;
                }
                other => {
                    eprintln!("[repro] no JSON mode for '{other}'; printing the table");
                }
            }
        }
        match arg.as_str() {
            "fig3" => experiments::fig3(&scale),
            "fig4" => experiments::fig4(&scale),
            "fig12" | "del" => experiments::fig12(&scale),
            "small" => experiments::small_batches(&scale),
            "ablation" => experiments::ablation(&scale),
            "fig13" => experiments::fig13(&scale),
            "table2" => experiments::table2(&scale),
            "table3" => experiments::table3(&scale),
            "fig14" => experiments::fig14(&scale),
            "fig15" => experiments::fig15(&scale),
            "fig16" => experiments::fig16(&scale),
            "fig17" => experiments::fig17(&scale),
            "table4" => experiments::table4(&scale),
            "durability" => experiments::durability(&scale),
            "mixed" => experiments::mixed(&scale),
            "sortledton" => experiments::sortledton(&scale),
            "verify" => experiments::verify(&scale),
            "g500" => experiments::g500(&scale),
            "all" => experiments::all(&scale),
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = trace_path {
        trace::disable();
        match trace::finish_stream() {
            Ok(Some(events)) => {
                eprintln!("[repro] wrote trace {path} ({events} events, 0 dropped)")
            }
            Ok(None) => eprintln!("[repro] trace stream to {path} was not active"),
            Err(e) => {
                eprintln!("[repro] failed to finalize trace {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
