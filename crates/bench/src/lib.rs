//! Shared harness for reproducing the paper's tables and figures.
//!
//! Every experiment is a function here, invoked by the `repro` binary.
//! Default sizes are laptop-scale; set `REPRO_SCALE=<k>` to grow every graph
//! and batch by `2^k`, and `REPRO_TRIALS=<t>` to average more trials.
//! EXPERIMENTS.md records the mapping from each function to the paper
//! artifact and the expected qualitative result.

pub mod check;
pub mod experiments;
pub mod report;
pub mod runner;

pub use check::{compare, CheckOptions, Violation, ViolationKind};
pub use report::{BenchReport, EngineReport, FootprintReport, KernelTime, SCHEMA_VERSION};
pub use runner::{
    build_engine, build_engine_scaled, engines, scaled_config, time, EngineKind, Scale,
};

use lsgraph_api::{DynamicGraph, MemoryFootprint};

/// Object-safe bundle of the traits every benchmarked engine provides.
pub trait Engine: DynamicGraph + MemoryFootprint + Send {}

impl<T: DynamicGraph + MemoryFootprint + Send> Engine for T {}
