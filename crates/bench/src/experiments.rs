//! One function per paper table/figure. See EXPERIMENTS.md for the mapping
//! and the recorded paper-vs-measured outcomes.

use std::time::Duration;

use lsgraph_api::{DynamicGraph, Edge, Graph, MemoryFootprint};
use lsgraph_aspen::AspenGraph;
use lsgraph_core::{Config, HighDegreeStore, LiaSearch, LsGraph, MediumStore};
use lsgraph_gen::{rmat, temporal::TEMPORAL_PROFILES, DatasetProfile, RmatParams};
use lsgraph_pactree::PacGraph;
use lsgraph_terrace::TerraceGraph;

use crate::report::{BenchReport, EngineReport, FootprintReport, KernelTime, SCHEMA_VERSION};
use crate::runner::{
    build_engine, build_engine_scaled, engines, fmt_tput, time, time_avg, EngineKind, Scale,
};

/// Datasets used at the current scale (TW/FR only at higher scales: their
/// stand-ins are large even scaled).
fn datasets(scale: &Scale) -> Vec<DatasetProfile> {
    let mut names = vec!["LJ", "OR", "RM"];
    if scale.shift >= 4 {
        names.push("TW");
        names.push("FR");
    }
    names
        .into_iter()
        .map(|n| DatasetProfile::by_name(n).expect("profile exists"))
        .collect()
}

/// Shift mapping a profile's real size down to the harness scale.
fn shift_for(p: &DatasetProfile, scale: &Scale) -> u32 {
    p.log_vertices.saturating_sub(scale.graph_scale())
}

/// A vertex with edges, used as the BFS/BC source (paper uses the highest
/// out-degree vertex, as Terrace/Ligra do).
fn max_degree_vertex(g: &dyn Graph) -> u32 {
    (0..g.num_vertices() as u32)
        .max_by_key(|&v| g.degree(v))
        .unwrap_or(0)
}

/// Generates the update batch the throughput experiments use (rMat with the
/// paper's parameters over the same vertex range).
fn update_batch(graph_scale: u32, size: usize, seed: u64) -> Vec<Edge> {
    rmat(graph_scale, size, RmatParams::paper(), seed)
}

/// Fig. 12 (+ §6.2 deletion results): insert/delete throughput for every
/// engine and graph across batch sizes.
pub fn fig12(scale: &Scale) {
    println!("# Fig. 12: update throughput (edges/s), insert|delete");
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let gscale = p.log_vertices - shift;
        let base = p.generate(shift, 42);
        println!("\n## {} (|V|=2^{}, |E|={})", p.name, gscale, base.len());
        print!("{:>10}", "batch");
        for k in engines() {
            print!("{:>22}", k.name());
        }
        println!();
        let mut built: Vec<(EngineKind, Box<dyn crate::Engine>)> = engines()
            .iter()
            .map(|&k| (k, build_engine_scaled(k, n, &base, shift)))
            .collect();
        for bs in scale.batch_sizes() {
            print!("{bs:>10}");
            for (_, g) in built.iter_mut() {
                let mut ins = Duration::ZERO;
                let mut del = Duration::ZERO;
                for t in 0..scale.trials {
                    let batch = update_batch(gscale, bs, 1_000 + t as u64);
                    let (_, ti) = time(|| g.insert_batch(&batch));
                    let (_, td) = time(|| g.delete_batch(&batch));
                    ins += ti;
                    del += td;
                }
                print!(
                    "{:>22}",
                    format!(
                        "{}|{}",
                        fmt_tput(bs * scale.trials, ins),
                        fmt_tput(bs * scale.trials, del)
                    )
                );
            }
            println!();
        }
    }
}

/// Measures one engine on one (dataset, batch size) cell: `trials`
/// insert+delete rounds with fixed seeds, instrumentation reset first so
/// the counters cover exactly this cell.
fn measure_cell(
    g: &mut Box<dyn crate::Engine>,
    kind: EngineKind,
    dataset: &str,
    gscale: u32,
    bs: usize,
    trials: usize,
) -> EngineReport {
    g.reset_instrumentation();
    let mut ins = Duration::ZERO;
    let mut del = Duration::ZERO;
    for t in 0..trials {
        let batch = update_batch(gscale, bs, 1_000 + t as u64);
        let (_, ti) = time(|| g.insert_batch(&batch));
        let (_, td) = time(|| g.delete_batch(&batch));
        ins += ti;
        del += td;
    }
    // Structural self-check after the measured updates: a cell that leaves
    // the engine in an invalid state must not produce a baseline.
    if let Err(e) = g.validate_structure() {
        panic!(
            "structure invalid after {}/{dataset}/bs={bs}: {e}",
            kind.name()
        );
    }
    let edges = (bs * trials) as f64;
    EngineReport {
        engine: kind.name().to_string(),
        dataset: dataset.to_string(),
        batch_size: bs,
        insert_eps: edges / ins.as_secs_f64().max(1e-12),
        delete_eps: edges / del.as_secs_f64().max(1e-12),
        insert_nanos: ins.as_nanos() as u64,
        delete_nanos: del.as_nanos() as u64,
        counters: g.op_counters(),
        struct_stats: g.struct_stats(),
        footprint: Some(measure_footprint(g.as_ref())),
        latency: g.latency_stats(),
        kernels: Vec::new(),
        durability: None,
        mixed: None,
        standing: None,
        search: None,
    }
}

/// Footprint split + space amplification for one engine (schema v2).
///
/// Measured amplification is payload bytes per minimal 4-byte edge slot;
/// α is the engine's configured bound when it has one (LSGraph), 0 = n/a.
fn measure_footprint(g: &(impl crate::Engine + ?Sized)) -> FootprintReport {
    let fp = g.footprint();
    let m = g.num_edges() as u64;
    FootprintReport {
        payload_bytes: fp.payload_bytes as u64,
        index_bytes: fp.index_bytes as u64,
        space_amp_measured: if m == 0 {
            0.0
        } else {
            fp.payload_bytes as f64 / (4.0 * m as f64)
        },
        space_amp_alpha: g.configured_alpha().unwrap_or(0.0),
    }
}

/// Fig. 12 as a machine-readable report: every engine × dataset × batch
/// size, with throughput plus the instrumentation counters for each cell.
pub fn fig12_report(scale: &Scale) -> BenchReport {
    let mut out = Vec::new();
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let gscale = p.log_vertices - shift;
        let base = p.generate(shift, 42);
        let mut built: Vec<(EngineKind, Box<dyn crate::Engine>)> = engines()
            .iter()
            .map(|&k| (k, build_engine_scaled(k, n, &base, shift)))
            .collect();
        for bs in scale.batch_sizes() {
            for (k, g) in built.iter_mut() {
                out.push(measure_cell(g, *k, p.name, gscale, bs, scale.trials));
            }
        }
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "fig12".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines: out,
    }
}

/// §6.2 small batches as a machine-readable report (batch size 10 on OR).
pub fn small_batches_report(scale: &Scale) -> BenchReport {
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let base = p.generate(shift, 42);
    let n = p.scaled_vertices(shift);
    let mut out = Vec::new();
    for k in engines() {
        let mut g = build_engine_scaled(k, n, &base, shift);
        out.push(measure_cell(&mut g, k, p.name, gscale, 10, 200));
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "small".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines: out,
    }
}

/// §6.2 small batches: latency at batch size 10.
pub fn small_batches(scale: &Scale) {
    println!("# §6.2: batch-size-10 updates (throughput, edges/s)");
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let base = p.generate(shift, 42);
    let n = p.scaled_vertices(shift);
    let rounds = 2_000;
    for k in engines() {
        let mut g = build_engine_scaled(k, n, &base, shift);
        let batches: Vec<Vec<Edge>> = (0..rounds)
            .map(|i| update_batch(gscale, 10, 7_000 + i as u64))
            .collect();
        let (_, d) = time(|| {
            for b in &batches {
                g.insert_batch(b);
            }
        });
        println!("{:>10}: {}", k.name(), fmt_tput(10 * rounds, d));
    }
}

/// Fig. 3 motivation: Terrace wins BFS, Aspen wins large inserts.
pub fn fig3(scale: &Scale) {
    println!("# Fig. 3a: BFS time normalized to Terrace (lower is better)");
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let base = p.generate(shift, 42);
        let terrace = TerraceGraph::from_edges(n, &sym(&base));
        let aspen = AspenGraph::from_edges(n, &sym(&base));
        let src = max_degree_vertex(&terrace);
        let t_t = time_avg(scale.trials, || {
            lsgraph_analytics::bfs(&terrace, src);
        });
        let t_a = time_avg(scale.trials, || {
            lsgraph_analytics::bfs(&aspen, src);
        });
        println!(
            "{:>4}: Terrace 1.00  Aspen {:.2}",
            p.name,
            t_a.as_secs_f64() / t_t.as_secs_f64()
        );
    }
    println!("\n# Fig. 3b: insert throughput on OR, Terrace vs Aspen (+ PCSR)");
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let base = p.generate(shift, 42);
    let n = p.scaled_vertices(shift);
    let mut terrace = TerraceGraph::from_edges(n, &base);
    let mut aspen = AspenGraph::from_edges(n, &base);
    let mut pcsr = lsgraph_pma::PmaGraph::from_edges(n, &base);
    println!(
        "{:>10}{:>12}{:>12}{:>12}",
        "batch", "Terrace", "Aspen", "PCSR"
    );
    for bs in scale.batch_sizes() {
        let batch = update_batch(gscale, bs, 11);
        let (_, tt) = time(|| terrace.insert_batch(&batch));
        terrace.delete_batch(&batch);
        let (_, ta) = time(|| aspen.insert_batch(&batch));
        aspen.delete_batch(&batch);
        let (_, tp) = time(|| pcsr.insert_batch(&batch));
        pcsr.delete_batch(&batch);
        println!(
            "{bs:>10}{:>12}{:>12}{:>12}",
            fmt_tput(bs, tt),
            fmt_tput(bs, ta),
            fmt_tput(bs, tp)
        );
    }
}

/// Fig. 4: where Terrace's insert time goes (PMA share, search vs move).
pub fn fig4(scale: &Scale) {
    println!("# Fig. 4: Terrace insert cost breakdown (single structure shares)");
    println!(
        "{:>6}{:>12}{:>16}{:>16}{:>12}",
        "graph", "PMA-time", "search-steps", "moved-elems", "rebuilds"
    );
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let gscale = p.log_vertices - shift;
        let n = p.scaled_vertices(shift);
        let base = p.generate(shift, 42);
        let mut g = TerraceGraph::from_edges(n, &base);
        g.reset_instrumentation();
        let batch = update_batch(gscale, *scale.batch_sizes().last().expect("nonempty"), 5);
        g.insert_batch(&batch);
        let c = g.pma_counters();
        println!(
            "{:>6}{:>11.1}%{:>16}{:>16}{:>12}",
            p.name,
            g.pma_time_share() * 100.0,
            c.search_steps,
            c.elements_moved,
            c.rebuilds
        );
    }
}

/// Mirrors a directed edge list (the paper symmetrizes analytics inputs).
fn sym(edges: &[Edge]) -> Vec<Edge> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        out.push(*e);
        out.push(e.reversed());
    }
    out
}

/// Fig. 13: BFS and BC times normalized to LSGraph.
pub fn fig13(scale: &Scale) {
    println!("# Fig. 13: BFS / BC time normalized to LSGraph (higher = slower)");
    println!(
        "{:>6}{:>6}{:>10}{:>10}{:>10}{:>10}",
        "graph", "algo", "LSGraph", "Terrace", "Aspen", "PaC-tree"
    );
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let base = sym(&p.generate(shift, 42));
        let built: Vec<(EngineKind, Box<dyn crate::Engine>)> = engines()
            .iter()
            .map(|&k| (k, build_engine(k, n, &base)))
            .collect();
        let src = max_degree_vertex(built[0].1.as_ref());
        for algo in ["BFS", "BC"] {
            let mut times = std::collections::HashMap::new();
            for (k, g) in &built {
                let d = time_avg(scale.trials, || match algo {
                    "BFS" => {
                        lsgraph_analytics::bfs(g.as_ref(), src);
                    }
                    _ => {
                        lsgraph_analytics::betweenness(g.as_ref(), src);
                    }
                });
                times.insert(*k, d.as_secs_f64());
            }
            let ls = times[&EngineKind::LsGraph];
            println!(
                "{:>6}{:>6}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
                p.name,
                algo,
                1.0,
                times[&EngineKind::Terrace] / ls,
                times[&EngineKind::Aspen] / ls,
                times[&EngineKind::PacTree] / ls,
            );
        }
    }
}

/// Fig. 13 as a machine-readable report: BFS and BC wall time per engine ×
/// dataset. The kernels record into the process-global
/// [`StructStats`](lsgraph_api::StructStats)/[`LatencyStats`] sinks, so each
/// engine's cell is a before/after snapshot diff: `struct_stats` carries the
/// kernel-phase nanos, `latency.kernel` the per-invocation histogram, and
/// `kernels` the total wall time per kernel. Update-throughput fields are 0
/// (this is an analytics experiment; `batch_size` 0 marks that).
pub fn fig13_report(scale: &Scale) -> BenchReport {
    use lsgraph_api::{LatencyStats, StructStats};
    let mut out = Vec::new();
    let trials = scale.trials.max(1);
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let base = sym(&p.generate(shift, 42));
        let built: Vec<(EngineKind, Box<dyn crate::Engine>)> = engines()
            .iter()
            .map(|&k| (k, build_engine(k, n, &base)))
            .collect();
        let src = max_degree_vertex(built[0].1.as_ref());
        for (k, g) in &built {
            let stats_before = StructStats::global().snapshot();
            let lat_before = LatencyStats::global().snapshot();
            let (_, bfs_d) = time(|| {
                for _ in 0..trials {
                    lsgraph_analytics::bfs(g.as_ref(), src);
                }
            });
            let (_, bc_d) = time(|| {
                for _ in 0..trials {
                    lsgraph_analytics::betweenness(g.as_ref(), src);
                }
            });
            let struct_stats = StructStats::global().snapshot().since(stats_before);
            let latency = LatencyStats::global().snapshot().since(&lat_before);
            out.push(EngineReport {
                engine: k.name().to_string(),
                dataset: p.name.to_string(),
                batch_size: 0,
                insert_eps: 0.0,
                delete_eps: 0.0,
                insert_nanos: 0,
                delete_nanos: 0,
                counters: None,
                struct_stats: Some(struct_stats),
                footprint: Some(measure_footprint(g.as_ref())),
                latency: Some(latency),
                kernels: vec![
                    KernelTime {
                        name: "bfs".to_string(),
                        wall_nanos: bfs_d.as_nanos() as u64,
                    },
                    KernelTime {
                        name: "bc".to_string(),
                        wall_nanos: bc_d.as_nanos() as u64,
                    },
                ],
                durability: None,
                mixed: None,
                standing: None,
                search: None,
            });
        }
    }
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "fig13".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines: out,
    }
}

/// Table 2: PR / CC / TC absolute times, LSGraph vs Terrace.
pub fn table2(scale: &Scale) {
    println!("# Table 2: PR, CC, TC times in seconds (T/L = Terrace/LSGraph)");
    println!(
        "{:>6}{:>10}{:>10}{:>7}{:>10}{:>10}{:>7}{:>10}{:>10}{:>7}{:>9}",
        "graph", "PR-L", "PR-T", "T/L", "CC-L", "CC-T", "T/L", "TC-L", "TC-T", "T/L", "Tra/L"
    );
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let base = sym(&p.generate(shift, 42));
        let ls = LsGraph::from_edges(n, &base, Config::default());
        let tr = TerraceGraph::from_edges(n, &base);
        let pr_l = time_avg(scale.trials, || {
            lsgraph_analytics::pagerank(&ls, 10, 0.85);
        });
        let pr_t = time_avg(scale.trials, || {
            lsgraph_analytics::pagerank(&tr, 10, 0.85);
        });
        let cc_l = time_avg(scale.trials, || {
            lsgraph_analytics::connected_components(&ls);
        });
        let cc_t = time_avg(scale.trials, || {
            lsgraph_analytics::connected_components(&tr);
        });
        let tc_l = lsgraph_analytics::triangle_count(&ls);
        let tc_t = lsgraph_analytics::triangle_count(&tr);
        assert_eq!(tc_l.triangles, tc_t.triangles, "TC mismatch across engines");
        println!(
            "{:>6}{:>10.4}{:>10.4}{:>7.2}{:>10.4}{:>10.4}{:>7.2}{:>10.4}{:>10.4}{:>7.2}{:>8.1}%",
            p.name,
            pr_l.as_secs_f64(),
            pr_t.as_secs_f64(),
            pr_t.as_secs_f64() / pr_l.as_secs_f64(),
            cc_l.as_secs_f64(),
            cc_t.as_secs_f64(),
            cc_t.as_secs_f64() / cc_l.as_secs_f64(),
            tc_l.total.as_secs_f64(),
            tc_t.total.as_secs_f64(),
            tc_t.total.as_secs_f64() / tc_l.total.as_secs_f64(),
            tc_l.traversal.as_secs_f64() / tc_l.total.as_secs_f64() * 100.0,
        );
    }
}

/// Table 3: memory footprints and LSGraph's index overhead.
pub fn table3(scale: &Scale) {
    println!("# Table 3: memory usage (MB), T/L ratio, LSGraph index overhead I/L");
    println!(
        "{:>6}{:>10}{:>10}{:>10}{:>10}{:>7}{:>7}",
        "graph", "LSGraph", "Terrace", "Aspen", "PaC-tree", "T/L", "I/L"
    );
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let n = p.scaled_vertices(shift);
        let base = sym(&p.generate(shift, 42));
        let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
        let ls = LsGraph::from_edges(n, &base, Config::default());
        let fp_l = ls.footprint();
        let fp_t = TerraceGraph::from_edges(n, &base).footprint();
        let fp_a = AspenGraph::from_edges(n, &base).footprint();
        let fp_p = PacGraph::from_edges(n, &base).footprint();
        println!(
            "{:>6}{:>10.1}{:>10.1}{:>10.1}{:>10.1}{:>7.2}{:>6.1}%",
            p.name,
            mb(fp_l.total()),
            mb(fp_t.total()),
            mb(fp_a.total()),
            mb(fp_p.total()),
            fp_t.total() as f64 / fp_l.total() as f64,
            ls.index_overhead() * 100.0,
        );
    }
    // Self-reported splits above vs what the process actually allocated;
    // the gap is allocator slack plus harness overhead.
    println!("# process heap: {}", lsgraph_api::footprint::heap_summary());
}

/// §6.2 component ablation: PMA-for-RIA, RIA-only, binary search in LIA.
pub fn ablation(scale: &Scale) {
    println!("# §6.2 ablation: insert time of one large batch (lower is better)");
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    let base = p.generate(shift, 42);
    // Whole-graph-scale insert, as the paper's 10^8-edge ablation workload;
    // smaller batches barely reach the HITree/LIA code paths.
    let bs = base.len();
    let variants: [(&str, Config); 4] = [
        ("LSGraph (full)", Config::default()),
        (
            "PMA instead of RIA",
            Config {
                medium: MediumStore::Pma,
                ..Config::default()
            },
        ),
        (
            "RIA instead of HITree",
            Config {
                high: HighDegreeStore::RiaOnly,
                ..Config::default()
            },
        ),
        (
            "binary search in LIA",
            Config {
                lia_search: LiaSearch::Binary,
                ..Config::default()
            },
        ),
    ];
    let mut baseline = None;
    for (name, cfg) in variants {
        let mut total = Duration::ZERO;
        for t in 0..scale.trials {
            let mut g = LsGraph::from_edges(n, &base, cfg);
            let batch = update_batch(gscale, bs, 33 + t as u64);
            let (_, d) = time(|| g.insert_batch(&batch));
            total += d;
        }
        let secs = (total / scale.trials.max(1) as u32).as_secs_f64();
        let rel = match baseline {
            None => {
                baseline = Some(secs);
                1.0
            }
            Some(b) => secs / b,
        };
        println!("{name:>24}: {secs:.4}s  ({rel:.2}x of full)");
    }
}

/// Fig. 14: insert-time sensitivity to α and M.
pub fn fig14(scale: &Scale) {
    println!("# Fig. 14: time (s) to insert one large batch, by alpha and M");
    sensitivity(scale, false);
}

/// Fig. 15: PageRank sensitivity to α and M.
pub fn fig15(scale: &Scale) {
    println!("# Fig. 15: PageRank time (s), by alpha and M");
    sensitivity(scale, true);
}

fn sensitivity(scale: &Scale, pagerank: bool) {
    let alphas = [1.1, 1.2, 1.3, 1.5, 2.0];
    let ms = [1usize << 12, 1 << 14, 1 << 16];
    for p in datasets(scale) {
        let shift = shift_for(&p, scale);
        let gscale = p.log_vertices - shift;
        let n = p.scaled_vertices(shift);
        let base = if pagerank {
            sym(&p.generate(shift, 42))
        } else {
            p.generate(shift, 42)
        };
        // The paper's Fig. 14 inserts a batch comparable to the whole graph
        // (10^8 edges on LJ); match that ratio so the α effect is visible.
        let bs = base
            .len()
            .max(*scale.batch_sizes().last().expect("nonempty"));
        println!("\n## {}", p.name);
        print!("{:>8}", "alpha\\M");
        for m in ms {
            print!("{:>10}", format!("2^{}", m.ilog2()));
        }
        println!();
        for a in alphas {
            print!("{a:>8}");
            for m in ms {
                let cfg = Config::default().with_alpha(a).with_m(m);
                let d = if pagerank {
                    let g = LsGraph::from_edges(n, &base, cfg);
                    time_avg(scale.trials, || {
                        lsgraph_analytics::pagerank(&g, 10, 0.85);
                    })
                } else {
                    let mut total = std::time::Duration::ZERO;
                    for t in 0..scale.trials {
                        // Fresh graph per trial: a whole-graph-sized insert.
                        let mut g = LsGraph::from_edges(n, &base, cfg);
                        let batch = update_batch(gscale, bs, 17 + t as u64);
                        let (_, d) = time(|| g.insert_batch(&batch));
                        total += d;
                    }
                    total / scale.trials.max(1) as u32
                };
                print!("{:>10.4}", d.as_secs_f64());
            }
            println!();
        }
    }
}

/// Fig. 16: five consecutive large insert batches (no deletes), stressing
/// HITree's vertical movement.
pub fn fig16(scale: &Scale) {
    println!("# Fig. 16: cumulative time (s) of 5 consecutive large inserts on OR");
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    let base = p.generate(shift, 42);
    // Five whole-graph-scale batches, as in the paper (5 x 10^8 on OR).
    let bs = base.len() / 2;
    let alphas = [1.1, 1.2, 1.5];
    let ms = [1usize << 12, 1 << 14, 1 << 16];
    print!("{:>8}", "alpha\\M");
    for m in ms {
        print!("{:>10}", format!("2^{}", m.ilog2()));
    }
    println!();
    for a in alphas {
        print!("{a:>8}");
        for m in ms {
            let cfg = Config::default().with_alpha(a).with_m(m);
            let mut g = LsGraph::from_edges(n, &base, cfg);
            let (_, d) = time(|| {
                for round in 0..5u64 {
                    let batch = update_batch(gscale, bs, 100 + round);
                    g.insert_batch(&batch);
                }
            });
            print!("{:>10.4}", d.as_secs_f64());
        }
        println!();
    }
}

/// Fig. 17: update-throughput scaling across thread counts.
pub fn fig17(scale: &Scale) {
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    println!("# Fig. 17: insert throughput vs threads on OR (hw threads: {hw})");
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    let base = p.generate(shift, 42);
    let bs = scale.batch_sizes()[3];
    let mut threads = vec![1usize];
    while *threads.last().expect("nonempty") * 2 <= hw {
        threads.push(threads.last().expect("nonempty") * 2);
    }
    print!("{:>10}", "threads");
    for k in engines() {
        print!("{:>12}", k.name());
    }
    println!();
    for t in threads {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .expect("pool");
        print!("{t:>10}");
        for k in engines() {
            let d = pool.install(|| {
                let mut g = build_engine(k, n, &base);
                let batch = update_batch(gscale, bs, 55);
                let (_, d) = time(|| g.insert_batch(&batch));
                d
            });
            print!("{:>12}", fmt_tput(bs, d));
        }
        println!();
    }
}

/// Table 4 / §6.5: realistic temporal arrival streams — 90% loaded, the
/// final 10% streamed as timestamped batches.
pub fn table4(scale: &Scale) {
    println!("# Table 4 / §6.5: streaming the last 10% of temporal graphs (edges/s)");
    let div = if scale.shift >= 3 {
        1
    } else {
        10 >> scale.shift.min(3)
    };
    print!("{:>6}", "graph");
    for k in engines() {
        print!("{:>12}", k.name());
    }
    println!();
    for p in TEMPORAL_PROFILES {
        let stream = p.generate(div.max(1), 7);
        let cut = stream.len() * 9 / 10;
        let (base, tail) = stream.split_at(cut);
        let n = p.vertices / div.max(1) + 1;
        print!("{:>6}", p.name);
        for k in engines() {
            let mut g = build_engine(k, n, base);
            let (_, d) = time(|| {
                for chunk in tail.chunks(10_000.max(tail.len() / 50)) {
                    g.insert_batch(chunk);
                }
            });
            print!("{:>12}", fmt_tput(tail.len(), d));
        }
        println!();
    }
}

/// §6.1 baseline selection: PaC-tree vs Sortledton update throughput (the
/// paper reports PaC-tree ahead by 40.56×–142.53× and therefore uses it as
/// the tree-family baseline).
pub fn sortledton(scale: &Scale) {
    use lsgraph_pactree::PacGraph;
    use lsgraph_sortledton::SortledtonGraph;
    println!("# §6.1: PaC-tree vs Sortledton insert throughput (edges/s)");
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    let base = p.generate(shift, 42);
    let mut pac = PacGraph::from_edges(n, &base);
    let mut sl = SortledtonGraph::from_edges(n, &base);
    println!(
        "{:>10}{:>12}{:>12}{:>8}",
        "batch", "PaC-tree", "Sortledton", "P/S"
    );
    for bs in scale.batch_sizes() {
        let batch = update_batch(gscale, bs, 61);
        let (_, tp) = time(|| pac.insert_batch(&batch));
        pac.delete_batch(&batch);
        let (_, ts) = time(|| sl.insert_batch(&batch));
        sl.delete_batch(&batch);
        println!(
            "{bs:>10}{:>12}{:>12}{:>8.2}",
            fmt_tput(bs, tp),
            fmt_tput(bs, ts),
            ts.as_secs_f64() / tp.as_secs_f64()
        );
    }
}

/// §6.5 larger graphs: graph500 Kronecker, LSGraph vs Aspen vs PaC-tree.
pub fn g500(scale: &Scale) {
    println!("# §6.5: graph500 Kronecker graph, insert throughput (edges/s)");
    let gscale = scale.graph_scale() + 2;
    let m = 1usize << (gscale + 3);
    let base = lsgraph_gen::graph500(gscale, m, 3);
    let n = 1usize << gscale;
    let bs = *scale.batch_sizes().last().expect("nonempty");
    for k in [EngineKind::LsGraph, EngineKind::Aspen, EngineKind::PacTree] {
        let mut g = build_engine(k, n, &base);
        let batch = lsgraph_gen::graph500(gscale, bs, 91);
        let (_, d) = time(|| g.insert_batch(&batch));
        println!("{:>10}: {}", k.name(), fmt_tput(bs, d));
    }
}

/// Measures one durability cell at batch size `bs`: a fresh WAL-fronted
/// store loads the base graph, streams `trials` logged insert + delete
/// rounds (synced each round), checkpoints, streams `trials` more rounds
/// past the checkpoint, and reopens — so the recovery replays exactly the
/// post-checkpoint tail.
fn durability_cell(
    dataset: &str,
    n: usize,
    base: &[Edge],
    gscale: u32,
    shift: u32,
    bs: usize,
    trials: usize,
) -> EngineReport {
    use lsgraph_persist::Store;
    let dir = std::env::temp_dir().join(format!(
        "lsgraph-bench-durability-{}-{bs}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = crate::runner::scaled_config(shift);
    let (mut store, _) = Store::open(&dir, n, cfg).expect("open store");
    store.insert_batch(base).expect("load base");
    store.checkpoint().expect("baseline checkpoint");
    let stats_before = store.graph().stats().snapshot();
    let wal_before = store.wal_len();

    // Measured logged updates: append + group commit + apply, fsync per
    // round (the WAL's advertised durability point).
    let mut ins = Duration::ZERO;
    let mut del = Duration::ZERO;
    for t in 0..trials {
        let batch = update_batch(gscale, bs, 1_000 + t as u64);
        let (_, ti) = time(|| {
            store.insert_batch(&batch).expect("logged insert");
            store.sync().expect("sync");
        });
        let (_, td) = time(|| {
            store.delete_batch(&batch).expect("logged delete");
            store.sync().expect("sync");
        });
        ins += ti;
        del += td;
    }
    let (ckpt_meta, ckpt_d) = time(|| store.checkpoint().expect("checkpoint"));

    // Post-checkpoint tail: what the recovery below has to replay.
    let mut tail_edges = 0usize;
    for t in 0..trials {
        let batch = update_batch(gscale, bs, 5_000 + t as u64);
        tail_edges += batch.len();
        store.insert_batch(&batch).expect("tail insert");
    }
    store.sync().expect("tail sync");
    let wal_after = store.wal_len();
    let stats_after = store.graph().stats().snapshot();
    drop(store);

    let ((store, recovery), rec_d) = time(|| Store::open(&dir, n, cfg).expect("recover"));
    assert_eq!(
        recovery.frames_replayed, trials as u64,
        "recovery must replay exactly the post-checkpoint tail"
    );
    if let Err(e) = store.graph().validate_structure() {
        panic!("structure invalid after durability/{dataset}/bs={bs}: {e}");
    }
    // The cell's counters cover the pre-crash store (logged updates +
    // checkpoint); the recovery counters live on the *recovered* store's
    // stats, so graft them in — all four durability counters then describe
    // this one cell and stay deterministic for the regression gate.
    let rec_stats = store.graph().stats().snapshot();
    let mut cell_stats = stats_after.since(stats_before);
    cell_stats.recovery_frames_replayed = rec_stats.recovery_frames_replayed;
    cell_stats.recovery_frames_discarded = rec_stats.recovery_frames_discarded;
    cell_stats.recovery_images_discarded = rec_stats.recovery_images_discarded;
    let edges = (bs * trials) as f64;
    let report = EngineReport {
        engine: "LSGraph+WAL".to_string(),
        dataset: dataset.to_string(),
        batch_size: bs,
        insert_eps: edges / ins.as_secs_f64().max(1e-12),
        delete_eps: edges / del.as_secs_f64().max(1e-12),
        insert_nanos: ins.as_nanos() as u64,
        delete_nanos: del.as_nanos() as u64,
        counters: None,
        struct_stats: Some(cell_stats),
        footprint: Some(measure_footprint(store.graph())),
        latency: None,
        kernels: Vec::new(),
        durability: Some(crate::report::DurabilityReport {
            wal_frames: cell_stats.wal_frames_appended,
            wal_bytes: wal_after - wal_before,
            wal_append_eps: (2.0 * edges) / (ins + del).as_secs_f64().max(1e-12),
            checkpoint_bytes: ckpt_meta.bytes,
            checkpoint_nanos: ckpt_d.as_nanos() as u64,
            recovery_nanos: rec_d.as_nanos() as u64,
            replay_frames: recovery.frames_replayed,
            replay_eps: tail_edges as f64 / rec_d.as_secs_f64().max(1e-12),
            wal_segments_rotated: cell_stats.wal_segments_rotated,
            wal_segments_deleted: cell_stats.wal_segments_deleted,
            delta_checkpoints_written: cell_stats.delta_checkpoints_written,
            checkpoint_dirty_vertices: cell_stats.checkpoint_dirty_vertices,
            wal_live_bytes: cell_stats.wal_live_bytes,
        }),
        mixed: None,
        standing: None,
        search: None,
    };
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Measures one **rotating** durability cell: the store runs with a
/// segment budget sized to the batch (so the WAL rotates on nearly every
/// append), eager delta checkpoints (`delta_ratio` 1.0), and a retention
/// pass every fourth round. The cell asserts the two tentpole durability
/// properties directly:
///
/// - **bounded WAL**: retention reclaims sealed segments behind the chain
///   tip, so the live WAL stays strictly below the bytes appended over the
///   run;
/// - **delta scaling**: a delta image's size grows with the number of
///   dirty vertices it covers (probed with a small and a large dirty set),
///   and stays below the full base image.
fn rotation_cell(
    dataset: &str,
    n: usize,
    base: &[Edge],
    gscale: u32,
    shift: u32,
    bs: usize,
    trials: usize,
) -> EngineReport {
    use lsgraph_persist::{Store, StoreOptions};
    let dir = std::env::temp_dir().join(format!(
        "lsgraph-bench-rotating-{}-{bs}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = crate::runner::scaled_config(shift);
    let opts = StoreOptions {
        // One update frame roughly fills a segment, so rotation happens on
        // nearly every logged round.
        segment_bytes: ((bs * 8) as u64).max(1024),
        delta_ratio: 1.0,
        max_delta_chain: 64,
        ..StoreOptions::default()
    };
    let (mut store, _) = Store::open_with(&dir, n, cfg, opts).expect("open store");
    store.insert_batch(base).expect("load base");
    let full_meta = store.checkpoint().expect("baseline full checkpoint");
    let stats_before = store.graph().stats().snapshot();

    // Logged rounds with periodic checkpoint + retention. Scales with the
    // profile but keeps a floor so rotation and GC always trigger.
    let rounds = trials.max(12);
    let mut ins = Duration::ZERO;
    let mut del = Duration::ZERO;
    let mut appended = 0u64;
    let mut last_len = store.wal_len();
    for t in 0..rounds {
        let batch = update_batch(gscale, bs, 9_000 + t as u64);
        let (_, ti) = time(|| {
            store.insert_batch(&batch).expect("logged insert");
            store.sync().expect("sync");
        });
        let (_, td) = time(|| {
            store.delete_batch(&batch).expect("logged delete");
            store.sync().expect("sync");
        });
        ins += ti;
        del += td;
        appended += store.wal_len().saturating_sub(last_len);
        if t % 4 == 3 {
            store.checkpoint().expect("delta checkpoint");
            store.run_retention().expect("retention pass");
        }
        last_len = store.wal_len();
    }
    store.checkpoint().expect("closing checkpoint");
    store.run_retention().expect("closing retention");

    // Tentpole property 1: the live WAL is bounded — retention reclaimed
    // sealed segments, so on-disk bytes sit strictly below what the run
    // appended.
    let live = store.wal_len();
    assert!(
        live < appended,
        "rotating/{dataset}/bs={bs}: live WAL {live} B not bounded \
         (appended {appended} B, retention reclaimed nothing)"
    );

    // Tentpole property 2: delta image bytes scale with the dirty-vertex
    // count. Probe with a small dirty set, then one ~8x larger.
    let small = update_batch(gscale, (bs / 4).max(8), 77);
    store.insert_batch(&small).expect("small probe");
    store.sync().expect("sync");
    let small_meta = store.checkpoint().expect("small delta");
    let small_dirty = store.graph().stats().snapshot().checkpoint_dirty_vertices;
    let large = update_batch(gscale, (bs * 2).max(64), 78);
    store.insert_batch(&large).expect("large probe");
    store.sync().expect("sync");
    let large_meta = store.checkpoint().expect("large delta");
    let large_dirty = store.graph().stats().snapshot().checkpoint_dirty_vertices;
    assert!(
        small_dirty < large_dirty,
        "rotating/{dataset}/bs={bs}: probe dirty sets not ordered \
         ({small_dirty} vs {large_dirty})"
    );
    assert!(
        small_meta.bytes < large_meta.bytes,
        "rotating/{dataset}/bs={bs}: delta bytes do not scale with dirty \
         vertices ({} B for {small_dirty} dirty vs {} B for {large_dirty})",
        small_meta.bytes,
        large_meta.bytes
    );
    assert!(
        large_meta.bytes < full_meta.bytes,
        "rotating/{dataset}/bs={bs}: delta image ({} B) not smaller than \
         the full base image ({} B)",
        large_meta.bytes,
        full_meta.bytes
    );

    // Post-checkpoint tail, then recover and verify like the base cell.
    let mut tail_edges = 0usize;
    for t in 0..2 {
        let batch = update_batch(gscale, bs, 11_000 + t as u64);
        tail_edges += batch.len();
        store.insert_batch(&batch).expect("tail insert");
    }
    store.sync().expect("tail sync");
    let wal_live = store.wal_len();
    let stats_after = store.graph().stats().snapshot();
    drop(store);

    let ((store, recovery), rec_d) =
        time(|| Store::open_with(&dir, n, cfg, opts).expect("recover"));
    assert_eq!(
        recovery.frames_replayed, 2,
        "recovery must replay exactly the post-checkpoint tail"
    );
    if let Err(e) = store.graph().validate_structure() {
        panic!("structure invalid after rotating/{dataset}/bs={bs}: {e}");
    }
    let rec_stats = store.graph().stats().snapshot();
    let mut cell_stats = stats_after.since(stats_before);
    cell_stats.recovery_frames_replayed = rec_stats.recovery_frames_replayed;
    cell_stats.recovery_frames_discarded = rec_stats.recovery_frames_discarded;
    cell_stats.recovery_images_discarded = rec_stats.recovery_images_discarded;
    assert!(
        cell_stats.wal_segments_rotated > 0 && cell_stats.wal_segments_deleted > 0,
        "rotating/{dataset}/bs={bs}: rotation or retention never triggered"
    );
    assert!(
        cell_stats.delta_checkpoints_written >= 2,
        "rotating/{dataset}/bs={bs}: probes did not write delta images"
    );
    let edges = (bs * rounds) as f64;
    let report = EngineReport {
        engine: "LSGraph+WAL/rotating".to_string(),
        dataset: dataset.to_string(),
        batch_size: bs,
        insert_eps: edges / ins.as_secs_f64().max(1e-12),
        delete_eps: edges / del.as_secs_f64().max(1e-12),
        insert_nanos: ins.as_nanos() as u64,
        delete_nanos: del.as_nanos() as u64,
        counters: None,
        struct_stats: Some(cell_stats),
        footprint: Some(measure_footprint(store.graph())),
        latency: None,
        kernels: Vec::new(),
        durability: Some(crate::report::DurabilityReport {
            wal_frames: cell_stats.wal_frames_appended,
            wal_bytes: appended,
            wal_append_eps: (2.0 * edges) / (ins + del).as_secs_f64().max(1e-12),
            checkpoint_bytes: large_meta.bytes,
            checkpoint_nanos: 0,
            recovery_nanos: rec_d.as_nanos() as u64,
            replay_frames: recovery.frames_replayed,
            replay_eps: tail_edges as f64 / rec_d.as_secs_f64().max(1e-12),
            wal_segments_rotated: cell_stats.wal_segments_rotated,
            wal_segments_deleted: cell_stats.wal_segments_deleted,
            delta_checkpoints_written: cell_stats.delta_checkpoints_written,
            checkpoint_dirty_vertices: large_dirty,
            wal_live_bytes: wal_live,
        }),
        mixed: None,
        standing: None,
        search: None,
    };
    std::fs::remove_dir_all(&dir).ok();
    report
}

/// Durability experiment (schema v6): WAL append throughput, checkpoint
/// write cost, and recovery replay rate across batch sizes on OR, plus one
/// rotating cell (segmented WAL + delta checkpoints + retention GC) at the
/// largest batch size.
pub fn durability_report(scale: &Scale) -> BenchReport {
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    let base = p.generate(shift, 42);
    let mut engines: Vec<EngineReport> = scale
        .batch_sizes()
        .into_iter()
        .map(|bs| durability_cell(p.name, n, &base, gscale, shift, bs, scale.trials))
        .collect();
    let rot_bs = *scale.batch_sizes().last().expect("nonempty");
    engines.push(rotation_cell(
        p.name,
        n,
        &base,
        gscale,
        shift,
        rot_bs,
        scale.trials,
    ));
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "durability".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines,
    }
}

/// Durability experiment, human-readable table.
pub fn durability(scale: &Scale) {
    println!("# durability: logged updates, checkpoints, recovery (OR)");
    println!(
        "{:>22}{:>10}{:>14}{:>14}{:>12}{:>14}{:>10}{:>10}{:>10}",
        "engine",
        "batch",
        "logged-ins",
        "logged-del",
        "ckpt-MB",
        "replay-eps",
        "segs-rot",
        "segs-del",
        "live-KB"
    );
    let r = durability_report(scale);
    for e in &r.engines {
        let d = e.durability.as_ref().expect("durability cell");
        println!(
            "{:>22}{:>10}{:>14}{:>14}{:>12.2}{:>14}{:>10}{:>10}{:>10.1}",
            e.engine,
            e.batch_size,
            format!("{:.2e}", e.insert_eps),
            format!("{:.2e}", e.delete_eps),
            d.checkpoint_bytes as f64 / (1024.0 * 1024.0),
            format!("{:.2e}", d.replay_eps),
            d.wal_segments_rotated,
            d.wal_segments_deleted,
            d.wal_live_bytes as f64 / 1024.0,
        );
    }
}

/// Number of concurrent reader threads in the `mixed` experiment.
const MIXED_READERS: usize = 4;

/// Measures one mixed reader/writer cell at batch size `bs`: a writer
/// streams `rounds` update batches, flipping a [`GraphSnapshot`] after
/// every batch, while [`MIXED_READERS`] reader threads hammer the latest
/// published snapshot with a **fixed** number of read ops each, recording
/// per-op latency into the `reader` histogram.
///
/// The protocol keeps the gated counters deterministic: the writer holds
/// every snapshot until the readers finish (so each per-source run copies
/// its block exactly once per batch, making `cow_block_copies` a pure
/// function of the seeded batches), the reader op count is fixed per thread
/// (so the `reader` histogram count is exactly readers × ops), and the cell
/// ends with a drop-everything + reclaim quiescence check that must drain
/// the epoch backlog to zero.
fn mixed_cell(
    dataset: &str,
    n: usize,
    base: &[Edge],
    gscale: u32,
    shift: u32,
    bs: usize,
    trials: usize,
) -> EngineReport {
    use lsgraph_core::GraphSnapshot;
    use std::sync::{Arc, Mutex};
    use std::time::Instant;

    let rounds = 8 * trials.max(1);
    let ops_per_reader = 64 * rounds;

    let cfg = crate::runner::scaled_config(shift);
    let mut g = LsGraph::from_edges(n, base, cfg);
    g.reset_instrumentation();

    // Live metrics: when `repro ... --metrics` installed a JSONL sink, the
    // engine's registry is sampled once per writer round plus once at
    // quiescence — `rounds + 1` samples per cell, an exact function of the
    // workload, never of wall clock. Without a sink every tick is a no-op.
    let registry = {
        let mut r = lsgraph_api::MetricsRegistry::new();
        r.register_struct_stats("lsgraph", g.stats_handle());
        r.register_latency_stats("lsgraph", g.latency_handle());
        Arc::new(r)
    };
    let lat = g.latency_handle();
    let mut sampler = lsgraph_api::Sampler::new(registry, format!("{dataset}/bs={bs}"));
    let mut tick_edges = 0usize;
    let mut tick_start = Instant::now();

    // Seed the published slot so readers have a frozen view from op one.
    let published: Arc<Mutex<GraphSnapshot>> = Arc::new(Mutex::new(g.snapshot()));
    let mut handles = Vec::new();
    for r in 0..MIXED_READERS {
        let published = Arc::clone(&published);
        handles.push(std::thread::spawn(move || {
            let start = Instant::now();
            for i in 0..ops_per_reader {
                // Cloning the handle bumps one refcount on the shared
                // snapshot state, never the per-block Arcs, so reads do not
                // perturb the writer's copy-on-write accounting.
                let snap = published.lock().expect("published snapshot").clone();
                let op_start = Instant::now();
                let v = ((r * ops_per_reader + i) * 97 % snap.num_vertices().max(1)) as u32;
                std::hint::black_box(snap.neighbors(v).len());
                snap.record_reader_duration(op_start.elapsed());
            }
            start.elapsed()
        }));
    }

    // Writer: stream batches (a delete round every third), flip + publish a
    // snapshot after each, and hold them all until measurement ends.
    let mut snaps = Vec::with_capacity(rounds);
    let mut ins = Duration::ZERO;
    let mut del = Duration::ZERO;
    let mut ins_edges = 0usize;
    let mut del_edges = 0usize;
    let writer_start = std::time::Instant::now();
    for t in 0..rounds {
        let batch = update_batch(gscale, bs, 1_000 + t as u64);
        if t % 3 == 2 {
            del_edges += batch.len();
            let (_, d) = time(|| g.delete_batch(&batch));
            del += d;
        } else {
            ins_edges += batch.len();
            let (_, d) = time(|| g.insert_batch(&batch));
            ins += d;
        }
        let snap = g.snapshot();
        *published.lock().expect("published snapshot") = snap.clone();
        snaps.push(snap);

        // One metrics sample per writer round: instantaneous writer eps
        // since the previous tick, and the readers' running p99 — the
        // series shows *when* in the run a regression happens.
        let total = ins_edges + del_edges;
        let eps = (total - tick_edges) as f64 / tick_start.elapsed().as_secs_f64().max(1e-12);
        let p99 = lat.reader.snapshot().p99() as f64;
        sampler
            .tick(&[("writer_eps", eps), ("reader_p99_ns", p99)])
            .expect("metrics tick failed");
        tick_edges = total;
        tick_start = Instant::now();
    }
    let writer_d = writer_start.elapsed();
    let reader_walls: Vec<Duration> = handles
        .into_iter()
        .map(|h| h.join().expect("reader thread panicked"))
        .collect();
    let max_reader_wall = reader_walls.iter().copied().max().unwrap_or(Duration::ZERO);

    // Quiescence: every snapshot handle is gone, so reclamation must drain
    // the retired-version pool; a nonzero backlog here is a leak.
    drop(snaps);
    drop(published);
    g.reclaim_epochs();
    let backlog = g.epoch_backlog();
    assert_eq!(backlog, 0, "mixed/{dataset}/bs={bs}: epoch backlog leaked");
    if let Err(e) = g.validate_structure() {
        panic!("structure invalid after mixed/{dataset}/bs={bs}: {e}");
    }

    // Final quiescence sample: the `epoch_reclaim_backlog` gauge must read
    // 0 here — `repro check --metrics` gates on it.
    sampler
        .tick(&[
            ("writer_eps", 0.0),
            ("reader_p99_ns", lat.reader.snapshot().p99() as f64),
        ])
        .expect("metrics tick failed");

    let ss = g.struct_stats().expect("struct stats");
    let writer_edges = (ins_edges + del_edges) as u64;
    let reader_ops = (MIXED_READERS * ops_per_reader) as u64;
    EngineReport {
        engine: "LSGraph+Snapshots".to_string(),
        dataset: dataset.to_string(),
        batch_size: bs,
        insert_eps: ins_edges as f64 / ins.as_secs_f64().max(1e-12),
        delete_eps: del_edges as f64 / del.as_secs_f64().max(1e-12),
        insert_nanos: ins.as_nanos() as u64,
        delete_nanos: del.as_nanos() as u64,
        counters: None,
        struct_stats: Some(ss),
        footprint: Some(measure_footprint(&g)),
        latency: g.latency_stats(),
        kernels: Vec::new(),
        durability: None,
        mixed: Some(crate::report::MixedReport {
            writer_batches: rounds as u64,
            writer_edges,
            writer_eps: writer_edges as f64 / writer_d.as_secs_f64().max(1e-12),
            reader_threads: MIXED_READERS as u64,
            reader_ops,
            reader_ops_per_sec: reader_ops as f64 / max_reader_wall.as_secs_f64().max(1e-12),
            snapshots_taken: ss.snapshots_taken,
            cow_block_copies: ss.cow_block_copies,
            final_backlog: backlog as u64,
        }),
        standing: None,
        search: None,
    }
}

/// Mixed experiment (schema v5): concurrent analytics-style reads over
/// snapshots while the writer streams updates, across batch sizes on OR.
pub fn mixed_report(scale: &Scale) -> BenchReport {
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    let base = p.generate(shift, 42);
    if lsgraph_api::metrics::is_streaming() {
        // Deterministic sample budget: (rounds + 1 quiescence tick) per
        // cell. `repro check --metrics` asserts the file hits it exactly.
        let rounds = 8 * scale.trials.max(1) as u64;
        let expected = scale.batch_sizes().len() as u64 * (rounds + 1);
        lsgraph_api::metrics::write_header("mixed", expected).expect("metrics header failed");
    }
    let engines = scale
        .batch_sizes()
        .into_iter()
        .map(|bs| mixed_cell(p.name, n, &base, gscale, shift, bs, scale.trials))
        .collect();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "mixed".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines,
    }
}

/// Mixed experiment, human-readable table: writer and reader throughput
/// plus reader latency percentiles under write load.
pub fn mixed(scale: &Scale) {
    println!("# mixed: snapshot readers under write load (OR, {MIXED_READERS} readers)");
    println!(
        "{:>10}{:>14}{:>14}{:>10}{:>10}{:>10}{:>10}",
        "batch", "writer-eps", "reader-ops/s", "p50-ns", "p90-ns", "p99-ns", "cow"
    );
    let r = mixed_report(scale);
    for e in &r.engines {
        let m = e.mixed.as_ref().expect("mixed cell");
        let reader = e.latency.as_ref().map(|l| l.reader).unwrap_or_default();
        println!(
            "{:>10}{:>14}{:>14}{:>10}{:>10}{:>10}{:>10}",
            e.batch_size,
            format!("{:.2e}", m.writer_eps),
            format!("{:.2e}", m.reader_ops_per_sec),
            reader.p50(),
            reader.p90(),
            reader.p99(),
            m.cow_block_copies,
        );
    }
}

/// Number of standing subscriptions registered in the `standing` experiment
/// (one per query kind, with k-hop and membership sharing the source).
const STANDING_SUBS: usize = 4;

/// Window size (in batches) of the windowed standing queries.
const STANDING_WINDOW: usize = 4;

/// Measures one standing-query cell at batch size `bs`: four subscriptions
/// (2-hop neighborhood, windowed edge count, windowed triangle count,
/// component membership) are registered through a [`SubscriptionHub`], then
/// the writer streams `rounds` symmetric update batches (a delete round
/// every third). After each batch the cell times two paths over the *same*
/// graph state:
///
/// * **delivery** — `hub.quiesce()`: the worker applies the batch to every
///   incremental maintainer and emits the per-subscription [`ResultDelta`];
/// * **recompute** — the four from-scratch oracles (fresh BFS, fresh label
///   propagation, window rescans).
///
/// Each subscription's materialized result is asserted equal to its oracle
/// every round, so the reported speedup is over a verified-identical
/// answer. Counters stay deterministic: exactly one snapshot per batch
/// (taken by the hook), `STANDING_SUBS` deltas per batch, and an
/// end-of-cell quiescence that must drain the epoch backlog to zero.
fn standing_cell(
    dataset: &str,
    n: usize,
    base: &[Edge],
    gscale: u32,
    shift: u32,
    bs: usize,
    trials: usize,
) -> EngineReport {
    use lsgraph_core::BatchKind;
    use lsgraph_queries::{BatchWindow, StandingQuery, SubscriptionHub};

    let rounds = 8 * trials.max(1);
    let cfg = crate::runner::scaled_config(shift);
    let mut g = LsGraph::from_edges(n, base, cfg);
    g.reset_instrumentation();

    let src = max_degree_vertex(&g);
    let queries = [
        StandingQuery::KHop { src, k: 2 },
        StandingQuery::WindowedEdgeCount {
            window: STANDING_WINDOW,
        },
        StandingQuery::WindowedTriangleCount {
            window: STANDING_WINDOW,
        },
        StandingQuery::ComponentMembership { src },
    ];
    assert_eq!(queries.len(), STANDING_SUBS);

    let hub = SubscriptionHub::attach(&mut g);
    let subs: Vec<_> = queries.iter().map(|&q| hub.subscribe(&g, q)).collect();

    // Mirror of the registry's sliding window, fed the same batches, so the
    // windowed oracles see the same history the maintainers do.
    let mut oracle_window = BatchWindow::new(STANDING_WINDOW);

    let mut ins = Duration::ZERO;
    let mut del = Duration::ZERO;
    let mut ins_edges = 0usize;
    let mut del_edges = 0usize;
    let mut delivery = Duration::ZERO;
    let mut recompute = Duration::ZERO;
    for t in 0..rounds {
        // Symmetric batches keep the BFS/CC kernels (which follow out-edges)
        // and the union-find maintainer (which is undirected) in agreement.
        let batch = sym(&update_batch(gscale, bs, 1_000 + t as u64));
        let kind = if t % 3 == 2 {
            del_edges += batch.len();
            let (_, d) = time(|| g.delete_batch(&batch));
            del += d;
            BatchKind::Delete
        } else {
            ins_edges += batch.len();
            let (_, d) = time(|| g.insert_batch(&batch));
            ins += d;
            BatchKind::Insert
        };
        oracle_window.push(g.batch_seq(), kind, &batch);

        // Incremental path: the worker delivers this batch to all four
        // maintainers and diffs their materialized results.
        let (_, d) = time(|| hub.quiesce());
        delivery += d;

        // From-scratch path: the full kernels on the same state.
        let (fresh, d) = time(|| {
            queries
                .iter()
                .map(|q| q.oracle(&g, &oracle_window))
                .collect::<Vec<_>>()
        });
        recompute += d;
        for ((sub, want), q) in subs.iter().zip(&fresh).zip(&queries) {
            let got = sub.result();
            if &got != want {
                let missing: Vec<_> = want
                    .iter()
                    .filter(|(k, v)| got.get(k) != Some(v))
                    .take(8)
                    .collect();
                let extra: Vec<_> = got
                    .iter()
                    .filter(|(k, v)| want.get(k) != Some(v))
                    .take(8)
                    .collect();
                panic!(
                    "standing/{dataset}/bs={bs}: {q:?} diverged from oracle at batch {t}: got {} entries want {}; missing(first8)={missing:?} extra(first8)={extra:?}",
                    got.len(), want.len()
                );
            }
        }
    }

    // Quiescence: the worker holds no snapshot after quiesce, so the
    // retired-version pool must drain completely.
    hub.quiesce();
    g.reclaim_epochs();
    let backlog = g.epoch_backlog();
    assert_eq!(
        backlog, 0,
        "standing/{dataset}/bs={bs}: epoch backlog leaked"
    );
    if let Err(e) = g.validate_structure() {
        panic!("structure invalid after standing/{dataset}/bs={bs}: {e}");
    }

    // Sampled while all four handles are live: the gauge must read 4.
    let ss = g.struct_stats().expect("struct stats");
    assert_eq!(ss.subscriptions_active, STANDING_SUBS as u64);
    assert_eq!(
        ss.deltas_delivered,
        (STANDING_SUBS * rounds) as u64,
        "standing/{dataset}/bs={bs}: every batch reaches every subscription"
    );
    assert_eq!(ss.subscription_panics, 0);

    let footprint = measure_footprint(&g);
    let latency = g.latency_stats();
    drop(subs);
    hub.shutdown();

    EngineReport {
        engine: "LSGraph+Standing".to_string(),
        dataset: dataset.to_string(),
        batch_size: bs,
        insert_eps: ins_edges as f64 / ins.as_secs_f64().max(1e-12),
        delete_eps: del_edges as f64 / del.as_secs_f64().max(1e-12),
        insert_nanos: ins.as_nanos() as u64,
        delete_nanos: del.as_nanos() as u64,
        counters: None,
        struct_stats: Some(ss),
        footprint: Some(footprint),
        latency,
        kernels: Vec::new(),
        durability: None,
        mixed: None,
        standing: Some(crate::report::StandingReport {
            subscriptions: STANDING_SUBS as u64,
            batches: rounds as u64,
            deltas_delivered: ss.deltas_delivered,
            delta_entries: ss.delta_entries_emitted,
            delivery_nanos: delivery.as_nanos() as u64,
            recompute_nanos: recompute.as_nanos() as u64,
            speedup: recompute.as_secs_f64() / delivery.as_secs_f64().max(1e-12),
            subscription_panics: ss.subscription_panics,
            final_backlog: backlog as u64,
        }),
        search: None,
    }
}

/// Standing-query experiment (schema v7): per-batch incremental delta
/// delivery vs from-scratch recomputation for four standing subscriptions,
/// across batch sizes on OR. Every delivered result is asserted equal to
/// the from-scratch oracle before it is timed into the report.
pub fn standing_report(scale: &Scale) -> BenchReport {
    let p = DatasetProfile::by_name("OR").expect("profile exists");
    let shift = shift_for(&p, scale);
    let gscale = p.log_vertices - shift;
    let n = p.scaled_vertices(shift);
    // Symmetrized like every analytics experiment: the BFS/CC kernels (and
    // the dense edge_map direction) assume an undirected graph, and the
    // streamed batches are symmetrized too, so symmetry is an invariant.
    let base = sym(&p.generate(shift, 42));
    let engines = scale
        .batch_sizes()
        .into_iter()
        .map(|bs| standing_cell(p.name, n, &base, gscale, shift, bs, scale.trials))
        .collect();
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "standing".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines,
    }
}

/// Standing-query experiment, human-readable table: delta volume and the
/// delivery-vs-recompute speedup per batch size.
pub fn standing(scale: &Scale) {
    println!(
        "# standing: incremental delta delivery vs full recomputation (OR, {STANDING_SUBS} subscriptions, window={STANDING_WINDOW})"
    );
    println!(
        "{:>10}{:>10}{:>12}{:>14}{:>14}{:>10}{:>10}",
        "batch", "deltas", "entries", "deliver-ms", "recomp-ms", "speedup", "panics"
    );
    let r = standing_report(scale);
    for e in &r.engines {
        let s = e.standing.as_ref().expect("standing cell");
        println!(
            "{:>10}{:>10}{:>12}{:>14.2}{:>14.2}{:>10}{:>10}",
            e.batch_size,
            s.deltas_delivered,
            s.delta_entries,
            s.delivery_nanos as f64 / 1e6,
            s.recompute_nanos as f64 / 1e6,
            format!("{:.1}x", s.speedup),
            s.subscription_panics,
        );
    }
}

/// Block sizes probed by the `search` experiment: the inline-block scale
/// (one cache line of ids), the RIA-block scale, and the spill/HITree-leaf
/// scale.
const SEARCH_SIZES: [usize; 3] = [16, 256, 4096];

/// Distinct blocks the probe stream rotates across per size, so the
/// microbench is not a single perpetually-hot block.
const SEARCH_BLOCKS: usize = 32;

/// Measures the one `search` cell: identical membership-probe streams run
/// through the scalar baseline (`std` binary search — exactly what every
/// probe site used before the search module) and the branch-free block
/// search the sites now route through, per block size, plus the compressed
/// cold tier's probe cost on a live graph. fig13-style, the probe counters
/// record into the process-global [`StructStats`](lsgraph_api::StructStats)
/// sink, so `struct_stats` is a before/after snapshot diff.
fn search_cell(scale: &Scale) -> EngineReport {
    use lsgraph_api::StructStats;
    use lsgraph_core::{search, CompressedNeighbors, Tier};
    use std::hint::black_box;

    let stats_before = StructStats::global().snapshot();
    let probes = 40_000 * scale.trials.max(1);

    // Deterministic LCG: the blocks and probe streams are identical run to
    // run, so every count in the cell is gateable.
    let mut state = 0x853c_49e6_748f_ea9bu64;
    let mut next = move |bound: u32| {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        ((state >> 33) as u32) % bound.max(1)
    };

    let mut nanos = [(0u64, 0u64); SEARCH_SIZES.len()];
    for (si, &size) in SEARCH_SIZES.iter().enumerate() {
        // Key space 4x the block size: probes mix hits and misses.
        let space = (size * 4) as u32;
        let blocks: Vec<Vec<u32>> = (0..SEARCH_BLOCKS)
            .map(|_| {
                let mut b: Vec<u32> = (0..size * 2).map(|_| next(space)).collect();
                b.sort_unstable();
                b.dedup();
                b.truncate(size);
                b
            })
            .collect();
        let keys: Vec<u32> = (0..probes).map(|_| next(space)).collect();

        // Three passes per side, keeping the fastest: the probe kernels are
        // a few ns/op, so one scheduler hiccup on a shared box would
        // otherwise dominate the phase. Inputs go through `black_box` so
        // neither side's loop can be specialized into a shape real call
        // sites (opaque runtime slices) never take.
        let mut scalar_hits = 0u64;
        let mut scalar_ns = u64::MAX;
        let mut block_hits = 0u64;
        let mut block_ns = u64::MAX;
        for _ in 0..3 {
            let (h, d) = time(|| {
                let mut hits = 0u64;
                for (i, &k) in keys.iter().enumerate() {
                    let b: &[u32] = black_box(&blocks[i % SEARCH_BLOCKS][..]);
                    hits += u64::from(b.binary_search(&black_box(k)).is_ok());
                }
                black_box(hits)
            });
            scalar_hits = h;
            scalar_ns = scalar_ns.min(d.as_nanos() as u64);
            let (h, d) = time(|| {
                let mut hits = 0u64;
                for (i, &k) in keys.iter().enumerate() {
                    let b: &[u32] = black_box(&blocks[i % SEARCH_BLOCKS][..]);
                    hits += u64::from(search::find(b, black_box(k)).is_ok());
                }
                black_box(hits)
            });
            block_hits = h;
            block_ns = block_ns.min(d.as_nanos() as u64);
        }
        assert_eq!(
            scalar_hits, block_hits,
            "probe disagreement at block size {size}"
        );
        StructStats::global().record_search_scalar_probes(probes as u64);
        StructStats::global().record_search_block_probes(probes as u64);
        nanos[si] = (scalar_ns, block_ns);
    }

    // Compressed cold tier on a live graph: hub vertices past `M` freeze,
    // then each membership probe pays the skip-pointer search plus at most
    // one chunk decode.
    let gscale = scale.graph_scale().min(16);
    let n = 1usize << gscale;
    let m = 128usize;
    let cfg = Config::default().with_m(m).with_compress_cold(true);
    let mut g = LsGraph::from_edges(n, &[], cfg);
    let hubs = 8u32;
    let deg = (4 * m).min(n.saturating_sub(hubs as usize)) as u32;
    assert!(deg as usize > m, "scale too small for the compressed tier");
    let ns: Vec<u32> = (0..deg).map(|d| d + hubs).collect();
    for h in 0..hubs {
        let batch: Vec<Edge> = ns.iter().map(|&d| Edge::new(h, d)).collect();
        g.insert_batch(&batch);
    }
    let frozen = g.compress_cold_vertices();
    assert_eq!(frozen, hubs as usize, "every hub must freeze");
    for h in 0..hubs {
        assert!(matches!(g.tier(h), Tier::Compressed));
    }
    let decode_keys: Vec<(u32, u32)> = (0..probes)
        .map(|i| (i as u32 % hubs, next(2 * deg) + hubs))
        .collect();
    let (decode_hits, decode_d) = time(|| {
        let mut hits = 0u64;
        for &(h, k) in &decode_keys {
            hits += u64::from(g.has_edge(h, k));
        }
        black_box(hits)
    });
    let want = decode_keys.iter().filter(|&&(_, k)| k < deg + hubs).count() as u64;
    assert_eq!(
        decode_hits, want,
        "compressed-tier probes disagree with the dense oracle"
    );

    // Size columns: the hub adjacency as the codec stores it vs raw u32s.
    let raw_bytes = hubs as u64 * deg as u64 * 4;
    let compressed_bytes =
        hubs as u64 * CompressedNeighbors::from_sorted(&ns).stored_bytes() as u64;

    let ss = StructStats::global().snapshot().since(stats_before);
    EngineReport {
        engine: "LSGraph+Search".to_string(),
        dataset: "synthetic".to_string(),
        batch_size: 0,
        insert_eps: 0.0,
        delete_eps: 0.0,
        insert_nanos: 0,
        delete_nanos: 0,
        counters: None,
        struct_stats: Some(ss),
        footprint: None,
        latency: None,
        kernels: Vec::new(),
        durability: None,
        mixed: None,
        standing: None,
        search: Some(crate::report::SearchReport {
            probes_per_size: probes as u64,
            scalar_small_nanos: nanos[0].0,
            block_small_nanos: nanos[0].1,
            scalar_medium_nanos: nanos[1].0,
            block_medium_nanos: nanos[1].1,
            scalar_large_nanos: nanos[2].0,
            block_large_nanos: nanos[2].1,
            decode_probes: probes as u64,
            decode_nanos: decode_d.as_nanos() as u64,
            compressed_bytes,
            raw_bytes,
        }),
    }
}

/// Search experiment (schema v8): branch-free block search vs the scalar
/// baseline over identical probe streams per block size, plus the
/// compressed cold tier's probe/decode cost and storage ratio.
pub fn search_report(scale: &Scale) -> BenchReport {
    BenchReport {
        schema_version: SCHEMA_VERSION,
        experiment: "search".to_string(),
        base: scale.base,
        shift: scale.shift,
        trials: scale.trials,
        engines: vec![search_cell(scale)],
    }
}

/// Search experiment, human-readable table: per-probe cost of the scalar
/// vs block path per block size, and the compressed tier's decode cost.
pub fn search(scale: &Scale) {
    println!("# search: scalar vs branch-free block probes, compressed-tier decode");
    let r = search_report(scale);
    let s = r.engines[0].search.as_ref().expect("search cell");
    println!(
        "{:>8}{:>14}{:>14}{:>10}",
        "block", "scalar-ns/op", "block-ns/op", "speedup"
    );
    let per = |n: u64| n as f64 / s.probes_per_size.max(1) as f64;
    for (size, sc, bl) in [
        (SEARCH_SIZES[0], s.scalar_small_nanos, s.block_small_nanos),
        (SEARCH_SIZES[1], s.scalar_medium_nanos, s.block_medium_nanos),
        (SEARCH_SIZES[2], s.scalar_large_nanos, s.block_large_nanos),
    ] {
        println!(
            "{size:>8}{:>14.2}{:>14.2}{:>10}",
            per(sc),
            per(bl),
            format!("{:.2}x", sc as f64 / bl.max(1) as f64)
        );
    }
    println!(
        "compressed tier: {} probes, {:.1} ns/probe; {} B stored vs {} B raw ({:.2}x smaller)",
        s.decode_probes,
        s.decode_nanos as f64 / s.decode_probes.max(1) as f64,
        s.compressed_bytes,
        s.raw_bytes,
        s.raw_bytes as f64 / s.compressed_bytes.max(1) as f64
    );
}

/// Artifact-evaluation style correctness pass: every engine must agree with
/// a CSR oracle on reads and analytics at the configured scale.
pub fn verify(scale: &Scale) {
    println!(
        "# verify: cross-engine agreement at base 2^{}",
        scale.graph_scale()
    );
    let p = DatasetProfile::by_name("LJ").expect("profile exists");
    let shift = shift_for(&p, scale);
    let n = p.scaled_vertices(shift);
    let base = sym(&p.generate(shift, 42));
    let oracle = lsgraph_gen::Csr::from_edges(n, &base);
    let built: Vec<(EngineKind, Box<dyn crate::Engine>)> = engines()
        .iter()
        .map(|&k| (k, build_engine(k, n, &base)))
        .collect();
    let src = max_degree_vertex(&oracle);
    let want_dist = {
        let par = lsgraph_analytics::bfs(&oracle, src);
        lsgraph_analytics::bfs::distances_from_parents(&oracle, src, &par)
    };
    let want_cc = lsgraph_analytics::connected_components(&oracle);
    let want_tc = lsgraph_analytics::triangle_count(&oracle).triangles;
    let mut ok = true;
    for (k, g) in &built {
        let mut fails = Vec::new();
        for v in (0..n as u32).step_by(97) {
            if g.neighbors(v) != oracle.neighbors_slice(v) {
                fails.push("neighbors");
                break;
            }
        }
        let par = lsgraph_analytics::bfs(g.as_ref(), src);
        if lsgraph_analytics::bfs::distances_from_parents(g.as_ref(), src, &par) != want_dist {
            fails.push("bfs");
        }
        if lsgraph_analytics::connected_components(g.as_ref()) != want_cc {
            fails.push("cc");
        }
        if lsgraph_analytics::triangle_count(g.as_ref()).triangles != want_tc {
            fails.push("tc");
        }
        if fails.is_empty() {
            println!("{:>10}: PASS", k.name());
        } else {
            ok = false;
            println!("{:>10}: FAIL ({})", k.name(), fails.join(", "));
        }
    }
    assert!(ok, "verification failed");
}

/// Runs every experiment in paper order.
pub fn all(scale: &Scale) {
    fig3(scale);
    println!();
    fig4(scale);
    println!();
    fig12(scale);
    println!();
    small_batches(scale);
    println!();
    ablation(scale);
    println!();
    fig13(scale);
    println!();
    table2(scale);
    println!();
    table3(scale);
    println!();
    fig14(scale);
    println!();
    fig15(scale);
    println!();
    fig16(scale);
    println!();
    fig17(scale);
    println!();
    table4(scale);
    println!();
    sortledton(scale);
    println!();
    g500(scale);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_table3() {
        // Exercises every engine build + footprint on a small graph.
        table3(&Scale::tiny());
    }

    #[test]
    fn smoke_small_batches() {
        small_batches(&Scale::tiny());
    }

    #[test]
    fn smoke_durability() {
        let r = durability_report(&Scale::tiny());
        assert!(!r.engines.is_empty());
        let mut rotating_cells = 0;
        for e in &r.engines {
            let d = e.durability.as_ref().expect("durability payload");
            assert!(d.wal_frames > 0);
            assert!(d.checkpoint_bytes > 0);
            let ss = e.struct_stats.expect("struct stats");
            assert_eq!(ss.recovery_frames_discarded, 0);
            assert_eq!(ss.recovery_images_discarded, 0);
            assert_eq!(ss.recovery_frames_replayed, d.replay_frames);
            if e.engine.ends_with("/rotating") {
                rotating_cells += 1;
                // The rotating cell replays a fixed 2-frame tail and must
                // have exercised rotation, retention, and delta images.
                assert_eq!(d.replay_frames, 2);
                assert!(d.wal_segments_rotated > 0);
                assert!(d.wal_segments_deleted > 0);
                assert!(d.delta_checkpoints_written >= 2);
                assert!(d.checkpoint_dirty_vertices > 0);
                assert!(d.wal_live_bytes < d.wal_bytes, "live WAL unbounded");
            } else {
                assert_eq!(d.replay_frames, Scale::tiny().trials as u64);
            }
        }
        assert_eq!(rotating_cells, 1, "exactly one rotating cell rides along");
        // The report round-trips through the schema v6 JSON.
        let back = crate::report::BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn smoke_mixed() {
        let scale = Scale::tiny();
        let r = mixed_report(&scale);
        assert!(!r.engines.is_empty());
        let rounds = 8 * scale.trials.max(1) as u64;
        for e in &r.engines {
            let m = e.mixed.as_ref().expect("mixed payload");
            assert_eq!(m.writer_batches, rounds);
            assert_eq!(m.reader_threads, MIXED_READERS as u64);
            // Fixed ops per reader: the histogram count is deterministic.
            assert_eq!(m.reader_ops, MIXED_READERS as u64 * 64 * rounds);
            let lat = e.latency.as_ref().expect("latency");
            assert_eq!(lat.reader.count(), m.reader_ops);
            assert_eq!(lat.batch_apply.count(), rounds);
            // One seed flip before the stream plus one per batch, all
            // retired by the end-of-cell quiescence.
            let ss = e.struct_stats.expect("struct stats");
            assert_eq!(ss.snapshots_taken, rounds + 1);
            assert_eq!(ss.snapshots_retired, ss.snapshots_taken);
            assert!(ss.cow_block_copies > 0);
            assert_eq!(m.final_backlog, 0);
            assert_eq!(ss.epoch_reclaim_backlog, 0);
        }
        // The report round-trips through the schema v5 JSON, and a
        // self-comparison under the regression gate is clean.
        let back = crate::report::BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let v = crate::check::compare(&r, &back, crate::check::CheckOptions::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn smoke_search() {
        let scale = Scale::tiny();
        let r = search_report(&scale);
        let s = r.engines[0].search.as_ref().expect("search payload");
        let probes = 40_000 * scale.trials.max(1) as u64;
        assert_eq!(s.probes_per_size, probes);
        assert_eq!(s.decode_probes, probes);
        assert!(s.compressed_bytes > 0 && s.compressed_bytes < s.raw_bytes);
        // search_cell asserts hit-for-hit agreement between the scalar and
        // block paths; here we pin the deterministic counter volumes. The
        // global sink is shared across concurrently running tests, so the
        // codec counters are lower bounds.
        let ss = r.engines[0].struct_stats.expect("struct stats");
        assert_eq!(ss.search_scalar_probes, SEARCH_SIZES.len() as u64 * probes);
        assert_eq!(ss.search_block_probes, SEARCH_SIZES.len() as u64 * probes);
        assert!(ss.spill_compressions >= 9, "8 hubs + 1 codec-level build");
        assert!(ss.compressed_chunks_decoded > 0);
        assert!(ss.compressed_bytes_saved > 0);
        // Round-trips through the schema v8 JSON and self-compares clean
        // under the regression gate.
        let back = crate::report::BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let v = crate::check::compare(&r, &back, crate::check::CheckOptions::default());
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn smoke_standing() {
        let scale = Scale::tiny();
        let r = standing_report(&scale);
        assert!(!r.engines.is_empty());
        let rounds = 8 * scale.trials.max(1) as u64;
        for e in &r.engines {
            // standing_cell itself asserts every delivered result equals the
            // from-scratch oracle; here we pin the deterministic volumes.
            let s = e.standing.as_ref().expect("standing payload");
            assert_eq!(s.subscriptions, STANDING_SUBS as u64);
            assert_eq!(s.batches, rounds);
            assert_eq!(s.deltas_delivered, STANDING_SUBS as u64 * rounds);
            assert!(s.delta_entries > 0, "deltas must carry entries");
            assert_eq!(s.subscription_panics, 0);
            assert_eq!(s.final_backlog, 0);
            let ss = e.struct_stats.expect("struct stats");
            assert_eq!(ss.subscriptions_active, STANDING_SUBS as u64);
            // Exactly one snapshot per batch (taken by the hook), all
            // retired by the end-of-cell quiescence.
            assert_eq!(ss.snapshots_taken, rounds);
            assert_eq!(ss.snapshots_retired, rounds);
            assert_eq!(ss.epoch_reclaim_backlog, 0);
        }
        // Round-trips through the schema v7 JSON and self-compares clean
        // under the regression gate.
        let back = crate::report::BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(back, r);
        let v = crate::check::compare(&r, &back, crate::check::CheckOptions::default());
        assert!(v.is_empty(), "{v:?}");
    }
}
