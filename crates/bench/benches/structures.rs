//! Criterion micro-benchmarks of the single structures behind the figures:
//! RIA vs PMA vs B-tree insert/search/scan, learned vs binary LIA search,
//! LR vs PLR model cost (§3.2), HITree bulk-load.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

use lsgraph_btree::BTreeSet32;
use lsgraph_core::model::{LinearModel, PlrModel, PositionModel};
use lsgraph_core::{Config, HiTree, LiaSearch, Ria};
use lsgraph_pma::{Pma, PmaParams};

fn keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut v: Vec<u32> = (0..n).map(|_| rng.gen_range(0..n as u32 * 8)).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Random inserts into each ordered-set structure (the Fig. 12 microcosm).
fn bench_inserts(c: &mut Criterion) {
    let n = 50_000;
    let base = keys(n, 1);
    let extra: Vec<u32> = {
        let mut rng = SmallRng::seed_from_u64(2);
        (0..10_000)
            .map(|_| rng.gen_range(0..n as u32 * 8))
            .collect()
    };
    let mut g = c.benchmark_group("insert_10k_into_50k");
    g.throughput(Throughput::Elements(extra.len() as u64));
    g.bench_function("ria", |b| {
        b.iter_batched(
            || Ria::from_sorted(&base, 1.2),
            |mut r| {
                for &k in &extra {
                    black_box(r.insert(k));
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("pma", |b| {
        b.iter_batched(
            || Pma::<u32>::from_sorted(&base, PmaParams::dense()),
            |mut p| {
                for &k in &extra {
                    black_box(p.insert(k));
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("btree", |b| {
        b.iter_batched(
            || BTreeSet32::from_sorted(&base),
            |mut t| {
                for &k in &extra {
                    black_box(t.insert(k));
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("hitree", |b| {
        let cfg = Config::default();
        b.iter_batched(
            || HiTree::from_sorted(&base, &cfg),
            |mut t| {
                for &k in &extra {
                    black_box(t.insert(k, &cfg));
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Membership probes: RIA's indexed search vs PMA's gapped binary search.
fn bench_search(c: &mut Criterion) {
    let n = 100_000;
    let base = keys(n, 3);
    let probes: Vec<u32> = {
        let mut rng = SmallRng::seed_from_u64(4);
        (0..1_000).map(|_| rng.gen_range(0..n as u32 * 8)).collect()
    };
    let ria = Ria::from_sorted(&base, 1.2);
    let pma = Pma::<u32>::from_sorted(&base, PmaParams::dense());
    let bt = BTreeSet32::from_sorted(&base);
    let cfg = Config::default();
    let cfg_bin = Config {
        lia_search: LiaSearch::Binary,
        ..Config::default()
    };
    let tree = HiTree::from_sorted(&base, &cfg);
    let mut g = c.benchmark_group("search_1k_in_100k");
    g.throughput(Throughput::Elements(probes.len() as u64));
    g.bench_function("ria", |b| {
        b.iter(|| probes.iter().filter(|&&k| ria.contains(k)).count())
    });
    g.bench_function("pma", |b| {
        b.iter(|| probes.iter().filter(|&&k| pma.contains(k)).count())
    });
    g.bench_function("btree", |b| {
        b.iter(|| probes.iter().filter(|&&k| bt.contains(k)).count())
    });
    g.bench_function("hitree_learned", |b| {
        b.iter(|| probes.iter().filter(|&&k| tree.contains(k, &cfg)).count())
    });
    g.bench_function("hitree_binary", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|&&k| tree.contains(k, &cfg_bin))
                .count()
        })
    });
    g.finish();
}

/// Full scans: the traversal locality behind Fig. 13 / Table 2.
fn bench_scan(c: &mut Criterion) {
    let n = 200_000;
    let base = keys(n, 5);
    let ria = Ria::from_sorted(&base, 1.2);
    let pma = Pma::<u32>::from_sorted(&base, PmaParams::default());
    let bt = BTreeSet32::from_sorted(&base);
    let cfg = Config::default();
    let tree = HiTree::from_sorted(&base, &cfg);
    let mut g = c.benchmark_group("scan_200k");
    g.throughput(Throughput::Elements(base.len() as u64));
    g.bench_function("ria", |b| {
        b.iter(|| {
            let mut s = 0u64;
            ria.for_each(|x| s += x as u64);
            s
        })
    });
    g.bench_function("pma", |b| {
        b.iter(|| {
            let mut s = 0u64;
            pma.for_each(|x| s += x as u64);
            s
        })
    });
    g.bench_function("btree", |b| {
        b.iter(|| {
            let mut s = 0u64;
            bt.for_each(&mut |x| s += x as u64);
            s
        })
    });
    g.bench_function("hitree", |b| {
        b.iter(|| {
            let mut s = 0u64;
            tree.for_each(&mut |x| s += x as u64);
            s
        })
    });
    g.finish();
}

/// LR vs PLR training and prediction cost (the §3.2 trade-off).
fn bench_models(c: &mut Criterion) {
    let base = keys(100_000, 7);
    let mut g = c.benchmark_group("model_cost");
    g.bench_function("lr_train", |b| {
        b.iter(|| LinearModel::fit(black_box(&base), base.len() * 2))
    });
    g.bench_function("plr_train", |b| {
        b.iter(|| PlrModel::fit(black_box(&base), base.len() * 2, 16))
    });
    let lr = LinearModel::fit(&base, base.len() * 2);
    let plr = PlrModel::fit(&base, base.len() * 2, 16);
    g.bench_function("lr_predict", |b| {
        b.iter(|| base.iter().map(|&k| lr.predict(k)).sum::<usize>())
    });
    g.bench_function("plr_predict", |b| {
        b.iter(|| base.iter().map(|&k| plr.predict(k)).sum::<usize>())
    });
    g.finish();
}

/// HITree bulk-load cost (Algorithm 1).
fn bench_bulkload(c: &mut Criterion) {
    let cfg = Config::default();
    let mut g = c.benchmark_group("bulkload");
    for n in [10_000usize, 100_000] {
        let base = keys(n, 9);
        g.throughput(Throughput::Elements(base.len() as u64));
        g.bench_with_input(BenchmarkId::new("hitree", n), &base, |b, base| {
            b.iter(|| HiTree::from_sorted(black_box(base), &cfg))
        });
        g.bench_with_input(BenchmarkId::new("ria", n), &base, |b, base| {
            b.iter(|| Ria::from_sorted(black_box(base), 1.2))
        });
    }
    g.finish();
}

/// Materialized vs streaming triangle counting on a live LSGraph (the GPM
/// set-computation pattern, Table 2's workload).
fn bench_tc(c: &mut Criterion) {
    use lsgraph_api::Edge;
    use lsgraph_core::LsGraph;
    let scale = 12u32;
    let edges: Vec<Edge> = lsgraph_gen::rmat(scale, 60_000, lsgraph_gen::RmatParams::paper(), 3)
        .iter()
        .flat_map(|e| [*e, e.reversed()])
        .collect();
    let g = LsGraph::from_edges(1 << scale, &edges, Config::default());
    let mut grp = c.benchmark_group("triangle_count");
    grp.bench_function("materialized", |b| {
        b.iter(|| lsgraph_analytics::triangle_count(&g).triangles)
    });
    grp.bench_function("streaming", |b| {
        b.iter(|| lsgraph_analytics::triangle_count_streaming(&g))
    });
    grp.finish();
}

/// Callback traversal vs external iterator over the same RIA/HITree.
fn bench_iteration(c: &mut Criterion) {
    let base = keys(200_000, 11);
    let cfg = Config::default();
    let ria = Ria::from_sorted(&base, 1.2);
    let tree = HiTree::from_sorted(&base, &cfg);
    let mut g = c.benchmark_group("iteration_200k");
    g.throughput(Throughput::Elements(base.len() as u64));
    g.bench_function("ria_for_each", |b| {
        b.iter(|| {
            let mut s = 0u64;
            ria.for_each(|x| s += x as u64);
            s
        })
    });
    g.bench_function("ria_iter", |b| {
        b.iter(|| ria.iter().map(|x| x as u64).sum::<u64>())
    });
    g.bench_function("hitree_for_each", |b| {
        b.iter(|| {
            let mut s = 0u64;
            tree.for_each(&mut |x| s += x as u64);
            s
        })
    });
    g.bench_function("hitree_iter", |b| {
        b.iter(|| tree.iter().map(|x| x as u64).sum::<u64>())
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_inserts, bench_search, bench_scan, bench_models, bench_bulkload,
        bench_tc, bench_iteration
}
criterion_main!(benches);
