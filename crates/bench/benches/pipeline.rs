//! Criterion benchmarks of the batch-update pipeline stages (paper §5):
//! parallel sort + dedup, per-source grouping, and the per-vertex apply —
//! the components whose sum Fig. 12's throughput measures.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use lsgraph_api::batch::{runs_by_src, sorted_dedup_keys};
use lsgraph_core::{Config, LsGraph};
use lsgraph_gen::{rmat, RmatParams};

const SCALE: u32 = 14;
const BATCH: usize = 1 << 16;

fn bench_stages(c: &mut Criterion) {
    let batch = rmat(SCALE, BATCH, RmatParams::paper(), 3);
    let keys = sorted_dedup_keys(&batch);
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.bench_function("sort_dedup", |b| {
        b.iter(|| sorted_dedup_keys(black_box(&batch)))
    });
    g.bench_function("group_runs", |b| b.iter(|| runs_by_src(black_box(&keys))));
    g.finish();
}

fn bench_apply(c: &mut Criterion) {
    use lsgraph_api::DynamicGraph;
    let base = rmat(SCALE, 1 << 18, RmatParams::paper(), 4);
    let batch = rmat(SCALE, BATCH, RmatParams::paper(), 5);
    let mut g = c.benchmark_group("apply");
    g.throughput(Throughput::Elements(BATCH as u64));
    g.sample_size(10);
    g.bench_function("insert_into_loaded_graph", |b| {
        b.iter_batched(
            || LsGraph::from_edges(1 << SCALE, &base, Config::default()),
            |mut eng| {
                eng.insert_batch(&batch);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.bench_function("delete_from_loaded_graph", |b| {
        b.iter_batched(
            || LsGraph::from_edges(1 << SCALE, &base, Config::default()),
            |mut eng| {
                eng.delete_batch(&base[..BATCH]);
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stages, bench_apply
}
criterion_main!(benches);
