//! Criterion engine-level benchmarks: batch updates and analytics kernels
//! per engine on a small R-MAT graph (the statistical companion to the
//! `repro` harness's figure regeneration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use lsgraph_api::Edge;
use lsgraph_bench::{build_engine, engines};
use lsgraph_gen::{rmat, RmatParams};

const SCALE: u32 = 13;
const BASE_EDGES: usize = 1 << 17;
const BATCH: usize = 1 << 13;

fn base_graph() -> Vec<Edge> {
    rmat(SCALE, BASE_EDGES, RmatParams::paper(), 42)
}

fn sym(edges: &[Edge]) -> Vec<Edge> {
    let mut out = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        out.push(*e);
        out.push(e.reversed());
    }
    out
}

fn bench_insert_batch(c: &mut Criterion) {
    let base = base_graph();
    let batch = rmat(SCALE, BATCH, RmatParams::paper(), 7);
    let mut g = c.benchmark_group("insert_batch_8k");
    g.throughput(Throughput::Elements(BATCH as u64));
    for kind in engines() {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter_batched(
                || build_engine(k, 1 << SCALE, &base),
                |mut eng| {
                    eng.insert_batch(&batch);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_delete_batch(c: &mut Criterion) {
    let base = base_graph();
    let batch: Vec<Edge> = base[..BATCH].to_vec();
    let mut g = c.benchmark_group("delete_batch_8k");
    g.throughput(Throughput::Elements(BATCH as u64));
    for kind in engines() {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &k| {
            b.iter_batched(
                || build_engine(k, 1 << SCALE, &base),
                |mut eng| {
                    eng.delete_batch(&batch);
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_bfs(c: &mut Criterion) {
    let base = sym(&base_graph());
    let mut g = c.benchmark_group("bfs");
    for kind in engines() {
        let eng = build_engine(kind, 1 << SCALE, &base);
        let src = (0..eng.num_vertices() as u32)
            .max_by_key(|&v| eng.degree(v))
            .unwrap_or(0);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| lsgraph_analytics::bfs(eng.as_ref(), src))
        });
    }
    g.finish();
}

fn bench_pagerank(c: &mut Criterion) {
    let base = sym(&base_graph());
    let mut g = c.benchmark_group("pagerank_10iter");
    for kind in engines() {
        let eng = build_engine(kind, 1 << SCALE, &base);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, _| {
            b.iter(|| lsgraph_analytics::pagerank(eng.as_ref(), 10, 0.85))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_insert_batch, bench_delete_batch, bench_bfs, bench_pagerank
}
criterion_main!(benches);
