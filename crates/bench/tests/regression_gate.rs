//! End-to-end exercises of the observability tier: the structural-counter
//! regression gate against real reports, histogram determinism across
//! same-seed runs, and the trace export round-tripping through the
//! harness's own JSON parser.

use lsgraph_api::trace;
use lsgraph_bench::{check, experiments, BenchReport, Scale};

/// A clean same-seed re-run must pass the gate, and perturbing a gated
/// counter in the baseline must fail it — the ISSUE's injected-regression
/// scenario, driven through real experiment output.
#[test]
fn gate_passes_clean_run_and_fails_perturbed_baseline() {
    let scale = Scale::tiny();
    let baseline = experiments::small_batches_report(&scale);
    let current = experiments::small_batches_report(&scale);
    let opts = check::CheckOptions::default();
    let clean = check::compare(&baseline, &current, opts);
    assert!(clean.is_empty(), "clean run flagged: {clean:?}");

    // Inject a regression: pretend the baseline had (almost) no structural
    // movement, so the current run's real counters exceed tolerance.
    let mut perturbed = baseline.clone();
    let cell = perturbed
        .engines
        .iter_mut()
        .find(|e| e.struct_stats.is_some())
        .expect("LSGraph cell present");
    let ss = cell.struct_stats.as_mut().unwrap();
    let real = ss.tier_upgrades;
    assert!(
        real > opts.abs_slack,
        "tiny-scale run produced too few tier upgrades ({real}) to exercise the gate"
    );
    ss.tier_upgrades = 0;
    let v = check::compare(&perturbed, &current, opts);
    assert_eq!(v.len(), 1, "{v:?}");
    assert_eq!(v[0].kind, check::ViolationKind::Regression);
    assert_eq!(v[0].counter, "tier_upgrades");
    assert_eq!(v[0].current, real);

    // The gate also survives a serialization round trip of both documents.
    let baseline2 = BenchReport::from_json(&baseline.to_json()).unwrap();
    let current2 = BenchReport::from_json(&current.to_json()).unwrap();
    assert!(check::compare(&baseline2, &current2, opts).is_empty());
}

/// Latency histogram *counts* are deterministic across same-seed runs (one
/// batch_apply sample per batch, one group_apply sample per run); only the
/// recorded durations vary.
#[test]
fn histogram_counts_are_deterministic_across_runs() {
    let scale = Scale::tiny();
    let a = experiments::small_batches_report(&scale);
    let b = experiments::small_batches_report(&scale);
    let la = a
        .engines
        .iter()
        .find_map(|e| e.latency)
        .expect("LSGraph records latency");
    let lb = b
        .engines
        .iter()
        .find_map(|e| e.latency)
        .expect("LSGraph records latency");
    assert!(la.batch_apply.count() > 0);
    assert_eq!(la.batch_apply.count(), lb.batch_apply.count());
    assert_eq!(la.group_apply.count(), lb.group_apply.count());
}

/// The chrome://tracing export must be valid JSON (by the harness's own
/// parser) with the expected envelope, and contain the spans recorded while
/// tracing was enabled.
#[test]
fn trace_export_round_trips_through_json_parser() {
    trace::reset();
    trace::enable();
    {
        let _s = trace::span(trace::SpanKind::Sort);
        std::thread::sleep(std::time::Duration::from_micros(50));
    }
    {
        let _k = trace::span_named(trace::SpanKind::Kernel, "bfs");
    }
    trace::disable();
    let (doc, dropped) = trace::export_chrome_json();
    assert_eq!(dropped, 0);
    let v = lsgraph_bench::report::parse_json(&doc).expect("trace JSON parses");
    let s = format!("{v:?}");
    assert!(s.contains("traceEvents"));
    assert!(s.contains("kernel:bfs"));
    assert!(s.contains("sort"));
    // Complete-event envelope fields.
    assert!(doc.contains("\"ph\": \"X\""));
    assert!(doc.contains("\"pid\": 1"));
    assert!(doc.contains("\"displayTimeUnit\""));
    trace::reset();
}
