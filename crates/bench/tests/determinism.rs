//! Two same-seed report runs must agree on every deterministic field.
//!
//! The batch streams are seeded and the engines partition batch application
//! into disjoint per-source runs, so every counter increment happens exactly
//! once regardless of thread schedule; only the `*_nanos` timing fields may
//! differ between runs. This is what makes `BENCH_*.json` trajectories
//! comparable across commits.

use lsgraph_bench::{experiments, Scale};

#[test]
fn same_seed_runs_reproduce_counters_exactly() {
    let scale = Scale::tiny();
    let a = experiments::small_batches_report(&scale);
    let b = experiments::small_batches_report(&scale);
    assert_eq!(a.engines.len(), b.engines.len());
    for (x, y) in a.engines.iter().zip(&b.engines) {
        assert_eq!(x.engine, y.engine);
        assert_eq!(x.dataset, y.dataset);
        assert_eq!(x.batch_size, y.batch_size);
        match (&x.counters, &y.counters) {
            (Some(cx), Some(cy)) => {
                assert_eq!(
                    cx.deterministic_fields(),
                    cy.deterministic_fields(),
                    "op counters diverged for {}",
                    x.engine
                );
                assert!(cx.search_steps > 0, "{} recorded no searches", x.engine);
            }
            (None, None) => {}
            _ => panic!("counter presence diverged for {}", x.engine),
        }
        match (&x.struct_stats, &y.struct_stats) {
            (Some(sx), Some(sy)) => {
                assert_eq!(
                    sx.deterministic_fields(),
                    sy.deterministic_fields(),
                    "struct counters diverged for {}",
                    x.engine
                );
                assert!(sx.vb_inline_hits > 0, "{} saw no inline traffic", x.engine);
            }
            (None, None) => {}
            _ => panic!("struct-stat presence diverged for {}", x.engine),
        }
    }
    // Exactly one engine (LSGraph) reports structural counters.
    assert_eq!(
        a.engines
            .iter()
            .filter(|e| e.struct_stats.is_some())
            .count(),
        1
    );
}
