//! The standing-query algebra and its from-scratch oracle evaluation.

use std::collections::{BTreeMap, BTreeSet};

use lsgraph_analytics::{bfs, connected_components};
use lsgraph_api::{Edge, Graph};

use crate::window::BatchWindow;

/// A query a client can register as a subscription.
///
/// Each variant's materialized result is a `BTreeMap<u32, u64>`:
///
/// * [`KHop`](StandingQuery::KHop) — every vertex within `k` hops of `src`,
///   keyed by vertex id, valued by hop distance (the source maps to `0`).
/// * [`WindowedEdgeCount`](StandingQuery::WindowedEdgeCount) — the number of
///   distinct directed edges inserted by the last `window` batches that are
///   still present in the graph; a scalar delivered at key `0`.
/// * [`WindowedTriangleCount`](StandingQuery::WindowedTriangleCount) — the
///   number of triangles whose three (undirected) edges all lie in that same
///   present-window edge set; a scalar delivered at key `0`.
/// * [`ComponentMembership`](StandingQuery::ComponentMembership) — every
///   vertex reachable from `src` (same connected component), keyed by vertex
///   id, valued `1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StandingQuery {
    /// Vertices within `k` hops of `src`, with their hop distance.
    KHop {
        /// BFS source vertex.
        src: u32,
        /// Maximum hop distance (inclusive).
        k: u32,
    },
    /// Distinct still-present edges inserted by the last `window` batches.
    WindowedEdgeCount {
        /// Window size in batches.
        window: usize,
    },
    /// Triangles entirely inside the present-window edge set.
    WindowedTriangleCount {
        /// Window size in batches.
        window: usize,
    },
    /// Vertices in the same connected component as `src`.
    ComponentMembership {
        /// Membership anchor vertex.
        src: u32,
    },
}

impl StandingQuery {
    /// Window size in batches, for the windowed variants.
    pub fn window(&self) -> Option<usize> {
        match *self {
            StandingQuery::WindowedEdgeCount { window }
            | StandingQuery::WindowedTriangleCount { window } => Some(window),
            _ => None,
        }
    }

    /// Evaluates the query from scratch with the full (non-incremental)
    /// kernels: a fresh BFS for k-hop, a label-propagation pass for
    /// membership, and a rescan of `window` for the windowed counts.
    ///
    /// This is the *oracle* the incremental maintainers are held to: after
    /// every delivered batch, a subscription's materialized result must
    /// equal `oracle` evaluated on the same snapshot (and, for windowed
    /// queries, the same window history).
    pub fn oracle<G: Graph + ?Sized>(&self, g: &G, window: &BatchWindow) -> BTreeMap<u32, u64> {
        match *self {
            StandingQuery::KHop { src, k } => {
                let n = g.num_vertices();
                if (src as usize) >= n {
                    return BTreeMap::new();
                }
                let parents = bfs::bfs(g, src);
                let dist = bfs::distances_from_parents(g, src, &parents);
                dist.iter()
                    .enumerate()
                    .filter(|&(_, &d)| d != bfs::UNREACHED && d <= k)
                    .map(|(v, &d)| (v as u32, d as u64))
                    .collect()
            }
            StandingQuery::WindowedEdgeCount { .. } => {
                let count = present_window_edges(g, window).len() as u64;
                [(0u32, count)].into_iter().collect()
            }
            StandingQuery::WindowedTriangleCount { .. } => {
                let count = window_triangles(&present_window_edges(g, window));
                [(0u32, count)].into_iter().collect()
            }
            StandingQuery::ComponentMembership { src } => {
                let n = g.num_vertices();
                if (src as usize) >= n {
                    return BTreeMap::new();
                }
                let labels = connected_components(g);
                let root = labels[src as usize];
                labels
                    .iter()
                    .enumerate()
                    .filter(|&(_, &l)| l == root)
                    .map(|(v, _)| (v as u32, 1u64))
                    .collect()
            }
        }
    }
}

/// The window's candidate edges filtered to those still present in `g`.
pub fn present_window_edges<G: Graph + ?Sized>(g: &G, window: &BatchWindow) -> Vec<Edge> {
    let n = g.num_vertices();
    window
        .candidate_edges()
        .into_iter()
        .filter(|e| (e.src as usize) < n && (e.dst as usize) < n && g.has_edge(e.src, e.dst))
        .collect()
}

/// Triangles whose three edges all lie in `edges`, treated as undirected.
///
/// Each directed edge contributes the unordered pair `{src, dst}`; a
/// triangle is an unordered vertex triple with all three pairs present.
pub fn window_triangles(edges: &[Edge]) -> u64 {
    let mut adj: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
    for e in edges {
        if e.src == e.dst {
            continue;
        }
        adj.entry(e.src).or_default().insert(e.dst);
        adj.entry(e.dst).or_default().insert(e.src);
    }
    let mut count = 0u64;
    for (&a, na) in &adj {
        for &b in na.range((a + 1)..) {
            let nb = &adj[&b];
            // Common neighbors above b close a triangle exactly once.
            count += na.range((b + 1)..).filter(|c| nb.contains(c)).count() as u64;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_core::BatchKind;
    use lsgraph_gen::Csr;

    fn sym(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect()
    }

    #[test]
    fn khop_oracle_truncates_at_k() {
        // Path 0-1-2-3-4.
        let g = Csr::from_edges(5, &sym(&[(0, 1), (1, 2), (2, 3), (3, 4)]));
        let q = StandingQuery::KHop { src: 0, k: 2 };
        let r = q.oracle(&g, &BatchWindow::new(1));
        assert_eq!(
            r,
            [(0, 0), (1, 1), (2, 2)]
                .into_iter()
                .collect::<BTreeMap<_, _>>()
        );
    }

    #[test]
    fn membership_oracle_selects_component() {
        let g = Csr::from_edges(6, &sym(&[(0, 1), (1, 2), (4, 5)]));
        let q = StandingQuery::ComponentMembership { src: 4 };
        let r = q.oracle(&g, &BatchWindow::new(1));
        assert_eq!(r, [(4, 1), (5, 1)].into_iter().collect::<BTreeMap<_, _>>());
    }

    #[test]
    fn windowed_edge_count_respects_presence() {
        let mut w = BatchWindow::new(4);
        w.push(1, BatchKind::Insert, &sym(&[(0, 1), (1, 2)]));
        // Graph only still contains 0-1: the 1-2 candidates are filtered.
        let g = Csr::from_edges(3, &sym(&[(0, 1)]));
        let q = StandingQuery::WindowedEdgeCount { window: 4 };
        let r = q.oracle(&g, &w);
        assert_eq!(r, [(0, 2)].into_iter().collect::<BTreeMap<_, _>>());
    }

    #[test]
    fn window_triangle_counting_is_undirected_and_exact() {
        // Triangle 0-1-2 plus a pendant edge 2-3.
        let edges = sym(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(window_triangles(&edges), 1);
        // One direction per pair suffices.
        let one_dir: Vec<Edge> = [(0, 1), (1, 2), (0, 2)]
            .iter()
            .map(|&(a, b)| Edge::new(a, b))
            .collect();
        assert_eq!(window_triangles(&one_dir), 1);
        // Self-loops never close triangles.
        let with_loop: Vec<Edge> = [(0, 0), (0, 1), (1, 2), (0, 2)]
            .iter()
            .map(|&(a, b)| Edge::new(a, b))
            .collect();
        assert_eq!(window_triangles(&with_loop), 1);
    }

    #[test]
    fn out_of_range_sources_yield_empty_results() {
        let g = Csr::from_edges(2, &sym(&[(0, 1)]));
        let w = BatchWindow::new(1);
        assert!(StandingQuery::KHop { src: 9, k: 3 }
            .oracle(&g, &w)
            .is_empty());
        assert!(StandingQuery::ComponentMembership { src: 9 }
            .oracle(&g, &w)
            .is_empty());
    }
}
