//! Standing-query subscription layer: registered incremental queries with
//! per-batch result deltas.
//!
//! Streaming-graph consumers rarely want to re-run a kernel after every
//! batch; they want to *subscribe* to a query and be told what changed. The
//! paper's incremental-computation motivation (§3.1) is exactly this access
//! pattern: after a batch commits, an incremental maintainer re-touches only
//! the affected region of the graph and emits the difference.
//!
//! This crate provides that layer on top of the LSGraph engine:
//!
//! * [`StandingQuery`] — the query algebra: k-hop neighborhoods from a
//!   source, windowed edge/triangle counts over the last *W* batches, and
//!   reachability/component membership.
//! * [`SubscriptionRegistry`] — owns one incremental maintainer per
//!   subscription (extending
//!   [`IncrementalBfs`](lsgraph_analytics::IncrementalBfs) /
//!   [`IncrementalCc`](lsgraph_analytics::IncrementalCc), plus a sliding
//!   [`BatchWindow`] with per-batch expiry) and turns each committed batch
//!   into a [`ResultDelta`] per live subscription.
//! * [`SubscriptionHub`] — the engine binding: a
//!   [`PostBatchHook`](lsgraph_core::PostBatchHook) that snapshots the
//!   freshly published graph and enqueues the batch for a dedicated
//!   delivery thread, so the writer's batch path **never blocks on
//!   delivery**; [`SubscriptionHandle`]s poll deltas and materialized
//!   results.
//!
//! Delivery is panic-isolated: a subscription whose maintainer panics
//! (including via the `subscription_deliver` failpoint) is quarantined —
//! its torn maintainer is dropped, other subscriptions keep receiving
//! deltas — and can be [restarted](SubscriptionHandle::restart) from a
//! fresh snapshot, which re-materializes the result and emits one catch-up
//! delta.
//!
//! ```
//! use lsgraph_api::{DynamicGraph, Edge};
//! use lsgraph_core::{Config, LsGraph};
//! use lsgraph_queries::{StandingQuery, SubscriptionHub};
//!
//! let mut g = LsGraph::with_config(5, Config::default());
//! let hub = SubscriptionHub::attach(&mut g);
//! let sub = hub.subscribe(&g, StandingQuery::KHop { src: 0, k: 2 });
//! g.insert_batch_undirected(&[Edge::new(0, 1), Edge::new(1, 2), Edge::new(2, 3)]);
//! hub.quiesce();
//! // 0, 1, 2 are within two hops of 0; 3 is three hops away.
//! assert_eq!(sub.result().into_keys().collect::<Vec<_>>(), vec![0, 1, 2]);
//! let deltas = sub.poll();
//! assert_eq!(deltas.len(), 2); // registration bootstrap + one per batch

//! hub.shutdown();
//! ```

pub mod delta;
pub mod hub;
pub mod maintain;
pub mod query;
pub mod registry;
pub mod window;

pub use delta::{ResultDelta, SubscriptionId};
pub use hub::{SubscriptionHandle, SubscriptionHub};
pub use maintain::Maintainer;
pub use query::StandingQuery;
pub use registry::{SubscriptionRegistry, SubscriptionState};
pub use window::BatchWindow;
