//! The subscription registry: maintainers, materialized results, pending
//! deltas, and panic quarantine.
//!
//! The registry is engine-agnostic — it evaluates against anything
//! implementing [`Graph`], so the differential oracle tests can drive it
//! with a plain CSR as easily as the hub drives it with
//! [`GraphSnapshot`](lsgraph_core::GraphSnapshot)s.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use lsgraph_api::{fail_point, Edge, Graph, StructStats};
use lsgraph_core::BatchKind;

use crate::delta::{diff, ResultDelta, SubscriptionId};
use crate::maintain::Maintainer;
use crate::query::StandingQuery;

/// Lifecycle state of a subscription, as observed by clients.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubscriptionState {
    /// Receiving per-batch deltas.
    Live,
    /// The maintainer panicked while absorbing the batch with this sequence
    /// number; the subscription receives no further deltas until
    /// [restarted](SubscriptionRegistry::restart).
    Quarantined {
        /// Sequence number of the batch whose delivery panicked.
        at_seq: u64,
    },
}

enum SubState {
    Live(Maintainer),
    Quarantined { at_seq: u64 },
}

struct SubEntry {
    id: SubscriptionId,
    query: StandingQuery,
    /// Batches with `seq <= since_seq` were already reflected in the
    /// snapshot this subscription (re)materialized from; delivery skips
    /// them to avoid double-applying.
    since_seq: u64,
    state: SubState,
    result: BTreeMap<u32, u64>,
    pending: Vec<ResultDelta>,
}

/// Owns every registered subscription and turns committed batches into
/// [`ResultDelta`]s.
pub struct SubscriptionRegistry {
    stats: Option<Arc<StructStats>>,
    subs: Vec<SubEntry>,
    next_id: u64,
}

impl SubscriptionRegistry {
    /// An empty registry; `stats` (usually the engine's
    /// [`stats_handle`](lsgraph_core::LsGraph::stats_handle)) receives the
    /// subscription counters.
    pub fn new(stats: Option<Arc<StructStats>>) -> Self {
        SubscriptionRegistry {
            stats,
            subs: Vec::new(),
            next_id: 0,
        }
    }

    /// Registered subscriptions (live + quarantined).
    pub fn len(&self) -> usize {
        self.subs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.subs.is_empty()
    }

    /// Registers `query`, materializing its initial result from `g`.
    ///
    /// `since_seq` is the engine batch sequence already reflected in `g`;
    /// later [`deliver`](Self::deliver) calls skip batches at or below it.
    /// The initial materialization is queued as a bootstrap delta (diffed
    /// against the empty map, at `since_seq`), so replaying every polled
    /// delta from an empty map always reconstructs the current result.
    pub fn register<G: Graph + ?Sized>(
        &mut self,
        g: &G,
        query: StandingQuery,
        since_seq: u64,
    ) -> SubscriptionId {
        let id = SubscriptionId(self.next_id);
        self.next_id += 1;
        let mut maintainer = Maintainer::new(&query, g);
        let result = maintainer.materialize(g);
        let bootstrap = diff(id, since_seq, &BTreeMap::new(), &result);
        self.subs.push(SubEntry {
            id,
            query,
            since_seq,
            state: SubState::Live(maintainer),
            result,
            pending: vec![bootstrap],
        });
        self.update_active_gauge();
        id
    }

    /// Cancels a subscription; returns false if the id is unknown.
    pub fn cancel(&mut self, id: SubscriptionId) -> bool {
        let before = self.subs.len();
        self.subs.retain(|s| s.id != id);
        let removed = self.subs.len() != before;
        if removed {
            self.update_active_gauge();
        }
        removed
    }

    /// Delivers one committed batch to every live subscription.
    ///
    /// `g` must be the post-batch snapshot. `lossy` marks batches whose
    /// commit dropped edges (quarantined runs); traversal maintainers then
    /// rebuild from the snapshot instead of applying the batch
    /// incrementally, while window maintainers still record the slot (see
    /// [`Maintainer::apply`]). Each live subscription emits exactly one delta (possibly
    /// empty). A maintainer that panics — organically or via the
    /// `subscription_deliver` failpoint evaluated once per live
    /// subscription — is dropped in place (no torn state survives) and the
    /// subscription is quarantined; the others keep receiving deltas.
    pub fn deliver<G: Graph + ?Sized>(
        &mut self,
        g: &G,
        seq: u64,
        kind: BatchKind,
        batch: &[Edge],
        lossy: bool,
    ) {
        for sub in &mut self.subs {
            if seq <= sub.since_seq {
                continue;
            }
            let prev = std::mem::replace(&mut sub.state, SubState::Quarantined { at_seq: seq });
            let maintainer = match prev {
                SubState::Live(m) => m,
                SubState::Quarantined { at_seq } => {
                    sub.state = SubState::Quarantined { at_seq };
                    continue;
                }
            };
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let mut m = maintainer;
                fail_point!("subscription_deliver");
                m.apply(g, seq, kind, batch, lossy);
                let new = m.materialize(g);
                (m, new)
            }));
            match outcome {
                Ok((m, new)) => {
                    let d = diff(sub.id, seq, &sub.result, &new);
                    if let Some(stats) = &self.stats {
                        stats.record_delta_delivered(d.entries());
                    }
                    sub.result = new;
                    sub.pending.push(d);
                    sub.state = SubState::Live(m);
                }
                Err(_) => {
                    // The maintainer was moved into the closure and died
                    // with it; `state` already records the quarantine.
                    if let Some(stats) = &self.stats {
                        stats.record_subscription_panic();
                    }
                }
            }
        }
    }

    /// Restarts a quarantined subscription from `g` (at batch `seq`),
    /// rebuilding its maintainer and queueing one catch-up delta from the
    /// last delivered result to the fresh materialization.
    ///
    /// Windowed subscriptions restart with an **empty window**: the batches
    /// missed while quarantined are gone, so their counts re-grow as new
    /// batches arrive. Returns false if the id is unknown or still live.
    pub fn restart<G: Graph + ?Sized>(&mut self, g: &G, id: SubscriptionId, seq: u64) -> bool {
        let Some(sub) = self.subs.iter_mut().find(|s| s.id == id) else {
            return false;
        };
        if !matches!(sub.state, SubState::Quarantined { .. }) {
            return false;
        }
        let mut maintainer = Maintainer::new(&sub.query, g);
        let new = maintainer.materialize(g);
        let d = diff(sub.id, seq, &sub.result, &new);
        if let Some(stats) = &self.stats {
            stats.record_delta_delivered(d.entries());
        }
        sub.result = new;
        sub.pending.push(d);
        sub.state = SubState::Live(maintainer);
        sub.since_seq = seq;
        true
    }

    /// Drains the pending deltas of `id`, oldest first.
    pub fn poll(&mut self, id: SubscriptionId) -> Vec<ResultDelta> {
        self.subs
            .iter_mut()
            .find(|s| s.id == id)
            .map(|s| std::mem::take(&mut s.pending))
            .unwrap_or_default()
    }

    /// The current materialized result of `id`.
    pub fn result(&self, id: SubscriptionId) -> Option<BTreeMap<u32, u64>> {
        self.subs
            .iter()
            .find(|s| s.id == id)
            .map(|s| s.result.clone())
    }

    /// The lifecycle state of `id`.
    pub fn state(&self, id: SubscriptionId) -> Option<SubscriptionState> {
        self.subs
            .iter()
            .find(|s| s.id == id)
            .map(|s| match s.state {
                SubState::Live(_) => SubscriptionState::Live,
                SubState::Quarantined { at_seq } => SubscriptionState::Quarantined { at_seq },
            })
    }

    /// The registered query of `id`.
    pub fn query(&self, id: SubscriptionId) -> Option<StandingQuery> {
        self.subs.iter().find(|s| s.id == id).map(|s| s.query)
    }

    /// Ids of every quarantined subscription.
    pub fn quarantined(&self) -> Vec<SubscriptionId> {
        self.subs
            .iter()
            .filter(|s| matches!(s.state, SubState::Quarantined { .. }))
            .map(|s| s.id)
            .collect()
    }

    fn update_active_gauge(&self) {
        if let Some(stats) = &self.stats {
            stats.record_subscriptions_active(self.subs.len() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_gen::Csr;

    fn sym(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect()
    }

    #[test]
    fn bootstrap_delta_plus_deliveries_reconstruct_result() {
        let mut edges = sym(&[(0, 1)]);
        let mut reg = SubscriptionRegistry::new(None);
        let g0 = Csr::from_edges(5, &edges);
        let id = reg.register(&g0, StandingQuery::KHop { src: 0, k: 2 }, 0);
        let mut replay = BTreeMap::new();
        for (seq, batch) in [sym(&[(1, 2)]), sym(&[(2, 3)]), sym(&[(0, 4)])]
            .into_iter()
            .enumerate()
        {
            edges.extend_from_slice(&batch);
            let g = Csr::from_edges(5, &edges);
            reg.deliver(&g, seq as u64 + 1, BatchKind::Insert, &batch, false);
        }
        for d in reg.poll(id) {
            d.apply_to(&mut replay);
        }
        assert_eq!(replay, reg.result(id).unwrap());
        assert_eq!(
            replay,
            [(0, 0), (1, 1), (2, 2), (4, 1)].into_iter().collect()
        );
        // Pending drained: a second poll is empty.
        assert!(reg.poll(id).is_empty());
    }

    #[test]
    fn since_seq_skips_already_reflected_batches() {
        let edges = sym(&[(0, 1), (1, 2)]);
        let g = Csr::from_edges(3, &edges);
        let mut reg = SubscriptionRegistry::new(None);
        // Registered at seq 5: the snapshot already contains batches 1..=5.
        let id = reg.register(&g, StandingQuery::ComponentMembership { src: 0 }, 5);
        let before = reg.result(id).unwrap();
        // Re-delivering batch 5 must be a no-op (no double-apply, no delta).
        reg.deliver(&g, 5, BatchKind::Insert, &sym(&[(0, 1)]), false);
        assert_eq!(reg.result(id).unwrap(), before);
        let polled = reg.poll(id);
        assert_eq!(polled.len(), 1, "only the bootstrap delta");
        reg.deliver(&g, 6, BatchKind::Insert, &[], false);
        assert_eq!(reg.poll(id).len(), 1, "seq 6 delivers (an empty delta)");
    }

    #[test]
    fn lossy_delivery_refreshes_from_snapshot() {
        // The "batch" claims an edge the graph doesn't have; a lossy
        // delivery must trust the snapshot, not the batch.
        let edges = sym(&[(0, 1)]);
        let g = Csr::from_edges(4, &edges);
        let mut reg = SubscriptionRegistry::new(None);
        let id = reg.register(
            &Csr::from_edges(4, &[]),
            StandingQuery::ComponentMembership { src: 0 },
            0,
        );
        reg.deliver(&g, 1, BatchKind::Insert, &sym(&[(0, 1), (2, 3)]), true);
        let r = reg.result(id).unwrap();
        assert_eq!(r, [(0, 1), (1, 1)].into_iter().collect());
    }

    #[test]
    fn cancel_and_unknown_ids() {
        let g = Csr::from_edges(2, &sym(&[(0, 1)]));
        let mut reg = SubscriptionRegistry::new(None);
        let id = reg.register(&g, StandingQuery::WindowedEdgeCount { window: 2 }, 0);
        assert_eq!(reg.len(), 1);
        assert!(reg.cancel(id));
        assert!(!reg.cancel(id));
        assert!(reg.result(id).is_none());
        assert!(reg.state(id).is_none());
        assert!(reg.poll(id).is_empty());
        assert!(reg.is_empty());
    }
}
