//! The engine binding: a post-batch hook plus a delivery worker thread.
//!
//! [`SubscriptionHub::attach`] installs a [`PostBatchHook`] on an
//! [`LsGraph`]. After each committed batch the hook does O(1) work on the
//! writer thread — take a [`GraphSnapshot`] of the freshly published state,
//! clone the batch, enqueue — and a dedicated worker thread evaluates every
//! subscription against that snapshot in batch-sequence order. The writer's
//! batch path therefore **never blocks on delivery**, no matter how slow a
//! standing query is; backpressure shows up as queued snapshots (visible as
//! epoch backlog) rather than writer stalls.
//!
//! When no subscriptions are registered the hook is a single atomic load.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use lsgraph_api::Edge;
use lsgraph_core::{BatchEvent, BatchKind, GraphSnapshot, LsGraph, PostBatchHook};

use crate::delta::{ResultDelta, SubscriptionId};
use crate::query::StandingQuery;
use crate::registry::{SubscriptionRegistry, SubscriptionState};

struct Task {
    snapshot: GraphSnapshot,
    seq: u64,
    kind: BatchKind,
    batch: Vec<Edge>,
    lossy: bool,
}

struct QueueState {
    queue: VecDeque<Task>,
    /// The worker popped a task and is delivering it.
    busy: bool,
    /// Delivery suspended (tasks keep queueing).
    paused: bool,
    shutdown: bool,
}

struct HubInner {
    registry: Mutex<SubscriptionRegistry>,
    state: Mutex<QueueState>,
    /// Signals the worker: new task, unpause, or shutdown.
    work: Condvar,
    /// Signals quiescers: queue drained and worker idle.
    idle: Condvar,
    /// Registered-subscription count, read by the hook's fast path.
    active: AtomicUsize,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Registry panics are contained by catch_unwind inside deliver; a
    // poisoned mutex here can only mean a panic in bookkeeping code, whose
    // state is still coherent (Vec ops don't tear).
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl HubInner {
    fn worker_loop(self: Arc<Self>) {
        loop {
            let task = {
                let mut st = lock(&self.state);
                loop {
                    if st.shutdown {
                        return;
                    }
                    if !st.paused {
                        if let Some(t) = st.queue.pop_front() {
                            st.busy = true;
                            break t;
                        }
                    }
                    st = self.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            lock(&self.registry).deliver(
                &task.snapshot,
                task.seq,
                task.kind,
                &task.batch,
                task.lossy,
            );
            // Release the snapshot's epoch before reporting idle.
            drop(task);
            let mut st = lock(&self.state);
            st.busy = false;
            if st.queue.is_empty() {
                self.idle.notify_all();
            }
        }
    }
}

/// The post-batch hook installed on the engine by
/// [`SubscriptionHub::attach`].
struct HubHook {
    inner: Arc<HubInner>,
}

impl PostBatchHook for HubHook {
    fn on_batch(&mut self, g: &LsGraph, event: &BatchEvent<'_>) {
        if self.inner.active.load(Ordering::Acquire) == 0 {
            return;
        }
        let outcome = event.outcome;
        let task = Task {
            snapshot: g.snapshot(),
            seq: event.seq,
            kind: event.kind,
            batch: event.batch.to_vec(),
            lossy: outcome.edges_lost > 0 || outcome.skipped_quarantined > 0,
        };
        let mut st = lock(&self.inner.state);
        if st.shutdown {
            return;
        }
        st.queue.push_back(task);
        self.inner.work.notify_one();
    }
}

/// Standing-query delivery attached to one [`LsGraph`].
///
/// Dropping the hub shuts the worker down (after draining the queue);
/// already-issued [`SubscriptionHandle`]s can still poll their final
/// deltas and results afterwards.
pub struct SubscriptionHub {
    inner: Arc<HubInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
}

impl SubscriptionHub {
    /// Spawns the delivery worker and installs the post-batch hook on `g`.
    ///
    /// Subscription counters (`subscriptions_active`, `deltas_delivered`,
    /// `delta_entries_emitted`, `subscription_panics`) are recorded into
    /// the graph's own [`StructStats`](lsgraph_api::StructStats), so they
    /// surface through `struct_stats()` and the metrics registry like any
    /// engine counter.
    pub fn attach(g: &mut LsGraph) -> SubscriptionHub {
        let inner = Arc::new(HubInner {
            registry: Mutex::new(SubscriptionRegistry::new(Some(g.stats_handle()))),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                busy: false,
                paused: false,
                shutdown: false,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
            active: AtomicUsize::new(0),
        });
        let worker_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("lsgraph-subscriptions".into())
            .spawn(move || worker_inner.worker_loop())
            .expect("spawn subscription delivery worker");
        g.add_post_batch_hook(Box::new(HubHook {
            inner: Arc::clone(&inner),
        }));
        SubscriptionHub {
            inner,
            worker: Mutex::new(Some(handle)),
        }
    }

    /// Registers a standing query against the graph's current state and
    /// returns its handle.
    ///
    /// Call from the writer thread (between batches): the registration
    /// snapshot and the engine's [`batch_seq`](LsGraph::batch_seq) are read
    /// together, so queued-but-undelivered batches already reflected in the
    /// registration state are skipped rather than double-applied.
    pub fn subscribe(&self, g: &LsGraph, query: StandingQuery) -> SubscriptionHandle {
        let mut reg = lock(&self.inner.registry);
        let id = reg.register(g, query, g.batch_seq());
        self.inner.active.store(reg.len(), Ordering::Release);
        SubscriptionHandle {
            inner: Arc::clone(&self.inner),
            id,
            cancel_on_drop: true,
        }
    }

    /// Registered subscriptions (live + quarantined).
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Acquire)
    }

    /// Tasks not yet fully delivered (queued + in flight).
    pub fn pending(&self) -> usize {
        let st = lock(&self.inner.state);
        st.queue.len() + usize::from(st.busy)
    }

    /// Suspends delivery; batches keep queueing. Used by tests to observe
    /// that the writer path never blocks, and as an operational valve.
    pub fn pause(&self) {
        lock(&self.inner.state).paused = true;
    }

    /// Resumes delivery after [`pause`](Self::pause).
    pub fn resume(&self) {
        lock(&self.inner.state).paused = false;
        self.inner.work.notify_all();
    }

    /// Blocks until every queued batch has been delivered (resuming a
    /// paused worker first). Afterwards counters and results are stable
    /// and the worker holds no snapshot.
    pub fn quiesce(&self) {
        let mut st = lock(&self.inner.state);
        if st.paused {
            st.paused = false;
            self.inner.work.notify_all();
        }
        while st.busy || (!st.queue.is_empty() && !st.shutdown) {
            st = self.inner.idle.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Drains the queue, then stops and joins the worker. Idempotent;
    /// called automatically on drop.
    pub fn shutdown(&self) {
        self.quiesce();
        {
            let mut st = lock(&self.inner.state);
            st.shutdown = true;
            self.inner.work.notify_all();
        }
        if let Some(h) = lock(&self.worker).take() {
            let _ = h.join();
        }
        self.inner.idle.notify_all();
    }
}

impl Drop for SubscriptionHub {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Client handle to one registered standing query.
///
/// Dropping the handle cancels the subscription; call
/// [`detach`](Self::detach) to keep it running unobserved.
#[must_use = "dropping the handle cancels the subscription; call detach() to keep it registered"]
pub struct SubscriptionHandle {
    inner: Arc<HubInner>,
    id: SubscriptionId,
    cancel_on_drop: bool,
}

impl SubscriptionHandle {
    /// The subscription's id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Drains the deltas delivered since the last poll, oldest first.
    /// The first delta ever polled is the registration bootstrap (the
    /// initial result diffed against empty).
    pub fn poll(&self) -> Vec<ResultDelta> {
        lock(&self.inner.registry).poll(self.id)
    }

    /// The current materialized result.
    pub fn result(&self) -> BTreeMap<u32, u64> {
        lock(&self.inner.registry)
            .result(self.id)
            .unwrap_or_default()
    }

    /// True if delivery panicked and the subscription is quarantined.
    pub fn is_quarantined(&self) -> bool {
        matches!(
            lock(&self.inner.registry).state(self.id),
            Some(SubscriptionState::Quarantined { .. })
        )
    }

    /// Restarts a quarantined subscription from the graph's current state
    /// (call from the writer thread, ideally after
    /// [`quiesce`](SubscriptionHub::quiesce)). Queues one catch-up delta.
    /// Windowed queries restart with an empty window.
    pub fn restart(&self, g: &LsGraph) -> bool {
        lock(&self.inner.registry).restart(g, self.id, g.batch_seq())
    }

    /// Cancels the subscription, dropping undelivered deltas.
    pub fn cancel(self) {
        drop(self);
    }

    /// Keeps the subscription registered (still delivering, still counted
    /// in `subscriptions_active`) after the handle is gone.
    pub fn detach(mut self) -> SubscriptionId {
        self.cancel_on_drop = false;
        self.id
    }
}

impl Drop for SubscriptionHandle {
    fn drop(&mut self) {
        if self.cancel_on_drop {
            let mut reg = lock(&self.inner.registry);
            reg.cancel(self.id);
            self.inner.active.store(reg.len(), Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsgraph_api::DynamicGraph;
    use lsgraph_core::{Config, LsGraph};

    fn sym(pairs: &[(u32, u32)]) -> Vec<Edge> {
        pairs
            .iter()
            .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
            .collect()
    }

    #[test]
    fn writer_never_blocks_while_delivery_is_paused() {
        let mut g = LsGraph::with_config(8, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        let sub = hub.subscribe(&g, StandingQuery::KHop { src: 0, k: 3 });
        hub.pause();
        // With the worker suspended, the writer applies batches freely:
        // the hook only snapshots and enqueues.
        g.insert_batch_undirected(&sym(&[(0, 1)]));
        g.insert_batch_undirected(&sym(&[(1, 2)]));
        g.insert_batch_undirected(&sym(&[(2, 3)]));
        assert_eq!(hub.pending(), 3, "all three batches queued, none delivered");
        hub.resume();
        hub.quiesce();
        assert_eq!(hub.pending(), 0);
        let deltas = sub.poll();
        // Bootstrap + one delta per batch, in batch-sequence order.
        assert_eq!(deltas.len(), 4);
        let seqs: Vec<u64> = deltas.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(
            sub.result(),
            [(0, 0), (1, 1), (2, 2), (3, 3)].into_iter().collect()
        );
        hub.shutdown();
    }

    #[test]
    fn counters_flow_into_engine_struct_stats() {
        let mut g = LsGraph::with_config(6, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        let a = hub.subscribe(&g, StandingQuery::KHop { src: 0, k: 2 });
        let b = hub.subscribe(&g, StandingQuery::WindowedEdgeCount { window: 2 });
        assert_eq!(hub.active(), 2);
        g.insert_batch_undirected(&sym(&[(0, 1), (1, 2)]));
        g.insert_batch_undirected(&sym(&[(2, 3)]));
        hub.quiesce();
        let ss = g.struct_stats().expect("lsgraph is instrumented");
        assert_eq!(ss.subscriptions_active, 2);
        assert_eq!(ss.deltas_delivered, 4, "2 subscriptions x 2 batches");
        assert!(ss.delta_entries_emitted > 0);
        assert_eq!(ss.subscription_panics, 0);
        drop(a);
        drop(b);
        assert_eq!(hub.active(), 0);
        assert_eq!(g.struct_stats().unwrap().subscriptions_active, 0);
        hub.shutdown();
    }

    #[test]
    fn hook_is_inert_with_no_subscriptions() {
        let mut g = LsGraph::with_config(4, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        g.insert_batch_undirected(&sym(&[(0, 1)]));
        assert_eq!(hub.pending(), 0, "nothing queued without subscribers");
        assert_eq!(g.struct_stats().unwrap().deltas_delivered, 0);
        hub.shutdown();
    }

    #[test]
    fn delete_batches_deliver_deltas_too() {
        let mut g = LsGraph::with_config(5, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        g.insert_batch_undirected(&sym(&[(0, 1), (1, 2)]));
        let sub = hub.subscribe(&g, StandingQuery::ComponentMembership { src: 0 });
        assert_eq!(sub.result(), [(0, 1), (1, 1), (2, 1)].into_iter().collect());
        g.delete_batch_undirected(&sym(&[(1, 2)]));
        hub.quiesce();
        assert_eq!(sub.result(), [(0, 1), (1, 1)].into_iter().collect());
        let last = sub.poll().pop().unwrap();
        assert_eq!(last.removed, vec![(2, 1)]);
        hub.shutdown();
    }

    #[test]
    fn detach_keeps_delivering_without_a_handle() {
        let mut g = LsGraph::with_config(4, Config::default());
        let hub = SubscriptionHub::attach(&mut g);
        let id = hub
            .subscribe(&g, StandingQuery::WindowedEdgeCount { window: 4 })
            .detach();
        let _ = id;
        g.insert_batch_undirected(&sym(&[(0, 1)]));
        hub.quiesce();
        assert_eq!(hub.active(), 1);
        assert_eq!(g.struct_stats().unwrap().deltas_delivered, 1);
        hub.shutdown();
    }
}
